"""Algorithm-level benchmarks: scaling of the core engines.

Times the optimal retimer, iteration-bound computation, unfolding and the
exact retime-unfold optimizer across graph sizes, so regressions in the
algorithmic substrate are visible independent of the paper tables.
"""

from __future__ import annotations

import random

import pytest

from repro.graph import iteration_bound
from repro.graph.generators import random_unit_time_dfg
from repro.retiming import minimize_cycle_period
from repro.schedule import ResourceModel, rotation_schedule
from repro.unfolding import retime_unfold, unfold

SIZES = (10, 20, 40)


def _graph(size: int):
    return random_unit_time_dfg(
        random.Random(size), num_nodes=size, extra_edges=size, max_delay=4
    )


@pytest.mark.parametrize("size", SIZES)
def test_bench_minimize_cycle_period(benchmark, size):
    g = _graph(size)
    period, r = benchmark(minimize_cycle_period, g)
    assert r.is_legal()


@pytest.mark.parametrize("size", SIZES)
def test_bench_iteration_bound(benchmark, size):
    g = _graph(size)
    bound = benchmark(iteration_bound, g)
    assert bound >= 0


@pytest.mark.parametrize("size", SIZES)
def test_bench_unfold(benchmark, size):
    g = _graph(size)
    gf = benchmark(unfold, g, 4)
    assert gf.num_nodes == 4 * size


@pytest.mark.parametrize("size", (10, 20))
def test_bench_retime_unfold_exact(benchmark, size):
    g = _graph(size)
    res = benchmark(retime_unfold, g, 3)
    assert res.period >= 1


@pytest.mark.parametrize("size", (10, 20))
def test_bench_rotation_scheduling(benchmark, size):
    g = _graph(size)
    model = ResourceModel(units={"alu": 2, "mul": 1})
    res = benchmark(rotation_schedule, g, model)
    assert res.length <= res.initial_length


@pytest.mark.parametrize("size", (10, 20))
def test_bench_modulo_scheduling(benchmark, size):
    from repro.schedule import minimum_initiation_interval, modulo_schedule

    g = _graph(size)
    model = ResourceModel(units={"alu": 2, "mul": 1})
    ms = benchmark(modulo_schedule, g, model)
    assert ms.ii >= minimum_initiation_interval(g, model)


def test_rotation_vs_modulo_report(capsys):
    """Side-by-side pipelining comparison on the six benchmarks: rotation
    scheduling vs. iterative modulo scheduling on 2 ALUs + 1 multiplier."""
    from repro.analysis import format_table
    from repro.schedule import modulo_schedule, rotation_schedule
    from repro.workloads import BENCHMARKS, get_workload

    model = ResourceModel(units={"alu": 2, "mul": 1})
    rows = []
    for name in BENCHMARKS:
        g = get_workload(name)
        rot = rotation_schedule(g, model)
        ms = modulo_schedule(g, model)
        rows.append([name, rot.initial_length, rot.length, ms.ii,
                     rot.retiming.max_value, ms.num_stages - 1])
        # Modulo scheduling pipelines across the whole kernel, so its II is
        # never worse than rotation's achieved length.
        assert ms.ii <= rot.length
    with capsys.disabled():
        print("\n=== Software pipelining: rotation vs modulo scheduling ===")
        print(format_table(
            ["bench", "list", "rotation", "modulo II", "M_r(rot)", "M_r(mod)"],
            rows,
        ))
