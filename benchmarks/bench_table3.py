"""Experiment E3 — Table 3: order comparison on the Figure-8 DFG.

For unfolding factors 2/3/4 (non-unit-time nodes), compares code size of
unfold-then-retime vs. retime-then-unfold at the optimal matched iteration
period per factor, plus the conditional-register size of the retime-unfold
program.  Both orders reach the same period (Chao–Sha); retime-first is
never larger (Theorems 4.4/4.5); CSR is strictly smallest.

Our Figure-8 substitute reproduces the paper's size rows exactly
(20/30/40 and 20/30/30); its CR row needs 3-4 registers where the paper
reports 2 (the figure itself is not recoverable from the paper).
"""

from __future__ import annotations

import pytest

from repro.analysis import PAPER_TABLE3, format_order_comparison, table3_comparison
from repro.unfolding import retime_unfold, unfold_retime
from repro.workloads import get_workload

FACTORS = (2, 3, 4)


def test_table3_report(capsys, engine):
    cols = table3_comparison(FACTORS, engine=engine)
    with capsys.disabled():
        print("\n=== Table 3: order comparison on the Figure-8 DFG ===")
        print(format_order_comparison(cols, PAPER_TABLE3))
    # Size rows match the paper exactly.
    assert [c.unfold_retime_size for c in cols] == list(PAPER_TABLE3["unfold-retime"])
    assert [c.retime_unfold_size for c in cols] == list(PAPER_TABLE3["retime-unfold"])
    for c in cols:
        assert c.csr_size < c.retime_unfold_size <= c.unfold_retime_size
    # Rate-optimality is reached exactly at f = 4 (bound 27/4).
    assert cols[-1].iteration_period == cols[-1].bound


@pytest.mark.parametrize("f", FACTORS)
def test_table3_retime_unfold_benchmark(benchmark, f):
    """Time the exact retime-then-unfold optimizer on the Figure-8 DFG."""
    g = get_workload("figure8")
    result = benchmark(retime_unfold, g, f)
    assert result.period == unfold_retime(g, f).period


@pytest.mark.parametrize("f", FACTORS)
def test_table3_unfold_retime_benchmark(benchmark, f):
    """Time the unfold-then-retime pipeline on the Figure-8 DFG."""
    g = get_workload("figure8")
    result = benchmark(unfold_retime, g, f)
    assert result.graph.num_nodes == 5 * f
