"""Experiment E6 — the report pipeline: scan, aggregate, render.

Times the three phases a ``python -m repro report`` invocation spends
its wall clock in: the read-only multi-run scan over a wide tree of
journals, full report assembly from scanned inputs, and the renderers.
The fixture tree is synthesized once per session (many small journals),
so the numbers track scanner/aggregation throughput, not fixture cost.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import (
    build_report,
    diff_reports,
    load_report_doc,
    render_latex,
    render_markdown,
    report_json,
)
from repro.runner.journal import RunJournal, scan_run_dirs

N_RUNS = 24
JOBS_PER_RUN = 40


@pytest.fixture(scope="session")
def runs_tree(tmp_path_factory):
    """A wide synthetic runs tree: N_RUNS journals of JOBS_PER_RUN units."""
    root = tmp_path_factory.mktemp("report-runs")
    for r in range(N_RUNS):
        journal = RunJournal(root / f"run{r:02d}", fsync=False)
        journal.run_start("sweep", {"run": r})
        for i in range(JOBS_PER_RUN):
            seed = r * JOBS_PER_RUN + i
            for transform, size in (("pipelined", 10 + i % 7), ("csr-pipelined", 6 + i % 5)):
                label = f"rand{seed}/{transform}/f=1/n=3"
                journal.job_submitted(f"k:{label}", label)
                journal.job_done(
                    f"k:{label}",
                    label,
                    {"ok": True, "code_size": size, "compute_time": 0.0},
                    outcome={"status": "ok"},
                )
        journal.run_end("ok")
        journal.close()
    return root


def test_scan_run_dirs_benchmark(benchmark, runs_tree):
    """Raw scan throughput: checksum-verify every record in the tree."""
    scan = benchmark(scan_run_dirs, [runs_tree])
    assert len(scan.journals) == N_RUNS
    assert not scan.skipped


def test_build_report_benchmark(benchmark, runs_tree):
    """Scan + frames + every section builder (the full aggregation)."""
    report = benchmark(build_report, [runs_tree])
    section = report.section("code-size")
    assert section.status == "ok"
    assert section.data["stats"]["pipelined"]["graphs"] == N_RUNS * JOBS_PER_RUN


def test_render_benchmark(benchmark, runs_tree):
    """All three renderers over a built report (no re-aggregation)."""
    report = build_report([runs_tree])

    def render():
        return (
            render_markdown(report),
            render_latex(report),
            report_json(report),
        )

    md, tex, js = benchmark(render)
    assert md and tex and js


def test_diff_benchmark(benchmark, runs_tree):
    """The CI regression gate: compare a report document against itself."""
    doc = load_report_doc(runs_tree)

    def diff():
        return diff_reports(doc, doc)

    result = benchmark(diff)
    assert result.clean
