"""Experiment E4 — Table 4: order comparison for the 4-stage lattice filter
at a fixed iteration period of 8.

The paper fixes cycle period 8 (per original iteration) and sweeps
unfolding factors 2/3/4.  Our reconstruction reproduces the
retime-unfold-CR row exactly (61 / 90 / 119) and the same who-wins
ordering: retime-unfold <= unfold-retime, CSR strictly smallest; the plain
rows run one pipeline level shallower than the paper's lattice
(M_r = 2 vs. 3), shifting them by exactly one L per column.
"""

from __future__ import annotations

import pytest

from repro.analysis import PAPER_TABLE4, format_order_comparison, table4_comparison
from repro.core import csr_retimed_unfolded_loop
from repro.unfolding import retime_unfold
from repro.workloads import get_workload

FACTORS = (2, 3, 4)
ITERATION_PERIOD = 8


def test_table4_report(capsys, engine):
    cols = table4_comparison(FACTORS, ITERATION_PERIOD, engine=engine)
    with capsys.disabled():
        print("\n=== Table 4: 4-stage lattice at iteration period 8 ===")
        print(format_order_comparison(cols, PAPER_TABLE4))
    # The CR row reproduces the paper exactly.
    assert [c.csr_size for c in cols] == list(PAPER_TABLE4["retime-unfold-CR"])
    for c in cols:
        assert c.retime_unfold_size <= c.unfold_retime_size
        assert c.csr_size < c.retime_unfold_size
        assert c.iteration_period == ITERATION_PERIOD


@pytest.mark.parametrize("f", FACTORS)
def test_table4_pipeline_benchmark(benchmark, f):
    """Time retiming-for-period + CSR codegen on the lattice filter."""
    g = get_workload("lattice")

    def pipeline():
        res = retime_unfold(g, f, period=ITERATION_PERIOD * f)
        return csr_retimed_unfolded_loop(g, res.retiming, f).code_size

    size = benchmark(pipeline)
    assert size == PAPER_TABLE4["retime-unfold-CR"][FACTORS.index(f)]
