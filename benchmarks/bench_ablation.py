"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Decrement placement** (per-copy vs. per-iteration): static overhead
   ``|N_r|*(f+1)`` vs. ``2*|N_r|``, and the *dynamic* instruction-count
   cost of each on the VM — quantifying the paper's "code size reduction
   does not hurt the performance" claim.
2. **CSR vs. plain pipelined execution**: the predicated loop runs
   ``n + M_r`` iterations with guard checks; this measures the dynamic
   overhead ratio against the explicit prologue/epilogue program.
3. **Exact vs. heuristic register minimization** on the small Figure-8
   graph (exhaustive partition search vs. quantile grouping).
"""

from __future__ import annotations

import pytest

from repro.core import (
    PER_COPY,
    PER_ITERATION,
    csr_pipelined_loop,
    csr_retimed_unfolded_loop,
)
from repro.core.partial import minimize_registers_for_unfold
from repro.codegen import pipelined_loop
from repro.machine import run_program
from repro.retiming import minimize_cycle_period
from repro.unfolding import retime_unfold
from repro.workloads import get_workload

N = 101


def _dynamic_cost(program, n=N):
    """Total dynamic instructions: computes (incl. disabled guard checks)
    plus register setups/decrements."""
    res = run_program(program, n)
    overhead_per_iter = sum(
        1 for i in program.loop.body if not hasattr(i, "dest")
    )
    return (
        res.executed
        + res.disabled
        + len(program.pre)
        + overhead_per_iter * program.loop.trip_count(n)
    )


class TestDecrementPlacement:
    @pytest.mark.parametrize("name", ["diffeq", "lattice"])
    def test_static_sizes(self, name, capsys):
        g = get_workload(name)
        res = retime_unfold(g, 3)
        pc = csr_retimed_unfolded_loop(g, res.retiming, 3, PER_COPY)
        pi = csr_retimed_unfolded_loop(g, res.retiming, 3, PER_ITERATION)
        regs = res.retiming.registers_needed()
        assert pc.code_size - pi.code_size == regs * (3 + 1) - 2 * regs
        with capsys.disabled():
            print(
                f"\n{name}: per-copy {pc.code_size} vs per-iteration "
                f"{pi.code_size} static instrs "
                f"(dynamic {_dynamic_cost(pc)} vs {_dynamic_cost(pi)})"
            )

    @pytest.mark.parametrize("mode", [PER_COPY, PER_ITERATION])
    def test_bench_execution(self, benchmark, mode):
        g = get_workload("diffeq")
        res = retime_unfold(g, 3)
        p = csr_retimed_unfolded_loop(g, res.retiming, 3, mode)
        out = benchmark(run_program, p, N)
        assert out.executed == N * g.num_nodes


class TestCsrDynamicOverhead:
    @pytest.mark.parametrize("name", ["iir", "allpole"])
    def test_overhead_ratio(self, name, capsys):
        """Dynamic cost of CSR vs. explicit prologue/epilogue: the ratio
        stays close to 1 — the paper's performance-preservation claim."""
        g = get_workload(name)
        _, r = minimize_cycle_period(g)
        plain = pipelined_loop(g, r)
        csr = csr_pipelined_loop(g, r)
        cost_plain = _dynamic_cost(plain)
        cost_csr = _dynamic_cost(csr)
        ratio = cost_csr / cost_plain
        with capsys.disabled():
            print(f"\n{name}: dynamic CSR/plain ratio {ratio:.3f} "
                  f"({cost_csr} vs {cost_plain} instructions at n={N})")
        # Guard checks + decrements must stay a small constant factor.
        assert ratio < 1.6

    def test_bench_plain(self, benchmark):
        g = get_workload("allpole")
        _, r = minimize_cycle_period(g)
        benchmark(run_program, pipelined_loop(g, r), N)

    def test_bench_csr(self, benchmark):
        g = get_workload("allpole")
        _, r = minimize_cycle_period(g)
        benchmark(run_program, csr_pipelined_loop(g, r), N)


class TestRegisterMinimization:
    def test_bench_exhaustive(self, benchmark):
        g = get_workload("figure8")
        r = benchmark(minimize_registers_for_unfold, g, 2, 15)
        assert r.registers_needed() == 2

    def test_bench_heuristic(self, benchmark):
        g = get_workload("figure8")
        r = benchmark(
            minimize_registers_for_unfold, g, 2, 15, 0  # exhaustive_limit=0
        )
        assert r is not None


class TestVliwCycleEstimate:
    def test_cycle_overhead_report(self, capsys):
        """The paper's performance claim, quantified: estimated VLIW cycles
        of the plain pipelined program vs. its CSR form at n = 101, on a
        narrow (2 ALU + 1 MUL, 2 ctrl slots) and a wide (4 ALU + 2 MUL,
        4 ctrl slots) machine."""
        from repro.analysis import format_table
        from repro.codegen import pipelined_loop
        from repro.schedule import ResourceModel
        from repro.schedule.vliw import estimate_cycles
        from repro.workloads import BENCHMARKS, get_workload

        narrow = ResourceModel(units={"alu": 2, "mul": 1})
        wide = ResourceModel(units={"alu": 4, "mul": 2})
        rows = []
        for name in BENCHMARKS:
            g = get_workload(name)
            _, r = minimize_cycle_period(g)
            plain_p, csr_p = pipelined_loop(g, r), csr_pipelined_loop(g, r)
            pn = estimate_cycles(plain_p, narrow, N, control_slots=2)
            cn = estimate_cycles(csr_p, narrow, N, control_slots=2)
            pw = estimate_cycles(plain_p, wide, N, control_slots=4)
            cw = estimate_cycles(csr_p, wide, N, control_slots=4)
            rows.append([name, pn, cn, f"{cn / pn:.2f}", pw, cw, f"{cw / pw:.2f}"])
            assert cn / pn < 1.35
            assert cw / pw < 1.5
        with capsys.disabled():
            print("\n=== VLIW cycle estimate: plain pipelined vs CSR (n=101) ===")
            print(format_table(
                ["bench", "narrow plain", "narrow CSR", "ratio",
                 "wide plain", "wide CSR", "ratio"],
                rows,
            ))

    def test_bench_estimate(self, benchmark):
        from repro.schedule import ResourceModel
        from repro.schedule.vliw import estimate_cycles

        g = get_workload("lattice")
        _, r = minimize_cycle_period(g)
        p = csr_pipelined_loop(g, r)
        cycles = benchmark(estimate_cycles, p, ResourceModel(units={"alu": 2, "mul": 1}), N)
        assert cycles > 0
