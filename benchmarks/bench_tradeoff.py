"""Experiment E6 — Section 4's code-size/performance trade-off exploration.

Sweeps unfolding factors per benchmark with the exact per-factor optimal
iteration period, prints the design space (factor, period, plain size, CSR
size, registers), and exercises the budgeted-selection and
register-constrained APIs the paper's conclusion motivates.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import best_under_budget, design_space, limit_registers
from repro.workloads import BENCHMARKS, get_workload

MAX_FACTOR = 4


def test_design_space_report(capsys):
    rows = []
    for name in BENCHMARKS:
        g = get_workload(name)
        for p in design_space(g, max_factor=MAX_FACTOR):
            rows.append(
                [
                    name,
                    p.factor,
                    str(p.iteration_period),
                    p.size_plain,
                    p.size_csr,
                    p.registers,
                ]
            )
    with capsys.disabled():
        print("\n=== Design space: factor vs. period vs. code size ===")
        print(
            format_table(
                ["bench", "f", "iter.period", "plain", "CSR", "regs"], rows
            )
        )
    assert len(rows) == len(BENCHMARKS) * MAX_FACTOR


@pytest.mark.parametrize("name", ["iir", "diffeq", "lattice"])
def test_bench_design_space(benchmark, name):
    """Time the full design-space sweep for one benchmark.

    Note: the optimal iteration period is NOT monotone in f in general
    (f=2 can beat f=3 when the bound's denominator is 2), so only the
    bound inequality is asserted here.
    """
    from repro.graph import iteration_bound

    g = get_workload(name)
    points = benchmark(design_space, g, MAX_FACTOR)
    bound = iteration_bound(g)
    for p in points:
        assert p.iteration_period >= bound


def test_budgeted_selection(capsys):
    """Pick the fastest configuration under a 64-instruction budget."""
    g = get_workload("diffeq")
    points = design_space(g, max_factor=MAX_FACTOR)
    choice = best_under_budget(points, l_req=64)
    assert choice is not None
    assert choice.size_csr <= 64
    with capsys.disabled():
        print(
            f"\ndiffeq under 64 instrs: f={choice.factor}, "
            f"IP={choice.iteration_period}, size={choice.size_csr}"
        )


@pytest.mark.parametrize("budget", [1, 2, 3])
def test_bench_register_constrained(benchmark, budget):
    """Time register-constrained retiming on the Figure-2 example."""
    from repro.workloads import figure2_example

    g = figure2_example()
    res = benchmark(limit_registers, g, budget)
    assert res.registers <= budget
