"""Experiment E2 — Table 2: code size after retiming and unfolding (f = 3,
loop counter 101) and registers needed.

The paper unfolds each Table-1 retimed benchmark by 3 with trip count 101
(so 2 remainder iterations).  Measured columns: the retime-unfold size with
remainder (Theorem 4.5 + Q_f), the conditional-register size (per-copy
decrement convention, as in Figure 7(a)), and the register count — which by
Theorem 4.7 equals Table 1's.
"""

from __future__ import annotations

import pytest

from repro.analysis import PAPER_TABLE2, format_table2, table2_rows
from repro.core import csr_retimed_unfolded_loop
from repro.retiming import minimize_cycle_period
from repro.workloads import BENCHMARKS, get_workload

FACTOR = 3
TRIP_COUNT = 101


@pytest.mark.parametrize("f", [2, 3, 4])
def test_table2_other_factors(f):
    """Theorem 4.7 across factors: register column never moves."""
    rows = table2_rows(f=f, n=TRIP_COUNT)
    base = {r.name: r.registers for r in table2_rows(f=FACTOR, n=TRIP_COUNT)}
    for row in rows:
        assert row.registers == base[row.name]
        assert row.csr < row.expanded


def test_table2_report(capsys, engine):
    rows = table2_rows(f=FACTOR, n=TRIP_COUNT, engine=engine)
    with capsys.disabled():
        print("\n=== Table 2: retiming + unfolding (f=3, LC=101) ===")
        print(format_table2(rows))
    for row in rows:
        paper = PAPER_TABLE2[row.name]
        assert row.csr < row.expanded
        # Exact CR reproduction wherever the register count matches.
        if row.registers == paper[2]:
            assert row.csr == paper[1]
    exact = [r for r in rows if r.expanded == PAPER_TABLE2[r.name][0]]
    assert len(exact) >= 4  # iir, diffeq, allpole, lattice match exactly


@pytest.mark.parametrize("name", BENCHMARKS)
def test_table2_pipeline_benchmark(benchmark, name):
    """Time retiming + unfolded CSR codegen for one benchmark."""
    g = get_workload(name)

    def pipeline():
        _, r = minimize_cycle_period(g)
        return csr_retimed_unfolded_loop(g, r, FACTOR).code_size

    size = benchmark(pipeline)
    assert size == table2_rows(f=FACTOR, n=TRIP_COUNT)[BENCHMARKS.index(name)].csr
