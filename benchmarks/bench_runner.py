"""Experiment E5 — the engine itself: cache hit path vs. recompute.

Times one representative job (lattice retime-unfold CSR, the heaviest
Table-4 cell) cold (straight ``execute_job``) and warm (served from the
content-addressed cache), and runs a small differential sweep through the
engine to keep the randomized harness honest inside the benchmark suite.
"""

from __future__ import annotations

from repro.runner import (
    ExperimentEngine,
    Job,
    ResultCache,
    differential_sweep,
    execute_job,
)

JOB = Job(transform="csr-retime-unfold", workload="lattice", factor=3, trip_count=101)


def test_cold_job_benchmark(benchmark):
    """Baseline: one uncached job execution (transform + VM + verify)."""
    payload = benchmark(execute_job, JOB.to_params())
    assert payload["ok"] and payload["equivalent"]


def test_cache_hit_benchmark(benchmark, tmp_path):
    """The hot path every re-run takes: content hash + one disk read."""
    engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
    engine.run_jobs([JOB])  # prime

    def warm():
        return engine.run_jobs([JOB])[0]

    result = benchmark(warm)
    assert result.cached and result.ok


def test_sweep_report(capsys, engine):
    """A small randomized differential sweep through the shared engine."""
    report = differential_sweep(num_graphs=10, engine=engine, factors=(2, 3))
    with capsys.disabled():
        print("\n=== Differential sweep (10 graphs) ===")
        print(report.summary())
    assert report.ok
    assert report.inequality_checks >= 20
