"""Experiment E5 — the paper's worked codegen examples (Figures 3, 5, 7)
plus VM throughput.

Times code generation of each program form on the paper's Figure-2 example
and the execution of the generated programs on the virtual machine, and
asserts the figures' structural facts (sizes, loop bounds, register
counts) along the way.
"""

from __future__ import annotations

import pytest

from repro.codegen import pipelined_loop, unfolded_loop
from repro.core import (
    csr_pipelined_loop,
    csr_retimed_unfolded_loop,
    csr_unfolded_loop,
)
from repro.machine import run_program
from repro.retiming import minimize_cycle_period
from repro.workloads import figure2_example, figure4_loop

N = 101


@pytest.fixture(scope="module")
def fig2_retiming():
    g = figure2_example()
    _, r = minimize_cycle_period(g)
    return g, r


def test_figure3_sizes(fig2_retiming, capsys):
    g, r = fig2_retiming
    plain = pipelined_loop(g, r)
    csr = csr_pipelined_loop(g, r)
    with capsys.disabled():
        print(
            f"\nFigure 3: pipelined size {plain.code_size} -> CSR {csr.code_size} "
            f"({len(csr.registers())} registers, loop {csr.loop.start}..{csr.loop.end})"
        )
    assert plain.code_size == 20
    assert csr.code_size == 13
    assert str(csr.loop.start) == "-2"



def test_bench_codegen_pipelined(benchmark, fig2_retiming):
    g, r = fig2_retiming
    benchmark(pipelined_loop, g, r)


def test_bench_codegen_csr(benchmark, fig2_retiming):
    g, r = fig2_retiming
    benchmark(csr_pipelined_loop, g, r)


def test_bench_codegen_unfolded_csr(benchmark):
    g = figure4_loop()
    benchmark(csr_unfolded_loop, g, 3)


def test_bench_vm_original(benchmark, fig2_retiming):
    from repro.codegen import original_loop

    g, _ = fig2_retiming
    p = original_loop(g)
    res = benchmark(run_program, p, N)
    assert res.executed == N * g.num_nodes


def test_bench_vm_csr_pipelined(benchmark, fig2_retiming):
    """CSR execution: same work, n + M_r iterations, guard checks on top."""
    g, r = fig2_retiming
    p = csr_pipelined_loop(g, r)
    res = benchmark(run_program, p, N)
    assert res.executed == N * g.num_nodes
    assert res.disabled == r.max_value * g.num_nodes


def test_bench_vm_csr_retimed_unfolded(benchmark, fig2_retiming):
    g, r = fig2_retiming
    p = csr_retimed_unfolded_loop(g, r, 3)
    res = benchmark(run_program, p, N)
    assert res.executed == N * g.num_nodes


def test_bench_vm_unfolded_plain(benchmark):
    g = figure4_loop()
    p = unfolded_loop(g, 3, residue=N % 3)
    res = benchmark(run_program, p, N)
    assert res.executed == N * g.num_nodes
