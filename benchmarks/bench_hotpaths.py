#!/usr/bin/env python
"""Hot-path benchmark: old implementations vs the overhauled engines.

Measures the four hot paths end to end, old vs new, on random graphs of
20–500 nodes (``--quick`` stops at 120 for CI):

* ``minimize_cycle_period`` — per-probe W/D rebuild + fresh solve
  (``method="reference"``) vs shared W/D + warm-started incremental
  feasibility (``method="incremental"``, the default);
* ``iteration_bound`` — the Fraction-arithmetic relaxation
  (:func:`~repro.graph.iteration_bound.iteration_bound_fraction`) vs the
  exact integer parametric search over the shared edge kernel;
* ``vm`` — the dataclass-walking reference interpreter
  (``run_program(..., dispatch=False)``) vs threaded dispatch;
* ``vliw`` — the packed executor, reference vs pre-compiled word slots.

Besides wall times and speedup ratios, each measurement snapshots the
*deterministic operation counters* the new engines emit (relaxation edge
visits, feasibility probes, executed instructions).  Counters — unlike
wall time — are machine-independent, so CI gates on them: ``--check
BASELINE.json`` exits non-zero if any counter grew more than
``--check-factor`` (default 2x) over the committed baseline, catching
algorithmic regressions (a warm start that stopped warming, a search
doing extra probes) without flaky timing thresholds.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py [--quick] [--out F]
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick \
        --check BENCH_hotpaths.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.codegen import original_loop  # noqa: E402
from repro.core import csr_pipelined_loop  # noqa: E402
from repro.graph import iteration_bound, iteration_bound_fraction  # noqa: E402
from repro.graph.generators import random_dfg, random_unit_time_dfg  # noqa: E402
from repro.machine import run_program  # noqa: E402
from repro.machine.vliw_vm import run_packed  # noqa: E402
from repro.observability import OBS  # noqa: E402
from repro.retiming import minimize_cycle_period  # noqa: E402
from repro.schedule import ResourceModel  # noqa: E402
from repro.workloads import WORKLOADS  # noqa: E402

QUICK_SIZES = (20, 60, 120)
FULL_SIZES = (20, 60, 120, 250, 500)

#: Counters that must stay bounded relative to the committed baseline.
GATED_COUNTERS = (
    "retiming.incremental.probes",
    "retiming.incremental.relaxations",
    "retiming.incremental.constraints_added",
    "iteration_bound.probes",
    "kernel.relax_edges",
    "kernel.relax_sweeps",
    "vm.instructions.executed",
    "vm.trace.steps",
    "vliw.cycles",
)


def _timed(fn, *args, **kwargs):
    """``(result, seconds)`` for one call."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def _counted(fn, *args, **kwargs):
    """``(result, seconds, counters)`` with a clean metrics registry."""
    was_enabled = OBS.enabled
    OBS.reset()
    OBS.enable()
    try:
        result, secs = _timed(fn, *args, **kwargs)
        counters = dict(OBS.metrics.as_dict()["counters"])
    finally:
        OBS.reset()
        OBS.enabled = was_enabled
    return result, secs, counters


def bench_minimize(sizes) -> list[dict]:
    rows = []
    for size in sizes:
        g = random_unit_time_dfg(
            random.Random(size), num_nodes=size, extra_edges=size, max_delay=4
        )
        (ref_period, _), ref_s = _timed(
            minimize_cycle_period, g, method="reference"
        )
        (res, new_s, counters) = _counted(
            minimize_cycle_period, g, method="incremental"
        )
        assert res[0] == ref_period, f"period mismatch at size {size}"
        rows.append(
            {
                "size": size,
                "period": ref_period,
                "ref_s": round(ref_s, 4),
                "new_s": round(new_s, 4),
                "speedup": round(ref_s / new_s, 2) if new_s else None,
                "counters": {
                    k: v for k, v in counters.items()
                    if k.startswith(("retiming.", "kernel."))
                },
            }
        )
    return rows


def bench_iteration_bound(sizes) -> list[dict]:
    rows = []
    for size in sizes:
        g = random_dfg(
            random.Random(size),
            num_nodes=size,
            extra_edges=size,
            max_delay=4,
            max_time=5,
        )
        ref_bound, ref_s = _timed(iteration_bound_fraction, g)
        new_bound, new_s, counters = _counted(iteration_bound, g)
        assert new_bound == ref_bound, f"bound mismatch at size {size}"
        rows.append(
            {
                "size": size,
                "bound": str(ref_bound),
                "ref_s": round(ref_s, 4),
                "new_s": round(new_s, 4),
                "speedup": round(ref_s / new_s, 2) if new_s else None,
                "counters": {
                    k: v for k, v in counters.items()
                    if k.startswith(("iteration_bound.", "kernel."))
                },
            }
        )
    return rows


def bench_vm(trip_count: int) -> list[dict]:
    rows = []
    for wname in ("elliptic", "allpole"):
        g = WORKLOADS[wname]()
        _, r = minimize_cycle_period(g)
        p = csr_pipelined_loop(g, r)
        min_n = p.meta.get("min_n", 1) or 1
        n = trip_count + min_n
        ref, ref_s = _timed(run_program, p, n, dispatch=False)
        # Warm the compile cache so the measurement isolates dispatch.
        run_program(p, n)
        new, new_s, counters = _counted(run_program, p, n)
        assert new.arrays == ref.arrays, f"vm mismatch on {wname}"
        rows.append(
            {
                "workload": wname,
                "n": n,
                "ref_s": round(ref_s, 4),
                "new_s": round(new_s, 4),
                "speedup": round(ref_s / new_s, 2) if new_s else None,
                "counters": {
                    k: v for k, v in counters.items() if k.startswith("vm.")
                },
            }
        )
    return rows


def bench_vliw(trip_count: int) -> list[dict]:
    machine = ResourceModel(units={"alu": 2, "mul": 1})
    rows = []
    for wname in ("elliptic", "allpole"):
        g = WORKLOADS[wname]()
        _, r = minimize_cycle_period(g)
        p = csr_pipelined_loop(g, r)
        min_n = p.meta.get("min_n", 1) or 1
        n = trip_count + min_n
        ref, ref_s = _timed(
            run_packed, p, n, machine, control_slots=2, dispatch=False
        )
        new, new_s, counters = _counted(
            run_packed, p, n, machine, control_slots=2
        )
        assert new.arrays == ref.arrays and new.cycles == ref.cycles, (
            f"vliw mismatch on {wname}"
        )
        rows.append(
            {
                "workload": wname,
                "n": n,
                "cycles": ref.cycles,
                "ref_s": round(ref_s, 4),
                "new_s": round(new_s, 4),
                "speedup": round(ref_s / new_s, 2) if new_s else None,
                "counters": {
                    k: v for k, v in counters.items() if k.startswith("vliw.")
                },
            }
        )
    return rows


def run_benchmarks(quick: bool) -> dict:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    # The trip count is mode-independent so the VM/VLIW operation counters
    # of a quick CI run are directly comparable to a full-mode baseline.
    trip = 20000
    report = {
        "benchmark": "hotpaths",
        "mode": "quick" if quick else "full",
        "sizes": list(sizes),
        "trip_count": trip,
        "results": {},
    }
    print(f"== minimize_cycle_period (sizes {list(sizes)}) ==", flush=True)
    report["results"]["minimize_cycle_period"] = bench_minimize(sizes)
    for row in report["results"]["minimize_cycle_period"]:
        print(f"  n={row['size']:4d}  ref {row['ref_s']:8.3f}s  "
              f"new {row['new_s']:8.3f}s  {row['speedup']}x", flush=True)
    print("== iteration_bound ==", flush=True)
    report["results"]["iteration_bound"] = bench_iteration_bound(sizes)
    for row in report["results"]["iteration_bound"]:
        print(f"  n={row['size']:4d}  ref {row['ref_s']:8.3f}s  "
              f"new {row['new_s']:8.3f}s  {row['speedup']}x", flush=True)
    print(f"== vm (trip count ~{trip}) ==", flush=True)
    report["results"]["vm"] = bench_vm(trip)
    for row in report["results"]["vm"]:
        print(f"  {row['workload']:10s}  ref {row['ref_s']:8.3f}s  "
              f"new {row['new_s']:8.3f}s  {row['speedup']}x", flush=True)
    print(f"== vliw (trip count ~{trip}) ==", flush=True)
    report["results"]["vliw"] = bench_vliw(trip)
    for row in report["results"]["vliw"]:
        print(f"  {row['workload']:10s}  ref {row['ref_s']:8.3f}s  "
              f"new {row['new_s']:8.3f}s  {row['speedup']}x", flush=True)
    return report


def _counter_rows(report: dict):
    """Yield ``(path, label, counter_name, value)`` for every gated counter."""
    for path, rows in report.get("results", {}).items():
        for row in rows:
            if "size" in row:
                label = row["size"]
            else:
                label = f"{row.get('workload')}@{row.get('n')}"
            for name, value in row.get("counters", {}).items():
                if name in GATED_COUNTERS:
                    yield path, label, name, value


def check_against_baseline(report: dict, baseline: dict, factor: float) -> int:
    """Compare operation counters against a committed baseline.

    Only counters present in *both* reports are compared (labels are keyed
    by graph size / workload name, so quick-mode runs check the quick-mode
    subset of a full-mode baseline).  Returns the number of regressions.
    """
    base = {
        (path, label, name): value
        for path, label, name, value in _counter_rows(baseline)
    }
    regressions = 0
    compared = 0
    for path, label, name, value in _counter_rows(report):
        key = (path, label, name)
        if key not in base:
            continue
        compared += 1
        allowed = base[key] * factor
        if value > allowed:
            regressions += 1
            print(
                f"REGRESSION {path}[{label}] {name}: "
                f"{value} > {factor}x baseline {base[key]}"
            )
    print(f"checked {compared} counters against baseline: "
          f"{regressions} regression(s)")
    return regressions


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI mode: sizes up to 120, shorter trip counts")
    ap.add_argument("--out", default="BENCH_hotpaths.json",
                    help="output JSON path (default: %(default)s)")
    ap.add_argument("--check", metavar="BASELINE",
                    help="compare operation counters against a baseline "
                         "JSON; exit 1 on any regression")
    ap.add_argument("--check-factor", type=float, default=2.0,
                    help="allowed counter growth factor (default: 2.0)")
    args = ap.parse_args(argv)

    report = run_benchmarks(quick=args.quick)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        if check_against_baseline(report, baseline, args.check_factor):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
