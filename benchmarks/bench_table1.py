"""Experiment E1 — Table 1: code size after retiming and registers needed.

Regenerates the paper's Table 1: for each of the six DSP benchmarks, the
original code size, the size after rate-optimal retiming (prologue + body +
epilogue), the size after conditional-register code-size reduction, the
number of conditional registers, and the reduction percentage.

The benchmark times the full pipeline (optimal retiming + CSR codegen) per
workload; the table itself is printed once and its shape asserted.
"""

from __future__ import annotations

import pytest

from repro.analysis import PAPER_TABLE1, format_table1, table1_rows
from repro.core import csr_pipelined_loop
from repro.retiming import minimize_cycle_period
from repro.workloads import BENCHMARKS, get_workload


def test_table1_report(capsys, engine):
    """Print the full paper-vs-measured Table 1 and check its shape."""
    rows = table1_rows(engine=engine)
    with capsys.disabled():
        print("\n=== Table 1: code size after retiming and registers needed ===")
        print(format_table1(rows))
    for row in rows:
        paper = PAPER_TABLE1[row.name]
        assert row.original == paper[0]
        assert row.retimed == paper[1]
        assert row.csr < row.retimed
    assert max(r.reduction_pct for r in rows) > 60.0


@pytest.mark.parametrize("name", BENCHMARKS)
def test_table1_pipeline_benchmark(benchmark, name):
    """Time the retime-and-reduce pipeline for one benchmark graph."""
    g = get_workload(name)

    def pipeline():
        _, r = minimize_cycle_period(g)
        return csr_pipelined_loop(g, r).code_size

    size = benchmark(pipeline)
    paper = PAPER_TABLE1[name]
    if name != "elliptic":  # paper's elliptic row is internally inconsistent
        assert size == paper[2]
