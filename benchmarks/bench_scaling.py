"""Scaling study: code-size reduction as a function of problem size.

Sweeps the parameterized biquad cascade (8k nodes per k sections) and the
FIR tap count, reporting how the expanded size, CSR size and reduction
percentage scale — the 'figure' the paper's evaluation implies but never
plots.  Reduction grows with pipeline depth M_r and is independent of |V|
at fixed depth, exactly as the closed-form models predict.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import csr_pipelined_loop, size_csr_pipelined, size_pipelined
from repro.retiming import minimize_cycle_period
from repro.workloads import biquad_cascade, fir_filter


def test_cascade_scaling_report(capsys):
    rows = []
    for k in (1, 2, 3, 4, 6, 8):
        g = biquad_cascade(k)
        _, r = minimize_cycle_period(g)
        plain = size_pipelined(g, r)
        csr = size_csr_pipelined(g, r)
        rows.append(
            [k, g.num_nodes, r.max_value, r.registers_needed(), plain, csr,
             f"{100 * (plain - csr) / plain:.1f}"]
        )
        assert csr < plain
    with capsys.disabled():
        print("\n=== Scaling: biquad cascade (8k nodes) ===")
        print(format_table(
            ["sections", "|V|", "M_r", "regs", "pipelined", "CSR", "%red"], rows
        ))


def test_fir_scaling_report(capsys):
    """Acyclic loops pipeline arbitrarily deep: reduction approaches
    M_r/(M_r+1) of the expanded code."""
    rows = []
    for taps in (3, 5, 8, 12):
        g = fir_filter(taps)
        _, r = minimize_cycle_period(g)
        plain = size_pipelined(g, r)
        csr = size_csr_pipelined(g, r)
        rows.append([taps, g.num_nodes, r.max_value, plain, csr,
                     f"{100 * (plain - csr) / plain:.1f}"])
    with capsys.disabled():
        print("\n=== Scaling: FIR filter (acyclic, period 1) ===")
        print(format_table(["taps", "|V|", "M_r", "pipelined", "CSR", "%red"], rows))


@pytest.mark.parametrize("k", (2, 4, 8))
def test_bench_cascade_pipeline(benchmark, k):
    g = biquad_cascade(k)

    def pipeline():
        _, r = minimize_cycle_period(g)
        return csr_pipelined_loop(g, r).code_size

    assert benchmark(pipeline) > 0
