"""pytest-benchmark configuration for the experiment harness.

Run with ``pytest benchmarks/ --benchmark-only``.  Each ``bench_tableN``
module regenerates one table of the paper and prints the paper-vs-measured
comparison (use ``-s`` to see the tables; they are also asserted).

The table-report tests route through the :mod:`repro.runner` experiment
engine (fresh per-session temp cache, so repeated lookups within a session
are warm but sessions never see stale data); the ``benchmark``-timed
pipelines run the raw algorithms, uncached, so pytest-benchmark measures
real compute.
"""

from __future__ import annotations

import pytest

from repro.runner import ExperimentEngine, ResultCache


@pytest.fixture(scope="session")
def engine(tmp_path_factory) -> ExperimentEngine:
    """Serial engine over a session-scoped temporary cache directory."""
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    return ExperimentEngine(jobs=1, cache=ResultCache(cache_dir))
