"""pytest-benchmark configuration for the experiment harness.

Run with ``pytest benchmarks/ --benchmark-only``.  Each ``bench_tableN``
module regenerates one table of the paper and prints the paper-vs-measured
comparison (use ``-s`` to see the tables; they are also asserted).
"""
