#!/usr/bin/env python3
"""Retime-then-unfold vs. unfold-then-retime: why order matters for size.

The paper's Section 4 headline: both orders reach the same iteration
period (Chao & Sha), but retiming *first* yields code that is never larger
— and conditional registers then remove the remaining expansion with no
extra registers (Theorem 4.7), while the unfold-first order can need one
register per distinct *copy* value.

This example reproduces that comparison on the differential-equation
benchmark across unfolding factors, printing a Table-3/4-style summary,
and finishes by running every variant on the VM.

Run: ``python examples/unfolding_orders.py``
"""

from repro import (
    assert_equivalent,
    csr_retimed_unfolded_loop,
    csr_unfold_retimed_loop,
    retime_unfold,
    unfold_retime,
)
from repro.analysis import format_table
from repro.core import size_retime_unfold, size_unfold_retime
from repro.graph import iteration_bound
from repro.workloads import differential_equation


def main() -> None:
    g = differential_equation()
    print(f"differential-equation solver: {g.num_nodes} ops, "
          f"iteration bound {iteration_bound(g)}")

    rows = []
    programs = []
    for f in (1, 2, 3, 4):
        ru = retime_unfold(g, f)                      # retime first (exact)
        ur = unfold_retime(g, f, period=ru.period)    # unfold first, same period
        csr_ru = csr_retimed_unfolded_loop(g, ru.retiming, f)
        csr_ur = csr_unfold_retimed_loop(g, ur.retiming, f)
        programs += [(csr_ru, f), (csr_ur, f)]
        rows.append(
            [
                f,
                str(ru.iteration_period),
                size_unfold_retime(g, ur.retiming, f),
                size_retime_unfold(g, ru.retiming, f),
                csr_ru.code_size,
                len(csr_ru.registers()),
                len(csr_ur.registers()),
            ]
        )

    print()
    print(
        format_table(
            [
                "f",
                "iter.period",
                "unfold-retime",
                "retime-unfold",
                "retime-unfold-CR",
                "regs (r-u)",
                "regs (u-r)",
            ],
            rows,
        )
    )
    print("\nnote: retime-unfold <= unfold-retime in every row "
          "(Theorems 4.4/4.5); the CR column uses |N_r| registers at any f "
          "(Theorem 4.7), while unfold-first may need more.")

    for program, f in programs:
        assert_equivalent(g, program, 101)
    print("verified: every variant matches the original loop at n = 101")


if __name__ == "__main__":
    main()
