#!/usr/bin/env python3
"""Modulo scheduling + conditional registers = Rau's schema without the ramp.

Rau's classic modulo-scheduled code schema [paper ref. 8] materializes a
kernel plus explicit prologue and epilogue stages.  Because a modulo
schedule's stage indices are a legal retiming (``r(v) = max_stage -
stage(v)``), the paper's conditional-register framework replaces the ramp
code entirely: kernel + one register per pipeline stage level.

This example modulo-schedules the all-pole lattice filter on a 2-ALU +
1-multiplier machine, prints the kernel, derives the stage retiming, and
emits + verifies the register-guarded loop.

Run: ``python examples/modulo_pipeline.py``
"""

from repro import assert_equivalent, csr_pipelined_loop, format_program
from repro.core import size_csr_pipelined, size_pipelined
from repro.schedule import ResourceModel, minimum_initiation_interval, modulo_schedule
from repro.workloads import all_pole_filter


def main() -> None:
    g = all_pole_filter()
    machine = ResourceModel(units={"alu": 2, "mul": 1})

    mii = minimum_initiation_interval(g, machine)
    ms = modulo_schedule(g, machine)
    print(f"all-pole filter on 2 ALU + 1 MUL: MII = {mii}, achieved II = {ms.ii}, "
          f"{ms.num_stages} pipeline stages")

    print("\nkernel (slot: ops with their stage):")
    stages = ms.stages
    for slot, names in enumerate(ms.kernel()):
        ops = ", ".join(f"{n}@s{stages[n]}" for n in names)
        print(f"  slot {slot}: {ops}")

    r = ms.retiming
    print(f"\nstage retiming: {r.as_dict()}")
    print(f"code size: Rau schema {size_pipelined(g, r)} "
          f"(kernel + prologue + epilogue) -> CSR {size_csr_pipelined(g, r)} "
          f"({r.registers_needed()} registers)")

    program = csr_pipelined_loop(g, r)
    print()
    print(format_program(program))

    for n in (1, 2, 50):
        assert_equivalent(g, program, n)
    print("\nverified on the VM for n in {1, 2, 50}")


if __name__ == "__main__":
    main()
