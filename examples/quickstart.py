#!/usr/bin/env python3
"""Quickstart: software-pipeline a DSP loop and shrink its code to optimum.

Walks the paper's core story end to end on the five-statement loop of the
paper's Figure 2::

    for i = 1 to n:
        A[i] = E[i-4] + 9
        B[i] = A[i] * 5
        C[i] = A[i] + B[i-2]
        D[i] = A[i] * C[i]
        E[i] = D[i] + 30

1. model the loop as a data-flow graph;
2. software-pipeline it with an optimal retiming (minimum cycle period);
3. observe the code-size explosion of the plain pipelined form;
4. remove prologue and epilogue entirely with conditional registers;
5. *prove* the transformation on the bundled VM.

Run: ``python examples/quickstart.py``
"""

from repro import (
    DFG,
    OpKind,
    assert_equivalent,
    csr_pipelined_loop,
    cycle_period,
    format_program,
    minimize_cycle_period,
    original_loop,
    pipelined_loop,
)


def main() -> None:
    # 1. The loop as a DFG: one node per statement, one edge per dependency
    #    (E -> A carries 4 delays: A reads E from four iterations back).
    g = DFG("quickstart")
    g.add_node("A", op=OpKind.ADD, imm=9)
    g.add_node("B", op=OpKind.MUL, imm=5)
    g.add_node("C", op=OpKind.ADD)
    g.add_node("D", op=OpKind.MUL, imm=1)
    g.add_node("E", op=OpKind.ADD, imm=30)
    g.add_edge("E", "A", 4)
    g.add_edge("A", "B", 0)
    g.add_edge("A", "C", 0)
    g.add_edge("B", "C", 2)
    g.add_edge("A", "D", 0)
    g.add_edge("C", "D", 0)
    g.add_edge("D", "E", 0)

    print(f"original loop body: {g.num_nodes} instructions, "
          f"cycle period {cycle_period(g)}")
    print(format_program(original_loop(g)))

    # 2. Optimal retiming = software pipelining.
    period, r = minimize_cycle_period(g)
    print(f"\nafter retiming {r.as_dict()}: cycle period {period}")

    # 3. The plain pipelined program pays for the speed with code size.
    plain = pipelined_loop(g, r)
    print(f"\npipelined program ({plain.code_size} instructions — "
          f"prologue {len(plain.pre)}, body {len(plain.loop.body)}, "
          f"epilogue {len(plain.post)}):")
    print(format_program(plain))

    # 4. Conditional registers remove the expansion completely.
    csr = csr_pipelined_loop(g, r)
    print(f"\nconditional-register program ({csr.code_size} instructions, "
          f"{len(csr.registers())} register(s)):")
    print(format_program(csr))

    # 5. Same arrays, bit for bit, for any trip count.
    for n in (1, 2, 10, 100):
        assert_equivalent(g, csr, n)
    print("\nverified: CSR program == original loop for n in {1, 2, 10, 100}")
    saved = plain.code_size - csr.code_size
    print(f"code size: {plain.code_size} -> {csr.code_size} "
          f"({100 * saved / plain.code_size:.1f}% smaller)")


if __name__ == "__main__":
    main()
