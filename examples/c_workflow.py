#!/usr/bin/env python3
"""From DFG to native code: emit C, compile it, and cross-check the binary.

The last mile of adoption: the library emits a standalone C translation
unit for any generated program (same ring arithmetic, same initial-value
model, same predicate window), so the optimal-size loop can run on real
hardware.  This example emits C for the paper's Figure-2 loop in both the
plain pipelined and the conditional-register forms, compiles them with the
system compiler, runs both binaries, and verifies their output against the
Python VM instance by instance.

Run: ``python examples/c_workflow.py``   (needs a C compiler on PATH)
"""

import shutil
import subprocess
import tempfile
from pathlib import Path

from repro import minimize_cycle_period, pipelined_loop
from repro.codegen import emit_c
from repro.core import csr_pipelined_loop
from repro.machine import run_program
from repro.workloads import figure2_example

N = 50


def compile_and_run(cc: str, program, g, n: int) -> dict[str, dict[int, int]]:
    with tempfile.TemporaryDirectory() as td:
        src = Path(td, "loop.c")
        exe = Path(td, "loop")
        src.write_text(emit_c(program, g))
        subprocess.run([cc, "-O2", "-o", str(exe), str(src)], check=True)
        out = subprocess.run(
            [str(exe), str(n)], capture_output=True, text=True, check=True
        ).stdout
    arrays: dict[str, dict[int, int]] = {}
    for line in out.splitlines():
        name, idx, val = line.split()
        arrays.setdefault(name, {})[int(idx)] = int(val)
    return arrays


def main() -> int:
    cc = shutil.which("cc") or shutil.which("gcc")
    if cc is None:
        print("no C compiler on PATH — skipping")
        return 0

    g = figure2_example()
    _, r = minimize_cycle_period(g)
    plain = pipelined_loop(g, r)
    csr = csr_pipelined_loop(g, r)
    reference = run_program(csr, N).arrays

    for program in (plain, csr):
        native = compile_and_run(cc, program, g, N)
        assert native == reference, program.name
        print(f"{program.name}: {program.code_size} instructions -> "
              f"native binary matches the VM for n = {N}")

    print("\nemitted CSR C (first 25 lines):")
    for line in emit_c(csr, g).splitlines()[:25]:
        print(f"  {line}")
    return 0


if __name__ == "__main__":
    main()
