#!/usr/bin/env python3
"""Bring your own loop: front-end to VLIW in five steps.

Shows the full user path for code not bundled with the library:

1. write the loop in the paper's own notation and parse it;
2. retime it to the minimum cycle period;
3. generate the optimal-size conditional-register program;
4. pack the loop body into VLIW words on a 2-ALU + 1-multiplier machine —
   demonstrating that the register decrements ride in free issue slots
   (the paper's performance argument);
5. verify the program against the original loop on the VM.

Run: ``python examples/custom_loop.py``
"""

from repro import (
    assert_equivalent,
    csr_pipelined_loop,
    cycle_period,
    format_program,
    minimize_cycle_period,
    parse_loop,
    pipelined_loop,
)
from repro.schedule import ResourceModel, pack_body

SOURCE = """
# A complex-multiply update loop with a three-deep recurrence.
XR[i] = AR[i-3] * CR[i-1]
XI[i] = AR[i-3] * CI[i-1]
YR[i] = XR[i] - ZI[i-2]
YI[i] = XI[i] + ZR[i-2]
ZR[i] = YR[i] + 1
ZI[i] = YI[i] + 2
AR[i] = YR[i] * YI[i]
CR[i] = ZR[i-1] + 3
CI[i] = ZI[i-1] + 5
"""


def main() -> None:
    # 1. Parse.
    g = parse_loop(SOURCE, name="cmul")
    print(f"parsed {g.num_nodes} statements, {g.num_edges} dependencies, "
          f"cycle period {cycle_period(g)}")

    # 2. Retime.
    period, r = minimize_cycle_period(g)
    print(f"retimed to period {period}: r = {r.as_dict()}")

    # 3. CSR program.
    plain = pipelined_loop(g, r)
    csr = csr_pipelined_loop(g, r)
    print(f"\ncode size {plain.code_size} (pipelined) -> {csr.code_size} "
          f"(CSR, {len(csr.registers())} registers)")
    print(format_program(csr))

    # 4. VLIW packing: the decrement overhead hides in free slots.
    machine = ResourceModel(units={"alu": 2, "mul": 1})
    plain_ii = pack_body(plain, machine).initiation_interval
    csr_sched = pack_body(csr, machine, control_slots=2)
    print(f"\nVLIW on 2 ALU + 1 MUL: plain body II = {plain_ii} words, "
          f"CSR body II = {csr_sched.initiation_interval} words "
          f"(utilization {csr_sched.utilization():.0%})")

    # 5. Prove equivalence.
    for n in (1, 4, 33, 200):
        assert_equivalent(g, csr, n)
    print("verified on the VM for n in {1, 4, 33, 200}")


if __name__ == "__main__":
    main()
