#!/usr/bin/env python3
"""Design-space exploration: performance under a code-size budget.

The trade-off the paper closes with: every unit of unfolding buys rate but
costs ``L_orig`` instructions, every pipeline level costs another — so an
embedded target with ``L_req`` words of program memory induces a frontier
``M_f = floor(L_req / L_orig) - M_r``.  This example sweeps the frontier
for the Volterra filter (iteration bound 27/2, so unfolding by 2 genuinely
buys rate), picks the fastest configuration for a
series of memory budgets, and shows what a register-file limit does to the
choice.

Run: ``python examples/design_space.py``
"""

from repro import best_under_budget, design_space, limit_registers
from repro.analysis import format_table
from repro.core import max_retiming_depth, max_unfolding_factor
from repro.graph import iteration_bound
from repro.workloads import volterra_filter


def main() -> None:
    g = volterra_filter()
    print(f"Volterra filter: {g.num_nodes} ops, bound {iteration_bound(g)}")

    # The exact design space: per factor, best achievable iteration period.
    points = design_space(g, max_factor=5)
    print()
    print(
        format_table(
            ["f", "iter.period", "plain size", "CSR size", "registers"],
            [
                [p.factor, str(p.iteration_period), p.size_plain, p.size_csr, p.registers]
                for p in points
            ],
        )
    )

    # Closed-form frontier from the paper's formulas.
    l_orig = g.num_nodes
    m_r = points[0].retiming.max_value
    print(f"\npaper formulas with M_r = {m_r}:")
    for l_req in (60, 90, 120, 180):
        print(
            f"  L_req = {l_req:4d}: max unfolding factor "
            f"{max_unfolding_factor(l_req, l_orig, m_r)}, "
            f"max pipeline depth at f=2 {max_retiming_depth(l_req, l_orig, 2)}"
        )

    # Budgeted selection over the measured frontier.
    print("\nfastest configuration per memory budget (CSR code):")
    for l_req in (60, 90, 120, 180):
        choice = best_under_budget(points, l_req)
        if choice is None:
            print(f"  {l_req:4d} instrs: nothing fits")
        else:
            print(
                f"  {l_req:4d} instrs: f={choice.factor}, "
                f"IP={choice.iteration_period}, size={choice.size_csr}, "
                f"{choice.registers} registers"
            )

    # And when the predicate register file is the scarce resource:
    print("\nregister-constrained retiming (f = 1):")
    for budget in (3, 2, 1):
        res = limit_registers(g, budget)
        print(
            f"  {budget} register(s): period {res.period} "
            f"(unconstrained {res.unconstrained_period}), "
            f"uses {res.registers}"
        )


if __name__ == "__main__":
    main()
