#!/usr/bin/env python3
"""Case study: pipelining a second-order IIR biquad under real constraints.

The scenario the paper's introduction motivates: a DSP inner loop that must
run at the highest rate the recurrences allow, on a machine with a couple
of functional units and a small program memory.

This example uses the *resource-constrained* path of the library:

1. rotation scheduling (Chao–LaPaugh–Sha) pipelines the IIR filter on a
   machine with 1 multiplier + 2 ALUs — each rotation is a retiming step;
2. the accumulated retiming's prologue/epilogue is then removed with
   conditional registers;
3. the result is validated on the VM and sized against the paper's models.

Run: ``python examples/iir_pipeline.py``
"""

from repro import (
    ResourceModel,
    assert_equivalent,
    csr_pipelined_loop,
    format_program,
    pipelined_loop,
    rotation_schedule,
)
from repro.graph import iteration_bound
from repro.workloads import iir_filter


def main() -> None:
    g = iir_filter()
    machine = ResourceModel(units={"mul": 1, "alu": 2})

    print(f"IIR biquad: {g.num_nodes} ops "
          f"({machine.usage(g)}), iteration bound {iteration_bound(g)}")

    # 1. Software pipelining under resource constraints.
    rot = rotation_schedule(g, machine)
    print(f"\nrotation scheduling: {rot.initial_length} -> {rot.length} "
          f"control steps after {rot.rotations} rotation(s)")
    print(f"accumulated retiming: {rot.retiming.as_dict()}")
    for step, names in enumerate(rot.schedule.table()):
        print(f"  step {step}: {', '.join(names)}")

    # 2. What the pipelined loop costs, and what CSR recovers.
    plain = pipelined_loop(g, rot.retiming)
    csr = csr_pipelined_loop(g, rot.retiming)
    print(f"\ncode size: plain pipelined {plain.code_size}, "
          f"CSR {csr.code_size} with {len(csr.registers())} register(s)")
    print()
    print(format_program(csr))

    # 3. Prove it: identical filter state for a 1000-sample run.
    assert_equivalent(g, csr, 1000)
    print("\nverified on the VM: 1000 samples, identical output arrays")


if __name__ == "__main__":
    main()
