"""Tests for the one-call compilation driver."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.compiler import compile_loop
from repro.core import assert_equivalent
from repro.graph import DFGError, iteration_bound
from repro.schedule import ResourceModel
from repro.workloads import get_workload

from .conftest import dfgs

MACHINE = ResourceModel(units={"alu": 2, "mul": 1})


class TestUnconstrained:
    def test_reaches_rate_optimum_within_factors(self, fig4):
        """Figure 4's bound is 2/3; factor 3 makes it reachable."""
        res = compile_loop(fig4, max_unfold=3)
        assert res.iteration_period == Fraction(2, 3)
        assert res.factor == 3

    def test_result_is_verified(self, fig2):
        res = compile_loop(fig2)
        assert_equivalent(fig2, res.program, 23)

    def test_integral_bound_prefers_f1(self, fig1):
        res = compile_loop(fig1)
        assert res.factor == 1
        assert res.iteration_period == 1

    def test_never_below_bound(self, bench_graph):
        res = compile_loop(bench_graph, max_unfold=3)
        assert res.iteration_period >= iteration_bound(bench_graph)

    def test_code_budget_respected(self, fig2):
        res = compile_loop(fig2, code_budget=14)
        assert res.code_size <= 14

    def test_register_budget_respected(self, fig2):
        res = compile_loop(fig2, max_registers=4)
        assert res.registers <= 4

    def test_impossible_budget_raises(self, fig2):
        with pytest.raises(DFGError, match="no configuration"):
            compile_loop(fig2, code_budget=3)

    def test_bad_max_unfold(self, fig2):
        with pytest.raises(DFGError, match="max_unfold"):
            compile_loop(fig2, max_unfold=0)


class TestResourceConstrained:
    def test_benchmarks_compile_and_verify(self, bench_graph):
        res = compile_loop(bench_graph, resources=MACHINE, max_unfold=2)
        assert res.registers >= 1
        assert res.iteration_period >= iteration_bound(bench_graph)

    def test_unfolding_can_beat_f1_under_resources(self):
        """Volterra's bound has denominator 2: with resources wide enough,
        f=2 gives a better iteration period than f=1."""
        g = get_workload("volterra")
        wide = ResourceModel(units={"alu": 16, "mul": 16})
        res = compile_loop(g, resources=wide, max_unfold=2)
        assert res.factor == 2
        assert res.iteration_period == iteration_bound(g)

    def test_modulo_path_used(self, fig2):
        res = compile_loop(fig2, resources=MACHINE)
        # On 2 ALU + 1 MUL, figure-2's two multiplies force II >= 2.
        assert res.period >= 2

    @given(dfgs(max_nodes=5))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs_compile(self, g):
        res = compile_loop(g, resources=MACHINE, max_unfold=2, verify_n=5)
        assert res.code_size == res.program.code_size
