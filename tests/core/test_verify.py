"""Tests for the semantic verification utility itself."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.codegen import ComputeInstr, IndexExpr, Loop, LoopProgram, Operand, original_loop
from repro.core import EquivalenceError, assert_equivalent, equivalent, reference_result
from repro.graph import OpKind


class TestVerify:
    def test_original_is_equivalent_to_itself(self, fig4):
        assert_equivalent(fig4, original_loop(fig4), 10)

    def test_reference_result(self, fig4):
        res = reference_result(fig4, 4)
        assert sorted(res.arrays["C"]) == [1, 2, 3, 4]

    def test_missing_instance_diagnosed(self, fig4):
        p = original_loop(fig4)
        truncated = replace(
            p, loop=Loop(p.loop.start, IndexExpr.trip(-1), 1, p.loop.body)
        )
        with pytest.raises(EquivalenceError, match="never computed"):
            assert_equivalent(fig4, truncated, 5)

    def test_wrong_value_diagnosed(self, fig4):
        p = original_loop(fig4)
        body = list(p.loop.body)
        # Corrupt C's immediate: C[i] = B[i] * 99 instead of * 2.
        body[2] = replace(body[2], imm=99)
        bad = replace(p, loop=Loop(p.loop.start, p.loop.end, 1, tuple(body)))
        with pytest.raises(EquivalenceError, match=r"C\[1\]"):
            assert_equivalent(fig4, bad, 5)

    def test_wrong_operand_diagnosed(self, fig4):
        p = original_loop(fig4)
        body = list(p.loop.body)
        # A reads B[i-2] instead of B[i-3].
        body[0] = replace(
            body[0], srcs=(Operand("B", IndexExpr.loop(-2)),)
        )
        bad = replace(p, loop=Loop(p.loop.start, p.loop.end, 1, tuple(body)))
        assert not equivalent(fig4, bad, 6)

    def test_equivalent_boolean_true(self, fig4):
        assert equivalent(fig4, original_loop(fig4), 3)

    def test_vm_errors_count_as_nonequivalent(self, fig2):
        """A program whose min_n exceeds n fails `equivalent` gracefully."""
        from repro.codegen import pipelined_loop
        from repro.retiming import minimize_cycle_period

        _, r = minimize_cycle_period(fig2)
        assert not equivalent(fig2, pipelined_loop(fig2, r), 1)

    def test_custom_initial_state(self, fig4):
        assert_equivalent(fig4, original_loop(fig4), 5, initial=lambda a, i: 42)

    def test_malformed_graph_error_propagates(self, fig4):
        """A structural DFGError (zero-delay cycle -> no topological order)
        must propagate from `equivalent`, not masquerade as False."""
        from repro.graph import DFG, DFGError

        bad = DFG("malformed")
        bad.add_node("A", op=OpKind.ADD, imm=1)
        bad.add_node("B", op=OpKind.ADD, imm=1)
        bad.add_edge("A", "B", 0)
        bad.add_edge("B", "A", 0)  # zero-delay cycle: unschedulable
        with pytest.raises(DFGError) as excinfo:
            equivalent(bad, original_loop(fig4), 5)
        assert not isinstance(excinfo.value, EquivalenceError)

    def test_machine_error_still_counts_as_nonequivalent(self, fig4):
        """The VM's trip-count precondition is a MachineError: caught."""
        p = original_loop(fig4)
        bounded = replace(p, meta={**p.meta, "min_n": 100})
        assert not equivalent(fig4, bounded, 5)
