"""Tests for register-constrained retiming."""

from __future__ import annotations

import pytest

from repro.core import limit_registers
from repro.core.partial import minimize_registers_for_unfold
from repro.graph import DFGError, cycle_period
from repro.retiming import minimize_cycle_period
from repro.unfolding import unfold


class TestLimitRegisters:
    def test_no_op_when_budget_suffices(self, fig2):
        c, r = minimize_cycle_period(fig2)
        res = limit_registers(fig2, r.registers_needed())
        assert res.period == c
        assert res.registers <= r.registers_needed()

    def test_budget_respected(self, fig2):
        # The optimum needs 4 registers; force 2.
        res = limit_registers(fig2, 2)
        assert res.registers <= 2
        assert res.retiming.is_legal()
        assert cycle_period(res.retiming.apply()) == res.period

    def test_price_of_budget_reported(self, fig2):
        res = limit_registers(fig2, 2)
        assert res.unconstrained_period == 1
        assert res.period >= res.unconstrained_period

    def test_single_register_always_possible(self, bench_graph):
        res = limit_registers(bench_graph, 1)
        assert res.registers == 1
        # One distinct value means no prologue at all: identity-like.
        assert res.period <= cycle_period(bench_graph)

    def test_invalid_budget(self, fig2):
        with pytest.raises(DFGError, match="register"):
            limit_registers(fig2, 0)

    def test_benchmarks_with_tight_budget(self, bench_graph):
        _, r = minimize_cycle_period(bench_graph)
        want = max(1, r.registers_needed() - 1)
        res = limit_registers(bench_graph, want)
        assert res.registers <= want


class TestMinimizeRegistersForUnfold:
    def test_respects_period(self, fig8):
        r = minimize_registers_for_unfold(fig8, 4, 27)
        assert r is not None
        assert cycle_period(unfold(r.apply(), 4)) <= 27

    def test_infeasible_period(self, fig8):
        assert minimize_registers_for_unfold(fig8, 4, 9) is None

    def test_exhaustive_is_never_worse_than_baseline(self, fig8):
        from repro.unfolding import retime_unfold_for_period

        for f, c in ((2, 15), (3, 24), (4, 27)):
            base = retime_unfold_for_period(fig8, f, c)
            best = minimize_registers_for_unfold(fig8, f, c)
            assert best.registers_needed() <= base.registers_needed()

    def test_figure8_f2_needs_two(self, fig8):
        """Exhaustive search proves 2 registers is optimal at f=2, c=15."""
        r = minimize_registers_for_unfold(fig8, 2, 15)
        assert r.registers_needed() == 2

    def test_heuristic_path_for_large_graphs(self, bench_graph):
        from repro.unfolding import retime_unfold

        res = retime_unfold(bench_graph, 2)
        r = minimize_registers_for_unfold(
            bench_graph, 2, res.period, exhaustive_limit=0
        )
        assert r is not None
        assert cycle_period(unfold(r.apply(), 2)) <= res.period
