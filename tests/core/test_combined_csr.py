"""Tests for CSR of retimed-and-unfolded loops (Theorems 4.6/4.7)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PER_COPY,
    PER_ITERATION,
    assert_equivalent,
    csr_retimed_unfolded_loop,
    csr_unfold_retimed_loop,
    size_csr_retime_unfold,
    size_csr_unfold_retime,
)
from repro.graph import DFGError
from repro.retiming import Retiming, minimize_cycle_period
from repro.unfolding import retime_unfold, unfold_retime

from ..conftest import dfgs


class TestRetimedUnfolded:
    def test_register_count_invariant_in_f(self, fig2):
        """Theorem 4.7: P_{r,f} = P_r — unfolding costs no extra registers."""
        _, r = minimize_cycle_period(fig2)
        for f in (1, 2, 3, 5):
            p = csr_retimed_unfolded_loop(fig2, r, f)
            assert len(p.registers()) == r.registers_needed()

    def test_per_copy_size(self, fig4):
        _, r = minimize_cycle_period(fig4)
        for f in (2, 3, 4):
            p = csr_retimed_unfolded_loop(fig4, r, f, mode=PER_COPY)
            assert p.code_size == size_csr_retime_unfold(fig4, r, f, PER_COPY)
            assert p.code_size == f * 3 + r.registers_needed() * (f + 1)

    def test_per_iteration_size(self, fig4):
        _, r = minimize_cycle_period(fig4)
        for f in (2, 3, 4):
            p = csr_retimed_unfolded_loop(fig4, r, f, mode=PER_ITERATION)
            assert p.code_size == size_csr_retime_unfold(fig4, r, f, PER_ITERATION)
            assert p.code_size == f * 3 + 2 * r.registers_needed()

    @pytest.mark.parametrize("mode", [PER_COPY, PER_ITERATION])
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 5, 9, 14, 23])
    def test_figure7_semantics(self, fig4, mode, n):
        """Figure 7(b)'s scenario: retimed figure-4 loop unfolded by 3, one
        program for every trip count."""
        _, r = minimize_cycle_period(fig4)
        p = csr_retimed_unfolded_loop(fig4, r, 3, mode=mode)
        assert_equivalent(fig4, p, n)

    def test_benchmark_semantics(self, bench_graph):
        _, r = minimize_cycle_period(bench_graph)
        p = csr_retimed_unfolded_loop(bench_graph, r, 3)
        for n in (2, 10, 101):
            assert_equivalent(bench_graph, p, n)

    def test_paper_figure7a_loop_start(self, fig4):
        """Figure 7(a): with M_r = 1 the paper's loop covers one extra
        pipelined iteration; our uniform base is 1 - M_r = 0 there.  (The
        figure's literal r(B)=1 alone is illegal under the paper's own
        delay formula; the legal depth-1 retiming shifts A with B.)"""
        r = Retiming(fig4, {"A": 1, "B": 1})
        p = csr_retimed_unfolded_loop(fig4, r, 3)
        assert str(p.loop.start) == "0"
        assert p.loop.step == 3

    def test_modes_agree_on_results(self, fig2):
        _, r = minimize_cycle_period(fig2)
        from repro.machine import run_program

        a = run_program(csr_retimed_unfolded_loop(fig2, r, 3, PER_COPY), 11)
        b = run_program(csr_retimed_unfolded_loop(fig2, r, 3, PER_ITERATION), 11)
        assert a.arrays == b.arrays

    def test_invalid_factor(self, fig4):
        _, r = minimize_cycle_period(fig4)
        with pytest.raises(DFGError, match="factor"):
            csr_retimed_unfolded_loop(fig4, r, 0)


class TestUnfoldRetimed:
    def test_semantics(self, fig4):
        res = unfold_retime(fig4, 3)
        p = csr_unfold_retimed_loop(fig4, res.retiming, 3)
        for n in (0, 1, 2, 3, 7, 12, 20):
            assert_equivalent(fig4, p, n)

    def test_size_model(self, fig4):
        res = unfold_retime(fig4, 3)
        p = csr_unfold_retimed_loop(fig4, res.retiming, 3)
        assert p.code_size == size_csr_unfold_retime(fig4, res.retiming, 3)

    def test_may_need_more_registers(self, fig2):
        """The paper's Section 3.4 point: distinct per-copy retiming values
        can exceed |N_r| — and never go below it for matched periods."""
        ru = retime_unfold(fig2, 3)
        ur = unfold_retime(fig2, 3, period=ru.period)
        p_ru = csr_retimed_unfolded_loop(fig2, ru.retiming, 3)
        p_ur = csr_unfold_retimed_loop(fig2, ur.retiming, 3)
        assert len(p_ur.registers()) >= 1
        assert len(p_ru.registers()) == ru.retiming.registers_needed()

    def test_wrong_retiming_domain_rejected(self, fig4):
        with pytest.raises(DFGError, match="copies"):
            csr_unfold_retimed_loop(fig4, Retiming.zero(fig4), 3)

    def test_benchmark_semantics(self, bench_graph):
        res = unfold_retime(bench_graph, 2)
        p = csr_unfold_retimed_loop(bench_graph, res.retiming, 2)
        for n in (3, 8, 21):
            assert_equivalent(bench_graph, p, n)


class TestPropertyEquivalence:
    @given(dfgs(max_nodes=5, max_extra_edges=4), st.integers(1, 3), st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_retime_unfold_csr_random(self, g, f, n):
        res = retime_unfold(g, f)
        p = csr_retimed_unfolded_loop(g, res.retiming, f)
        assert_equivalent(g, p, n)

    @given(dfgs(max_nodes=4, max_extra_edges=3), st.integers(1, 3), st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_unfold_retime_csr_random(self, g, f, n):
        res = unfold_retime(g, f)
        p = csr_unfold_retimed_loop(g, res.retiming, f)
        assert_equivalent(g, p, n)
