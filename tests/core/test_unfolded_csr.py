"""Tests for CSR of unfolded loops (Section 3.3)."""

from __future__ import annotations

import pytest

from repro.codegen import DecInstr, SetupInstr
from repro.core import assert_equivalent, csr_unfolded_loop, size_csr_unfolded
from repro.graph import DFGError
from repro.machine import run_program


class TestStructure:
    def test_single_register(self, fig4):
        p = csr_unfolded_loop(fig4, 3)
        assert p.registers() == ["p1"]

    def test_overhead_is_two(self, fig4):
        """The paper: reduction saves (n mod f) * L_orig - 2 instructions —
        the overhead is exactly one setup and one decrement."""
        p = csr_unfolded_loop(fig4, 3)
        assert p.overhead_size == 2
        assert p.code_size == size_csr_unfolded(fig4, 3)

    def test_decrement_by_f(self, fig4):
        p = csr_unfolded_loop(fig4, 3)
        decs = [i for i in p.loop.body if isinstance(i, DecInstr)]
        assert len(decs) == 1
        assert decs[0].amount == 3

    def test_setup_zero(self, fig4):
        setup = p = csr_unfolded_loop(fig4, 3).pre[0]
        assert isinstance(setup, SetupInstr)
        assert setup.init == 0

    def test_guard_offsets_per_slot(self, fig4):
        p = csr_unfolded_loop(fig4, 3)
        offsets = [i.guard.offset for i in p.loop.body if hasattr(i, "guard") and i.guard]
        assert offsets == [0, 0, 0, -1, -1, -1, -2, -2, -2]

    def test_loop_covers_ceil_n_over_f(self, fig4):
        p = csr_unfolded_loop(fig4, 3)
        assert p.loop.trip_count(7) == 3
        assert p.loop.trip_count(9) == 3
        assert p.loop.trip_count(10) == 4

    def test_no_residue_specialization(self, fig4):
        p = csr_unfolded_loop(fig4, 3)
        assert "residue" not in p.meta or p.meta.get("residue") is None
        assert p.post == ()

    def test_invalid_factor(self, fig4):
        with pytest.raises(DFGError, match="factor"):
            csr_unfolded_loop(fig4, 0)


class TestSemantics:
    @pytest.mark.parametrize("f", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 5, 7, 12])
    def test_every_factor_and_residue(self, fig4, f, n):
        """One single program per factor handles every trip count — the
        point of the single-register scheme."""
        assert_equivalent(fig4, csr_unfolded_loop(fig4, f), n)

    def test_benchmarks(self, bench_graph):
        p = csr_unfolded_loop(bench_graph, 3)
        for n in (4, 10, 11):
            assert_equivalent(bench_graph, p, n)

    def test_disabled_matches_padding(self, fig4):
        """With n = 7 and f = 3, the third outer iteration disables the two
        out-of-range copies: 2 * |V| disabled computes."""
        res = run_program(csr_unfolded_loop(fig4, 3), 7)
        assert res.disabled == 2 * 3
        assert res.executed == 7 * 3
