"""Tests for CSR of pipelined loops (Section 3.2 / Theorems 4.1-4.3)."""

from __future__ import annotations

import pytest

from repro.codegen import DecInstr, SetupInstr, format_program
from repro.core import assert_equivalent, csr_pipelined_loop, size_csr_pipelined
from repro.machine import run_program
from repro.retiming import Retiming, minimize_cycle_period


class TestPaperFigure3b:
    """The generated program must match the paper's Figure 3(b) exactly."""

    @pytest.fixture
    def program(self, fig2):
        _, r = minimize_cycle_period(fig2)
        return csr_pipelined_loop(fig2, r)

    def test_loop_bounds(self, program):
        # "for i = -2 to n do" — loop starts at 1 - M_r = -2.
        assert str(program.loop.start) == "-2"
        assert str(program.loop.end) == "n"

    def test_four_registers_with_paper_inits(self, program):
        setups = {s.register: s.init for s in program.pre}
        assert setups == {"p1": 0, "p2": 1, "p3": 2, "p4": 3}

    def test_guard_assignment(self, program):
        # A (r=3) guarded by p1, B/C (r=2) by p2, D by p3, E by p4.
        guards = {i.node: i.guard.register for i in program.loop.body if hasattr(i, "node")}
        assert guards == {"A": "p1", "B": "p2", "C": "p2", "D": "p3", "E": "p4"}

    def test_one_decrement_per_register(self, program):
        decs = [i for i in program.loop.body if isinstance(i, DecInstr)]
        assert sorted(d.register for d in decs) == ["p1", "p2", "p3", "p4"]
        assert all(d.amount == 1 for d in decs)

    def test_code_size_13(self, program, fig2):
        # 5 computes + 4 setups + 4 decrements; versus 20 for Figure 3(a).
        assert program.code_size == 13
        _, r = minimize_cycle_period(fig2)
        assert program.code_size == size_csr_pipelined(fig2, r)

    def test_loop_executes_n_plus_3_iterations(self, program):
        assert program.loop.trip_count(10) == 13  # n + M_r

    def test_printed_form(self, program):
        text = format_program(program)
        assert "setup p1 = 0 : -LC" in text
        assert "for i = -2 to n do" in text


class TestSemantics:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 8, 17, 50])
    def test_equivalent_for_all_trip_counts(self, fig2, n):
        """Unlike the plain pipelined program (which needs n >= M_r), the
        CSR form is correct for every n including n < M_r."""
        _, r = minimize_cycle_period(fig2)
        assert_equivalent(fig2, csr_pipelined_loop(fig2, r), n)

    def test_benchmarks_equivalent(self, bench_graph):
        _, r = minimize_cycle_period(bench_graph)
        p = csr_pipelined_loop(bench_graph, r)
        for n in (1, 7, 23):
            assert_equivalent(bench_graph, p, n)

    def test_zero_retiming_still_works(self, fig4):
        p = csr_pipelined_loop(fig4, Retiming.zero(fig4))
        assert_equivalent(fig4, p, 9)
        # One register (value class 0), overhead 2.
        assert p.code_size == fig4.num_nodes + 2

    def test_disabled_count(self, fig2):
        """Over n + M_r iterations, each register class of k nodes is
        disabled for exactly M_r iterations' worth of its nodes."""
        _, r = minimize_cycle_period(fig2)
        res = run_program(csr_pipelined_loop(fig2, r), 10)
        # Total disabled = sum over nodes of M_r (prologue+epilogue misses).
        assert res.disabled == r.max_value * fig2.num_nodes
        assert res.executed == 10 * fig2.num_nodes

    def test_register_count_is_distinct_values(self, bench_graph):
        _, r = minimize_cycle_period(bench_graph)
        p = csr_pipelined_loop(bench_graph, r)
        assert len(p.registers()) == r.registers_needed()

    def test_normalizes_input_retiming(self, fig2):
        _, r = minimize_cycle_period(fig2)
        shifted = r.shifted(5)
        p = csr_pipelined_loop(fig2, shifted)
        assert_equivalent(fig2, p, 8)
