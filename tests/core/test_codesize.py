"""Tests for the closed-form code-size models (Theorems 4.4/4.5).

Every model must equal the instruction count of the actually generated
program — the models are not independent claims but summaries of codegen.
"""

from __future__ import annotations

import pytest

from repro.codegen import (
    original_loop,
    pipelined_loop,
    retimed_unfolded_loop,
    unfold_retimed_loop,
    unfolded_loop,
)
from repro.core import (
    PER_COPY,
    PER_ITERATION,
    CodeSizeReport,
    csr_pipelined_loop,
    csr_retimed_unfolded_loop,
    csr_unfold_retimed_loop,
    csr_unfolded_loop,
    remainder_iterations,
    report_retimed,
    report_retimed_unfolded,
    size_csr_pipelined,
    size_csr_retime_unfold,
    size_csr_unfold_retime,
    size_csr_unfolded,
    size_original,
    size_pipelined,
    size_retime_unfold,
    size_unfold_retime,
    size_unfolded,
)
from repro.retiming import minimize_cycle_period
from repro.unfolding import retime_unfold, unfold_retime


class TestModelsMatchGeneratedCode:
    def test_original(self, bench_graph):
        assert original_loop(bench_graph).code_size == size_original(bench_graph)

    def test_pipelined(self, bench_graph):
        _, r = minimize_cycle_period(bench_graph)
        assert pipelined_loop(bench_graph, r).code_size == size_pipelined(bench_graph, r)

    def test_csr_pipelined(self, bench_graph):
        _, r = minimize_cycle_period(bench_graph)
        assert csr_pipelined_loop(bench_graph, r).code_size == size_csr_pipelined(
            bench_graph, r
        )

    @pytest.mark.parametrize("f,res", [(2, 0), (2, 1), (3, 0), (3, 2), (4, 3)])
    def test_unfolded(self, fig4, f, res):
        assert unfolded_loop(fig4, f, res).code_size == size_unfolded(fig4, f, res)

    @pytest.mark.parametrize("f", [1, 2, 3, 4])
    def test_csr_unfolded(self, fig4, f):
        assert csr_unfolded_loop(fig4, f).code_size == size_csr_unfolded(fig4, f)

    @pytest.mark.parametrize("f,leftover", [(2, 0), (3, 1), (4, 2)])
    def test_retime_unfold_theorem_4_5(self, bench_graph, f, leftover):
        res = retime_unfold(bench_graph, f)
        p = retimed_unfolded_loop(bench_graph, res.retiming, f, leftover)
        assert p.code_size == size_retime_unfold(bench_graph, res.retiming, f, leftover)

    @pytest.mark.parametrize("f,residue", [(2, 0), (3, 1)])
    def test_unfold_retime_theorem_4_4(self, bench_graph, f, residue):
        res = unfold_retime(bench_graph, f)
        p = unfold_retimed_loop(bench_graph, res.retiming, f, residue)
        assert p.code_size == size_unfold_retime(bench_graph, res.retiming, f, residue)

    @pytest.mark.parametrize("mode", [PER_COPY, PER_ITERATION])
    def test_csr_retime_unfold(self, bench_graph, mode):
        res = retime_unfold(bench_graph, 3)
        p = csr_retimed_unfolded_loop(bench_graph, res.retiming, 3, mode=mode)
        assert p.code_size == size_csr_retime_unfold(bench_graph, res.retiming, 3, mode)

    def test_csr_unfold_retime(self, fig4):
        res = unfold_retime(fig4, 3)
        p = csr_unfold_retimed_loop(fig4, res.retiming, 3)
        assert p.code_size == size_csr_unfold_retime(fig4, res.retiming, 3)


class TestOrderTheorem:
    """S_{r,f} <= S_{f,r} (the paper's Section 4 conclusion)."""

    @pytest.mark.parametrize("f", [2, 3, 4])
    def test_retime_first_never_larger(self, bench_graph, f):
        ru = retime_unfold(bench_graph, f)
        ur = unfold_retime(bench_graph, f, period=ru.period)
        s_rf = size_retime_unfold(bench_graph, ru.retiming, f)
        s_fr = size_unfold_retime(bench_graph, ur.retiming, f)
        assert s_rf <= s_fr

    def test_csr_never_worse_when_pipelined(self, bench_graph):
        """CSR wins exactly when the removed expansion (M_r * L) exceeds
        the setup/decrement overhead (R * (f + 1))."""
        res = retime_unfold(bench_graph, 3)
        r = res.retiming
        plain = size_retime_unfold(bench_graph, r, 3)
        csr = size_csr_retime_unfold(bench_graph, r, 3)
        saved = r.max_value * bench_graph.num_nodes
        overhead = r.registers_needed() * 4
        assert csr - plain == overhead - saved
        if saved >= overhead:
            assert csr <= plain


class TestHelpers:
    def test_remainder_iterations(self):
        assert remainder_iterations(101, 3) == 2
        assert remainder_iterations(101, 3, shift=2) == 0
        assert remainder_iterations(9, 3) == 0

    def test_bad_mode_rejected(self, fig4):
        _, r = minimize_cycle_period(fig4)
        with pytest.raises(ValueError, match="mode"):
            size_csr_retime_unfold(fig4, r, 3, mode="bogus")

    def test_report_retimed(self, fig2):
        _, r = minimize_cycle_period(fig2)
        rep = report_retimed(fig2, r)
        assert rep.original == 5
        assert rep.expanded == 20
        assert rep.csr == 13
        assert rep.registers == 4
        assert rep.reduction_pct == pytest.approx(35.0)

    def test_report_retimed_unfolded(self, fig2):
        _, r = minimize_cycle_period(fig2)
        rep = report_retimed_unfolded(fig2, r, 3, remainder=2)
        assert rep.expanded == (3 + 3 + 2) * 5
        assert rep.csr == 3 * 5 + 4 * 4

    def test_reduction_pct_zero_expanded(self):
        rep = CodeSizeReport(name="x", original=0, expanded=0, csr=0, registers=0)
        assert rep.reduction_pct == 0.0
