"""Tests for the code-size/performance trade-off explorer."""

from __future__ import annotations

import pytest

from repro.core import (
    best_under_budget,
    design_space,
    max_retiming_depth,
    max_unfolding_factor,
)
from repro.graph import DFGError, iteration_bound


class TestFormulas:
    def test_max_unfolding_factor(self):
        # L_req=100, L_orig=10, M_r=3: floor(100/10) - 3 = 7.
        assert max_unfolding_factor(100, 10, 3) == 7

    def test_max_retiming_depth(self):
        assert max_retiming_depth(100, 10, 4) == 6

    def test_budget_too_small_goes_nonpositive(self):
        assert max_unfolding_factor(25, 10, 3) <= 0

    def test_inverse_relationship(self):
        """The two formulas are inverses around floor(L_req/L_orig)."""
        l_req, l_orig = 120, 11
        for m_r in range(5):
            f = max_unfolding_factor(l_req, l_orig, m_r)
            assert max_retiming_depth(l_req, l_orig, f) == m_r

    def test_zero_l_orig_rejected(self):
        with pytest.raises(DFGError):
            max_unfolding_factor(10, 0, 1)


class TestDesignSpace:
    def test_points_for_each_factor(self, fig4):
        pts = design_space(fig4, max_factor=4)
        assert [p.factor for p in pts] == [1, 2, 3, 4]

    def test_figure4_periods_by_factor(self, fig4):
        """Exact optimal periods for Figure 4 (bound 2/3): rate-optimal at
        every multiple of 3, ceil-rounded elsewhere.  (Not monotone in f in
        general — e.g. a bound with denominator 2 makes f=2 beat f=3.)"""
        pts = design_space(fig4, max_factor=4)
        assert [str(p.iteration_period) for p in pts] == ["1", "1", "2/3", "3/4"]

    def test_periods_lower_bounded(self, bench_graph):
        bound = iteration_bound(bench_graph)
        for p in design_space(bench_graph, max_factor=3):
            assert p.iteration_period >= bound

    def test_csr_never_larger_than_plain(self, fig4):
        for p in design_space(fig4, max_factor=4):
            assert p.size_csr <= p.size_plain + p.registers * (p.factor + 1)

    def test_rate_optimal_point_exists(self, fig4):
        """Figure 4's bound is 2/3: the f=3 point must be rate-optimal."""
        pts = design_space(fig4, max_factor=3)
        assert pts[2].iteration_period == iteration_bound(fig4)


class TestBestUnderBudget:
    def test_picks_fastest_fitting(self, fig4):
        pts = design_space(fig4, max_factor=4)
        best = best_under_budget(pts, l_req=100)
        assert best is not None
        assert best.iteration_period == min(p.iteration_period for p in pts)

    def test_budget_excludes_large_points(self, fig4):
        pts = design_space(fig4, max_factor=4)
        small = best_under_budget(pts, l_req=pts[0].size_csr)
        assert small is not None
        assert small.factor == 1

    def test_nothing_fits(self, fig4):
        pts = design_space(fig4, max_factor=2)
        assert best_under_budget(pts, l_req=1) is None

    def test_register_filter(self, fig2):
        pts = design_space(fig2, max_factor=2)
        constrained = best_under_budget(pts, l_req=10_000, max_registers=1)
        if constrained is not None:
            assert constrained.registers <= 1

    def test_plain_size_budget(self, fig4):
        pts = design_space(fig4, max_factor=3)
        best = best_under_budget(pts, l_req=10_000, use_csr=False)
        assert best is not None
