"""Tests for the generic predicated-program builder."""

from __future__ import annotations

import pytest

from repro.core import PER_COPY, PER_ITERATION, predicated_program
from repro.core.verify import assert_equivalent
from repro.graph import DFGError
from repro.graph.validate import topological_order


def _shifts(g, f, fn):
    return {(v, j): fn(v, j) for v in g.node_names() for j in range(f)}


def _slot_major(g, f):
    order = topological_order(g)
    return [(v, j) for j in range(f) for v in order]


class TestValidation:
    def test_shift_coverage_checked(self, fig4):
        with pytest.raises(DFGError, match="every"):
            predicated_program(fig4, 2, {("A", 0): 0}, [("A", 0)])

    def test_body_order_permutation_checked(self, fig4):
        shifts = _shifts(fig4, 1, lambda v, j: 0)
        with pytest.raises(DFGError, match="permutation"):
            predicated_program(fig4, 1, shifts, [("A", 0), ("A", 0), ("B", 0)])

    def test_unknown_mode(self, fig4):
        shifts = _shifts(fig4, 1, lambda v, j: 0)
        with pytest.raises(DFGError, match="mode"):
            predicated_program(fig4, 1, shifts, _slot_major(fig4, 1), mode="x")

    def test_per_copy_requires_slot_major(self, fig4):
        shifts = _shifts(fig4, 2, lambda v, j: j)
        order = list(reversed(_slot_major(fig4, 2)))
        with pytest.raises(DFGError, match="slot-major"):
            predicated_program(fig4, 2, shifts, order, mode=PER_COPY)

    def test_bad_factor(self, fig4):
        with pytest.raises(DFGError, match="slot count"):
            predicated_program(fig4, 0, {}, [])


class TestRegisterAllocation:
    def test_one_register_per_class(self, fig4):
        shifts = _shifts(fig4, 2, lambda v, j: j + (1 if v == "A" else 0))
        p = predicated_program(fig4, 2, shifts, _slot_major(fig4, 2))
        assert len(p.registers()) == 2  # classes {0, 1}

    def test_register_inits_descend_from_cmax(self, fig4):
        shifts = _shifts(fig4, 1, lambda v, j: {"A": 2, "B": 0, "C": 0}[v])
        p = predicated_program(fig4, 1, shifts, _slot_major(fig4, 1))
        inits = {s.register: s.init for s in p.pre}
        assert inits == {"p1": 0, "p2": 2}  # classes 2 and 0

    def test_loop_base_is_one_minus_cmax(self, fig4):
        shifts = _shifts(fig4, 1, lambda v, j: {"A": 2, "B": 0, "C": 0}[v])
        p = predicated_program(fig4, 1, shifts, _slot_major(fig4, 1))
        assert str(p.loop.start) == "-1"

    def test_meta_records_classes(self, fig4):
        shifts = _shifts(fig4, 2, lambda v, j: j)
        p = predicated_program(fig4, 2, shifts, _slot_major(fig4, 2))
        assert p.meta["classes"] == [0]
        assert p.meta["registers"] == 1


class TestModes:
    def test_per_copy_overhead(self, fig4):
        shifts = _shifts(fig4, 3, lambda v, j: j)
        p = predicated_program(fig4, 3, shifts, _slot_major(fig4, 3), mode=PER_COPY)
        assert p.overhead_size == 1 * (3 + 1)

    def test_per_iteration_overhead(self, fig4):
        shifts = _shifts(fig4, 3, lambda v, j: j)
        p = predicated_program(
            fig4, 3, shifts, _slot_major(fig4, 3), mode=PER_ITERATION
        )
        assert p.overhead_size == 2

    def test_modes_equivalent_semantics(self, fig4):
        shifts = _shifts(fig4, 3, lambda v, j: j)
        for mode in (PER_COPY, PER_ITERATION):
            p = predicated_program(fig4, 3, shifts, _slot_major(fig4, 3), mode=mode)
            assert_equivalent(fig4, p, 11)
