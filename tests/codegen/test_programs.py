"""Tests for the plain (non-CSR) code generators: structure and sizes.

Semantic equivalence of every generator is covered exhaustively in
``tests/integration``; these tests pin down program *structure* — loop
bounds, instruction counts, operand construction — against the paper's
figures and the closed-form size models.
"""

from __future__ import annotations

import pytest

from repro.codegen import (
    ComputeInstr,
    IndexBase,
    format_program,
    original_loop,
    pipelined_loop,
    retimed_unfolded_loop,
    unfold_retimed_loop,
    unfolded_loop,
)
from repro.codegen.original import compute_for_node
from repro.codegen.ir import IndexExpr
from repro.graph import DFGError
from repro.retiming import Retiming, minimize_cycle_period
from repro.unfolding import unfold_retime


class TestComputeForNode:
    def test_operands_follow_in_edges(self, fig2):
        instr = compute_for_node(fig2, "C", IndexExpr.loop(0))
        assert [str(s) for s in instr.srcs] == ["A[i]", "B[i-2]"]

    def test_dest(self, fig2):
        instr = compute_for_node(fig2, "A", IndexExpr.loop(3))
        assert str(instr.dest) == "A[i+3]"
        assert str(instr.srcs[0]) == "E[i-1]"

    def test_const_region(self, fig2):
        instr = compute_for_node(fig2, "A", IndexExpr.const(2))
        assert str(instr.srcs[0]) == "E[-2]"


class TestOriginalLoop:
    def test_size_is_node_count(self, bench_graph):
        assert original_loop(bench_graph).code_size == bench_graph.num_nodes

    def test_bounds(self, fig4):
        p = original_loop(fig4)
        assert str(p.loop.start) == "1"
        assert str(p.loop.end) == "n"
        assert p.loop.step == 1

    def test_body_in_topo_order(self, fig4):
        p = original_loop(fig4)
        assert [i.node for i in p.loop.body] == ["A", "B", "C"]

    def test_no_pre_post(self, fig4):
        p = original_loop(fig4)
        assert p.pre == () and p.post == ()


class TestPipelinedLoop:
    def test_paper_figure3a_structure(self, fig2):
        """Figure 3(a): 8 prologue instructions, 5-instruction body over
        i = 1 .. n-3, 7 epilogue instructions."""
        _, r = minimize_cycle_period(fig2)
        p = pipelined_loop(fig2, r)
        assert len(p.pre) == 8
        assert len(p.loop.body) == 5
        assert len(p.post) == 7
        assert str(p.loop.end) == "n-3"
        assert p.code_size == 20  # (M_r + 1) * |V| = 4 * 5

    def test_body_offsets_match_retiming(self, fig2):
        _, r = minimize_cycle_period(fig2)
        p = pipelined_loop(fig2, r)
        dests = {i.node: str(i.dest) for i in p.loop.body}
        assert dests == {
            "A": "A[i+3]",
            "B": "B[i+2]",
            "C": "C[i+2]",
            "D": "D[i+1]",
            "E": "E[i]",
        }

    def test_size_model(self, bench_graph):
        from repro.core import size_pipelined

        _, r = minimize_cycle_period(bench_graph)
        p = pipelined_loop(bench_graph, r)
        assert p.code_size == size_pipelined(bench_graph, r)

    def test_zero_retiming_degenerates_to_original(self, fig4):
        p = pipelined_loop(fig4, Retiming.zero(fig4))
        assert p.code_size == 3
        assert p.pre == () and p.post == ()

    def test_illegal_retiming_rejected(self, fig4):
        with pytest.raises(DFGError):
            pipelined_loop(fig4, Retiming(fig4, {"C": 5}))

    def test_min_n_recorded(self, fig2):
        _, r = minimize_cycle_period(fig2)
        assert pipelined_loop(fig2, r).meta["min_n"] == 3


class TestUnfoldedLoop:
    def test_size(self, fig4):
        p = unfolded_loop(fig4, 3, residue=2)
        assert p.code_size == (3 + 2) * 3

    def test_step_and_bounds(self, fig4):
        p = unfolded_loop(fig4, 3, residue=2)
        assert p.loop.step == 3
        assert str(p.loop.end) == "n-2"

    def test_residue_zero_has_no_post(self, fig4):
        p = unfolded_loop(fig4, 3, residue=0)
        assert p.post == ()

    def test_bad_residue_rejected(self, fig4):
        with pytest.raises(DFGError, match="residue"):
            unfolded_loop(fig4, 3, residue=3)

    def test_bad_factor_rejected(self, fig4):
        with pytest.raises(DFGError, match="factor"):
            unfolded_loop(fig4, 0)

    def test_slot_offsets(self, fig4):
        p = unfolded_loop(fig4, 2)
        dests = [str(i.dest) for i in p.loop.body]
        assert dests == ["A[i]", "B[i]", "C[i]", "A[i+1]", "B[i+1]", "C[i+1]"]


class TestCombinedLoops:
    def test_retimed_unfolded_size(self, fig4):
        from repro.core import size_retime_unfold

        _, r = minimize_cycle_period(fig4)
        for leftover in (0, 1, 2):
            p = retimed_unfolded_loop(fig4, r, 3, leftover)
            assert p.code_size == size_retime_unfold(fig4, r, 3, leftover)

    def test_unfold_retimed_size(self, fig4):
        from repro.core import size_unfold_retime

        res = unfold_retime(fig4, 3)
        for residue in (0, 1, 2):
            p = unfold_retimed_loop(fig4, res.retiming, 3, residue)
            assert p.code_size == size_unfold_retime(fig4, res.retiming, 3, residue)

    def test_unfold_retimed_needs_copy_retiming(self, fig4):
        with pytest.raises(DFGError, match="copies"):
            unfold_retimed_loop(fig4, Retiming.zero(fig4), 3)

    def test_retimed_unfolded_meta(self, fig4):
        _, r = minimize_cycle_period(fig4)
        p = retimed_unfolded_loop(fig4, r, 3, 1)
        assert p.meta["factor"] == 3
        assert p.meta["residue"] == 1
        assert p.meta["residue_shift"] == r.max_value


class TestPrinter:
    def test_format_contains_all_sections(self, fig2):
        _, r = minimize_cycle_period(fig2)
        text = format_program(pipelined_loop(fig2, r))
        assert "for i = 1 to n-3 do" in text
        assert "A[1]" in text  # prologue
        assert "end" in text
        assert "code size = 20" in text

    def test_format_shows_step(self, fig4):
        text = format_program(unfolded_loop(fig4, 3))
        assert "by 3" in text
