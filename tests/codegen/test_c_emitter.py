"""Differential tests of the C emitter against the Python VM.

These compile the emitted C with the system compiler and compare the
binary's output against :func:`run_program` instance by instance — a
whole-stack check that the IR semantics, the ring arithmetic, the guard
window and the initial-value model all survived translation.  Skipped
when no C compiler is available.
"""

from __future__ import annotations

import shutil
import subprocess

import pytest

from repro.codegen import original_loop, pipelined_loop, unfolded_loop
from repro.codegen.c_emitter import _name_seed, emit_c
from repro.core import csr_pipelined_loop, csr_retimed_unfolded_loop, csr_unfolded_loop
from repro.machine import default_initial, run_program
from repro.retiming import minimize_cycle_period
from repro.workloads import get_workload

CC = shutil.which("cc") or shutil.which("gcc")

needs_cc = pytest.mark.skipif(CC is None, reason="no C compiler available")


@pytest.fixture(scope="module")
def compile_and_run(tmp_path_factory):
    def inner(program, g, n: int) -> dict[str, dict[int, int]]:
        td = tmp_path_factory.mktemp("cgen")
        src = td / "p.c"
        exe = td / "p"
        src.write_text(emit_c(program, g))
        subprocess.run([CC, "-O2", "-o", str(exe), str(src)], check=True)
        out = subprocess.run(
            [str(exe), str(n)], capture_output=True, text=True, check=True
        ).stdout
        arrays: dict[str, dict[int, int]] = {}
        for line in out.splitlines():
            name, idx, val = line.split()
            arrays.setdefault(name, {})[int(idx)] = int(val)
        return arrays

    return inner


class TestSeedParity:
    @pytest.mark.parametrize("array", ["A", "M1", "longish_name", "s0_1"])
    @pytest.mark.parametrize("idx", [-5, -1, 0, 3])
    def test_inline_seed_matches_vm_initial(self, array, idx):
        assert _name_seed(array) * 31 + idx * 7 + 1 == default_initial(array, idx)


@needs_cc
class TestDifferential:
    @pytest.mark.parametrize("name", ["figure2", "figure4", "iir", "diffeq", "figure8"])
    def test_original(self, compile_and_run, name):
        g = get_workload(name)
        p = original_loop(g)
        assert compile_and_run(p, g, 17) == run_program(p, 17).arrays

    @pytest.mark.parametrize("name", ["figure2", "allpole", "volterra"])
    def test_csr_pipelined(self, compile_and_run, name):
        g = get_workload(name)
        _, r = minimize_cycle_period(g)
        p = csr_pipelined_loop(g, r)
        assert compile_and_run(p, g, 23) == run_program(p, 23).arrays

    def test_plain_pipelined(self, compile_and_run, fig2):
        _, r = minimize_cycle_period(fig2)
        p = pipelined_loop(fig2, r)
        assert compile_and_run(p, fig2, 11) == run_program(p, 11).arrays

    def test_unfolded_with_remainder(self, compile_and_run, fig4):
        p = unfolded_loop(fig4, 3, residue=2)
        assert compile_and_run(p, fig4, 14) == run_program(p, 14).arrays

    def test_csr_unfolded_every_residue(self, compile_and_run, fig4):
        p = csr_unfolded_loop(fig4, 3)
        for n in (6, 7, 8):
            assert compile_and_run(p, fig4, n) == run_program(p, n).arrays

    def test_csr_retimed_unfolded(self, compile_and_run, fig2):
        _, r = minimize_cycle_period(fig2)
        p = csr_retimed_unfolded_loop(fig2, r, 3)
        assert compile_and_run(p, fig2, 19) == run_program(p, 19).arrays

    def test_contract_violation_exits_nonzero(self, compile_and_run, fig2, tmp_path):
        """The binary enforces the min-trip-count contract like the VM."""
        _, r = minimize_cycle_period(fig2)
        p = pipelined_loop(fig2, r)
        src = tmp_path / "p.c"
        exe = tmp_path / "p"
        src.write_text(emit_c(p, fig2))
        subprocess.run([CC, "-O2", "-o", str(exe), str(src)], check=True)
        proc = subprocess.run([str(exe), "1"], capture_output=True)
        assert proc.returncode == 3
