"""Tests for the loop-program IR."""

from __future__ import annotations

import pytest

from repro.codegen import (
    ComputeInstr,
    DecInstr,
    Guard,
    IndexBase,
    IndexExpr,
    Loop,
    LoopProgram,
    Operand,
    SetupInstr,
)
from repro.graph import DFGError, OpKind


class TestIndexExpr:
    def test_const(self):
        assert IndexExpr.const(5).resolve(None, 100) == 5

    def test_loop_relative(self):
        assert IndexExpr.loop(3).resolve(10, 100) == 13

    def test_trip_relative(self):
        assert IndexExpr.trip(-2).resolve(None, 100) == 98

    def test_loop_var_required(self):
        with pytest.raises(DFGError, match="outside the loop body"):
            IndexExpr.loop(0).resolve(None, 100)

    @pytest.mark.parametrize(
        "expr,text",
        [
            (IndexExpr.const(7), "7"),
            (IndexExpr.loop(0), "i"),
            (IndexExpr.loop(3), "i+3"),
            (IndexExpr.loop(-1), "i-1"),
            (IndexExpr.trip(0), "n"),
            (IndexExpr.trip(-4), "n-4"),
        ],
    )
    def test_str(self, expr, text):
        assert str(expr) == text


class TestLoop:
    def _body(self):
        return (
            ComputeInstr(
                dest=Operand("A", IndexExpr.loop(0)),
                op=OpKind.ADD,
                imm=0,
                srcs=(),
            ),
        )

    def test_iter_indices(self):
        loop = Loop(IndexExpr.const(1), IndexExpr.trip(0), 1, self._body())
        assert list(loop.iter_indices(5)) == [1, 2, 3, 4, 5]

    def test_iter_with_step(self):
        loop = Loop(IndexExpr.const(1), IndexExpr.trip(0), 3, self._body())
        assert list(loop.iter_indices(8)) == [1, 4, 7]

    def test_trip_count(self):
        loop = Loop(IndexExpr.const(-2), IndexExpr.trip(0), 1, self._body())
        assert loop.trip_count(10) == 13

    def test_empty_range(self):
        loop = Loop(IndexExpr.const(5), IndexExpr.trip(0), 1, self._body())
        assert loop.trip_count(3) == 0
        assert list(loop.iter_indices(3)) == []

    def test_step_must_be_positive(self):
        with pytest.raises(DFGError, match="step"):
            Loop(IndexExpr.const(1), IndexExpr.trip(0), 0, self._body())

    def test_bounds_cannot_use_loop_var(self):
        with pytest.raises(DFGError, match="loop variable"):
            Loop(IndexExpr.loop(0), IndexExpr.trip(0), 1, self._body())


class TestLoopProgram:
    def _program(self) -> LoopProgram:
        compute = ComputeInstr(
            dest=Operand("A", IndexExpr.loop(0)),
            op=OpKind.ADD,
            imm=0,
            srcs=(Operand("A", IndexExpr.loop(-1)),),
            guard=Guard("p1"),
        )
        return LoopProgram(
            name="p",
            pre=(SetupInstr("p1", 2),),
            loop=Loop(IndexExpr.const(1), IndexExpr.trip(0), 1, (compute, DecInstr("p1"))),
            post=(),
        )

    def test_code_size(self):
        assert self._program().code_size == 3

    def test_compute_and_overhead(self):
        p = self._program()
        assert p.compute_size == 1
        assert p.overhead_size == 2

    def test_registers(self):
        assert self._program().registers() == ["p1"]

    def test_instructions_order(self):
        kinds = [type(i).__name__ for i in self._program().instructions()]
        assert kinds == ["SetupInstr", "ComputeInstr", "DecInstr"]

    def test_instr_str(self):
        p = self._program()
        assert str(p.pre[0]) == "setup p1 = 2 : -LC"
        assert str(p.loop.body[1]) == "p1 = p1 - 1"
        assert "(p1)" in str(p.loop.body[0])

    def test_guard_str_with_offset(self):
        assert str(Guard("p2", -1)) == "(p2-1)"
