"""Run the doctest examples embedded in module docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.graph.dfg
import repro.schedule.resources

MODULES = [
    repro.graph.dfg,
    repro.schedule.resources,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module.__name__}: {result.failed} doctest failures"
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
