"""Differential battery: 200+ seeded graphs, heuristics pinned to the oracle.

Uses the *same* seeded graph generator as ``python -m repro sweep``
(:func:`repro.runner.difftest._graph_for_seed`), so every assertion here is
the in-process twin of what the oracle sweep checks at engine scale:

* all three ``minimize_cycle_period`` probe strategies return exactly the
  oracle's certified optimum — bit-equal, on every graph;
* the Theorem 4.4/4.5 size inequality holds *at optimal code size*: with
  both orders' ``M_r`` independently minimized by exact search,
  ``S_{r,f} <= S_{f,r}`` still stands (the paper's claim is about optimal
  retimings, not about one solver's witnesses).
"""

from __future__ import annotations

import pytest

from repro.core.codesize import size_retime_unfold, size_unfold_retime
from repro.graph.period import cycle_period
from repro.graph.serialize import from_json
from repro.optimal import minimize_max_retiming, optimal_cycle_period
from repro.retiming import Retiming, minimize_cycle_period
from repro.retiming.constraints import DifferenceConstraints
from repro.runner.difftest import _graph_for_seed
from repro.unfolding import (
    min_delay_exceeding_time,
    retime_unfold,
    unfold,
    unfold_retime,
)

NUM_SEEDS = 220
THEOREM_SEEDS = 60  # the exact-M_r battery is heavier: a prefix suffices


def _sweep_graph(seed: int):
    return from_json(_graph_for_seed(seed, max_nodes=6, max_extra_edges=5))


def _optimal_retime_unfold_m(g, f: int, c: int) -> int | None:
    """Provably minimal ``M_r`` over retimings of ``g`` whose *unfolded*
    graph achieves period ``c`` — the retime-unfold side of Theorems
    4.4/4.5 with the heuristic witness replaced by an exact one.

    Same spread binary search as ``minimize_max_retiming``, over the
    ``W_c``/``f`` constraint system of ``retime_unfold_for_period``.
    """
    if any(v.time > c for v in g.nodes()):
        return None
    wc = min_delay_exceeding_time(g, c)
    names = g.node_names()

    def solve(spread: int | None) -> Retiming | None:
        system = DifferenceConstraints()
        for n in names:
            system.add_variable(n)
        for e in g.edges():
            system.add(e.dst, e.src, e.delay)
        for (u, v), w in wc.items():
            system.add(v, u, w - f)
        if spread is not None:
            for u in names:
                for v in names:
                    if u != v:
                        system.add(u, v, spread)
        solution = system.solve()
        if solution is None:
            return None
        r = Retiming(g, {n: int(val) for n, val in solution.items()}).normalized()
        assert cycle_period(unfold(r.apply(), f)) <= c
        return r

    base = solve(None)
    if base is None:
        return None
    best = base.max_value
    lo, hi = 0, best - 1
    while lo <= hi:
        s = (lo + hi) // 2
        r = solve(s)
        if r is None:
            lo = s + 1
        else:
            best = r.max_value
            hi = r.max_value - 1
    return best


@pytest.mark.parametrize("chunk", range(0, NUM_SEEDS, 20))
def test_all_methods_bit_equal_to_oracle(chunk):
    for seed in range(chunk, chunk + 20):
        g = _sweep_graph(seed)
        opt = optimal_cycle_period(g)
        assert opt.proven, f"seed {seed}: oracle gap {opt.gap}"
        for method in ("incremental", "shared", "reference"):
            period, r = minimize_cycle_period(g, method=method)
            assert period == opt.period, (
                f"seed {seed}: method {method} returned {period}, "
                f"oracle proved {opt.period}"
            )
            assert cycle_period(r.apply()) == opt.period


@pytest.mark.parametrize("chunk", range(0, THEOREM_SEEDS, 10))
@pytest.mark.parametrize("f", [2, 3])
def test_order_inequality_at_optimal_code_size(chunk, f):
    """Theorem 4.4/4.5 with exact-minimal M_r on both sides, plus the
    sanity half: no heuristic witness beats its exact optimum."""
    for seed in range(chunk, chunk + 10):
        g = _sweep_graph(seed)
        gf = unfold(g, f)
        ur = unfold_retime(g, f)  # minimized unfolded period: the target c
        c = ur.period
        L = g.num_nodes

        r_fr = minimize_max_retiming(gf, c)
        assert r_fr is not None  # ur's own witness achieves c
        size_fr_opt = (r_fr.max_value + 1) * L * f

        m_rf = _optimal_retime_unfold_m(g, f, c)
        assert m_rf is not None, (
            f"seed {seed} f={f}: retime-unfold cannot reach period {c} "
            "reached by unfold-retime — Theorem 4.4 violated"
        )
        size_rf_opt = (m_rf + f) * L

        assert size_rf_opt <= size_fr_opt, (
            f"seed {seed} f={f}: optimal S_rf={size_rf_opt} > "
            f"optimal S_fr={size_fr_opt} at period {c}"
        )
        # Exactness is a floor for the production witnesses.
        assert size_unfold_retime(g, ur.retiming, f) >= size_fr_opt
        rf = retime_unfold(g, f, period=c)
        assert size_retime_unfold(g, rf.retiming, f) >= size_rf_opt
