"""Property suite: the exact oracle vs. brute-force enumeration.

The oracle (:mod:`repro.optimal`) is itself nontrivial, so these tests pin
it against the dumbest possible ground truth: enumerate every legal
normalized retiming in the optimum-containing box ``[0, |V| - 1]^V`` and
take the minimum directly.  Agreement is checked in *both* directions —
the oracle is never better than the enumerated optimum (its witness is a
real retiming) and never worse (its lower bound is real).

``ORACLE_EXAMPLES`` scales the example count (CI runs 500+; the local
default keeps the suite quick).  Graphs whose enumeration box exceeds the
state budget are *rejected*, never silently passed.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, assume, given, settings

from repro.graph.period import cycle_period
from repro.optimal import (
    BruteForceBudgetExceeded,
    brute_force_cycle_period,
    brute_force_initiation_interval,
    brute_force_min_max_retiming,
    enumerate_normalized_retimings,
    optimal_cycle_period,
    optimal_initiation_interval,
    minimize_max_retiming,
)
from repro.retiming import minimize_cycle_period
from repro.schedule.resources import ResourceModel

from ..conftest import dfgs

EXAMPLES = int(os.environ.get("ORACLE_EXAMPLES", "60"))

#: Large boxes get rejected via BruteForceBudgetExceeded -> assume(False);
#: that is by design, so the filter health check must be off.
oracle_settings = settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)


#: Tight state budget so oversized boxes get rejected in milliseconds —
#: the point is many small exhaustive examples, not a few giant ones.
BUDGET = 20_000


@given(dfgs(max_nodes=12))
@oracle_settings
def test_oracle_period_equals_enumerated_optimum(g):
    """Both directions: oracle == min over every enumerable retiming —
    and so does the production heuristic, grounded without the oracle."""
    try:
        bf_period, bf_witness = brute_force_cycle_period(g, budget=BUDGET)
    except BruteForceBudgetExceeded:
        assume(False)
    opt = optimal_cycle_period(g)
    assert opt.proven, f"oracle left a gap on a {g.num_nodes}-node graph"
    assert opt.gap == 0
    # Not better: the oracle's own witness really achieves its period.
    assert cycle_period(opt.retiming.apply()) == opt.period
    # Not worse: no enumerated retiming beats it, and one matches it.
    assert opt.period == bf_period
    assert cycle_period(bf_witness.apply()) == bf_period
    assert opt.optimum_lower <= bf_period
    heuristic_period, r = minimize_cycle_period(g)
    assert heuristic_period == bf_period
    assert cycle_period(r.apply()) == bf_period


@given(dfgs(max_nodes=10))
@oracle_settings
def test_min_max_retiming_equals_enumerated_optimum(g):
    """Minimal M_r at the optimal period matches exhaustive search."""
    opt = optimal_cycle_period(g)
    try:
        bf_m = brute_force_min_max_retiming(g, opt.period, budget=BUDGET)
    except BruteForceBudgetExceeded:
        assume(False)
    assert bf_m is not None  # the oracle's own witness is in the box
    r = minimize_max_retiming(g, opt.period)
    assert r is not None
    assert r.max_value == bf_m
    assert r.min_value == 0
    assert cycle_period(r.apply()) <= opt.period


@given(dfgs(max_nodes=5, max_extra_edges=4))
@oracle_settings
def test_enumeration_yields_legal_normalized_retimings(g):
    """The ground truth itself is sane: every yielded retiming is legal
    (no negative retimed delay), normalized, and the zero retiming — the
    trivially legal one — is always present."""
    try:
        rs = list(enumerate_normalized_retimings(g))
    except BruteForceBudgetExceeded:
        assume(False)
    assert any(all(v == 0 for v in r.as_dict().values()) for r in rs)
    for r in rs:
        assert r.min_value == 0
        assert r.is_legal()


@given(dfgs(max_nodes=4, max_extra_edges=3))
@oracle_settings
def test_modulo_oracle_equals_enumerated_optimum(g):
    """Branch-and-bound II == full slot-product enumeration II, under a
    genuinely binding resource model (one ALU, one multiplier)."""
    resources = ResourceModel(units={"alu": 1, "mul": 1})
    try:
        bf_ii = brute_force_initiation_interval(g, resources)
    except BruteForceBudgetExceeded:
        assume(False)
    opt = optimal_initiation_interval(g, resources)
    assert opt.proven
    assert opt.ii == bf_ii
    assert opt.optimum_lower == bf_ii
