"""The optional pulp ILP backend: gating when absent, parity when present."""

from __future__ import annotations

import pytest

from repro.optimal import HAVE_PULP, OptimalBackendError, optimal_cycle_period


@pytest.mark.skipif(HAVE_PULP, reason="pulp installed: the gate is open")
def test_missing_pulp_is_a_clear_error(fig1):
    """Without pulp the ILP backend must fail loudly, pointing at both the
    install and the always-available lattice fallback."""
    with pytest.raises(OptimalBackendError) as exc:
        optimal_cycle_period(fig1, backend="ilp")
    message = str(exc.value)
    assert "pulp" in message
    assert "lattice" in message


@pytest.mark.skipif(not HAVE_PULP, reason="pulp not installed")
def test_ilp_backend_agrees_with_lattice(bench_graph):  # pragma: no cover
    lattice = optimal_cycle_period(bench_graph)
    ilp = optimal_cycle_period(bench_graph, backend="ilp")
    assert ilp.backend == "ilp"
    assert ilp.period == lattice.period
    assert ilp.proven
