"""Exact modulo scheduling: cross-checks and degradation contracts."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings

from repro.graph import DFG, DFGError, OpKind
from repro.graph.iteration_bound import iteration_bound
from repro.optimal import optimal_initiation_interval
from repro.schedule.modulo import minimum_initiation_interval, modulo_schedule
from repro.schedule.resources import ResourceModel
from repro.workloads import get_workload

from ..conftest import dfgs

#: Benchmarks small enough for the exact decision to finish unbudgeted.
#: The three big filters (elliptic, lattice, volterra) are NP-hard
#: instances at width 1+1 — they exercise the *degradation* contract
#: instead, via the budgeted bench_graph tests below.
SMALL_BENCH = ["iir", "diffeq", "allpole"]


def _verify_schedule(g: DFG, ii: int, start: dict[str, int]) -> None:
    """Independent re-check of the oracle's witness: every dependence and
    every reservation-table slot, recomputed from scratch."""
    for e in g.edges():
        assert start[e.dst] >= start[e.src] + g.node(e.src).time - ii * e.delay


@given(dfgs(max_nodes=7))
@settings(max_examples=40, deadline=None)
def test_unconstrained_optimum_is_ceil_iteration_bound(g):
    """With no resource limits the exact minimum II is max(1, ceil(B(G)))
    — an independently provable closed form the search must land on."""
    opt = optimal_initiation_interval(g)
    bound = iteration_bound(g)
    assert opt.ii == max(1, math.ceil(bound))
    assert opt.proven
    assert opt.gap == 0
    _verify_schedule(g, opt.ii, opt.start)


def test_two_node_cycle_needs_offset_start(two_node_cycle):
    # A -> B (d=0), B -> A (d=2), unit times: B = 2/2 = 1... but the
    # schedule at II=1 must stagger the starts — a regression guard for
    # the "pin every slot to zero" shortcut, which cannot express this.
    opt = optimal_initiation_interval(two_node_cycle)
    assert opt.proven
    assert opt.start["B"] >= opt.start["A"] + 1
    _verify_schedule(two_node_cycle, opt.ii, opt.start)


@pytest.mark.parametrize("name", SMALL_BENCH)
def test_constrained_witness_respects_reservation_table(name):
    g = get_workload(name)
    resources = ResourceModel(units={"alu": 1, "mul": 1})
    opt = optimal_initiation_interval(g, resources)
    assert opt.proven
    assert opt.ii >= minimum_initiation_interval(g, resources)
    _verify_schedule(g, opt.ii, opt.start)
    occupancy: dict[tuple[int, str], int] = {}
    for n in g.node_names():
        node = g.node(n)
        kind = resources.kind_of(node)
        for dt in range(node.time):
            key = ((opt.start[n] + dt) % opt.ii, kind)
            occupancy[key] = occupancy.get(key, 0) + 1
            assert occupancy[key] <= resources.capacity(kind)


@pytest.mark.parametrize("name", SMALL_BENCH)
def test_heuristic_never_beats_the_oracle(name):
    g = get_workload(name)
    resources = ResourceModel(units={"alu": 2, "mul": 1})
    opt = optimal_initiation_interval(g, resources)
    heuristic = modulo_schedule(g, resources)
    assert heuristic.ii >= opt.ii


def test_large_benchmarks_degrade_within_budget(bench_graph):
    """Every benchmark — including the NP-hard big three — must come back
    quickly under a node budget, with a valid witness and honest bounds."""
    resources = ResourceModel(units={"alu": 1, "mul": 1})
    opt = optimal_initiation_interval(bench_graph, resources, node_budget=20_000)
    assert opt.ii >= opt.optimum_lower >= minimum_initiation_interval(
        bench_graph, resources
    )
    assert opt.proven == (opt.gap == 0)
    _verify_schedule(bench_graph, opt.ii, opt.start)


def test_node_budget_degrades_to_heuristic_witness(bench_graph):
    """An exhausted search budget must yield the heuristic's schedule with
    honest bounds, not an exception and not a fake 'proven'."""
    resources = ResourceModel(units={"alu": 1, "mul": 1})
    opt = optimal_initiation_interval(bench_graph, resources, node_budget=0)
    heuristic = modulo_schedule(bench_graph, resources)
    assert opt.ii == heuristic.ii
    assert opt.optimum_lower == minimum_initiation_interval(bench_graph, resources)
    assert opt.proven == (opt.ii == opt.optimum_lower)
    assert opt.gap >= 0
    _verify_schedule(bench_graph, opt.ii, opt.start)


def test_timeout_degrades_like_node_budget(bench_graph):
    resources = ResourceModel(units={"alu": 1, "mul": 1})
    opt = optimal_initiation_interval(bench_graph, resources, timeout=0.0)
    assert opt.gap >= 0
    _verify_schedule(bench_graph, opt.ii, opt.start)


def test_zero_delay_cycle_rejected():
    g = DFG("bad")
    g.add_node("a", op=OpKind.ADD)
    g.add_node("b", op=OpKind.ADD)
    g.add_edge("a", "b", 0)
    g.add_edge("b", "a", 0)
    with pytest.raises(DFGError, match="zero-delay cycle"):
        optimal_initiation_interval(g)


def test_exhausted_ii_range_raises(two_node_cycle):
    # max_ii below MII leaves no candidate: a clear error, not a loop.
    resources = ResourceModel(units={"alu": 1, "mul": 1})
    mii = minimum_initiation_interval(two_node_cycle, resources)
    with pytest.raises(DFGError, match="no modulo schedule"):
        optimal_initiation_interval(two_node_cycle, resources, max_ii=mii - 1)
