"""Edge cases and benchmark anchors for the exact period oracle."""

from __future__ import annotations

import math

import pytest

from repro.graph import DFG, DFGError, OpKind
from repro.graph.iteration_bound import iteration_bound
from repro.graph.period import cycle_period
from repro.core.codesize import size_pipelined
from repro.optimal import (
    OptimalPeriod,
    minimal_code_size,
    minimize_max_retiming,
    optimal_cycle_period,
    period_lower_bound,
)
from repro.retiming import minimize_cycle_period


def test_single_node_graph():
    g = DFG("one")
    g.add_node("a", time=3, op=OpKind.ADD)
    g.add_edge("a", "a", 1)
    opt = optimal_cycle_period(g)
    assert opt.period == 3
    assert opt.proven
    assert opt.probes == 0  # already at the lower bound: no search at all


def test_zero_delay_cycle_is_a_clear_error():
    g = DFG("bad")
    g.add_node("a", op=OpKind.ADD)
    g.add_node("b", op=OpKind.ADD)
    g.add_edge("a", "b", 0)
    g.add_edge("b", "a", 0)
    with pytest.raises(DFGError, match="zero-delay cycle"):
        optimal_cycle_period(g)
    with pytest.raises(DFGError, match="zero-delay cycle"):
        period_lower_bound(g)


def test_gap_zero_short_circuit_skips_the_search():
    # A ring with a delay on every edge already runs at the iteration
    # bound, so the oracle must return without a single feasibility probe
    # (and without paying for the O(V^3) W/D matrices).
    g = DFG("spread-ring")
    for i in range(4):
        g.add_node(f"n{i}", op=OpKind.ADD)
    for i in range(4):
        g.add_edge(f"n{i}", f"n{(i + 1) % 4}", 1)
    assert cycle_period(g) == period_lower_bound(g)
    opt = optimal_cycle_period(g)
    assert opt.proven
    assert opt.probes == 0
    assert all(v == 0 for v in opt.retiming.as_dict().values())


def test_timeout_degrades_to_bounded_gap(two_node_cycle):
    # Phi = 2 > L = 1, so a zero-second budget cannot finish the search:
    # the certificate must keep valid bounds instead of hanging or lying.
    full = optimal_cycle_period(two_node_cycle)
    cut = optimal_cycle_period(two_node_cycle, timeout=0.0)
    assert not cut.proven
    assert cut.gap > 0
    assert cut.period == cycle_period(two_node_cycle)  # witnessed fallback
    assert cut.optimum_lower <= full.period <= cut.period
    assert cycle_period(cut.retiming.apply()) == cut.period


def test_unknown_backend_rejected(fig1):
    with pytest.raises(ValueError, match="backend"):
        optimal_cycle_period(fig1, backend="nonsense")


def test_certificate_gap_property(fig1):
    opt = optimal_cycle_period(fig1)
    assert isinstance(opt, OptimalPeriod)
    assert opt.gap == opt.period - opt.optimum_lower
    assert opt.proven == (opt.gap == 0)
    assert opt.backend == "lattice"


def test_benchmarks_proven_and_match_heuristic(bench_graph):
    """On every paper benchmark the oracle proves optimality, agrees with
    all three heuristic probe strategies, and respects its own bounds."""
    opt = optimal_cycle_period(bench_graph)
    assert opt.proven
    assert opt.optimum_lower >= math.ceil(iteration_bound(bench_graph))
    for method in ("incremental", "shared", "reference"):
        period, _ = minimize_cycle_period(bench_graph, method=method)
        assert period == opt.period
    assert cycle_period(opt.retiming.apply()) == opt.period


def test_minimize_max_retiming_infeasible_period(fig1):
    opt = optimal_cycle_period(fig1)
    if opt.period > 1:
        assert minimize_max_retiming(fig1, opt.period - 1) is None
    # Below the slowest node no period is achievable either.
    assert minimize_max_retiming(fig1, 0) is None


def test_minimal_code_size_never_exceeds_heuristic(bench_graph):
    """(M_r* + 1) * |V| at the optimal period is a true lower bound on
    what the heuristic optimizer's witness costs."""
    opt = optimal_cycle_period(bench_graph)
    size, r = minimal_code_size(bench_graph)
    assert cycle_period(r.apply()) <= opt.period
    assert size == (r.max_value + 1) * bench_graph.num_nodes
    _, r_heur = minimize_cycle_period(bench_graph)
    assert size <= size_pipelined(bench_graph, r_heur)


def test_minimal_code_size_unachievable_period_raises(fig1):
    with pytest.raises(DFGError, match="no retiming achieves"):
        minimal_code_size(fig1, c=0)
