"""Fault-injection and recovery tests for the resilience layer.

Every named injection site is driven end to end — worker crashes that
retry and succeed, retry exhaustion degrading to FAILED cells, injected
and real deadlines, cache corruption through quarantine, crashed cache
writers — and the load-bearing property is pinned throughout: a run whose
faults were all *recovered* produces results bit-identical to a fault-free
run, with the recovery visible only in the stats.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.runner import (
    ExperimentEngine,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    Job,
    JobTimeoutError,
    ResultCache,
    RetryPolicy,
    cache_key,
    resilience,
)
from repro.runner.difftest import differential_sweep
from repro.runner.resilience import run_attempts

# A fast policy for tests: same attempt budget, no sleeping.
FAST = RetryPolicy(max_attempts=3, backoff=0.0)


def _square(params: dict) -> dict:
    return {"ok": True, "y": params["x"] ** 2}


def _slow_square(params: dict) -> dict:
    import time

    time.sleep(params.get("sleep", 0.05))
    return {"ok": True, "y": params["x"] ** 2}


def _crash_once_plan(site: str = "job.start", match: str = "*") -> FaultPlan:
    return FaultPlan([FaultSpec(site=site, match=match, times=1)])


class TestFaultPlanParsing:
    def test_from_inline_json(self):
        plan = FaultPlan.from_spec(
            '{"seed": 9, "faults": [{"site": "job.start", "match": "a*"}]}'
        )
        assert plan.seed == 9
        assert plan.faults == [FaultSpec("job.start", "a*", 1, 1.0)]

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"faults": [{"site": "cache.read", "times": 0}]}')
        plan = FaultPlan.from_spec(str(path))
        assert plan.faults == [FaultSpec("cache.read", "*", 0, 1.0)]

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(resilience.FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(
            resilience.FAULT_PLAN_ENV, '{"faults": [{"site": "job.timeout"}]}'
        )
        plan = FaultPlan.from_env()
        assert plan.faults[0].site == "job.timeout"

    def test_roundtrip_through_dict(self):
        plan = FaultPlan(
            [FaultSpec("job.start", "t*", 2, 0.5)], seed=3
        )
        again = FaultPlan.from_dict(plan.as_dict())
        assert again.seed == plan.seed and again.faults == plan.faults

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="job.nonsense")
        with pytest.raises(ValueError, match="times"):
            FaultSpec(site="job.start", times=-1)
        with pytest.raises(ValueError, match="prob"):
            FaultSpec(site="job.start", prob=1.5)
        with pytest.raises(ValueError, match="invalid fault-plan JSON"):
            FaultPlan.from_json("{broken")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")


class TestFaultPlanFiring:
    def test_times_budget_counts_occurrences(self):
        plan = FaultPlan([FaultSpec("job.start", "*", times=2)])
        fired = [plan.fire("job.start", "job-a") is not None for _ in range(4)]
        assert fired == [True, True, False, False]

    def test_counters_are_per_site_and_label(self):
        plan = FaultPlan([FaultSpec("job.start", "*", times=1)])
        assert plan.fire("job.start", "a") is not None
        assert plan.fire("job.start", "b") is not None  # fresh counter
        assert plan.fire("job.start", "a") is None

    def test_times_zero_fires_forever(self):
        plan = FaultPlan([FaultSpec("cache.write", "*", times=0)])
        assert all(plan.fire("cache.write", "k") is not None for _ in range(10))

    def test_match_pattern_filters_labels(self):
        plan = FaultPlan([FaultSpec("job.start", "table1:*", times=0)])
        assert plan.fire("job.start", "table1:iir") is not None
        assert plan.fire("job.start", "table2:iir") is None

    def test_prob_is_deterministic_across_instances(self):
        spec = {"seed": 42, "faults": [{"site": "job.start", "times": 0, "prob": 0.5}]}
        labels = [f"job-{i}" for i in range(64)]

        def draw():
            plan = FaultPlan.from_dict(spec)
            return [plan.fire("job.start", lab) is not None for lab in labels]

        first = draw()
        assert draw() == first  # pure in (seed, site, label, occurrence)
        assert any(first) and not all(first)  # an actual coin, not a constant
        other_seed = FaultPlan.from_dict({**spec, "seed": 43})
        assert [
            other_seed.fire("job.start", lab) is not None for lab in labels
        ] != first

    def test_fault_point_noop_without_plan(self):
        resilience.deactivate()
        resilience.fault_point("job.start", "anything")  # must not raise
        assert resilience.corrupt_point("k", "raw") == "raw"

    def test_fault_point_raises_typed_errors(self):
        with resilience.activated(FaultPlan([FaultSpec("job.start")])):
            with pytest.raises(FaultInjected) as exc:
                resilience.fault_point("job.start", "j")
            assert exc.value.site == "job.start" and exc.value.occurrence == 1
        with resilience.activated(FaultPlan([FaultSpec("job.timeout")])):
            with pytest.raises(JobTimeoutError):
                resilience.fault_point("job.timeout", "j")


class TestRunAttempts:
    def test_retry_then_succeed(self):
        with resilience.activated(_crash_once_plan()):
            payload, outcome, _ = run_attempts(_square, {"x": 4}, "j", FAST)
        assert payload == {"ok": True, "y": 16}
        assert outcome.status == "ok"
        assert outcome.attempts == 2 and outcome.retried == 1
        assert outcome.faults == ["job.start@1"]

    def test_retry_exhaustion_degrades_to_failure_payload(self):
        plan = FaultPlan([FaultSpec("job.start", times=0)])
        with resilience.activated(plan):
            payload, outcome, wall = run_attempts(_square, {"x": 4}, "j", FAST)
        assert payload["ok"] is False and payload["failed"] is True
        assert payload["status"] == "failed"
        assert payload["error_type"] == "FaultInjected"
        assert outcome.status == "failed" and outcome.attempts == 3
        assert outcome.faults == ["job.start@1", "job.start@2", "job.start@3"]

    def test_injected_timeout_reports_timed_out(self):
        plan = FaultPlan([FaultSpec("job.timeout", times=0)])
        with resilience.activated(plan):
            payload, outcome, _ = run_attempts(_square, {"x": 2}, "j", FAST)
        assert payload["status"] == "timed_out"
        assert outcome.status == "timed_out"

    def test_real_deadline_times_out_slow_jobs(self):
        policy = RetryPolicy(max_attempts=2, backoff=0.0, timeout=0.001)
        payload, outcome, _ = run_attempts(
            _slow_square, {"x": 2, "sleep": 0.05}, "slow", policy
        )
        assert outcome.status == "timed_out" and outcome.attempts == 2
        assert payload["ok"] is False
        # A fast job sails under the same deadline.
        payload, outcome, _ = run_attempts(
            _square, {"x": 2}, "fast", policy
        )
        assert outcome.status == "ok" and payload["y"] == 4

    def test_inband_errors_are_not_retried(self):
        calls = []

        def flaky_answer(params):
            calls.append(1)
            return {"ok": False, "error": "deterministic graph error"}

        payload, outcome, _ = run_attempts(flaky_answer, {}, "j", FAST)
        assert len(calls) == 1  # a result, not a crash: no retry
        assert outcome.status == "ok"  # execution succeeded
        assert payload["ok"] is False and "failed" not in payload

    def test_unplanned_exceptions_also_retry(self):
        state = {"n": 0}

        def crashes_once(params):
            state["n"] += 1
            if state["n"] == 1:
                raise OSError("transient")
            return {"ok": True}

        payload, outcome, _ = run_attempts(crashes_once, {}, "j", FAST)
        assert payload == {"ok": True}
        assert outcome.faults == ["OSError@1"]

    def test_backoff_delays_are_capped_exponential(self):
        policy = RetryPolicy(max_attempts=5, backoff=0.1, backoff_cap=0.3)
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == [0.1, 0.2, 0.3, 0.3]
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)


class TestCacheFaultSites:
    def test_cache_read_corruption_quarantines_and_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("square", {"x": 3})
        cache.put(key, {"ok": True, "y": 9})
        plan = FaultPlan([FaultSpec("cache.read", times=1)])
        with resilience.activated(plan):
            assert cache.get(key) is None  # truncated bytes fail the sha
        assert cache.stats.discarded == 1
        assert len(cache.quarantined_entries()) == 1
        # The next read (no fault budget left) recomputes and restores.
        assert cache.get_or_compute(key, lambda: {"ok": True, "y": 9}) == {
            "ok": True,
            "y": 9,
        }

    def test_cache_write_crash_leaves_no_live_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = FaultPlan([FaultSpec("cache.write", times=1)])
        with resilience.activated(plan):
            with pytest.raises(FaultInjected):
                cache.put("aa" * 32, {"ok": True})
            assert len(cache) == 0  # atomic: no torn entry, no temp junk
            assert not list(cache.root.rglob("*.tmp"))
            assert cache.put_safe("aa" * 32, {"ok": True}) is True  # budget spent
        assert cache.get("aa" * 32) == {"ok": True}

    def test_put_safe_degrades_to_counter(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = FaultPlan([FaultSpec("cache.write", times=0)])
        with resilience.activated(plan):
            assert cache.put_safe("bb" * 32, {"ok": True}) is False
        assert cache.stats.write_failures == 1
        assert cache.stats.puts == 0

    def test_get_or_compute_survives_unwritable_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = FaultPlan([FaultSpec("cache.write", times=0)])
        with resilience.activated(plan):
            out = cache.get_or_compute("cc" * 32, lambda: {"ok": True, "v": 7})
        assert out == {"ok": True, "v": 7}  # the payload is never lost


class TestEngineRecovery:
    JOBS = [{"x": i} for i in range(6)]

    def _run(self, jobs_n, plan, tmp_path=None, retry=FAST):
        cache = ResultCache(tmp_path) if tmp_path else None
        engine = ExperimentEngine(jobs=jobs_n, cache=cache, retry=retry)
        if plan is not None:
            with resilience.activated(plan):
                out = engine.map_cached("square", _square, self.JOBS)
        else:
            out = engine.map_cached("square", _square, self.JOBS)
        return out, engine

    def test_recovered_faults_are_bit_identical_to_fault_free(self, tmp_path):
        """The acceptance criterion: inject recoverable faults everywhere,
        get the exact same payloads, with the recovery visible in stats."""
        clean, _ = self._run(1, None, tmp_path / "clean")
        plan = FaultPlan(
            [
                FaultSpec("job.start", "*", times=1),
                FaultSpec("cache.write", "*", times=1),
            ]
        )
        faulted, engine = self._run(1, plan, tmp_path / "faulted")
        assert faulted == clean  # bit-identical recovery
        assert engine.stats.retried == len(self.JOBS)  # every job crashed once
        assert engine.stats.failed == 0 and engine.stats.timed_out == 0
        assert engine.cache.stats.write_failures == len(self.JOBS)

    def test_parallel_recovery_equals_serial_recovery(self, tmp_path):
        plan_doc = {"faults": [{"site": "job.start", "match": "*", "times": 1}]}
        serial, se = self._run(1, FaultPlan.from_dict(plan_doc))
        parallel, pe = self._run(2, FaultPlan.from_dict(plan_doc))
        assert parallel == serial
        assert pe.stats.retried == se.stats.retried == len(self.JOBS)
        assert sorted(o.as_dict()["label"] for o in pe.stats.outcomes) == sorted(
            o.as_dict()["label"] for o in se.stats.outcomes
        )

    @pytest.mark.parametrize("jobs_n", [1, 2])
    def test_unrecoverable_fault_degrades_to_failed_cells(self, jobs_n):
        plan = FaultPlan([FaultSpec("job.start", "square#2", times=0)])
        out, engine = self._run(jobs_n, plan)
        assert len(out) == len(self.JOBS)  # no job is ever lost
        failed = [p for p in out if p.get("failed")]
        assert len(failed) == 1
        assert failed[0]["status"] == "failed"
        ok = [p for p in out if not p.get("failed")]
        assert [p["y"] for p in ok] == [0, 1, 9, 16, 25]
        assert engine.stats.failed == 1
        assert engine.stats.completed == len(self.JOBS) - 1
        summary = engine.failure_summary()
        assert summary is not None and "square#2" in summary
        assert "attempts=3" in summary

    def test_failure_summary_none_on_clean_runs(self):
        _, engine = self._run(1, None)
        assert engine.failure_summary() is None
        assert "0 jobs.retried" in engine.stats_summary()

    def test_stats_summary_reports_resilience_line(self):
        plan = FaultPlan([FaultSpec("job.timeout", "square#0", times=0)])
        _, engine = self._run(1, plan)
        s = engine.stats_summary()
        assert "1 jobs.timed_out" in s
        assert "max 3 attempts/job" in s

    def test_publish_metrics_exports_resilience_gauges(self):
        from repro import observability

        observability.OBS.reset()
        try:
            plan = _crash_once_plan(match="square#0")
            _, engine = self._run(1, plan)
            engine.publish_metrics()
            gauges = observability.OBS.metrics.as_dict()["gauges"]
            assert gauges["jobs.retried"] == 1
            assert gauges["jobs.failed"] == 0
            assert gauges["jobs.timed_out"] == 0
        finally:
            observability.OBS.reset()

    def test_cached_hits_have_no_outcomes(self, tmp_path):
        self._run(1, None, tmp_path)
        warm_out, warm = self._run(1, None, tmp_path)
        assert [p["y"] for p in warm_out] == [i**2 for i in range(6)]
        assert warm.stats.outcomes == []  # hits never execute attempts

    def test_job_matrix_failure_surfaces_job_status(self):
        plan = FaultPlan([FaultSpec("job.timeout", times=0)])
        engine = ExperimentEngine(jobs=1, cache=None, retry=FAST)
        jobs = [Job(transform="original", workload="iir", trip_count=4)]
        with resilience.activated(plan):
            result = engine.run_jobs(jobs)[0]
        assert result.status == "timed_out"
        assert not result.ok
        assert result.outcome is not None and result.outcome.attempts == 3

    def test_cache_corruption_mid_run_recovers(self, tmp_path):
        """Corrupt every first read: a warm run quarantines, recomputes,
        and still returns the exact cold-run payloads."""
        cold, _ = self._run(1, None, tmp_path)
        plan = FaultPlan([FaultSpec("cache.read", "*", times=1)])
        warm, engine = self._run(1, plan, tmp_path)
        assert warm == cold
        assert engine.cache.stats.discarded == len(self.JOBS)
        assert len(engine.cache.quarantined_entries()) == len(self.JOBS)


class TestSweepUnderFaults:
    def test_recoverable_plan_is_bit_identical_and_green(self):
        clean = differential_sweep(
            num_graphs=6, engine=ExperimentEngine(jobs=1, cache=None, retry=FAST)
        )
        plan = _crash_once_plan()
        engine = ExperimentEngine(jobs=1, cache=None, retry=FAST)
        with resilience.activated(plan):
            faulted = differential_sweep(num_graphs=6, engine=engine)
        assert faulted.ok and clean.ok
        assert faulted.checks == clean.checks
        assert faulted.equivalence_checks == clean.equivalence_checks
        assert engine.stats.retried > 0  # the faults really fired
        assert engine.stats.failed == 0

    def test_unrecoverable_plan_reports_failed_cells_not_crash(self):
        plan = FaultPlan([FaultSpec("job.start", "rand*", times=0)])
        engine = ExperimentEngine(jobs=1, cache=None, retry=FAST)
        with resilience.activated(plan):
            report = differential_sweep(num_graphs=3, engine=engine)
        assert not report.ok
        assert report.failures and all(
            f.kind == "failed" for f in report.failures
        )
        assert engine.stats.failed == len(engine.stats.outcomes) > 0


class TestCLI:
    def test_sweep_with_recoverable_fault_plan_exits_zero(self, tmp_path, capsys):
        from repro.__main__ import main

        plan = '{"faults": [{"site": "job.start", "match": "*", "times": 1}]}'
        out_file = tmp_path / "outcomes.json"
        code = main(
            [
                "sweep",
                "--graphs",
                "2",
                "--no-cache",
                "--stats",
                "--fault-plan",
                plan,
                "--outcomes-out",
                str(out_file),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "jobs.retried" in captured.out
        doc = json.loads(out_file.read_text())
        assert doc["stats"]["failed"] == 0
        assert doc["stats"]["retried"] > 0
        assert all(o["status"] == "ok" for o in doc["outcomes"])

    def test_sweep_with_unrecoverable_fault_plan_exits_nonzero(self, capsys):
        from repro.__main__ import main

        plan = '{"faults": [{"site": "job.start", "match": "*", "times": 0}]}'
        code = main(
            ["sweep", "--graphs", "1", "--no-cache", "--fault-plan", plan, "--retries", "2"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "Failure summary" in captured.err
        assert "FAILED after retries" in captured.err
        assert "Traceback" not in captured.err

    def test_tables_render_failed_cells_on_unrecoverable_fault(self, capsys):
        from repro.__main__ import main

        plan = '{"faults": [{"site": "job.start", "match": "table1:iir", "times": 0}]}'
        code = main(["tables", "1", "--no-cache", "--fault-plan", plan, "--retries", "2"])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.out  # the degraded cell, in-table
        assert "Elliptical Filter" in captured.out  # other rows still render
        assert "table1:iir" in captured.err

    def test_env_var_activates_plan_for_cli_runs(self, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv(
            resilience.FAULT_PLAN_ENV,
            '{"faults": [{"site": "job.start", "match": "*", "times": 1}]}',
        )
        code = main(["sweep", "--graphs", "2", "--no-cache", "--stats"])
        captured = capsys.readouterr()
        assert code == 0
        import re

        retried = int(re.search(r"(\d+) jobs\.retried", captured.out).group(1))
        assert retried > 0  # the env-activated plan really fired

    def test_directly_constructed_engines_ignore_env(self, monkeypatch):
        """Only the CLI path consults $REPRO_FAULT_PLAN — library users and
        tests building engines directly are immune."""
        monkeypatch.setenv(
            resilience.FAULT_PLAN_ENV,
            '{"faults": [{"site": "job.start", "match": "*", "times": 0}]}',
        )
        resilience.deactivate()
        engine = ExperimentEngine(jobs=1, cache=None, retry=FAST)
        out = engine.map_cached("square", _square, [{"x": 2}])
        assert out == [{"ok": True, "y": 4}]
        assert engine.stats.failed == 0
