"""Tests for the durable run journal and checkpoint/resume.

The crash-consistency contract under test:

* every appended record survives (fsync'd, checksummed, sequenced);
* a torn *final* line — the only damage a kill -9 can inflict — is
  dropped by the scanner; damage anywhere earlier raises
  :class:`JournalError`;
* resuming from any prefix of a journal reproduces the uninterrupted
  run's payloads bit-identically, re-executing only units without a
  completion record.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    ExperimentEngine,
    JournalError,
    RunCheckpoint,
    RunJournal,
    scan_journal,
)
from repro.runner.journal import JOURNAL_NAME, JOURNAL_VERSION
from repro.runner.resilience import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)

PARAMS = [{"x": i} for i in range(6)]


def _double(params: dict) -> dict:
    return {"ok": True, "y": params["x"] * 2}


def _fail_on_three(params: dict) -> dict:
    if params["x"] == 3:
        raise ValueError("three is right out")
    return {"ok": True, "y": params["x"] * 2}


FAST = RetryPolicy(max_attempts=1, backoff=0.0)


def _journaled_run(run_dir: Path, fn=_double, retry=None) -> list[dict]:
    engine = ExperimentEngine(jobs=1, cache=None, retry=retry)
    engine.journal = RunJournal(run_dir)
    out = engine.map_cached("unit", fn, PARAMS)
    engine.journal.run_end("ok")
    engine.journal.close()
    return out


class TestRecordFormat:
    def test_append_scan_roundtrip(self, tmp_path):
        with RunJournal(tmp_path) as j:
            j.run_start("sweep", {"graphs": 3})
            j.job_submitted("k1", "unit#0")
            j.job_done("k1", "unit#0", {"ok": True}, cached=False)
            j.run_end("ok", {"calls": 1})
        scan = scan_journal(tmp_path / JOURNAL_NAME)
        assert not scan.torn
        assert [r["type"] for r in scan.records] == [
            "run.start",
            "job.submitted",
            "job.done",
            "run.end",
        ]
        assert [r["seq"] for r in scan.records] == [1, 2, 3, 4]
        assert scan.finished
        assert scan.start_record() == {
            "command": "sweep",
            "config": {"graphs": 3},
            "resumed": False,
        }
        assert scan.completed() == {
            "k1": {
                "key": "k1",
                "label": "unit#0",
                "payload": {"ok": True},
                "cached": False,
                "outcome": None,
            }
        }
        assert scan.pending() == {}

    def test_every_record_is_checksummed_and_versioned(self, tmp_path):
        with RunJournal(tmp_path) as j:
            j.run_start("sweep", {})
        for line in (tmp_path / JOURNAL_NAME).read_text().splitlines():
            doc = json.loads(line)
            assert doc["v"] == JOURNAL_VERSION
            assert len(doc["sha"]) == 16

    def test_unknown_record_type_rejected(self, tmp_path):
        with RunJournal(tmp_path) as j:
            with pytest.raises(ValueError, match="unknown journal record type"):
                j.append("job.exploded", {})

    def test_reopened_journal_continues_the_sequence(self, tmp_path):
        with RunJournal(tmp_path) as j:
            j.run_start("sweep", {})
            j.job_submitted("k", "l")
        with RunJournal(tmp_path) as j:
            j.job_done("k", "l", {"ok": True})
        assert [r["seq"] for r in scan_journal(tmp_path / JOURNAL_NAME).records] == [
            1,
            2,
            3,
        ]

    def test_journal_is_lazy_until_first_append(self, tmp_path):
        j = RunJournal(tmp_path / "sub")
        assert not (tmp_path / "sub").exists()
        j.run_start("sweep", {})
        assert (tmp_path / "sub" / JOURNAL_NAME).exists()
        j.close()


class TestScannerDamageModel:
    def _write(self, tmp_path) -> Path:
        with RunJournal(tmp_path) as j:
            j.run_start("sweep", {})
            j.job_submitted("k1", "a")
            j.job_done("k1", "a", {"ok": True})
            j.job_submitted("k2", "b")
        return tmp_path / JOURNAL_NAME

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        scan = scan_journal(path)
        assert scan.torn
        assert len(scan.records) == 3
        assert scan.pending() == {}  # k2's submission was the torn line

    def test_midfile_corruption_raises(self, tmp_path):
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # torn, but NOT final
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt journal record at line 2"):
            scan_journal(path)

    def test_tampered_record_fails_its_checksum(self, tmp_path):
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        lines[2] = lines[2].replace('"ok":true', '"ok":false')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="checksum mismatch"):
            scan_journal(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        del lines[1]  # a record vanished from the middle
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="sequence gap"):
            scan_journal(path)

    def test_unsupported_version_raises_even_on_final_line(self, tmp_path):
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        doc = json.loads(lines[-1])
        doc["v"] = 99
        lines[-1] = json.dumps(doc)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="unsupported journal version"):
            scan_journal(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read journal"):
            scan_journal(tmp_path / "nope" / JOURNAL_NAME)


class TestJournalWriteFaultSite:
    def test_fault_tears_the_record_and_raises(self, tmp_path):
        from repro.runner import resilience

        plan = FaultPlan([FaultSpec("journal.write", "job.done", times=1)])
        resilience.activate(plan)
        try:
            j = RunJournal(tmp_path)
            j.run_start("sweep", {})
            j.job_submitted("k", "l")
            with pytest.raises(FaultInjected):
                j.job_done("k", "l", {"ok": True})
            j.close()
        finally:
            resilience.deactivate()
        # The torn half-record hit the disk — exactly a crash signature —
        # and the scanner recovers everything before it.
        scan = scan_journal(tmp_path / JOURNAL_NAME)
        assert scan.torn
        assert [r["type"] for r in scan.records] == ["run.start", "job.submitted"]
        assert scan.pending() == {"k": "l"}


class TestEngineResume:
    def test_uninterrupted_journal_replays_everything(self, tmp_path):
        ref = _journaled_run(tmp_path)
        engine = ExperimentEngine(jobs=1, cache=None)
        engine.load_resume_state(scan_journal(tmp_path / JOURNAL_NAME))
        out = engine.map_cached("unit", _double, PARAMS)
        assert out == ref
        assert engine.stats.resumed == len(PARAMS)
        assert engine.stats.computed == 0

    def test_resume_from_prefix_reexecutes_only_pending(self, tmp_path):
        ref = _journaled_run(tmp_path)
        path = tmp_path / JOURNAL_NAME
        lines = path.read_text().splitlines()
        # Keep run.start + the first 3 submitted/done pairs.
        path.write_text("\n".join(lines[:7]) + "\n")
        scan = scan_journal(path)
        done = len(scan.completed())
        engine = ExperimentEngine(jobs=1, cache=None)
        engine.load_resume_state(scan)
        engine.journal = RunJournal(tmp_path)
        out = engine.map_cached("unit", _double, PARAMS)
        engine.journal.close()
        assert out == ref  # bit-identical to the uninterrupted run
        assert engine.stats.resumed == done
        assert engine.stats.computed == len(PARAMS) - done
        # The resumed run's journal now completes the record set.
        assert scan_journal(path).pending() == {}

    def test_rehydrated_payloads_are_independent_copies(self, tmp_path):
        _journaled_run(tmp_path)
        engine = ExperimentEngine(jobs=1, cache=None)
        engine.load_resume_state(scan_journal(tmp_path / JOURNAL_NAME))
        first = engine.map_cached("unit", _double, PARAMS)
        first[0]["y"] = "mutated"
        second = ExperimentEngine(jobs=1, cache=None)
        second.load_resume_state(scan_journal(tmp_path / JOURNAL_NAME))
        assert second.map_cached("unit", _double, PARAMS)[0] == {"ok": True, "y": 0}

    def test_failed_units_rehydrate_with_their_outcome(self, tmp_path):
        ref = _journaled_run(tmp_path, fn=_fail_on_three, retry=FAST)
        assert ref[3]["ok"] is False
        engine = ExperimentEngine(jobs=1, cache=None, retry=FAST)
        engine.load_resume_state(scan_journal(tmp_path / JOURNAL_NAME))
        out = engine.map_cached("unit", _fail_on_three, PARAMS)
        assert out == ref
        assert engine.stats.failed == 1
        assert engine.stats.resumed == len(PARAMS)
        resumed = [o for o in engine.stats.outcomes if o.resumed]
        assert len(resumed) == len(PARAMS)
        assert engine.failure_summary() is not None
        assert "three is right out" in engine.failure_summary()

    def test_journal_off_by_default_and_costs_nothing(self):
        engine = ExperimentEngine(jobs=1, cache=None)
        assert engine.journal is None and engine.resume_state == {}
        assert engine.map_cached("unit", _double, PARAMS) == [
            {"ok": True, "y": p["x"] * 2} for p in PARAMS
        ]

    @given(
        prefix_lines=st.integers(min_value=0, max_value=14),
        torn_tail=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_resume_from_any_crash_prefix_is_bit_identical(
        self, prefix_lines, torn_tail
    ):
        """The chaos property: kill the journal after ANY record prefix
        (optionally with a torn partial record after it, as a real crash
        leaves) and the resumed run's payloads equal the uninterrupted
        run's exactly."""
        with tempfile.TemporaryDirectory() as d:
            run_dir = Path(d)
            ref = _journaled_run(run_dir)
            path = run_dir / JOURNAL_NAME
            lines = path.read_text().splitlines()
            keep = lines[: min(prefix_lines, len(lines))]
            text = ("\n".join(keep) + "\n") if keep else ""
            if torn_tail and prefix_lines < len(lines):
                text += lines[prefix_lines][: len(lines[prefix_lines]) // 2]
            path.write_text(text)

            scan = scan_journal(path)
            engine = ExperimentEngine(jobs=1, cache=None)
            engine.load_resume_state(scan)
            engine.journal = RunJournal(run_dir)
            out = engine.map_cached("unit", _double, PARAMS)
            engine.journal.close()
            assert out == ref
            assert engine.stats.resumed == len(scan.completed())
            assert engine.stats.resumed + engine.stats.computed == len(PARAMS)


class TestRunCheckpoint:
    def test_fresh_then_resume_lifecycle(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=None)
        ck = RunCheckpoint(tmp_path)
        ck.attach(engine, "sweep", {"graphs": 2})
        engine.map_cached("unit", _double, PARAMS)
        ck.finish(engine, "ok")

        ck2 = RunCheckpoint(tmp_path, resume=True)
        assert ck2.restore_config("sweep") == {"graphs": 2}
        engine2 = ExperimentEngine(jobs=1, cache=None)
        ck2.attach(engine2, "sweep", {"graphs": 2})
        out = engine2.map_cached("unit", _double, PARAMS)
        ck2.finish(engine2, "ok")
        assert engine2.stats.resumed == len(PARAMS)
        assert out == [{"ok": True, "y": p["x"] * 2} for p in PARAMS]
        # Both lifecycles recorded their run.start/run.end.
        scan = scan_journal(tmp_path / JOURNAL_NAME)
        starts = [r["data"] for r in scan.records if r["type"] == "run.start"]
        assert [s["resumed"] for s in starts] == [False, True]

    def test_resume_wrong_command_rejected(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=None)
        ck = RunCheckpoint(tmp_path)
        ck.attach(engine, "sweep", {})
        ck.finish(engine)
        with pytest.raises(JournalError, match="cannot resume it as 'tables'"):
            RunCheckpoint(tmp_path, resume=True).restore_config("tables")

    def test_resume_without_start_record_rejected(self, tmp_path):
        with RunJournal(tmp_path) as j:
            j.job_submitted("k", "l")
        with pytest.raises(JournalError, match="no run.start record"):
            RunCheckpoint(tmp_path, resume=True).restore_config("sweep")


class TestCLIResume:
    def test_sweep_resume_after_truncated_journal_matches_reference(
        self, tmp_path, capsys
    ):
        from repro.__main__ import main

        argv = ["sweep", "--graphs", "2", "--seed", "5", "--no-cache"]
        assert main(argv) == 0
        ref = capsys.readouterr().out

        run_dir = tmp_path / "run"
        assert main(argv + ["--journal", str(run_dir)]) == 0
        capsys.readouterr()
        path = run_dir / JOURNAL_NAME
        lines = path.read_text().splitlines()
        # Drop the run.end and the last third of the records, plus leave a
        # torn tail — the on-disk state an actual kill -9 produces.
        keep = lines[: 2 * len(lines) // 3]
        path.write_text("\n".join(keep) + "\n" + lines[-2][:20])

        assert main(["sweep", "--resume", str(run_dir)]) == 0
        assert capsys.readouterr().out == ref
        final = scan_journal(path)
        assert final.finished and final.pending() == {}

    def test_journal_and_resume_flags_are_mutually_exclusive(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["sweep", "--journal", "a", "--resume", "b"])

    def test_corrupt_journal_resume_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        run_dir = tmp_path / "run"
        assert (
            main(
                [
                    "sweep",
                    "--graphs",
                    "1",
                    "--no-cache",
                    "--journal",
                    str(run_dir),
                ]
            )
            == 0
        )
        capsys.readouterr()
        path = run_dir / JOURNAL_NAME
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # mid-file damage, not a crash signature
        path.write_text("\n".join(lines) + "\n")
        assert main(["sweep", "--resume", str(run_dir)]) == 2
        err = capsys.readouterr().err
        assert "corrupt journal record" in err
        assert "Traceback" not in err
