"""The multi-run scanner on heterogeneous, hostile run directories.

``scan_run_dirs`` is the report pipeline's only filesystem interface,
so its contract is strict: *never raise* for bad inputs — mixed record
versions, torn tails, mid-file damage, junk files, empty and missing
directories all degrade to skip-and-report — and produce deterministic,
location-independent results.
"""

from __future__ import annotations

import json

import pytest

from repro.runner.journal import (
    JOURNAL_VERSION,
    MultiRunScan,
    RunJournal,
    scan_run_dirs,
)


def write_run(run_dir, command="sweep", units=2, finish=True):
    journal = RunJournal(run_dir, fsync=False)
    journal.run_start(command, {"units": units})
    for i in range(units):
        key, label = f"k{i}", f"rand{i}/pipelined/f=1/n=0"
        journal.job_submitted(key, label)
        journal.job_done(
            key, label, {"ok": True, "code_size": 5 + i}, outcome={"status": "ok"}
        )
    if finish:
        journal.run_end("ok")
    journal.close()
    return run_dir / "journal.jsonl"


OUTCOMES_DOC = {"stats": {"calls": 1, "completed": 1, "failed": 0}, "outcomes": []}
BENCH_DOC = {"benchmark": "iir", "results": {"baseline": []}}


class TestHappyPath:
    def test_full_tree(self, tmp_path):
        write_run(tmp_path / "runs" / "a")
        write_run(tmp_path / "runs" / "b", command="tables")
        (tmp_path / "runs" / "outcomes.json").write_text(json.dumps(OUTCOMES_DOC))
        (tmp_path / "runs" / "BENCH_iir.json").write_text(json.dumps(BENCH_DOC))
        scan = scan_run_dirs([tmp_path / "runs"])
        assert [j.name for j in scan.journals] == [
            "runs/a/journal.jsonl",
            "runs/b/journal.jsonl",
        ]
        assert [j.command for j in scan.journals] == ["sweep", "tables"]
        assert [n for n, _ in scan.outcomes] == ["runs/outcomes.json"]
        assert [n for n, _ in scan.benches] == ["runs/BENCH_iir.json"]
        assert scan.skipped == []
        assert not scan.empty

    def test_file_roots_and_dedup(self, tmp_path):
        path = write_run(tmp_path / "a")
        # The same journal via its file and its directory: one entry.
        scan = scan_run_dirs([path, tmp_path / "a"])
        assert len(scan.journals) == 1
        # Same directory twice: still one entry.
        scan = scan_run_dirs([tmp_path / "a", tmp_path / "a"])
        assert len(scan.journals) == 1

    def test_two_roots_with_same_layout_do_not_collide(self, tmp_path):
        write_run(tmp_path / "runA")
        write_run(tmp_path / "runB", units=3)
        scan = scan_run_dirs([tmp_path / "runA", tmp_path / "runB"])
        assert [j.name for j in scan.journals] == [
            "runA/journal.jsonl",
            "runB/journal.jsonl",
        ]

    def test_argument_order_is_irrelevant(self, tmp_path):
        write_run(tmp_path / "a")
        write_run(tmp_path / "b", command="tables")
        forward = scan_run_dirs([tmp_path / "a", tmp_path / "b"])
        backward = scan_run_dirs([tmp_path / "b", tmp_path / "a"])
        assert [j.name for j in forward.journals] == [
            j.name for j in backward.journals
        ]
        assert forward.skipped == backward.skipped

    def test_config_exposed(self, tmp_path):
        write_run(tmp_path / "a", units=4)
        scan = scan_run_dirs([tmp_path / "a"])
        assert scan.journals[0].config == {"units": 4}


class TestDegradedInputs:
    def test_missing_root_is_skipped(self, tmp_path):
        scan = scan_run_dirs([tmp_path / "nope"])
        assert scan.empty
        assert scan.skipped[0].reason == "does not exist"

    def test_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        scan = scan_run_dirs([tmp_path / "empty"])
        assert scan.empty and scan.skipped == []

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = write_run(tmp_path / "a", finish=False)
        with open(path, "a") as fh:
            fh.write('{"v": 1, "seq": 99, "ty')  # the crash signature
        scan = scan_run_dirs([tmp_path / "a"])
        assert len(scan.journals) == 1
        assert scan.journals[0].scan.torn
        assert scan.skipped == []

    def test_midfile_damage_is_skipped_not_fatal(self, tmp_path):
        path = write_run(tmp_path / "a")
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-10] + lines[1][-10:].swapcase()
        path.write_text("\n".join(lines) + "\n")
        scan = scan_run_dirs([tmp_path / "a"])
        assert scan.journals == []
        assert len(scan.skipped) == 1
        assert "a/journal.jsonl" in scan.skipped[0].name

    def test_unknown_record_version_is_skipped(self, tmp_path):
        path = write_run(tmp_path / "a")
        bumped = path.read_text().replace(
            f'"v": {JOURNAL_VERSION}', f'"v": {JOURNAL_VERSION + 1}'
        ).replace(f'"v":{JOURNAL_VERSION}', f'"v":{JOURNAL_VERSION + 1}')
        path.write_text(bumped)
        scan = scan_run_dirs([tmp_path / "a"])
        assert scan.journals == []
        assert len(scan.skipped) == 1
        assert "version" in scan.skipped[0].reason

    def test_empty_journal_file_is_skipped(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "a" / "journal.jsonl").write_text("")
        scan = scan_run_dirs([tmp_path / "a"])
        assert scan.journals == []
        assert scan.skipped[0].reason == "no valid journal records"

    @pytest.mark.parametrize(
        "name,content,expect_reason",
        [
            ("broken.json", "{nope", "unparseable JSON"),
            ("other.json", '{"neither": 1}', "unrecognized JSON document"),
            ("list.json", "[1, 2, 3]", "unrecognized JSON document"),
        ],
    )
    def test_junk_json_is_skipped_with_reason(
        self, tmp_path, name, content, expect_reason
    ):
        (tmp_path / "a").mkdir()
        (tmp_path / "a" / name).write_text(content)
        scan = scan_run_dirs([tmp_path / "a"])
        assert len(scan.skipped) == 1
        assert expect_reason in scan.skipped[0].reason

    def test_non_json_files_are_ignored_silently(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "a" / "notes.txt").write_text("text")
        (tmp_path / "a" / "gap_table.tsv").write_text("1\t2")
        (tmp_path / "a" / ".gitkeep").write_text("")
        scan = scan_run_dirs([tmp_path / "a"])
        assert scan.empty and scan.skipped == []

    def test_one_bad_journal_costs_one_input(self, tmp_path):
        """The report contract: a damaged journal never poisons its
        healthy siblings."""
        write_run(tmp_path / "runs" / "good")
        bad = write_run(tmp_path / "runs" / "bad")
        bad.write_text("complete garbage\nacross two lines\nand a third\n")
        scan = scan_run_dirs([tmp_path / "runs"])
        assert [j.name for j in scan.journals] == ["runs/good/journal.jsonl"]
        assert [s.name for s in scan.skipped] == ["runs/bad/journal.jsonl"]

    def test_heterogeneous_tree_partitions_cleanly(self, tmp_path):
        root = tmp_path / "runs"
        write_run(root / "a")
        write_run(root / "b", finish=False)
        (root / "outcomes.json").write_text(json.dumps(OUTCOMES_DOC))
        (root / "BENCH_x.json").write_text(json.dumps(BENCH_DOC))
        (root / "junk.json").write_text("{oops")
        (root / "README.md").write_text("# runs")
        scan = scan_run_dirs([root])
        assert isinstance(scan, MultiRunScan)
        assert len(scan.journals) == 2
        assert len(scan.outcomes) == 1
        assert len(scan.benches) == 1
        assert len(scan.skipped) == 1
        # Unfinished runs are still aggregated (resume may be coming).
        assert [j.scan.finished for j in scan.journals] == [True, False]
