"""Tests for the supervised process pool: workers that die and hang.

SIGKILL'd workers (the ``worker.kill`` fault site) and SIGSTOP'd workers
(a stale heartbeat — the hang signature) must both be detected, the
worker respawned and the task requeued; tasks that destroy every worker
they touch degrade into FAILED envelopes under the
``completed + failed + timed_out == submitted`` accounting.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.runner import (
    ExperimentEngine,
    SupervisedPool,
    resilience,
    sweep_orphan_heartbeats,
)
from repro.runner.resilience import FaultPlan, FaultSpec, RetryPolicy

PARAMS = [{"x": i} for i in range(6)]


def _square(params: dict) -> dict:
    return {"ok": True, "y": params["x"] * params["x"]}


def _hang_once(params: dict) -> dict:
    """SIGSTOP the worker on the first dispatch (flag file absent); run
    normally on a redispatch.  SIGSTOP freezes every thread — including
    the heartbeat — which is exactly the hang the monitor must detect."""
    flag = params.get("flag")
    if flag and not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("stopped once")
        os.kill(os.getpid(), signal.SIGSTOP)
    return {"ok": True, "y": params["x"]}


def _hang_always(params: dict) -> dict:
    os.kill(os.getpid(), signal.SIGSTOP)
    return {"ok": True}  # unreachable: the worker is stopped until killed


def _run_supervised(
    plan=None,
    fn=_square,
    params=PARAMS,
    retry=None,
    heartbeat_timeout=30.0,
):
    if plan is not None:
        resilience.activate(plan)
    try:
        engine = ExperimentEngine(
            jobs=2,
            cache=None,
            retry=retry,
            supervised=True,
            heartbeat_timeout=heartbeat_timeout,
        )
        out = engine.map_cached("unit", fn, params)
        return out, engine
    finally:
        resilience.deactivate()


class TestPoolBasics:
    def test_matches_serial_results_in_submission_order(self):
        serial = ExperimentEngine(jobs=1, cache=None).map_cached(
            "unit", _square, PARAMS
        )
        out, engine = _run_supervised()
        assert out == serial
        assert engine.stats.respawned == 0
        assert engine.stats.completed == len(PARAMS)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            SupervisedPool(0)
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            SupervisedPool(2, heartbeat_timeout=0.0)

    def test_empty_task_list(self):
        assert SupervisedPool(2).run([]) == []


class TestDeadWorkerRecovery:
    def test_sigkilled_worker_is_respawned_and_task_requeued(self):
        plan = FaultPlan([FaultSpec("worker.kill", "unit#2", times=1)])
        out, engine = _run_supervised(plan)
        assert out == [{"ok": True, "y": p["x"] ** 2} for p in PARAMS]
        assert engine.stats.respawned == 1
        assert engine.stats.completed == len(PARAMS)
        assert engine.stats.failed == 0 and engine.stats.timed_out == 0
        victim = next(o for o in engine.stats.outcomes if o.label == "unit#2")
        assert victim.status == "ok"
        assert victim.respawned == 1
        assert any(f.startswith("worker.dead@1") for f in victim.faults)

    def test_multiple_victims_all_recover(self):
        plan = FaultPlan(
            [
                FaultSpec("worker.kill", "unit#1", times=1),
                FaultSpec("worker.kill", "unit#4", times=1),
            ]
        )
        out, engine = _run_supervised(plan)
        assert out == [{"ok": True, "y": p["x"] ** 2} for p in PARAMS]
        assert engine.stats.respawned == 2
        assert engine.stats.completed == len(PARAMS)

    def test_poisoned_task_degrades_to_failed(self):
        """A task that kills EVERY worker it touches must exhaust its
        dispatch budget and fail — without wedging the other tasks."""
        plan = FaultPlan([FaultSpec("worker.kill", "unit#0", times=0)])
        retry = RetryPolicy(max_attempts=2, backoff=0.0)
        out, engine = _run_supervised(plan, retry=retry)
        assert out[0]["ok"] is False
        assert out[0]["error_type"] == "WorkerCrash"
        assert out[1:] == [{"ok": True, "y": p["x"] ** 2} for p in PARAMS[1:]]
        assert engine.stats.failed == 1
        assert engine.stats.respawned == 2  # one per doomed dispatch
        assert (
            engine.stats.completed + engine.stats.failed + engine.stats.timed_out
            == len(PARAMS)
        )
        victim = next(o for o in engine.stats.outcomes if o.label == "unit#0")
        assert victim.status == "failed"
        assert victim.attempts == 2 and victim.respawned == 2


class TestHungWorkerRecovery:
    def test_sigstopped_worker_is_killed_respawned_and_task_redispatched(
        self, tmp_path
    ):
        params = [dict(p) for p in PARAMS]
        params[2]["flag"] = str(tmp_path / "hang-once")
        out, engine = _run_supervised(
            fn=_hang_once, params=params, heartbeat_timeout=0.6
        )
        assert out == [{"ok": True, "y": p["x"]} for p in PARAMS]
        assert engine.stats.respawned >= 1
        assert engine.stats.completed == len(PARAMS)
        victim = next(o for o in engine.stats.outcomes if o.label == "unit#2")
        assert victim.status == "ok"
        assert any(f.startswith("worker.hung@") for f in victim.faults)

    def test_always_hanging_task_times_out(self):
        retry = RetryPolicy(max_attempts=2, backoff=0.0)
        out, engine = _run_supervised(
            fn=_hang_always,
            params=[{"x": 0}, {"x": 1}],
            retry=retry,
            heartbeat_timeout=0.5,
        )
        assert all(p["ok"] is False for p in out)
        assert engine.stats.timed_out == 2
        assert (
            engine.stats.completed + engine.stats.failed + engine.stats.timed_out
            == 2
        )
        for o in engine.stats.outcomes:
            assert o.status == "timed_out"
            assert o.attempts == 2
            assert any(f.startswith("worker.hung@") for f in o.faults)


class TestJournalIntegration:
    def test_supervised_run_journals_completions_and_resumes(self, tmp_path):
        from repro.runner import RunJournal, scan_journal
        from repro.runner.journal import JOURNAL_NAME

        plan = FaultPlan([FaultSpec("worker.kill", "unit#1", times=1)])
        resilience.activate(plan)
        try:
            engine = ExperimentEngine(
                jobs=2, cache=None, supervised=True, heartbeat_timeout=30.0
            )
            engine.journal = RunJournal(tmp_path)
            ref = engine.map_cached("unit", _square, PARAMS)
            engine.journal.close()
        finally:
            resilience.deactivate()
        scan = scan_journal(tmp_path / JOURNAL_NAME)
        assert scan.pending() == {}
        assert len(scan.completed()) == len(PARAMS)

        resumed = ExperimentEngine(jobs=1, cache=None)
        resumed.load_resume_state(scan)
        assert resumed.map_cached("unit", _square, PARAMS) == ref
        assert resumed.stats.resumed == len(PARAMS)


def _dead_pid() -> int:
    """A pid guaranteed dead: a reaped child's."""
    import subprocess
    import sys

    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestOrphanHeartbeatSweep:
    def test_removes_dead_owner_dirs_only(self, tmp_path):
        dead = tmp_path / f"repro-supervisor-pid{_dead_pid()}-a1b2"
        live = tmp_path / f"repro-supervisor-pid{os.getpid()}-c3d4"
        foreign = tmp_path / "repro-supervisor-c3d4"  # pre-pid naming
        unparseable = tmp_path / "repro-supervisor-pidxyz-e5f6"
        for d in (dead, live, foreign, unparseable):
            d.mkdir()
            (d / "hb-0").write_text("beat")
        not_a_dir = tmp_path / f"repro-supervisor-pid{_dead_pid()}-file"
        not_a_dir.write_text("stray file, not a heartbeat dir")

        assert sweep_orphan_heartbeats(tmp_path) == 1
        assert not dead.exists()
        assert live.exists() and foreign.exists() and unparseable.exists()
        assert not_a_dir.exists()
        # Idempotent: a second sweep finds nothing left to reap.
        assert sweep_orphan_heartbeats(tmp_path) == 0

    def test_pool_run_sweeps_orphans_on_start(self):
        import tempfile
        from pathlib import Path

        orphan = Path(tempfile.gettempdir()) / (
            f"repro-supervisor-pid{_dead_pid()}-testorphan"
        )
        orphan.mkdir()
        (orphan / "hb-0").write_text("beat")
        try:
            out = SupervisedPool(1).run(
                [(_square, {"x": 3}, "k0", None, False, "unit#0", None, None)]
            )
            assert out[0]["payload"]["ok"] and out[0]["payload"]["y"] == 9
            assert not orphan.exists()  # swept before the run started
        finally:
            if orphan.exists():
                import shutil

                shutil.rmtree(orphan, ignore_errors=True)
