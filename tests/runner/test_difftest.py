"""The randomized differential harness on a small (fast) sweep.

The 200-graph acceptance sweep runs via ``python -m repro sweep`` (and in
CI); here a smaller seeded sweep keeps tier-1 runtime bounded while still
crossing every transformation order.
"""

from __future__ import annotations

from repro.runner import (
    DIFFTEST_TRANSFORMS,
    ExperimentEngine,
    ResultCache,
    differential_jobs,
    differential_sweep,
)


class TestDifferentialSweep:
    def test_small_sweep_passes(self):
        report = differential_sweep(
            num_graphs=12, engine=ExperimentEngine(jobs=1, cache=None)
        )
        assert report.ok, report.summary()
        assert report.graphs == 12
        assert report.inequality_checks == 12 * 2  # two factors
        assert report.equivalence_checks > 300
        assert "PASS" in report.summary()

    def test_sweep_is_deterministic(self):
        a = differential_sweep(num_graphs=4, seed=100)
        b = differential_sweep(num_graphs=4, seed=100)
        assert (a.checks, a.equivalence_checks, a.failures) == (
            b.checks,
            b.equivalence_checks,
            b.failures,
        )

    def test_sweep_is_incremental_through_the_cache(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        differential_sweep(num_graphs=3, engine=engine)
        computed_first = engine.stats.computed
        assert computed_first > 0
        differential_sweep(num_graphs=3, engine=engine)
        assert engine.stats.computed == computed_first  # second pass: all hits

    def test_jobs_cover_every_transform(self):
        jobs = differential_jobs(seed=0)
        assert {j.transform for j in jobs} == set(DIFFTEST_TRANSFORMS)
        # The graph is identical across the seed's jobs (one generation).
        assert len({j.graph_json for j in jobs}) == 1

    def test_failure_reporting_shape(self):
        # Factor 0 is rejected by the transforms: every cell errors in-band
        # and the report collects them instead of raising.
        report = differential_sweep(
            num_graphs=1,
            factors=(0,),
            transforms=("csr-unfolded",),
            engine=ExperimentEngine(jobs=1, cache=None),
        )
        assert not report.ok
        assert report.failures[0].kind == "error"
        assert "FAIL" in report.summary()
