"""Engine behavior: ordering, parallelism, stats, and the job matrix."""

from __future__ import annotations

import pytest

from repro.runner import (
    ExperimentEngine,
    Job,
    NullCache,
    ResultCache,
    TRANSFORMS,
    jobs_for_matrix,
)


def _matrix() -> list[Job]:
    return jobs_for_matrix(
        workloads=["iir", "figure4"],
        transforms=["original", "csr-pipelined", "csr-retime-unfold", "orders"],
        factors=[2, 3],
        trip_counts=[0, 9],
    )


class TestEngine:
    def test_results_in_submission_order(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        jobs = _matrix()
        results = engine.run_jobs(jobs)
        assert [r.job for r in results] == jobs
        assert all(r.ok for r in results), [r.error for r in results if not r.ok]

    def test_parallel_equals_serial(self, tmp_path):
        """Determinism under parallelism: a 2-worker pool returns payloads
        bit-identical to an inline run of the same matrix."""
        jobs = _matrix()
        serial = ExperimentEngine(jobs=1, cache=None).run_jobs(jobs)
        parallel = ExperimentEngine(jobs=2, cache=None).run_jobs(jobs)
        assert [r.payload for r in serial] == [r.payload for r in parallel]

    def test_second_run_is_all_hits(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        jobs = _matrix()
        first = engine.run_jobs(jobs)
        assert not any(r.cached for r in first)
        second = engine.run_jobs(jobs)
        assert all(r.cached for r in second)
        assert [r.payload for r in first] == [r.payload for r in second]
        assert engine.cache.stats.hit_rate == 0.5  # second half all hits

    def test_cross_engine_cache_sharing(self, tmp_path):
        """Two engines over one cache dir: the second replays the first."""
        jobs = _matrix()
        a = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        b = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        pa = [r.payload for r in a.run_jobs(jobs)]
        rb = b.run_jobs(jobs)
        assert all(r.cached for r in rb)
        assert [r.payload for r in rb] == pa

    def test_stats_accumulate(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        jobs = _matrix()
        engine.run_jobs(jobs)
        s = engine.stats
        assert s.calls == len(jobs)
        assert s.computed == len(jobs)
        assert s.vm_executed > 0
        assert s.wall_time > 0
        assert len(s.job_times) == len(jobs)
        summary = engine.stats_summary()
        assert "hit rate" in summary and "computes executed" in summary

    def test_map_cached_generic_fn(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        out = engine.map_cached("square", _square, [{"x": i} for i in range(5)])
        assert [p["y"] for p in out] == [0, 1, 4, 9, 16]
        again = engine.map_cached("square", _square, [{"x": i} for i in range(5)])
        assert again == out
        assert engine.cache.stats.hits == 5

    def test_engine_jobs_zero_means_cpu_count(self):
        assert ExperimentEngine(jobs=0, cache=None).jobs >= 1
        assert isinstance(ExperimentEngine(jobs=0, cache=None).cache, NullCache)


def _square(params: dict) -> dict:
    return {"ok": True, "y": params["x"] ** 2}


class TestJobMatrix:
    def test_factorless_transforms_not_duplicated(self):
        jobs = jobs_for_matrix(["iir"], ["csr-pipelined"], [2, 3, 4], [5])
        assert len(jobs) == 1  # factor-independent: one cell, not three

    def test_factorful_transforms_sweep_factors(self):
        jobs = jobs_for_matrix(["iir"], ["csr-unfolded"], [2, 3, 4], [5, 6])
        assert len(jobs) == 6

    def test_unknown_transform_rejected(self):
        with pytest.raises(ValueError, match="unknown transform"):
            Job(transform="nonsense", workload="iir")

    def test_graph_source_is_exclusive(self):
        with pytest.raises(ValueError, match="exactly one"):
            Job(transform="original")
        with pytest.raises(ValueError, match="exactly one"):
            Job(transform="original", workload="iir", graph_json="{}")

    def test_all_transforms_run_on_a_benchmark(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=None)
        jobs = [
            Job(transform=t, workload="figure4", factor=2, trip_count=8)
            for t in TRANSFORMS
        ]
        results = engine.run_jobs(jobs)
        failed = [r.job.label for r in results if not r.ok]
        assert not failed, failed


class TestCrossProcessStats:
    """Workers own cache I/O in parallel mode; their stats deltas must
    merge into the parent so ``--stats`` reports fleet-wide numbers."""

    JOBS = [{"x": i} for i in range(6)]

    def test_cold_parallel_run_pins_miss_and_put_totals(self, tmp_path):
        engine = ExperimentEngine(jobs=2, cache=ResultCache(tmp_path))
        engine.map_cached("square", _square, self.JOBS)
        c = engine.cache.stats
        assert c.as_dict() == {
            "hits": 0,
            "misses": len(self.JOBS),
            "puts": len(self.JOBS),
            "discarded": 0,
            "write_failures": 0,
            "quarantine_pruned": 0,
        }

    def test_warm_parallel_run_pins_aggregate_hits(self, tmp_path):
        ExperimentEngine(jobs=2, cache=ResultCache(tmp_path)).map_cached(
            "square", _square, self.JOBS
        )
        warm = ExperimentEngine(jobs=2, cache=ResultCache(tmp_path))
        out = warm.map_cached("square", _square, self.JOBS)
        assert [p["y"] for p in out] == [i**2 for i in range(6)]
        c = warm.cache.stats
        # The pinned fleet-wide aggregate: every lookup happened in some
        # worker process, yet the parent reports them all.
        assert c.hits == len(self.JOBS)
        assert c.misses == 0
        assert c.hit_rate == 1.0
        assert warm.stats.computed == 0

    def test_parallel_null_cache_counts_worker_misses(self):
        engine = ExperimentEngine(jobs=2, cache=None)
        engine.map_cached("square", _square, self.JOBS)
        assert engine.cache.stats.misses == len(self.JOBS)
        assert engine.cache.stats.puts == 0

    def test_publish_metrics_exports_fleet_hit_rate(self, tmp_path):
        from repro import observability

        observability.OBS.reset()
        try:
            ExperimentEngine(jobs=2, cache=ResultCache(tmp_path)).map_cached(
                "square", _square, self.JOBS
            )
            warm = ExperimentEngine(jobs=2, cache=ResultCache(tmp_path))
            warm.map_cached("square", _square, self.JOBS)
            warm.publish_metrics()
            gauges = observability.OBS.metrics.as_dict()["gauges"]
            assert gauges["cache.hit_rate"] == 100.0
            assert gauges["cache.lookups"] == len(self.JOBS)
            assert gauges["engine.computed"] == 0
        finally:
            observability.OBS.reset()

    def test_worker_spans_and_counters_aggregate(self, tmp_path):
        """With observability on, worker-process spans land under the
        parent's engine.map span and worker counters merge into the
        parent registry — equal to what a serial run records."""
        from repro import observability
        from repro.runner.jobs import Job

        jobs = [
            Job(transform="csr-pipelined", workload="iir", trip_count=n)
            for n in (5, 6, 7, 8)
        ]

        def run(jobs_n, cache_dir):
            observability.OBS.reset()
            observability.enable()
            try:
                engine = ExperimentEngine(jobs=jobs_n, cache=ResultCache(cache_dir))
                engine.run_jobs(jobs)
                counters = observability.OBS.metrics.as_dict()["counters"]
                roots = observability.OBS.tracer.roots
                return counters, roots
            finally:
                observability.disable()
                observability.OBS.reset()

        parallel_counters, parallel_roots = run(2, tmp_path / "par")
        serial_counters, _ = run(1, tmp_path / "ser")

        # Worker job spans nest under the parent batch span, keeping
        # their worker pids.
        batch = next(r for r in parallel_roots if r.name == "engine.map")
        names = {s.name for s in batch.walk()}
        assert "job.execute" in names and "vm.run" in names
        # Counter totals are partition-invariant (cache.puts included:
        # both runs were cold).
        assert parallel_counters == serial_counters
        assert parallel_counters["vm.instructions.executed"] > 0
