"""Oracle mode of the differential sweep: gap records, the rendered gap
table, JobOutcome propagation, and the FAILED-cell flow into the report."""

from __future__ import annotations

from repro.__main__ import main
from repro.runner import (
    ExperimentEngine,
    FaultPlan,
    FaultSpec,
    Job,
    JobOutcome,
    RetryPolicy,
    differential_jobs,
    differential_sweep,
    resilience,
)


class TestOracleSweep:
    def test_small_oracle_sweep_has_zero_gap(self):
        report = differential_sweep(
            num_graphs=8,
            transforms=("original",),
            oracle=True,
            engine=ExperimentEngine(jobs=1, cache=None),
        )
        assert report.ok, report.summary()
        assert report.oracle_checks == 8
        assert len(report.oracle_records) == 8
        assert all(r.status == "ok" for r in report.oracle_records)
        assert all(r.proven for r in report.oracle_records)
        assert report.max_gap == 0
        assert "proven optimal" in report.summary()
        table = report.gap_table()
        assert "period*" in table and "gap" in table
        # One data row per graph, every one proven.
        assert table.count("yes") == 8

    def test_oracle_jobs_are_opt_in(self):
        assert all(j.transform != "oracle" for j in differential_jobs(0))
        jobs = differential_jobs(0, oracle=True, oracle_timeout=1.5)
        oracle_jobs = [j for j in jobs if j.transform == "oracle"]
        assert len(oracle_jobs) == 1
        assert oracle_jobs[0].oracle_timeout == 1.5
        # The deadline is part of the cache key: a timed-out certificate
        # must never be served to a run with a different budget.
        assert oracle_jobs[0].to_params()["oracle_timeout"] == 1.5

    def test_engine_propagates_gap_into_job_outcome(self):
        engine = ExperimentEngine(jobs=1, cache=None)
        (res,) = engine.run_jobs([Job(transform="oracle", workload="iir")])
        assert res.ok
        assert res.payload["proven"]
        assert res.payload["bounds_ok"]
        assert res.outcome is not None
        assert res.outcome.oracle_gap == 0
        # Survives the journal round-trip.
        doc = res.outcome.as_dict()
        assert doc["oracle_gap"] == 0
        assert JobOutcome.from_dict(doc).oracle_gap == 0

    def test_non_oracle_outcomes_keep_null_gap(self):
        engine = ExperimentEngine(jobs=1, cache=None)
        (res,) = engine.run_jobs([Job(transform="pipelined", workload="iir")])
        assert res.ok
        assert res.outcome is not None
        assert res.outcome.oracle_gap is None

    def test_failed_oracle_job_becomes_a_marker_row(self):
        """Satellite of the FailedCell fix: an oracle job whose retries
        are exhausted must flow into the report as a FAILED gap-table row,
        not crash the sweep and not vanish from the table."""
        resilience.activate(
            FaultPlan([FaultSpec(site="job.start", match="*oracle*", times=0)])
        )
        report = differential_sweep(
            num_graphs=2,
            transforms=("original",),
            oracle=True,
            engine=ExperimentEngine(
                jobs=1,
                cache=None,
                retry=RetryPolicy(max_attempts=2, backoff=0.0),
            ),
        )
        assert not report.ok
        oracle_failures = [f for f in report.failures if "/oracle/" in f.label]
        assert len(oracle_failures) == 2
        assert all(f.kind == "failed" for f in oracle_failures)
        assert all("attempts=2" in f.detail for f in oracle_failures)
        # Only the oracle jobs were faulted; the rest of the sweep passed.
        assert len(report.failures) == 2
        markers = [r for r in report.oracle_records if r.status != "ok"]
        assert len(markers) == 2
        assert all(r.gap is None for r in markers)
        table = report.gap_table()
        assert table.count("FAILED") == 2 * 4  # four marker cells per row

    def test_oracle_sweep_is_deterministic(self):
        a = differential_sweep(
            num_graphs=3, transforms=("original",), oracle=True
        )
        b = differential_sweep(
            num_graphs=3, transforms=("original",), oracle=True
        )
        assert a.oracle_records == b.oracle_records
        assert a.gap_table() == b.gap_table()


class TestOracleCLI:
    def test_sweep_oracle_flag_writes_gap_table(self, tmp_path, capsys):
        out = tmp_path / "gaps.txt"
        rc = main(
            [
                "sweep",
                "--graphs",
                "3",
                "--oracle",
                "--no-cache",
                "--gap-table-out",
                str(out),
            ]
        )
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "Oracle optimality gaps" in stdout
        text = out.read_text()
        assert "period*" in text
        assert text.count("yes") == 3

    def test_sweep_without_oracle_prints_no_gap_table(self, capsys):
        rc = main(["sweep", "--graphs", "2", "--no-cache"])
        assert rc == 0
        assert "Oracle optimality gaps" not in capsys.readouterr().out
