"""Property-based tests for the content-addressed result cache.

The three contracts the rest of the engine leans on:

* same inputs -> cache hit returning the *identical* payload (and hence
  identical reconstructed ``VMResult`` numbers);
* any mutation of the graph or the parameters -> different key -> miss;
* a corrupted entry is discarded and recomputed — never returned.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.graph.generators import random_dfg
from repro.graph.serialize import to_json
from repro.runner import (
    QUARANTINE_DIR,
    CacheStats,
    ExperimentEngine,
    Job,
    NullCache,
    ResultCache,
    cache_key,
    code_version,
    execute_job,
)


def _random_job(seed: int, transform: str = "csr-pipelined") -> Job:
    rng = random.Random(seed)
    g = random_dfg(rng, num_nodes=rng.randint(1, 5), extra_edges=rng.randint(0, 4))
    return Job(
        transform=transform,
        graph_json=to_json(g, indent=None),
        factor=2,
        trip_count=rng.randint(0, 10),
    )


class TestCacheKey:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_key_is_deterministic(self, seed):
        job = _random_job(seed)
        assert cache_key("job", job.to_params()) == cache_key("job", job.to_params())

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_mutated_params_change_the_key(self, seed):
        job = _random_job(seed)
        base = cache_key("job", job.to_params())
        for mutated in (
            Job(**{**_kwargs(job), "trip_count": job.trip_count + 1}),
            Job(**{**_kwargs(job), "factor": job.factor + 1}),
            Job(**{**_kwargs(job), "transform": "csr-unfolded"}),
            Job(**{**_kwargs(job), "verify": not job.verify}),
        ):
            assert cache_key("job", mutated.to_params()) != base
        assert cache_key("other-kind", job.to_params()) != base

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_mutated_graph_changes_the_key(self, seed):
        job = _random_job(seed)
        doc = json.loads(job.graph_json)
        assume(doc["edges"])  # a 1-node graph can come out edgeless
        doc["edges"][0]["delay"] += 1
        mutated = Job(**{**_kwargs(job), "graph_json": json.dumps(doc)})
        assert cache_key("job", mutated.to_params()) != cache_key("job", job.to_params())

    def test_key_includes_code_version(self, monkeypatch):
        job = _random_job(7)
        base = cache_key("job", job.to_params())
        monkeypatch.setattr("repro.runner.cache._code_version", "different!")
        assert cache_key("job", job.to_params()) != base


def _kwargs(job: Job) -> dict:
    return {
        "transform": job.transform,
        "graph_json": job.graph_json,
        "factor": job.factor,
        "trip_count": job.trip_count,
        "verify": job.verify,
        "trace": job.trace,
    }


class TestCacheStore:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_same_inputs_hit_with_identical_payload(self, seed):
        # A fresh tmp dir per example (hypothesis reuses the function body).
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            cache = ResultCache(d)
            job = _random_job(seed)
            key = cache_key("job", job.to_params())
            first = cache.get_or_compute(key, lambda: execute_job(job.to_params()))
            assert cache.stats.misses == 1 and cache.stats.puts == 1
            second = cache.get_or_compute(
                key, lambda: pytest.fail("hit must not recompute")
            )
            assert cache.stats.hits == 1
            first.pop("compute_time", None)
            second.pop("compute_time", None)
            assert second == first  # identical VM numbers, sizes, flags

    def test_mutated_dfg_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _random_job(3)
        cache.put(cache_key("job", job.to_params()), {"ok": True, "marker": 1})
        doc = json.loads(job.graph_json)
        doc["nodes"][0]["imm"] += 1
        mutated = Job(**{**_kwargs(job), "graph_json": json.dumps(doc)})
        assert cache.get(cache_key("job", mutated.to_params())) is None

    @pytest.mark.parametrize(
        "corruption",
        ["truncate", "garbage", "not-json", "wrong-key", "wrong-sha", "empty"],
    )
    def test_corrupted_entry_discarded_and_recomputed(self, tmp_path, corruption):
        cache = ResultCache(tmp_path)
        job = _random_job(11)
        key = cache_key("job", job.to_params())
        good = execute_job(job.to_params())
        good.pop("compute_time", None)
        cache.put(key, good)
        path = cache._path(key)

        raw = path.read_text()
        if corruption == "truncate":
            path.write_text(raw[: len(raw) // 2])
        elif corruption == "garbage":
            path.write_text(raw.replace('"ok"', '"ko"'))
        elif corruption == "not-json":
            path.write_text("}{ definitely not json")
        elif corruption == "wrong-key":
            doc = json.loads(raw)
            doc["key"] = "0" * 64
            path.write_text(json.dumps(doc))
        elif corruption == "wrong-sha":
            doc = json.loads(raw)
            doc["payload"]["executed"] = 10**9  # tampered result
            path.write_text(json.dumps(doc))
        elif corruption == "empty":
            path.write_text("")

        # The corrupted payload is never returned...
        assert cache.get(key) is None
        assert cache.stats.discarded == 1
        assert not path.exists()
        # ...and get_or_compute transparently recomputes the real result.
        again = cache.get_or_compute(key, lambda: execute_job(job.to_params()))
        again.pop("compute_time", None)
        assert again == good

    def test_binary_garbage_entry_is_quarantined_not_fatal(self, tmp_path):
        """A cache file holding undecodable bytes (torn write, disk rot)
        must behave like any other corruption: miss + quarantine, never a
        UnicodeDecodeError escaping ``get``."""
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"ok": True, "x": 1})
        path = cache._path(key)
        path.write_bytes(b"\xff\xfe\x00garbage\x80\x81")

        assert cache.get(key) is None  # regression: used to raise
        assert cache.stats.discarded == 1
        assert cache.stats.misses == 1
        assert not path.exists()
        quarantined = cache.quarantined_entries()
        assert [p.name for p in quarantined] == [f"{key}.corrupt"]
        assert quarantined[0].read_bytes().startswith(b"\xff\xfe")

    def test_quarantine_preserves_evidence_and_live_counts(self, tmp_path):
        """Quarantined files leave the live cache (len, clear) but keep
        their bytes for post-mortems until clear() purges them."""
        cache = ResultCache(tmp_path)
        good_key, bad_key = "ab" * 32, "ba" * 32
        cache.put(good_key, {"ok": True})
        cache.put(bad_key, {"ok": True})
        cache._path(bad_key).write_text("}{ not json")

        assert cache.get(bad_key) is None
        assert len(cache) == 1  # the corrupt entry is out of the live set
        assert cache.get(good_key) == {"ok": True}
        assert len(cache.quarantined_entries()) == 1
        # clear() counts only the live entry but purges quarantine too.
        assert cache.clear() == 1
        assert cache.quarantined_entries() == []

    def test_atomic_envelope_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"ok": True, "nested": {"a": [1, 2, 3]}, "pi": 3.5}
        cache.put("ab" * 32, payload)
        assert cache.get("ab" * 32) == payload
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.get("ab" * 32) is None

    def test_failures_are_not_cached_by_engine(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        bad = Job(transform="unfolded", workload="iir", factor=0, trip_count=5)
        first = engine.run_jobs([bad])[0]
        assert not first.ok and "factor" in first.error
        assert len(engine.cache) == 0
        second = engine.run_jobs([bad])[0]
        assert not second.cached  # recomputed, not replayed

    def test_null_cache_never_stores(self):
        cache = NullCache()
        cache.put("k", {"x": 1})
        assert cache.get("k") is None
        assert cache.get_or_compute("k", lambda: {"x": 2}) == {"x": 2}
        assert len(cache) == 0

    def test_code_version_is_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16


class TestQuarantineCap:
    """The ``.quarantine/`` directory is bounded: beyond ``quarantine_cap``
    files the oldest are pruned, so a rotting disk on a long campaign
    cannot grow it without limit."""

    def _seed_quarantine(self, tmp_path, n: int) -> None:
        import os

        qdir = tmp_path / QUARANTINE_DIR
        qdir.mkdir()
        for i in range(n):
            f = qdir / (f"{i:02d}" * 32 + ".corrupt")
            f.write_text("old corpse")
            os.utime(f, (1000 + i, 1000 + i))  # strictly increasing ages

    def test_prunes_oldest_beyond_cap(self, tmp_path):
        cache = ResultCache(tmp_path, quarantine_cap=3)
        self._seed_quarantine(tmp_path, 5)
        key = "ff" * 32
        cache.put(key, {"ok": True})
        cache._path(key).write_text("}{ not json")
        assert cache.get(key) is None  # quarantines a 6th file

        survivors = [p.name for p in cache.quarantined_entries()]
        assert len(survivors) == 3
        # The three OLDEST corpses went; the fresh one always survives.
        assert f"{key}.corrupt" in survivors
        assert ("00" * 32 + ".corrupt") not in survivors
        assert ("04" * 32 + ".corrupt") in survivors
        assert cache.stats.quarantine_pruned == 3

    def test_cap_zero_keeps_no_evidence(self, tmp_path):
        cache = ResultCache(tmp_path, quarantine_cap=0)
        key = "ab" * 32
        cache.put(key, {"ok": True})
        cache._path(key).write_text("}{ not json")
        assert cache.get(key) is None
        assert cache.quarantined_entries() == []
        assert cache.stats.quarantine_pruned == 1

    def test_under_cap_nothing_pruned(self, tmp_path):
        cache = ResultCache(tmp_path)  # default cap: 100
        key = "cd" * 32
        cache.put(key, {"ok": True})
        cache._path(key).write_text("}{ not json")
        assert cache.get(key) is None
        assert len(cache.quarantined_entries()) == 1
        assert cache.stats.quarantine_pruned == 0

    def test_negative_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="quarantine_cap"):
            ResultCache(tmp_path, quarantine_cap=-1)

    def test_stats_merge_carries_pruned_counter(self):
        total = CacheStats()
        total.merge(CacheStats(quarantine_pruned=2))
        total.merge({"quarantine_pruned": 3})
        assert total.quarantine_pruned == 5
        assert total.as_dict()["quarantine_pruned"] == 5


class TestSharding:
    """Key-prefix sharding and the legacy-layout migration fallback.

    The migration contract: enabling ``shards`` on a cache directory
    populated by the unsharded layout must keep every entry hitting —
    reads fall back to the legacy path; entries move to the sharded
    layout only as they are rewritten.
    """

    def test_writes_land_in_shard_directories(self, tmp_path):
        cache = ResultCache(tmp_path, shards=4)
        keys = [cache_key("job", {"i": i}) for i in range(16)]
        for key in keys:
            cache.put(key, {"ok": True, "i": key[:4]})
        shard_dirs = sorted(p.name for p in tmp_path.iterdir() if p.is_dir())
        assert all(name.startswith("shard-") for name in shard_dirs)
        assert len(shard_dirs) > 1  # 16 random keys spread over >1 shard
        for key in keys:
            path = cache._path(key)
            assert path.exists()
            assert path.parts[-3].startswith("shard-")
            assert cache.get(key) == {"ok": True, "i": key[:4]}

    def test_shard_assignment_is_stable(self, tmp_path):
        a = ResultCache(tmp_path, shards=8)
        b = ResultCache(tmp_path, shards=8)
        for i in range(32):
            key = cache_key("job", {"i": i})
            assert a._shard(key) == b._shard(key)
            assert 0 <= a._shard(key) < 8

    def test_legacy_entries_keep_hitting_after_sharding_enabled(self, tmp_path):
        """The migration test: unsharded writes, then reads through a
        sharded instance — every entry must still hit, payloads intact."""
        legacy = ResultCache(tmp_path)  # unsharded layout
        keys = [cache_key("job", {"i": i}) for i in range(12)]
        for i, key in enumerate(keys):
            legacy.put(key, {"ok": True, "value": i})

        sharded = ResultCache(tmp_path, shards=4)
        for i, key in enumerate(keys):
            assert sharded.get(key) == {"ok": True, "value": i}
        assert sharded.stats.hits == len(keys)
        assert sharded.stats.misses == 0

    def test_entries_migrate_on_rewrite_not_on_read(self, tmp_path):
        legacy = ResultCache(tmp_path)
        key = cache_key("job", {"x": 1})
        legacy.put(key, {"ok": True, "v": 1})

        sharded = ResultCache(tmp_path, shards=4)
        assert sharded.get(key) == {"ok": True, "v": 1}
        # Reading did NOT move the entry.
        assert sharded._legacy_path(key).exists()
        assert not sharded._path(key).exists()
        # Rewriting lands it in the sharded layout; it now shadows the
        # legacy twin.
        sharded.put(key, {"ok": True, "v": 2})
        assert sharded._path(key).exists()
        assert sharded.get(key) == {"ok": True, "v": 2}

    def test_sharded_roundtrip_is_unaffected_by_shard_count(self, tmp_path):
        """Store/retrieve round-trips identically at every shard count
        (0 and 1 both meaning the unsharded legacy layout)."""
        key = cache_key("job", {"x": "roundtrip"})
        for shards in (0, 1, 2, 4):
            cache = ResultCache(tmp_path / f"s{shards}", shards=shards)
            cache.put(key, {"ok": True, "shards": shards})
            assert cache.get(key) == {"ok": True, "shards": shards}

    def test_corrupt_sharded_entry_falls_back_to_legacy_twin(self, tmp_path):
        """Defense in depth: if the sharded copy rots, the legacy copy
        (when present) still serves — corruption is quarantined, the hit
        proceeds."""
        legacy = ResultCache(tmp_path)
        key = cache_key("job", {"x": "twin"})
        legacy.put(key, {"ok": True, "v": "good"})

        sharded = ResultCache(tmp_path, shards=4)
        sharded.put(key, {"ok": True, "v": "good"})
        sharded._path(key).write_text("}{ rotten")
        fresh = ResultCache(tmp_path, shards=4)
        assert fresh.get(key) == {"ok": True, "v": "good"}
        assert fresh.stats.discarded == 1  # the rotten shard copy
        assert fresh.stats.hits == 1

    def test_negative_shards_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ResultCache(tmp_path, shards=-1)

    def test_engine_workers_inherit_the_shard_count(self, tmp_path):
        """Parallel workers rebuild the cache from (root, shards): a
        sharded parent engine must produce sharded worker writes, and a
        second run over the same cache must be all hits."""
        jobs = [_random_job(seed) for seed in range(4)]
        first = ExperimentEngine(jobs=2, cache=ResultCache(tmp_path, shards=4))
        results = first.run_jobs(jobs)
        assert all(r.ok for r in results)
        assert first.cache.stats.puts == len(jobs)
        assert any(p.name.startswith("shard-") for p in tmp_path.iterdir())

        second = ExperimentEngine(jobs=2, cache=ResultCache(tmp_path, shards=4))
        again = second.run_jobs(jobs)
        assert [r.payload for r in again] == [r.payload for r in results]
        assert second.stats.computed == 0
        assert second.cache.stats.hits == len(jobs)
