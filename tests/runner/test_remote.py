"""Tests for the distributed lease fabric: coordinator, chaos, workers.

The :class:`LeaseCoordinator` exactly-once machinery is exercised first
in isolation — fake clock, no sockets, hypothesis-driven hostile
schedules — and then end to end through real spawned worker processes
under injected kills and partitions.  The invariant every test circles:
however chaotic the fleet, each unit completes *exactly once* and the
batch's results are bit-identical to a serial run's.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    ExperimentEngine,
    LeaseCoordinator,
    RemoteFabric,
    RetryPolicy,
    resilience,
)
from repro.runner.jobs import Job, execute_job
from repro.runner.remote import (
    REMOTE_FNS,
    fn_name,
    run_task_local,
    task_from_wire,
    wire_task,
)
from repro.runner.resilience import FaultPlan, FaultSpec


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _docs(n: int) -> list[dict]:
    return [{"key": f"k{i}", "label": f"unit#{i}"} for i in range(n)]


def _envelope(i: int, status: str = "ok") -> dict:
    return {
        "payload": {"ok": status == "ok", "i": i},
        "cached": False,
        "wall": 0.0,
        "outcome": {"label": f"unit#{i}", "status": status},
        "cache_stats": {},
    }


def _coord(n: int = 2, max_attempts: int = 3, lease_timeout: float = 10.0):
    clock = FakeClock()
    coord = LeaseCoordinator(
        policy=RetryPolicy(max_attempts=max_attempts, backoff=0.0),
        lease_timeout=lease_timeout,
        clock=clock,
    )
    coord.load(_docs(n))
    return coord, clock


class TestLeaseCoordinator:
    def test_invalid_lease_timeout_rejected(self):
        with pytest.raises(ValueError, match="lease_timeout"):
            LeaseCoordinator(lease_timeout=0.0)

    def test_grant_complete_roundtrip(self):
        coord, _ = _coord(2)
        grants = [coord.lease("w0"), coord.lease("w1")]
        assert [g["idx"] for g in grants] == [0, 1]
        assert all(g["epoch"] == 1 and g["prior_attempts"] == 0 for g in grants)
        # Backlog empty, leases live: the next worker is told to wait.
        assert "wait" in coord.lease("w2")
        for g in grants:
            resp = coord.complete(
                g["token"], g["epoch"], g["idx"], _envelope(g["idx"]),
                worker="w", batch=g["batch"],
            )
            assert resp == {"accepted": True}
        assert coord.done
        assert [e["payload"]["i"] for e in coord.results_in_order()] == [0, 1]
        kinds = [k for k, _ in coord.drain_events()]
        assert kinds == ["leased", "leased", "completed", "completed"]
        assert coord.leases_granted == 2
        assert coord.duplicates_discarded == 0

    def test_closing_tells_workers_done(self):
        coord, _ = _coord(1)
        coord.closing = True
        assert coord.lease("w") == {"done": True}

    def test_results_before_done_raises(self):
        coord, _ = _coord(1)
        with pytest.raises(RuntimeError, match="not complete"):
            coord.results_in_order()

    def test_renew_extends_deadline(self):
        coord, clock = _coord(1, lease_timeout=10.0)
        g = coord.lease("w")
        clock.advance(8.0)
        assert coord.renew(g["token"], g["epoch"]) == {"ok": True}
        clock.advance(8.0)  # t=16 < renewed deadline of 18
        assert coord.expire() == 0
        clock.advance(3.0)
        assert coord.expire() == 1
        assert coord.renew(g["token"], g["epoch"])["ok"] is False

    def test_expiry_requeues_and_stale_epoch_is_discarded(self):
        coord, clock = _coord(1, lease_timeout=5.0)
        zombie = coord.lease("w0")
        clock.advance(6.0)
        assert coord.expire() == 1
        assert coord.requeues == 1
        regrant = coord.lease("w1")
        assert regrant["epoch"] == 2 and regrant["prior_attempts"] == 1
        # The zombie resurfaces with the original (stale) epoch: discarded.
        resp = coord.complete(
            zombie["token"], zombie["epoch"], 0, _envelope(0),
            worker="w0", batch=zombie["batch"],
        )
        assert resp == {"accepted": False, "reason": "stale-epoch"}
        assert coord.duplicates_discarded == 1
        resp = coord.complete(
            regrant["token"], regrant["epoch"], 0, _envelope(0),
            worker="w1", batch=regrant["batch"],
        )
        assert resp["accepted"]
        assert coord.done
        # Losses are stamped into the surviving completion's outcome.
        outcome = coord.results_in_order()[0]["outcome"]
        assert outcome["respawned"] == 1
        assert outcome["faults"][0].startswith("lease.expired@1")
        kinds = [k for k, _ in coord.drain_events()]
        assert kinds == ["leased", "lease_expired", "leased",
                         "discarded", "completed"]

    def test_expired_but_not_regranted_completion_still_lands(self):
        """Epoch unmoved after expiry: the late result is taken and the
        unit pulled back off the backlog instead of re-executing."""
        coord, clock = _coord(1, lease_timeout=5.0)
        g = coord.lease("w0")
        clock.advance(6.0)
        assert coord.expire() == 1
        resp = coord.complete(
            g["token"], g["epoch"], 0, _envelope(0), worker="w0",
            batch=g["batch"],
        )
        assert resp["accepted"]
        assert coord.done
        assert "wait" in coord.lease("w1")  # nothing left to grant

    def test_double_completion_discarded_as_duplicate(self):
        coord, _ = _coord(1)
        g = coord.lease("w")
        assert coord.complete(
            g["token"], g["epoch"], 0, _envelope(0), batch=g["batch"]
        )["accepted"]
        resp = coord.complete(
            g["token"], g["epoch"], 0, _envelope(0), batch=g["batch"]
        )
        assert resp == {"accepted": False, "reason": "duplicate"}
        assert coord.duplicates_discarded == 1

    def test_stale_batch_discarded(self):
        coord, _ = _coord(1)
        g = coord.lease("w")
        assert coord.complete(
            g["token"], g["epoch"], 0, _envelope(0), batch=g["batch"]
        )["accepted"]
        coord.load(_docs(1))  # next batch: old coordinates are meaningless
        resp = coord.complete(
            g["token"], g["epoch"], 0, _envelope(0), batch=g["batch"]
        )
        assert resp == {"accepted": False, "reason": "stale-batch"}
        g2 = coord.lease("w")
        assert g2["batch"] == g["batch"] + 1
        assert g2["token"] != g["token"]  # batch-scoped token namespace

    def test_budget_exhaustion_degrades_to_timed_out(self):
        coord, clock = _coord(1, max_attempts=2, lease_timeout=5.0)
        for _ in range(2):
            coord.lease("w")
            clock.advance(6.0)
            assert coord.expire() == 1
        assert coord.requeues == 1  # the second expiry exhausts the budget
        assert coord.done
        env = coord.results_in_order()[0]
        assert env["payload"]["ok"] is False
        assert env["outcome"]["status"] == "timed_out"
        assert env["outcome"]["faults"] == [
            "lease.expired@1", "lease.expired@2"
        ]
        expiries = [d for k, d in coord.drain_events() if k == "lease_expired"]
        assert [d["requeued"] for d in expiries] == [True, False]

    def test_load_over_live_leases_raises(self):
        coord, _ = _coord(1)
        coord.lease("w")
        with pytest.raises(RuntimeError, match="live leases"):
            coord.load(_docs(1))

    def test_seize_pending_is_atomic_and_lease_aware(self):
        coord, _ = _coord(2)
        g = coord.lease("w")
        # A live lease blocks the seize: its result may still arrive.
        assert coord.seize_pending() == []
        assert coord.complete(
            g["token"], g["epoch"], g["idx"], _envelope(g["idx"]),
            batch=g["batch"],
        )["accepted"]
        taken = coord.seize_pending()
        assert [idx for idx, _ in taken] == [1]
        assert coord.seize_pending() == []  # backlog is gone
        assert "wait" in coord.lease("w2")  # and so is any grantable unit
        coord.deliver_local(1, _envelope(1))
        assert coord.done


# Operation codes for the hypothesis schedule below.
_OPS = st.sampled_from(
    ["lease", "complete", "zombie", "duplicate", "renew", "advance", "expire"]
)


class TestCoordinatorProperty:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_hostile_schedule_preserves_exactly_once(self, data):
        """Any interleaving of grants, completions, zombie resubmissions,
        expiries and clock jumps ends with exactly one result per unit and
        every discard accounted."""
        n = data.draw(st.integers(1, 5), label="units")
        coord, clock = _coord(n, max_attempts=3, lease_timeout=10.0)
        held: list[dict] = []
        finished: list[dict] = []
        accepted = 0
        events: list[tuple[str, dict]] = []

        def submit(grant: dict) -> bool:
            resp = coord.complete(
                grant["token"], grant["epoch"], grant["idx"],
                _envelope(grant["idx"]), worker="w", batch=grant["batch"],
            )
            return bool(resp["accepted"])

        for op in data.draw(st.lists(_OPS, max_size=40), label="schedule"):
            if op == "lease":
                g = coord.lease("w")
                if "task" in g:
                    held.append(g)
            elif op == "complete" and held:
                g = held.pop(data.draw(st.integers(0, len(held) - 1)))
                finished.append(g)
                accepted += submit(g)
            elif op == "zombie" and held:
                # Let the lease rot past its deadline, expire it, then
                # submit anyway — the classic partitioned worker.
                g = held.pop(data.draw(st.integers(0, len(held) - 1)))
                clock.advance(coord.lease_timeout + 1.0)
                coord.expire()
                finished.append(g)
                accepted += submit(g)
            elif op == "duplicate" and finished:
                g = finished[data.draw(st.integers(0, len(finished) - 1))]
                assert submit(g) is False
            elif op == "renew" and held:
                g = held[data.draw(st.integers(0, len(held) - 1))]
                coord.renew(g["token"], g["epoch"])
            elif op == "advance":
                clock.advance(data.draw(st.floats(0.0, 15.0)))
            elif op == "expire":
                coord.expire()
            events.extend(coord.drain_events())

        # Drive the batch to completion: the owner's run loop in miniature.
        for _ in range(20 * n):
            events.extend(coord.drain_events())
            if coord.done:
                break
            g = coord.lease("w")
            if "task" in g:
                accepted += submit(g)
            else:
                clock.advance(coord.lease_timeout + 1.0)
                coord.expire()
        events.extend(coord.drain_events())

        assert coord.done
        assert len(coord.results_in_order()) == n
        completed = [d["idx"] for k, d in events if k == "completed"]
        assert sorted(completed) == list(range(n))  # exactly once, each
        timed_out = sum(
            1
            for k, d in events
            if k == "completed"
            and d["envelope"]["outcome"]["status"] == "timed_out"
        )
        assert accepted + timed_out == n  # conservation
        discards = sum(1 for k, _ in events if k == "discarded")
        assert discards == coord.duplicates_discarded


class TestWireFormat:
    def test_roundtrip(self):
        params = Job(transform="csr-pipelined", workload="iir",
                     trip_count=3).to_params()
        task = (execute_job, params, "key0", ("/tmp/c", 4), True,
                "iir/csr-pipelined/f=1/n=3", {"max_attempts": 2}, None)
        doc = wire_task(task)
        assert doc["fn"] == "repro.runner.jobs:execute_job"
        assert json.loads(json.dumps(doc)) == doc  # JSON-clean
        assert task_from_wire(doc) == task

    def test_only_allowlisted_functions_cross_the_wire(self):
        with pytest.raises(ValueError, match="not registered"):
            fn_name(_coord)  # any non-allowlisted callable
        from repro.runner.remote import resolve_fn

        with pytest.raises(ValueError, match="not registered"):
            resolve_fn("os:system")
        for name in REMOTE_FNS:
            assert callable(resolve_fn(name))


def _job_params(count: int = 4) -> tuple[list[dict], list[str]]:
    """A small, fast, deterministic batch of real sweep units."""
    jobs = [
        Job(transform="csr-pipelined", workload="iir", trip_count=3),
        Job(transform="pipelined", workload="iir", trip_count=4),
        Job(transform="csr-pipelined", workload="fir", trip_count=3),
        Job(transform="csr-unfold-retime", workload="iir", factor=2,
            trip_count=4),
    ][:count]
    return [j.to_params() for j in jobs], [j.label for j in jobs]


def _strip(payloads: list[dict]) -> list[dict]:
    """Drop the wall-clock field: everything else must be bit-identical."""
    return [
        {k: v for k, v in p.items() if k != "compute_time"} for p in payloads
    ]


def _serial_reference(params: list[dict], labels: list[str]) -> list[dict]:
    engine = ExperimentEngine(jobs=1, cache=None)
    return _strip(engine.map_cached("job", execute_job, params, labels))


class TestFabricLocalFallback:
    def test_no_workers_degrades_to_local_execution(self):
        params, labels = _job_params()
        fabric = RemoteFabric(
            workers=0, worker_grace=0.05, poll_interval=0.01
        )
        engine = ExperimentEngine(jobs=2, cache=None, remote=fabric)
        try:
            out = engine.map_cached("job", execute_job, params, labels)
        finally:
            engine.close()
        assert _strip(out) == _serial_reference(params, labels)
        assert fabric.fallback_units == len(params)
        assert fabric.coordinator.done
        assert "run locally" in fabric.stats_line()

    def test_fabric_parameter_validation_and_close(self):
        with pytest.raises(ValueError, match="workers"):
            RemoteFabric(workers=-1)
        fabric = RemoteFabric(workers=0)
        fabric.close()
        with pytest.raises(RuntimeError, match="closed"):
            fabric.run([(execute_job, {}, "k", None, False, "l", None, None)])

    def test_supervised_and_remote_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="remote"):
            ExperimentEngine(
                jobs=2, cache=None, supervised=True, remote=RemoteFabric()
            )


class TestFabricEndToEnd:
    """Real spawned worker processes against a live work plane."""

    def _run(self, fabric: RemoteFabric, params, labels, journal=None):
        engine = ExperimentEngine(jobs=2, cache=None, remote=fabric)
        if journal is not None:
            engine.journal = journal
        try:
            out = engine.map_cached("job", execute_job, params, labels)
        finally:
            engine.close()
        return out, engine

    def test_spawned_workers_match_serial(self):
        params, labels = _job_params()
        fabric = RemoteFabric(workers=2, lease_timeout=15.0,
                              poll_interval=0.01)
        out, _ = self._run(fabric, params, labels)
        assert _strip(out) == _serial_reference(params, labels)
        assert fabric.coordinator.leases_granted == len(params)
        assert fabric.coordinator.duplicates_discarded == 0
        assert fabric.fallback_units == 0

    def test_killed_worker_requeues_unit_and_respawns(self, tmp_path):
        from repro.runner import RunJournal, scan_journal
        from repro.runner.journal import JOURNAL_NAME

        params, labels = _job_params()
        plan = FaultPlan([FaultSpec("worker.kill", labels[1], times=1)])
        resilience.activate(plan)
        try:
            fabric = RemoteFabric(workers=1, lease_timeout=1.0,
                                  poll_interval=0.01)
            journal = RunJournal(tmp_path)
            out, engine = self._run(fabric, params, labels, journal=journal)
            journal.close()
        finally:
            resilience.deactivate()
        assert _strip(out) == _serial_reference(params, labels)
        assert fabric.respawns >= 1
        assert fabric.coordinator.requeues >= 1
        victim = next(o for o in engine.stats.outcomes if o.label == labels[1])
        assert victim.status == "ok"
        assert any(f.startswith("lease.expired@") for f in victim.faults)

        scan = scan_journal(tmp_path / JOURNAL_NAME)
        assert scan.pending() == {}
        assert len(scan.completed()) == len(params)
        records = [
            json.loads(line)
            for line in (tmp_path / JOURNAL_NAME).read_text().splitlines()
        ]
        types = [r["type"] for r in records]
        assert types.count("job.leased") >= len(params) + 1
        assert types.count("job.lease_expired") >= 1
        assert types.count("job.done") == len(params)  # zero duplicates

    def test_partitioned_worker_zombie_completion_is_discarded(self):
        params, labels = _job_params()
        plan = FaultPlan([FaultSpec("worker.partition", labels[0], times=1)])
        resilience.activate(plan)
        try:
            fabric = RemoteFabric(workers=2, lease_timeout=0.8,
                                  poll_interval=0.01)
            out, _ = self._run(fabric, params, labels)
        finally:
            resilience.deactivate()
        assert _strip(out) == _serial_reference(params, labels)
        assert fabric.coordinator.requeues >= 1
        # The zombie sleeps past its lease (1.5x the timeout) and only
        # then submits — poll briefly for the discard to land.
        deadline = time.monotonic() + 10.0
        while (
            fabric.coordinator.duplicates_discarded == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        assert fabric.coordinator.duplicates_discarded >= 1

    def test_worker_exits_3_when_coordinator_unreachable(self):
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", "127.0.0.1:9",  # discard port: nothing there
                "--retry-max", "2", "--retry-backoff", "0.01",
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 3
        assert "coordinator unreachable" in proc.stderr


def test_run_task_local_restores_callers_fault_plan():
    params, labels = _job_params(1)
    plan = FaultPlan([FaultSpec("worker.kill", "elsewhere", times=1)])
    resilience.activate(plan)
    try:
        task = (execute_job, params[0], "k0", None, False, labels[0],
                None, None)
        envelope = run_task_local(task)
        assert envelope["payload"]["ok"]
        assert resilience.active_plan() is plan
    finally:
        resilience.deactivate()
