"""Property-based resilience tests: random fault plans vs. random matrices.

The invariants that must hold for *every* plan, however hostile:

* the engine never deadlocks and never raises out of ``map_cached``;
* no unit of work is lost — one payload per submitted params dict, in
  submission order;
* the accounting always balances: ``completed + failed + timed_out ==
  submitted`` and every non-ok unit carries a structured failure payload.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    ExperimentEngine,
    FaultPlan,
    FaultSpec,
    ResultCache,
    RetryPolicy,
    resilience,
)
from repro.runner.resilience import FAULT_SITES

FAST = RetryPolicy(max_attempts=3, backoff=0.0)


def _work(params: dict) -> dict:
    # Branch on the input so payloads are distinguishable and some runs
    # exercise the in-band error path too.
    if params["x"] % 7 == 6:
        return {"ok": False, "error": "deterministic in-band error"}
    return {"ok": True, "y": params["x"] * params["x"] + 1}


@st.composite
def fault_plans(draw) -> FaultPlan:
    """Random plans: 0-4 rules over every site, mixed budgets and coins."""
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    n_rules = rng.randint(0, 4)
    faults = [
        FaultSpec(
            site=rng.choice(FAULT_SITES),
            match=rng.choice(["*", "work#*", "work#1", "work#[0-4]", "nope*"]),
            times=rng.choice([0, 1, 2, 5]),
            prob=rng.choice([0.0, 0.3, 0.7, 1.0]),
        )
        for _ in range(n_rules)
    ]
    return FaultPlan(faults, seed=rng.randint(0, 1000))


class TestNoJobIsEverLost:
    @given(plan=fault_plans(), n_jobs=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_accounting_balances_serial(self, plan, n_jobs):
        params = [{"x": i} for i in range(n_jobs)]
        engine = ExperimentEngine(jobs=1, cache=None, retry=FAST)
        with resilience.activated(plan):
            out = engine.map_cached("work", _work, params)

        # Never lost, never reordered: one payload per submitted unit.
        assert len(out) == n_jobs
        s = engine.stats
        assert s.calls == n_jobs
        assert s.completed + s.failed + s.timed_out == n_jobs
        assert len(s.outcomes) == n_jobs  # no cache: every unit executed
        # Every degraded unit shows up as a structured failure payload,
        # every completed one as the deterministic fn result.
        for i, payload in enumerate(out):
            if payload.get("failed"):
                assert payload["status"] in ("failed", "timed_out")
                assert payload["error"]
            else:
                assert payload == _work({"x": i})
        n_failed = sum(1 for p in out if p.get("failed"))
        assert n_failed == s.failed + s.timed_out
        # Retry totals agree with the per-unit records.
        assert s.retried == sum(o.retried for o in s.outcomes)

    @given(plan=fault_plans(), n_jobs=st.integers(1, 10))
    @settings(max_examples=15, deadline=None)
    def test_accounting_balances_with_cache(self, plan, n_jobs, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("resilience-prop")
        params = [{"x": i} for i in range(n_jobs)]
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp), retry=FAST)
        with resilience.activated(plan):
            out = engine.map_cached("work", _work, params)
        assert len(out) == n_jobs
        s = engine.stats
        assert s.completed + s.failed + s.timed_out == n_jobs
        # A degraded warm run still answers every unit.
        warm = ExperimentEngine(jobs=1, cache=ResultCache(tmp), retry=FAST)
        with resilience.activated(FaultPlan.from_dict(plan.as_dict())):
            out2 = warm.map_cached("work", _work, params)
        assert len(out2) == n_jobs
        ws = warm.stats
        assert ws.completed + ws.failed + ws.timed_out == n_jobs

    def test_accounting_balances_parallel_hostile_plan(self):
        """A fixed hostile plan through a real process pool: still no lost
        jobs, still balanced books, bit-identical to the serial run."""
        plan_doc = {
            "seed": 5,
            "faults": [
                {"site": "job.start", "match": "work#[0-3]", "times": 1},
                {"site": "job.timeout", "match": "work#5", "times": 0},
                {"site": "cache.write", "match": "*", "times": 2},
            ],
        }
        params = [{"x": i} for i in range(8)]

        def run(jobs_n):
            engine = ExperimentEngine(jobs=jobs_n, cache=None, retry=FAST)
            with resilience.activated(FaultPlan.from_dict(plan_doc)):
                out = engine.map_cached("work", _work, params)
            return out, engine.stats

        serial_out, serial_stats = run(1)
        parallel_out, parallel_stats = run(2)
        assert parallel_out == serial_out
        for s in (serial_stats, parallel_stats):
            assert s.calls == len(params)
            assert s.completed + s.failed + s.timed_out == len(params)
            assert s.timed_out == 1  # work#5 can never finish
            assert s.failed == 0  # the crash-once jobs all recovered
        assert parallel_stats.retried == serial_stats.retried

    def test_unrecoverable_everything_still_returns_everything(self):
        plan = FaultPlan([FaultSpec("job.start", "*", times=0)])
        params = [{"x": i} for i in range(5)]
        engine = ExperimentEngine(jobs=1, cache=None, retry=FAST)
        with resilience.activated(plan):
            out = engine.map_cached("work", _work, params)
        assert len(out) == 5
        assert all(p["failed"] for p in out)
        assert engine.stats.failed == 5 and engine.stats.completed == 0
