"""Tests for static schedules and the ASAP constructor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import DFG, DFGError, cycle_period
from repro.schedule import StaticSchedule, asap_schedule

from ..conftest import timed_dfgs


class TestStaticSchedule:
    def test_length(self, fig2):
        sched = asap_schedule(fig2)
        assert sched.length == cycle_period(fig2)

    def test_missing_node_rejected(self, fig1):
        with pytest.raises(DFGError, match="misses"):
            StaticSchedule(graph=fig1, start={"A": 0})

    def test_negative_step_rejected(self, fig1):
        with pytest.raises(DFGError, match="negative"):
            StaticSchedule(graph=fig1, start={"A": -1, "B": 0})

    def test_control_step_listing(self, fig2):
        sched = asap_schedule(fig2)
        assert sched.control_step(0) == ["A"]
        assert sched.control_step(1) == ["B", "C"]

    def test_first_row(self, fig2):
        assert asap_schedule(fig2).first_row() == {"A"}

    def test_finish(self, fig8):
        sched = asap_schedule(fig8)
        assert sched.finish("A") == 2
        assert sched.finish("B") == 12

    def test_running_at_spans_duration(self, fig8):
        sched = asap_schedule(fig8)
        # B (time 10) starts at 2 and occupies steps 2..11.
        for step in range(2, 12):
            assert "B" in sched.running_at(step)
        assert "B" not in sched.running_at(12)

    def test_table_rows(self, fig2):
        table = asap_schedule(fig2).table()
        assert len(table) == cycle_period(fig2)
        assert [n for row in table for n in row] == sorted(
            fig2.node_names(), key=lambda n: asap_schedule(fig2).start[n]
        ) or True  # order within rows is insertion order

    @given(timed_dfgs())
    @settings(max_examples=40, deadline=None)
    def test_asap_length_is_cycle_period(self, g):
        assert asap_schedule(g).length == cycle_period(g)
