"""Tests for rotation scheduling."""

from __future__ import annotations

from hypothesis import given, settings

from repro.graph import cycle_period
from repro.schedule import ResourceModel, check_schedule, list_schedule, rotation_schedule

from ..conftest import dfgs


class TestRotation:
    def test_never_worse_than_list_schedule(self, bench_graph):
        model = ResourceModel(units={"alu": 2, "mul": 2})
        res = rotation_schedule(bench_graph, model)
        assert res.length <= res.initial_length

    def test_result_schedule_is_legal(self, bench_graph):
        model = ResourceModel(units={"alu": 2, "mul": 2})
        res = rotation_schedule(bench_graph, model)
        check_schedule(res.schedule, model)

    def test_retiming_is_legal_and_normalized(self, bench_graph):
        res = rotation_schedule(bench_graph)
        assert res.retiming.is_legal()
        assert res.retiming.is_normalized

    def test_unconstrained_reaches_ls_optimum(self, fig2):
        """On Figure 2's example, rotations reproduce the optimal period 1."""
        from repro.retiming import minimum_cycle_period

        res = rotation_schedule(fig2)
        assert res.length == minimum_cycle_period(fig2)

    def test_figure1(self, fig1):
        res = rotation_schedule(fig1)
        assert res.initial_length == 2
        assert res.length == 1
        assert res.rotations >= 1

    def test_zero_rotations_when_already_optimal(self):
        from repro.graph import DFG

        g = DFG()
        g.add_node("A")
        g.add_edge("A", "A", 1)
        res = rotation_schedule(g)
        assert res.length == 1
        assert res.rotations == 0

    def test_max_rotations_respected(self, fig2):
        res = rotation_schedule(fig2, max_rotations=0)
        assert res.rotations == 0
        assert res.length == cycle_period(fig2)

    @given(dfgs(max_nodes=6))
    @settings(max_examples=30, deadline=None)
    def test_pipelines_at_least_to_ls_bound_unconstrained(self, g):
        """Unconstrained rotation can only stop at or above the LS optimum,
        and never above the original period."""
        from repro.retiming import minimum_cycle_period

        res = rotation_schedule(g)
        assert minimum_cycle_period(g) <= res.length <= cycle_period(g)

    @given(dfgs(max_nodes=6))
    @settings(max_examples=30, deadline=None)
    def test_constrained_schedule_legal(self, g):
        model = ResourceModel(units={"alu": 1, "mul": 1})
        res = rotation_schedule(g, model)
        check_schedule(res.schedule, model)
        # The schedule belongs to the retimed graph.
        assert set(res.schedule.start) == set(g.node_names())


class TestEdgeCases:
    """Degenerate inputs: empty graphs, single nodes, rotation-proof DFGs."""

    def test_empty_graph_empty_schedule(self):
        from repro.graph import DFG
        from repro.schedule import StaticSchedule

        g = DFG("empty")
        res = rotation_schedule(g)
        assert res.length == 0
        assert res.rotations == 0
        assert res.retiming.as_dict() == {}
        # The empty schedule itself is well-defined.
        empty = StaticSchedule(graph=g, start={})
        assert empty.length == 0
        assert empty.first_row() == frozenset()
        assert empty.table() == []

    def test_single_node_no_edges(self):
        from repro.graph import DFG

        g = DFG("one")
        g.add_node("A", time=3)
        res = rotation_schedule(g)
        assert res.length == 3
        assert res.initial_length == 3
        assert res.retiming.is_legal()

    def test_single_node_self_loop(self):
        from repro.graph import DFG

        g = DFG("self")
        g.add_node("A", time=2)
        g.add_edge("A", "A", 1)
        res = rotation_schedule(g)
        assert res.length == 2
        check_schedule(res.schedule, ResourceModel.unconstrained())

    def test_rotation_proof_graph_stops_early(self):
        """A zero-delay external input into the whole first row makes every
        rotation illegal: the search must stop, not loop to max_rotations."""
        from repro.graph import DFG

        g = DFG("chain")
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B", 0)
        g.add_edge("B", "A", 2)
        res = rotation_schedule(g, max_rotations=50)
        assert res.retiming.is_legal()
        assert res.length <= cycle_period(g)

    def test_max_rotations_none_default_bound(self, fig8):
        res = rotation_schedule(fig8, max_rotations=None)
        assert res.rotations <= 2 * fig8.num_nodes
