"""Tests for iterative modulo scheduling and its retiming bridge."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings

from repro.core import assert_equivalent, csr_pipelined_loop
from repro.graph import DFG, DFGError, OpKind, iteration_bound
from repro.schedule import ResourceModel
from repro.schedule.modulo import (
    ModuloSchedule,
    minimum_initiation_interval,
    modulo_schedule,
)

from ..conftest import dfgs

MACHINE = ResourceModel(units={"alu": 2, "mul": 1})


class TestMII:
    def test_recurrence_bound(self, fig2):
        assert minimum_initiation_interval(fig2, ResourceModel.unconstrained()) == 1

    def test_resource_bound(self):
        g = DFG()
        for i in range(6):
            g.add_node(f"m{i}", op=OpKind.MUL)
        # 6 multiplies on 1 multiplier: ResMII = 6.
        assert minimum_initiation_interval(g, ResourceModel(units={"mul": 1})) == 6

    def test_max_of_both(self, fig8):
        # RecMII = ceil(27/4) = 7; one 'mul' unit must fit B(10) + D(7) = 17.
        m = ResourceModel(units={"mul": 1, "alu": 1})
        assert minimum_initiation_interval(fig8, m) == 17

    def test_times_counted_in_resource_bound(self):
        g = DFG()
        g.add_node("a", time=5, op=OpKind.ADD)
        g.add_node("b", time=5, op=OpKind.ADD)
        g.add_edge("a", "b", 2)
        g.add_edge("b", "a", 2)
        assert minimum_initiation_interval(g, ResourceModel(units={"alu": 1})) == 10


class TestModuloSchedule:
    def test_achieves_mii_on_benchmarks(self, bench_graph):
        ms = modulo_schedule(bench_graph, MACHINE)
        assert ms.ii == minimum_initiation_interval(bench_graph, MACHINE)

    def test_dependences_respected(self, bench_graph):
        ms = modulo_schedule(bench_graph, MACHINE)
        for e in bench_graph.edges():
            assert (
                ms.start[e.dst]
                >= ms.start[e.src] + bench_graph.node(e.src).time - ms.ii * e.delay
            )

    def test_modulo_resource_limits(self, bench_graph):
        ms = modulo_schedule(bench_graph, MACHINE)
        per_slot: dict[tuple[int, str], int] = {}
        for v in bench_graph.nodes():
            kind = MACHINE.kind_of(v)
            for dt in range(v.time):
                key = ((ms.start[v.name] + dt) % ms.ii, kind)
                per_slot[key] = per_slot.get(key, 0) + 1
        for (slot, kind), used in per_slot.items():
            assert used <= MACHINE.capacity(kind), (slot, kind)

    def test_ii_at_least_bound(self, bench_graph):
        ms = modulo_schedule(bench_graph, MACHINE)
        assert ms.ii >= iteration_bound(bench_graph)

    def test_kernel_rows(self, fig2):
        ms = modulo_schedule(fig2, MACHINE)
        rows = ms.kernel()
        assert len(rows) == ms.ii
        assert sorted(n for row in rows for n in row) == sorted(fig2.node_names())

    def test_infeasible_ceiling_raises(self, fig2):
        with pytest.raises(DFGError, match="no modulo schedule"):
            modulo_schedule(fig2, ResourceModel(units={"alu": 1, "mul": 1}), max_ii=1)


class TestRetimingBridge:
    def test_stage_retiming_legal(self, bench_graph):
        ms = modulo_schedule(bench_graph, MACHINE)
        assert ms.retiming.is_legal()
        assert ms.retiming.is_normalized

    def test_stage_depth_matches_retiming(self, bench_graph):
        ms = modulo_schedule(bench_graph, MACHINE)
        assert ms.retiming.max_value == ms.num_stages - 1

    def test_csr_from_modulo_schedule_equivalent(self, bench_graph):
        """The full Rau-schema replacement: kernel + conditional registers
        instead of kernel + prologue + epilogue."""
        ms = modulo_schedule(bench_graph, MACHINE)
        program = csr_pipelined_loop(bench_graph, ms.retiming)
        for n in (0, 3, 17):
            assert_equivalent(bench_graph, program, n)

    @given(dfgs(max_nodes=6))
    @settings(max_examples=30, deadline=None)
    def test_random_graphs_schedule_and_verify(self, g):
        ms = modulo_schedule(g, MACHINE)
        assert ms.ii >= math.ceil(iteration_bound(g))
        assert ms.retiming.is_legal()
        assert_equivalent(g, csr_pipelined_loop(g, ms.retiming), 7)

    def test_unconstrained_modulo_matches_ls_optimum(self, fig2):
        """Without resource limits, the modulo scheduler reaches the same
        period as Leiserson-Saxe optimal retiming (1 for Figure 2)."""
        from repro.retiming import minimum_cycle_period

        ms = modulo_schedule(fig2, ResourceModel.unconstrained())
        assert ms.ii == minimum_cycle_period(fig2)


class TestEdgeCases:
    def test_single_node_self_loop(self):
        g = DFG()
        g.add_node("A", time=2, op=OpKind.ADD)
        g.add_edge("A", "A", 1)
        ms = modulo_schedule(g, ResourceModel(units={"alu": 1}))
        assert ms.ii == 2
        assert ms.num_stages == 1

    def test_acyclic_graph(self):
        from repro.workloads.extra import fir_filter

        g = fir_filter(4)
        ms = modulo_schedule(g, MACHINE)
        assert ms.ii >= 1
        assert ms.retiming.is_legal()

    def test_budget_factor_controls_search(self, fig2):
        """A tiny budget can fail where the default succeeds, and the
        failure is a clean DFGError, not a hang."""
        try:
            modulo_schedule(fig2, ResourceModel(units={"alu": 1, "mul": 1}),
                            max_ii=3, budget_factor=1)
        except DFGError:
            pass  # acceptable: budget too small at every II <= 3

    def test_kernel_slot_residues(self, bench_graph):
        ms = modulo_schedule(bench_graph, MACHINE)
        for n, s in ms.slots.items():
            assert 0 <= s < ms.ii
            assert ms.start[n] % ms.ii == s
