"""Tests for the functional-unit resource model and legality checking."""

from __future__ import annotations

import pytest

from repro.graph import DFG, DFGError, OpKind
from repro.schedule import (
    UNLIMITED,
    ResourceModel,
    StaticSchedule,
    check_schedule,
    default_kind,
    is_legal_schedule,
)


class TestResourceModel:
    def test_default_kind_mapping(self):
        g = DFG()
        mul = g.add_node("M", op=OpKind.MUL)
        mac = g.add_node("MC", op=OpKind.MAC)
        add = g.add_node("A", op=OpKind.ADD)
        src = g.add_node("S", op=OpKind.SOURCE)
        assert default_kind(mul) == "mul"
        assert default_kind(mac) == "mul"
        assert default_kind(add) == "alu"
        assert default_kind(src) == "alu"

    def test_capacity(self):
        m = ResourceModel(units={"alu": 2})
        assert m.capacity("alu") == 2
        assert m.capacity("mul") == UNLIMITED

    def test_zero_units_rejected(self):
        with pytest.raises(DFGError, match="unit"):
            ResourceModel(units={"alu": 0})

    def test_unconstrained(self):
        assert ResourceModel.unconstrained().is_unconstrained()
        assert not ResourceModel(units={"alu": 1}).is_unconstrained()

    def test_usage(self, fig2):
        m = ResourceModel()
        usage = m.usage(fig2)
        assert usage == {"alu": 3, "mul": 2}


class TestLegality:
    def test_precedence_violation_detected(self, fig2):
        bad = StaticSchedule(graph=fig2, start={n: 0 for n in fig2.node_names()})
        with pytest.raises(DFGError, match="precedence"):
            check_schedule(bad)

    def test_resource_violation_detected(self):
        g = DFG()
        g.add_node("A", op=OpKind.ADD)
        g.add_node("B", op=OpKind.ADD)
        sched = StaticSchedule(graph=g, start={"A": 0, "B": 0})
        with pytest.raises(DFGError, match="resource violation"):
            check_schedule(sched, ResourceModel(units={"alu": 1}))

    def test_delayed_edges_unconstrained(self, fig1):
        # A and B can share step 0: B -> A carries delays.
        sched = StaticSchedule(graph=fig1, start={"A": 0, "B": 1})
        check_schedule(sched)

    def test_is_legal_boolean(self, fig2):
        ok = StaticSchedule(
            graph=fig2, start={"A": 0, "B": 1, "C": 1, "D": 2, "E": 3}
        )
        assert is_legal_schedule(ok)
        bad = StaticSchedule(graph=fig2, start={n: 0 for n in fig2.node_names()})
        assert not is_legal_schedule(bad)

    def test_multi_cycle_occupancy_counted(self):
        """A time-3 node occupies its unit for all three steps."""
        g = DFG()
        g.add_node("long", time=3, op=OpKind.ADD)
        g.add_node("short", op=OpKind.ADD)
        sched = StaticSchedule(graph=g, start={"long": 0, "short": 1})
        with pytest.raises(DFGError, match="resource violation"):
            check_schedule(sched, ResourceModel(units={"alu": 1}))
