"""Tests for resource-constrained list scheduling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DFG, OpKind, cycle_period
from repro.schedule import (
    ResourceModel,
    check_schedule,
    critical_path_priorities,
    is_legal_schedule,
    list_schedule,
)

from ..conftest import dfgs, timed_dfgs


class TestPriorities:
    def test_chain_priorities(self):
        g = DFG()
        for n in "ABC":
            g.add_node(n)
        g.add_edge("A", "B", 0)
        g.add_edge("B", "C", 0)
        assert critical_path_priorities(g) == {"A": 3, "B": 2, "C": 1}

    def test_delayed_edges_ignored(self, fig1):
        # B -> A carries delays; both nodes are priority 1 + successor chain.
        prios = critical_path_priorities(fig1)
        assert prios == {"A": 2, "B": 1}


class TestUnconstrained:
    def test_matches_cycle_period(self, bench_graph):
        sched = list_schedule(bench_graph)
        assert sched.length == cycle_period(bench_graph)

    @given(timed_dfgs())
    @settings(max_examples=40, deadline=None)
    def test_unconstrained_is_asap_length(self, g):
        assert list_schedule(g).length == cycle_period(g)


class TestConstrained:
    @pytest.fixture
    def wide_graph(self) -> DFG:
        """Eight independent unit-time nodes."""
        g = DFG("wide")
        for i in range(8):
            g.add_node(f"n{i}", op=OpKind.ADD)
        return g

    def test_serializes_on_one_unit(self, wide_graph):
        sched = list_schedule(wide_graph, ResourceModel(units={"alu": 1}))
        assert sched.length == 8

    def test_two_units_halve(self, wide_graph):
        sched = list_schedule(wide_graph, ResourceModel(units={"alu": 2}))
        assert sched.length == 4

    def test_mixed_kinds(self):
        g = DFG()
        for i in range(4):
            g.add_node(f"m{i}", op=OpKind.MUL)
        for i in range(4):
            g.add_node(f"a{i}", op=OpKind.ADD)
        sched = list_schedule(g, ResourceModel(units={"mul": 1, "alu": 4}))
        assert sched.length == 4  # bound by the single multiplier

    def test_schedule_is_legal(self, bench_graph):
        model = ResourceModel(units={"alu": 2, "mul": 1})
        sched = list_schedule(bench_graph, model)
        check_schedule(sched, model)

    def test_priority_prefers_critical_path(self):
        """With one ALU, the chain head must be issued before the
        independent low-priority node to reach the optimal length."""
        g = DFG()
        g.add_node("lone", op=OpKind.ADD)
        for n in "ABC":
            g.add_node(n, op=OpKind.ADD)
        g.add_edge("A", "B", 0)
        g.add_edge("B", "C", 0)
        sched = list_schedule(g, ResourceModel(units={"alu": 1}))
        assert sched.start["A"] == 0
        assert sched.length == 4

    @given(dfgs(max_nodes=7), st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_constrained_always_legal(self, g, units):
        model = ResourceModel(units={"alu": units, "mul": units})
        sched = list_schedule(g, model)
        assert is_legal_schedule(sched, model)

    @given(dfgs(max_nodes=7))
    @settings(max_examples=40, deadline=None)
    def test_more_units_never_slower(self, g):
        s1 = list_schedule(g, ResourceModel(units={"alu": 1, "mul": 1}))
        s2 = list_schedule(g, ResourceModel(units={"alu": 2, "mul": 2}))
        assert s2.length <= s1.length
