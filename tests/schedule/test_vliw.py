"""Tests for the VLIW body packer — the paper's performance claim."""

from __future__ import annotations

import pytest

from repro.codegen import ComputeInstr, DecInstr, original_loop
from repro.core import csr_pipelined_loop
from repro.graph import DFGError
from repro.retiming import minimize_cycle_period
from repro.schedule import ResourceModel
from repro.schedule.vliw import pack_body
from repro.workloads import figure2_example, get_workload

WIDE = ResourceModel(units={"alu": 4, "mul": 2})


class TestPackBody:
    def test_dependencies_respected(self, fig2):
        p = original_loop(fig2)
        sched = pack_body(p, WIDE)
        # Producer word strictly before consumer word for same-iteration uses.
        word_of = {}
        for w, word in enumerate(sched.words):
            for instr in word.slots:
                if isinstance(instr, ComputeInstr):
                    word_of[instr.dest.array] = w
        # B consumes A[i]; D consumes C[i]; E consumes D[i].
        assert word_of["A"] < word_of["B"]
        assert word_of["C"] < word_of["D"]
        assert word_of["D"] < word_of["E"]

    def test_unconstrained_ii_is_cycle_period(self, fig2):
        from repro.graph import cycle_period

        p = original_loop(fig2)
        sched = pack_body(p, WIDE)
        assert sched.initiation_interval == cycle_period(fig2)

    def test_unit_limits_enforced(self, fig2):
        p = original_loop(fig2)
        narrow = ResourceModel(units={"alu": 1, "mul": 1})
        sched = pack_body(p, narrow)
        for word in sched.words:
            kinds = {}
            for instr in word.slots:
                if isinstance(instr, ComputeInstr):
                    k = "mul" if instr.op.value in ("mul", "mac") else "alu"
                    kinds[k] = kinds.get(k, 0) + 1
            assert all(v <= 1 for v in kinds.values())

    def test_decrement_after_guarded_computes(self, fig2):
        _, r = minimize_cycle_period(fig2)
        p = csr_pipelined_loop(fig2, r)
        sched = pack_body(p, WIDE, control_slots=4)
        first_dec = min(
            w
            for w, word in enumerate(sched.words)
            for i in word.slots
            if isinstance(i, DecInstr)
        )
        # p4 guards E which lands in the last compute word; its decrement
        # cannot be earlier than E's word + 1... at minimum after word 0.
        last_compute = max(
            w
            for w, word in enumerate(sched.words)
            for i in word.slots
            if isinstance(i, ComputeInstr)
        )
        all_decs = [
            w
            for w, word in enumerate(sched.words)
            for i in word.slots
            if isinstance(i, DecInstr)
        ]
        assert max(all_decs) > last_compute - 1 or first_dec > 0

    def test_csr_overhead_rides_free_slots(self):
        """The headline claim: on a machine with spare issue slots, the CSR
        body's initiation interval is at most one word above the plain
        retimed body (the tail decrements)."""
        g = figure2_example()
        _, r = minimize_cycle_period(g)
        from repro.codegen import pipelined_loop

        plain_ii = pack_body(pipelined_loop(g, r), WIDE).initiation_interval
        csr_ii = pack_body(
            csr_pipelined_loop(g, r), WIDE, control_slots=4
        ).initiation_interval
        assert csr_ii <= plain_ii + 1

    @pytest.mark.parametrize("name", ["iir", "diffeq", "allpole"])
    def test_benchmark_csr_ii_overhead_bounded(self, name):
        g = get_workload(name)
        _, r = minimize_cycle_period(g)
        from repro.codegen import pipelined_loop

        plain = pack_body(pipelined_loop(g, r), WIDE).initiation_interval
        csr = pack_body(csr_pipelined_loop(g, r), WIDE, control_slots=2)
        assert csr.initiation_interval <= plain + 2

    def test_setup_in_body_rejected(self):
        from dataclasses import replace

        from repro.codegen import IndexExpr, Loop, LoopProgram, SetupInstr

        bad = LoopProgram(
            name="bad",
            pre=(),
            loop=Loop(
                IndexExpr.const(1), IndexExpr.trip(0), 1, (SetupInstr("p1", 0),)
            ),
            post=(),
        )
        with pytest.raises(DFGError, match="outside"):
            pack_body(bad, WIDE)

    def test_utilization_bounds(self, fig2):
        sched = pack_body(original_loop(fig2), WIDE)
        assert 0.0 < sched.utilization() <= 1.0

    def test_empty_body(self):
        from repro.codegen import IndexExpr, Loop, LoopProgram

        empty = LoopProgram(
            name="empty",
            pre=(),
            loop=Loop(IndexExpr.const(1), IndexExpr.trip(0), 1, ()),
            post=(),
        )
        sched = pack_body(empty, WIDE)
        assert sched.initiation_interval == 0
        assert sched.utilization() == 0.0


class TestStraightlineAndEstimate:
    def test_pack_straightline_with_setups(self, fig2):
        from repro.schedule.vliw import pack_straightline

        _, r = minimize_cycle_period(fig2)
        p = csr_pipelined_loop(fig2, r)
        sched = pack_straightline(p.pre, WIDE, control_slots=2)
        # 4 setups over 2 control slots per word: 2 words.
        assert sched.initiation_interval == 2

    def test_setup_allowed_only_in_straightline(self, fig2):
        from repro.schedule.vliw import pack_straightline

        _, r = minimize_cycle_period(fig2)
        p = csr_pipelined_loop(fig2, r)
        pack_straightline(p.pre, WIDE)  # must not raise

    def test_estimate_cycles_components(self, fig2):
        from repro.schedule.vliw import estimate_cycles, pack_body

        p = original_loop(fig2)
        n = 10
        assert estimate_cycles(p, WIDE, n) == n * pack_body(p, WIDE).initiation_interval

    def test_estimate_counts_prologue_epilogue(self, fig2):
        from repro.codegen import pipelined_loop
        from repro.schedule.vliw import estimate_cycles

        _, r = minimize_cycle_period(fig2)
        plain = pipelined_loop(fig2, r)
        n = 10
        body_only = (n - r.max_value) * 1  # period-1 kernel on a wide machine
        total = estimate_cycles(plain, WIDE, n)
        assert total > body_only  # prologue/epilogue words included

    def test_guarded_compute_waits_for_setup(self):
        """In straight-line regions a guarded op cannot issue before its
        register's setup word."""
        from repro.codegen import ComputeInstr, Guard, IndexExpr, Operand, SetupInstr
        from repro.graph import OpKind
        from repro.schedule.vliw import pack_straightline

        instrs = (
            SetupInstr("p1", 0),
            ComputeInstr(
                dest=Operand("A", IndexExpr.const(1)),
                op=OpKind.ADD,
                imm=0,
                srcs=(),
                guard=Guard("p1"),
            ),
        )
        sched = pack_straightline(instrs, WIDE, control_slots=1)
        assert sched.initiation_interval == 2
