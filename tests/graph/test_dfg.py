"""Unit tests for the DFG data structure."""

from __future__ import annotations

import pytest

from repro.graph import DFG, DFGError, OpKind
from repro.graph.dfg import evaluate_op


class TestConstruction:
    def test_empty_graph(self):
        g = DFG("g")
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert len(g) == 0

    def test_add_node_defaults(self):
        g = DFG()
        node = g.add_node("A")
        assert node.time == 1
        assert node.op is OpKind.ADD
        assert node.imm == 0

    def test_add_node_attributes(self):
        g = DFG()
        node = g.add_node("A", time=3, op=OpKind.MUL, imm=-5)
        assert (node.time, node.op, node.imm) == (3, OpKind.MUL, -5)

    def test_duplicate_node_rejected(self):
        g = DFG()
        g.add_node("A")
        with pytest.raises(DFGError, match="duplicate node"):
            g.add_node("A")

    def test_nonpositive_time_rejected(self):
        g = DFG()
        with pytest.raises(DFGError, match="time"):
            g.add_node("A", time=0)

    def test_negative_delay_rejected(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B")
        with pytest.raises(DFGError, match="delay"):
            g.add_edge("A", "B", -1)

    def test_edge_to_unknown_node_rejected(self):
        g = DFG()
        g.add_node("A")
        with pytest.raises(DFGError, match="unknown"):
            g.add_edge("A", "B", 0)
        with pytest.raises(DFGError, match="unknown"):
            g.add_edge("B", "A", 0)

    def test_parallel_edges_get_distinct_keys(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B")
        e1 = g.add_edge("A", "B", 1)
        e2 = g.add_edge("A", "B", 2)
        assert e1.key != e2.key
        assert g.num_edges == 2

    def test_explicit_duplicate_key_rejected(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B", 1, key=0)
        with pytest.raises(DFGError, match="duplicate edge"):
            g.add_edge("A", "B", 2, key=0)

    def test_self_loop_allowed(self):
        g = DFG()
        g.add_node("A")
        e = g.add_edge("A", "A", 1)
        assert e.src == e.dst == "A"


class TestQueries:
    @pytest.fixture
    def diamond(self) -> DFG:
        g = DFG("diamond")
        for n in "ABCD":
            g.add_node(n)
        g.add_edge("A", "B", 0)
        g.add_edge("A", "C", 1)
        g.add_edge("B", "D", 0)
        g.add_edge("C", "D", 2)
        g.add_edge("D", "A", 3)
        return g

    def test_totals(self, diamond):
        assert diamond.num_nodes == 4
        assert diamond.num_edges == 5
        assert diamond.total_delay == 6
        assert diamond.total_time == 4

    def test_in_out_edges(self, diamond):
        assert [e.dst for e in diamond.out_edges("A")] == ["B", "C"]
        assert [e.src for e in diamond.in_edges("D")] == ["B", "C"]

    def test_in_edge_order_is_insertion_order(self):
        g = DFG()
        for n in "ABC":
            g.add_node(n)
        g.add_edge("C", "A", 1)
        g.add_edge("B", "A", 0)
        assert [e.src for e in g.in_edges("A")] == ["C", "B"]

    def test_predecessors_successors(self, diamond):
        assert diamond.predecessors("D") == ["B", "C"]
        assert diamond.successors("A") == ["B", "C"]

    def test_predecessors_deduplicated(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B", 0)
        g.add_edge("A", "B", 1)
        assert g.predecessors("B") == ["A"]

    def test_zero_delay_edges(self, diamond):
        assert {(e.src, e.dst) for e in diamond.zero_delay_edges()} == {
            ("A", "B"),
            ("B", "D"),
        }

    def test_unknown_node_lookup(self, diamond):
        with pytest.raises(DFGError, match="unknown node"):
            diamond.node("Z")
        with pytest.raises(DFGError):
            diamond.in_edges("Z")

    def test_contains(self, diamond):
        assert "A" in diamond
        assert "Z" not in diamond


class TestDerivedGraphs:
    def test_copy_is_independent(self, two_node_cycle):
        g2 = two_node_cycle.copy()
        g2.add_node("C")
        assert two_node_cycle.num_nodes == 2
        assert g2.num_nodes == 3

    def test_copy_equal(self, two_node_cycle):
        assert two_node_cycle.copy() == two_node_cycle

    def test_with_delays_changes_only_named_edges(self, two_node_cycle):
        edge = next(iter(two_node_cycle.edges()))
        g2 = two_node_cycle.with_delays({edge.ident: 7})
        delays = {e.ident: e.delay for e in g2.edges()}
        assert delays[edge.ident] == 7
        assert g2.num_edges == two_node_cycle.num_edges

    def test_with_delays_preserves_operand_order(self):
        g = DFG()
        for n in "ABC":
            g.add_node(n)
        g.add_edge("C", "A", 2)
        g.add_edge("B", "A", 0)
        g2 = g.with_delays({})
        assert [e.src for e in g2.in_edges("A")] == ["C", "B"]

    def test_networkx_roundtrip(self, two_node_cycle):
        nxg = two_node_cycle.to_networkx()
        back = DFG.from_networkx(nxg, name=two_node_cycle.name)
        assert back == two_node_cycle

    def test_networkx_export_attributes(self, two_node_cycle):
        nxg = two_node_cycle.to_networkx()
        assert nxg.nodes["A"]["op"] is OpKind.ADD
        assert nxg.nodes["A"]["imm"] == 1
        delays = sorted(d["delay"] for _, _, d in nxg.edges(data=True))
        assert delays == [0, 2]


class TestEvaluateOp:
    def test_add(self):
        assert evaluate_op(OpKind.ADD, 5, [1, 2], 1) == 8

    def test_add_no_inputs(self):
        assert evaluate_op(OpKind.ADD, 5, [], 1) == 5

    def test_sub(self):
        assert evaluate_op(OpKind.SUB, 1, [10, 3, 2], 1) == 6

    def test_sub_no_inputs(self):
        assert evaluate_op(OpKind.SUB, 4, [], 1) == 4

    def test_mul(self):
        assert evaluate_op(OpKind.MUL, 2, [3, 4], 1) == 24

    def test_mac(self):
        assert evaluate_op(OpKind.MAC, 1, [2, 3, 4], 1) == 11

    def test_mac_arity_checked(self):
        with pytest.raises(DFGError, match="MAC"):
            evaluate_op(OpKind.MAC, 0, [2], 1)

    def test_copy(self):
        assert evaluate_op(OpKind.COPY, 3, [10], 1) == 13

    def test_copy_arity_checked(self):
        with pytest.raises(DFGError, match="COPY"):
            evaluate_op(OpKind.COPY, 0, [1, 2], 1)

    def test_source_depends_on_instance(self):
        v1 = evaluate_op(OpKind.SOURCE, 3, [], 1)
        v2 = evaluate_op(OpKind.SOURCE, 3, [], 2)
        assert v1 != v2

    def test_source_rejects_inputs(self):
        with pytest.raises(DFGError, match="SOURCE"):
            evaluate_op(OpKind.SOURCE, 0, [1], 1)
