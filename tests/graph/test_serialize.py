"""Tests for JSON round-tripping and DOT export."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import DFG, DFGError
from repro.graph.serialize import (
    GraphFormatError,
    from_json,
    load_graph,
    to_dot,
    to_json,
)

from ..conftest import timed_dfgs


class TestJson:
    def test_roundtrip_benchmarks(self, bench_graph):
        assert from_json(to_json(bench_graph)) == bench_graph

    def test_roundtrip_preserves_name(self, fig8):
        assert from_json(to_json(fig8)).name == "figure8"

    def test_roundtrip_parallel_edges(self):
        g = DFG("par")
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B", 1)
        g.add_edge("A", "B", 2)
        g.add_edge("B", "A", 3)
        assert from_json(to_json(g)) == g

    @given(timed_dfgs())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_random(self, g):
        assert from_json(to_json(g)) == g

    def test_rejects_non_json(self):
        with pytest.raises(DFGError, match="not valid JSON"):
            from_json("{nope")

    def test_rejects_wrong_format(self):
        with pytest.raises(DFGError, match="not a repro-dfg"):
            from_json('{"format": "something-else"}')

    def test_rejects_malformed_nodes(self):
        with pytest.raises(DFGError, match="malformed"):
            from_json('{"format": "repro-dfg-v1", "nodes": [{}], "edges": []}')

    def test_compact_form(self, fig1):
        text = to_json(fig1, indent=None)
        assert "\n" not in text
        assert from_json(text) == fig1


class TestGraphFormatError:
    """Malformed/truncated graph JSON yields ONE exception type whose
    message names the source file (when known) and the offending field."""

    def test_is_a_dfg_error(self):
        assert issubclass(GraphFormatError, DFGError)

    def test_names_ill_typed_node_field(self):
        doc = (
            '{"format": "repro-dfg-v1", "edges": [], "nodes": '
            '[{"name": "A"}, {"name": "B", "time": "soon"}]}'
        )
        with pytest.raises(GraphFormatError, match=r"nodes\[1\].time") as ei:
            from_json(doc)
        assert ei.value.field == "nodes[1].time"

    def test_names_missing_node_field(self):
        with pytest.raises(GraphFormatError, match=r"missing field nodes\[0\].name"):
            from_json('{"format": "repro-dfg-v1", "nodes": [{}], "edges": []}')

    def test_names_missing_edge_field(self):
        doc = (
            '{"format": "repro-dfg-v1", "nodes": [{"name": "A"}], '
            '"edges": [{"src": "A", "dst": "A"}]}'
        )
        with pytest.raises(GraphFormatError, match=r"missing field edges\[0\].delay"):
            from_json(doc)

    def test_names_missing_section(self):
        with pytest.raises(GraphFormatError, match="missing section 'nodes'") as ei:
            from_json('{"format": "repro-dfg-v1"}')
        assert ei.value.field == "nodes"

    def test_names_non_list_section(self):
        with pytest.raises(GraphFormatError, match="'edges' must be a list"):
            from_json('{"format": "repro-dfg-v1", "nodes": [], "edges": 7}')

    def test_names_non_object_row(self):
        with pytest.raises(GraphFormatError, match=r"nodes\[0\] must be an object"):
            from_json('{"format": "repro-dfg-v1", "nodes": [5], "edges": []}')

    def test_names_bad_op_value(self):
        doc = (
            '{"format": "repro-dfg-v1", "edges": [], '
            '"nodes": [{"name": "A", "op": "frobnicate"}]}'
        )
        with pytest.raises(GraphFormatError, match=r"bad value for nodes\[0\].op"):
            from_json(doc)

    def test_structural_rejection_pins_the_node(self):
        doc = (
            '{"format": "repro-dfg-v1", "edges": [], '
            '"nodes": [{"name": "A"}, {"name": "A"}]}'
        )
        with pytest.raises(GraphFormatError, match=r"nodes\[1\]"):
            from_json(doc)

    def test_source_prefixes_every_message(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-dfg-v1", "nodes": [{}], "edges": []}')
        with pytest.raises(GraphFormatError) as ei:
            load_graph(path)
        assert str(ei.value).startswith(str(path))
        assert ei.value.source == str(path)
        assert ei.value.field == "nodes[0].name"

    def test_load_graph_roundtrip(self, tmp_path, fig1):
        path = tmp_path / "fig1.json"
        path.write_text(to_json(fig1))
        assert load_graph(path) == fig1

    def test_load_graph_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError, match="cannot read graph file"):
            load_graph(tmp_path / "nope.json")

    def test_truncated_file_names_the_file(self, tmp_path, fig1):
        path = tmp_path / "torn.json"
        path.write_text(to_json(fig1)[:25])
        with pytest.raises(GraphFormatError, match="not valid JSON") as ei:
            load_graph(path)
        assert ei.value.source == str(path)


class TestDot:
    def test_contains_all_nodes_and_edges(self, fig2):
        dot = to_dot(fig2)
        for v in fig2.node_names():
            assert f'"{v}"' in dot
        assert dot.count("->") == fig2.num_edges

    def test_delays_labelled(self, fig2):
        dot = to_dot(fig2)
        assert 'label="4D"' in dot  # E -> A
        assert 'label="2D"' in dot  # B -> C

    def test_multipliers_are_boxes(self, fig2):
        dot = to_dot(fig2)
        assert '"B" [shape=box' in dot
        assert '"A" [shape=ellipse' in dot

    def test_non_unit_times_in_label(self, fig8):
        assert "t=10" in to_dot(fig8)

    def test_valid_digraph_syntax(self, fig1):
        dot = to_dot(fig1)
        assert dot.startswith('digraph "figure1" {')
        assert dot.endswith("}")
