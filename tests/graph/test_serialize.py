"""Tests for JSON round-tripping and DOT export."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import DFG, DFGError
from repro.graph.serialize import from_json, to_dot, to_json

from ..conftest import timed_dfgs


class TestJson:
    def test_roundtrip_benchmarks(self, bench_graph):
        assert from_json(to_json(bench_graph)) == bench_graph

    def test_roundtrip_preserves_name(self, fig8):
        assert from_json(to_json(fig8)).name == "figure8"

    def test_roundtrip_parallel_edges(self):
        g = DFG("par")
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B", 1)
        g.add_edge("A", "B", 2)
        g.add_edge("B", "A", 3)
        assert from_json(to_json(g)) == g

    @given(timed_dfgs())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_random(self, g):
        assert from_json(to_json(g)) == g

    def test_rejects_non_json(self):
        with pytest.raises(DFGError, match="not valid JSON"):
            from_json("{nope")

    def test_rejects_wrong_format(self):
        with pytest.raises(DFGError, match="not a repro-dfg"):
            from_json('{"format": "something-else"}')

    def test_rejects_malformed_nodes(self):
        with pytest.raises(DFGError, match="malformed"):
            from_json('{"format": "repro-dfg-v1", "nodes": [{}], "edges": []}')

    def test_compact_form(self, fig1):
        text = to_json(fig1, indent=None)
        assert "\n" not in text
        assert from_json(text) == fig1


class TestDot:
    def test_contains_all_nodes_and_edges(self, fig2):
        dot = to_dot(fig2)
        for v in fig2.node_names():
            assert f'"{v}"' in dot
        assert dot.count("->") == fig2.num_edges

    def test_delays_labelled(self, fig2):
        dot = to_dot(fig2)
        assert 'label="4D"' in dot  # E -> A
        assert 'label="2D"' in dot  # B -> C

    def test_multipliers_are_boxes(self, fig2):
        dot = to_dot(fig2)
        assert '"B" [shape=box' in dot
        assert '"A" [shape=ellipse' in dot

    def test_non_unit_times_in_label(self, fig8):
        assert "t=10" in to_dot(fig8)

    def test_valid_digraph_syntax(self, fig1):
        dot = to_dot(fig1)
        assert dot.startswith('digraph "figure1" {')
        assert dot.endswith("}")
