"""Tests for the exact iteration bound (two independent algorithms)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.graph import (
    DFG,
    DFGError,
    iteration_bound,
    iteration_bound_exhaustive,
    minimum_unfolding_for_rate_optimality,
)
from repro.graph.generators import line_dfg, ring_dfg

from ..conftest import dfgs, timed_dfgs


class TestHandGraphs:
    def test_figure1(self, fig1):
        assert iteration_bound(fig1) == 1

    def test_figure2(self, fig2):
        # Cycles: A..E ring with 4 delays (T=5) and A->B->C cycle... B->C
        # has 2 delays; A-B-C-D-E-A: T=5, D=6.  Bound is max ratio = 1.
        assert iteration_bound(fig2) == 1

    def test_figure4(self, fig4):
        assert iteration_bound(fig4) == Fraction(2, 3)

    def test_figure8(self, fig8):
        assert iteration_bound(fig8) == Fraction(27, 4)

    def test_ring(self):
        assert iteration_bound(ring_dfg(5, 2)) == Fraction(5, 2)

    def test_line_is_bound_by_feedback(self):
        assert iteration_bound(line_dfg(6, delay_last=3)) == 2

    def test_acyclic_graph_has_zero_bound(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B", 0)
        assert iteration_bound(g) == 0
        assert iteration_bound_exhaustive(g) == 0

    def test_acyclic_with_delays_still_zero(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B", 5)
        assert iteration_bound(g) == 0

    def test_self_loop(self):
        g = DFG()
        g.add_node("A", time=3)
        g.add_edge("A", "A", 2)
        assert iteration_bound(g) == Fraction(3, 2)

    def test_parallel_edges_use_min_delay(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B", 0)
        g.add_edge("B", "A", 5)
        g.add_edge("B", "A", 1)  # tighter parallel edge dominates
        assert iteration_bound(g) == 2
        assert iteration_bound_exhaustive(g) == 2

    def test_benchmarks_positive(self, bench_graph):
        assert iteration_bound(bench_graph) > 0


class TestAlgorithmsAgree:
    @given(dfgs(max_nodes=6, max_extra_edges=5))
    @settings(max_examples=60, deadline=None)
    def test_lawler_matches_exhaustive_unit_time(self, g):
        assert iteration_bound(g) == iteration_bound_exhaustive(g)

    @given(timed_dfgs(max_nodes=5))
    @settings(max_examples=60, deadline=None)
    def test_lawler_matches_exhaustive_timed(self, g):
        assert iteration_bound(g) == iteration_bound_exhaustive(g)

    def test_benchmark_agreement(self, bench_graph):
        assert iteration_bound(bench_graph) == iteration_bound_exhaustive(bench_graph)


class TestMinimumUnfolding:
    def test_integral_bound_needs_no_unfolding(self, fig1):
        assert minimum_unfolding_for_rate_optimality(fig1) == 1

    def test_fractional_bound(self, fig4):
        assert minimum_unfolding_for_rate_optimality(fig4) == 3

    def test_figure8_needs_four(self, fig8):
        assert minimum_unfolding_for_rate_optimality(fig8) == 4

    def test_acyclic(self):
        g = DFG()
        g.add_node("A")
        assert minimum_unfolding_for_rate_optimality(g) == 1

    def test_max_factor_guard(self):
        g = DFG()
        g.add_node("A", time=97)
        g.add_edge("A", "A", 64)
        with pytest.raises(DFGError, match="max_factor"):
            minimum_unfolding_for_rate_optimality(g, max_factor=8)
