"""Tests for the random DFG generators."""

from __future__ import annotations

import random

import pytest

from repro.graph import cycle_period, is_valid, iteration_bound, validate
from repro.graph.generators import line_dfg, random_dfg, random_unit_time_dfg, ring_dfg


class TestRandomDFG:
    def test_deterministic_for_seed(self):
        g1 = random_dfg(random.Random(42), num_nodes=8, extra_edges=6)
        g2 = random_dfg(random.Random(42), num_nodes=8, extra_edges=6)
        assert g1 == g2

    def test_different_seeds_differ(self):
        g1 = random_dfg(random.Random(1), num_nodes=8, extra_edges=6)
        g2 = random_dfg(random.Random(2), num_nodes=8, extra_edges=6)
        assert g1 != g2

    def test_node_count(self):
        g = random_dfg(random.Random(0), num_nodes=11)
        assert g.num_nodes == 11

    def test_always_valid(self):
        for seed in range(50):
            g = random_dfg(random.Random(seed), num_nodes=7, extra_edges=8)
            validate(g)

    def test_unit_time_variant(self):
        g = random_unit_time_dfg(random.Random(3), num_nodes=9)
        assert all(v.time == 1 for v in g.nodes())

    def test_single_node(self):
        g = random_dfg(random.Random(0), num_nodes=1, extra_edges=3)
        assert g.num_nodes == 1
        validate(g)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            random_dfg(random.Random(0), num_nodes=0)
        with pytest.raises(ValueError):
            random_dfg(random.Random(0), max_delay=0)


class TestStructuredGenerators:
    def test_line_period(self):
        assert cycle_period(line_dfg(5)) == 5

    def test_line_bound(self):
        assert iteration_bound(line_dfg(6, delay_last=2)) == 3

    def test_ring_bound(self):
        from fractions import Fraction

        assert iteration_bound(ring_dfg(7, 3)) == Fraction(7, 3)

    def test_ring_requires_delay(self):
        with pytest.raises(ValueError):
            ring_dfg(3, 0)

    def test_line_valid(self):
        assert is_valid(line_dfg(4))
