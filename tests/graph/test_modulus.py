"""Tests for the modular evaluation ring.

Multiplicative loop recurrences (e.g. the paper's ``D[i] = A[i] * C[i]``)
square value magnitudes every few iterations; the VM therefore evaluates in
``Z mod (2**61 - 1)``.  These tests pin the reduction semantics and verify
that long executions stay bounded.
"""

from __future__ import annotations

from repro.graph import MODULUS, DFG, OpKind, evaluate_op
from repro.machine import run_program
from repro.codegen import original_loop


class TestModulus:
    def test_modulus_is_mersenne_prime(self):
        assert MODULUS == 2**61 - 1

    def test_results_in_range(self):
        assert 0 <= evaluate_op(OpKind.MUL, 10**30, [10**30], 1) < MODULUS

    def test_sub_wraps_into_ring(self):
        v = evaluate_op(OpKind.SUB, 0, [1, 5], 1)  # 1 - 5 = -4 mod p
        assert v == MODULUS - 4

    def test_small_values_unchanged(self):
        assert evaluate_op(OpKind.ADD, 5, [1, 2], 1) == 8
        assert evaluate_op(OpKind.MUL, 2, [3, 4], 1) == 24

    def test_reduction_is_compositional(self):
        """Reducing at every step equals reducing once at the end."""
        a, b, c = 2**40, 2**50, 2**37
        step = evaluate_op(OpKind.MUL, 1, [evaluate_op(OpKind.MUL, 1, [a, b], 1), c], 1)
        assert step == (a * b * c) % MODULUS

    def test_multiplicative_recurrence_stays_bounded(self):
        """The figure-2 shape (D = A * C) runs 500 iterations in bounded
        values — infeasible without reduction."""
        from repro.workloads import figure2_example

        g = figure2_example()
        res = run_program(original_loop(g), 500)
        assert all(
            0 <= v < MODULUS for store in res.arrays.values() for v in store.values()
        )

    def test_volterra_long_run(self):
        from repro.workloads import volterra_filter

        g = volterra_filter()
        res = run_program(original_loop(g), 200)
        assert res.executed == 200 * g.num_nodes
