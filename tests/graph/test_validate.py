"""Tests for graph validation and topological ordering."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.graph import DFG, DFGError, is_valid, topological_order, validate

from ..conftest import dfgs


class TestTopologicalOrder:
    def test_chain(self):
        g = DFG()
        for n in "ABC":
            g.add_node(n)
        g.add_edge("A", "B", 0)
        g.add_edge("B", "C", 0)
        assert topological_order(g) == ["A", "B", "C"]

    def test_respects_zero_delay_edges_only(self, two_node_cycle):
        # B -> A has delays, so only A -> B constrains the order.
        assert topological_order(two_node_cycle) == ["A", "B"]

    def test_deterministic_tie_break_by_insertion(self):
        g = DFG()
        for n in ["Z", "M", "A"]:
            g.add_node(n)
        assert topological_order(g) == ["Z", "M", "A"]

    def test_zero_delay_cycle_rejected(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B", 0)
        g.add_edge("B", "A", 0)
        with pytest.raises(DFGError, match="zero-delay cycle"):
            topological_order(g)

    def test_zero_delay_self_loop_rejected(self):
        g = DFG()
        g.add_node("A")
        g.add_edge("A", "A", 0)
        with pytest.raises(DFGError, match="zero-delay cycle"):
            topological_order(g)

    def test_order_places_producers_first(self, fig2):
        order = topological_order(fig2)
        pos = {n: i for i, n in enumerate(order)}
        for e in fig2.zero_delay_edges():
            assert pos[e.src] < pos[e.dst]


class TestValidate:
    def test_valid_benchmark(self, bench_graph):
        validate(bench_graph)  # must not raise

    def test_empty_graph_invalid(self):
        with pytest.raises(DFGError, match="no nodes"):
            validate(DFG())

    def test_is_valid_boolean(self, two_node_cycle):
        assert is_valid(two_node_cycle)
        bad = DFG()
        bad.add_node("A")
        bad.add_edge("A", "A", 0)
        assert not is_valid(bad)

    @given(dfgs())
    def test_generated_graphs_are_valid(self, g):
        validate(g)

    @given(dfgs())
    def test_topological_order_is_permutation(self, g):
        order = topological_order(g)
        assert sorted(order) == sorted(g.node_names())

    @given(dfgs())
    def test_topological_order_respects_dependencies(self, g):
        pos = {n: i for i, n in enumerate(topological_order(g))}
        for e in g.zero_delay_edges():
            assert pos[e.src] < pos[e.dst]
