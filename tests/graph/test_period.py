"""Tests for cycle period, ASAP/ALAP times and critical paths."""

from __future__ import annotations

from hypothesis import given

from repro.graph import (
    DFG,
    alap_times,
    asap_times,
    critical_path,
    cycle_period,
)

from ..conftest import dfgs, timed_dfgs


class TestCyclePeriod:
    def test_figure1(self, fig1):
        assert cycle_period(fig1) == 2

    def test_figure2(self, fig2):
        # Zero-delay chain A -> C -> D -> E (B is cut by the delay on B->C).
        assert cycle_period(fig2) == 4

    def test_figure4(self, fig4):
        assert cycle_period(fig4) == 3

    def test_single_node(self):
        g = DFG()
        g.add_node("A", time=5)
        assert cycle_period(g) == 5

    def test_all_edges_delayed(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B", time=3)
        g.add_edge("A", "B", 1)
        g.add_edge("B", "A", 1)
        assert cycle_period(g) == 3  # max single node time

    def test_non_unit_times(self, fig8):
        # Zero-delay chain A(2) B(10) C(3) D(7) E(5).
        assert cycle_period(fig8) == 27


class TestAsapAlap:
    def test_asap_chain(self):
        g = DFG()
        g.add_node("A", time=2)
        g.add_node("B", time=3)
        g.add_node("C")
        g.add_edge("A", "B", 0)
        g.add_edge("B", "C", 0)
        assert asap_times(g) == {"A": 0, "B": 2, "C": 5}

    def test_alap_chain(self):
        g = DFG()
        g.add_node("A", time=2)
        g.add_node("B", time=3)
        g.add_node("C")
        g.add_edge("A", "B", 0)
        g.add_edge("B", "C", 0)
        assert alap_times(g) == {"A": 0, "B": 2, "C": 5}

    def test_alap_with_slack(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B", time=3)
        g.add_node("C")
        g.add_edge("A", "C", 0)
        g.add_edge("B", "C", 0)
        # Period is 4; A can slip to step 2.
        assert alap_times(g)["A"] == 2

    def test_alap_with_horizon(self):
        g = DFG()
        g.add_node("A")
        assert alap_times(g, horizon=10) == {"A": 9}

    @given(timed_dfgs())
    def test_alap_never_before_asap(self, g):
        asap = asap_times(g)
        alap = alap_times(g)
        for n in g.node_names():
            assert alap[n] >= asap[n]

    @given(timed_dfgs())
    def test_period_is_max_completion(self, g):
        asap = asap_times(g)
        assert cycle_period(g) == max(asap[v.name] + v.time for v in g.nodes())


class TestCriticalPath:
    def test_path_length_equals_period(self, fig2):
        path = critical_path(fig2)
        assert sum(fig2.node(n).time for n in path) == cycle_period(fig2)

    def test_path_edges_are_zero_delay(self, fig2):
        path = critical_path(fig2)
        for a, b in zip(path, path[1:]):
            assert any(
                e.delay == 0 for e in fig2.out_edges(a) if e.dst == b
            ), f"{a}->{b} is not a zero-delay edge"

    @given(dfgs())
    def test_property_path_time_is_period(self, g):
        path = critical_path(g)
        assert sum(g.node(n).time for n in path) == cycle_period(g)

    @given(timed_dfgs())
    def test_property_nonunit_path_time_is_period(self, g):
        path = critical_path(g)
        assert sum(g.node(n).time for n in path) == cycle_period(g)
