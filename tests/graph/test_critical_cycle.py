"""Tests for critical-cycle extraction."""

from __future__ import annotations

import random
from fractions import Fraction

from hypothesis import given, settings

from repro.graph import DFG, critical_cycle, cycle_stats, iteration_bound

from ..conftest import dfgs, timed_dfgs


class TestCriticalCycle:
    def test_figure1(self, fig1):
        c = critical_cycle(fig1)
        t, d = cycle_stats(fig1, c)
        assert Fraction(t, d) == 1

    def test_figure8_names_the_long_recurrence(self, fig8):
        c = critical_cycle(fig8)
        assert set(c) == {"A", "B", "C", "D", "E"}
        assert cycle_stats(fig8, c) == (27, 4)

    def test_acyclic_returns_empty(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B", 0)
        assert critical_cycle(g) == []

    def test_self_loop(self):
        g = DFG()
        g.add_node("A", time=3)
        g.add_edge("A", "A", 2)
        assert critical_cycle(g) == ["A"]

    def test_picks_tighter_of_two_cycles(self):
        g = DFG()
        for n in "ABC":
            g.add_node(n)
        g.add_edge("A", "B", 0)
        g.add_edge("B", "A", 2)  # ratio 1
        g.add_edge("B", "C", 0)
        g.add_edge("C", "B", 1)  # ratio 2 <- critical
        assert set(critical_cycle(g)) == {"B", "C"}

    def test_benchmark_witnesses_attain_bound(self, bench_graph):
        c = critical_cycle(bench_graph)
        t, d = cycle_stats(bench_graph, c)
        assert Fraction(t, d) == iteration_bound(bench_graph)

    def test_cycle_is_closed_walk(self, bench_graph):
        c = critical_cycle(bench_graph)
        for a, b in zip(c, c[1:] + c[:1]):
            assert b in bench_graph.successors(a)

    @given(dfgs(max_nodes=6, max_extra_edges=5))
    @settings(max_examples=50, deadline=None)
    def test_random_unit_time(self, g):
        bound = iteration_bound(g)
        c = critical_cycle(g)
        if bound == 0:
            assert c == []
        else:
            t, d = cycle_stats(g, c)
            assert Fraction(t, d) == bound

    @given(timed_dfgs(max_nodes=5))
    @settings(max_examples=50, deadline=None)
    def test_random_timed(self, g):
        bound = iteration_bound(g)
        c = critical_cycle(g)
        if bound > 0:
            t, d = cycle_stats(g, c)
            assert Fraction(t, d) == bound
