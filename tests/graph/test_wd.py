"""Tests for the Leiserson–Saxe W/D matrices."""

from __future__ import annotations

from hypothesis import given, settings

from repro.graph import DFG, distinct_d_values, wd_matrices

from ..conftest import dfgs


def _brute_force_wd(g: DFG, max_len: int = 12):
    """Ground truth by bounded path enumeration (small graphs only)."""
    W: dict[tuple[str, str], int] = {}
    D: dict[tuple[str, str], int] = {}
    # BFS over (node, delay, time) path states, tracking min delay then max
    # time among min-delay simple-ish walks; bounded length keeps it finite.
    for u in g.node_names():
        frontier = [(u, 0, g.node(u).time)]
        best: dict[str, tuple[int, int]] = {u: (0, g.node(u).time)}
        for _ in range(max_len):
            nxt = []
            for node, d, t in frontier:
                for e in g.out_edges(node):
                    nd, nt = d + e.delay, t + g.node(e.dst).time
                    cur = best.get(e.dst)
                    if cur is None or (nd, -nt) < (cur[0], -cur[1]):
                        best[e.dst] = (nd, nt)
                        nxt.append((e.dst, nd, nt))
            frontier = nxt
        for v, (d, t) in best.items():
            W[(u, v)] = d
            D[(u, v)] = t
    return W, D


class TestWDMatrices:
    def test_figure1(self, fig1):
        W, D = wd_matrices(fig1)
        assert W[("A", "B")] == 0
        assert D[("A", "B")] == 2
        assert W[("B", "A")] == 2
        assert D[("B", "A")] == 2
        assert W[("A", "A")] == 0
        assert D[("A", "A")] == 1

    def test_diagonal(self, fig2):
        W, D = wd_matrices(fig2)
        for v in fig2.nodes():
            assert W[(v.name, v.name)] == 0
            assert D[(v.name, v.name)] == v.time

    def test_unreachable_pairs_absent(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B", 0)
        W, _ = wd_matrices(g)
        assert ("B", "A") not in W

    def test_w_picks_min_delay_path(self):
        g = DFG()
        for n in "ABC":
            g.add_node(n)
        g.add_edge("A", "B", 0)
        g.add_edge("B", "C", 3)
        g.add_edge("A", "C", 1)
        W, D = wd_matrices(g)
        assert W[("A", "C")] == 1
        assert D[("A", "C")] == 2  # direct edge path: t(A) + t(C)

    def test_d_maximizes_over_min_delay_paths(self):
        g = DFG()
        for n in "ABCD":
            g.add_node(n)
        # Two zero-delay routes A->D; the longer one defines D(A, D).
        g.add_edge("A", "B", 0)
        g.add_edge("B", "C", 0)
        g.add_edge("C", "D", 0)
        g.add_edge("A", "D", 0)
        W, D = wd_matrices(g)
        assert W[("A", "D")] == 0
        assert D[("A", "D")] == 4

    @given(dfgs(max_nodes=5, max_extra_edges=4, max_delay=2))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, g):
        W, D = wd_matrices(g)
        bW, bD = _brute_force_wd(g)
        for pair, w in bW.items():
            assert W[pair] == w
            assert D[pair] == bD[pair]

    def test_distinct_d_values_sorted_unique(self, fig2):
        vals = distinct_d_values(fig2)
        assert vals == sorted(set(vals))
        # Period candidates must include the achievable optimum (1) and the
        # original period (4).
        assert 1 in vals
        assert 4 in vals


class TestNumpyPath:
    def test_dispatch_threshold(self):
        """Graphs above the threshold use the vectorized path; both paths
        must agree exactly."""
        from repro.graph.wd import _wd_matrices_numpy, wd_matrices_python
        from repro.workloads import get_workload

        for name in ("elliptic", "lattice", "volterra"):
            g = get_workload(name)
            assert _wd_matrices_numpy(g) == wd_matrices_python(g)

    @given(dfgs(max_nodes=8, max_extra_edges=8, max_delay=4))
    @settings(max_examples=60, deadline=None)
    def test_numpy_matches_python_random(self, g):
        from repro.graph.wd import _wd_matrices_numpy, wd_matrices_python

        assert _wd_matrices_numpy(g) == wd_matrices_python(g)

    def test_numpy_matches_python_timed(self, fig8):
        from repro.graph.wd import _wd_matrices_numpy, wd_matrices_python

        assert _wd_matrices_numpy(fig8) == wd_matrices_python(fig8)

    def test_retiming_results_unchanged(self):
        """End-to-end: the optimizer over the numpy path reproduces the
        Table-1 statistics for the large benchmarks."""
        from repro.retiming import minimize_cycle_period
        from repro.workloads import get_workload

        g = get_workload("elliptic")
        c, r = minimize_cycle_period(g)
        assert c == 13
        assert (r.max_value, r.registers_needed()) == (1, 2)


class TestNumpyThresholdDispatch:
    """The python/numpy dispatch threshold and its env-var override."""

    def test_env_override(self, monkeypatch):
        from repro.graph import wd

        monkeypatch.setenv("REPRO_WD_NUMPY_THRESHOLD", "7")
        assert wd._threshold_from_env() == 7
        monkeypatch.setenv("REPRO_WD_NUMPY_THRESHOLD", "not-a-number")
        assert wd._threshold_from_env(default=64) == 64
        monkeypatch.delenv("REPRO_WD_NUMPY_THRESHOLD")
        assert wd._threshold_from_env(default=64) == 64

    @staticmethod
    def _awkward_graph(rng, num_nodes):
        """A random graph spiced with the dispatch-sensitive shapes:
        a delayed self-loop and a parallel edge with a different delay."""
        from repro.graph.generators import random_dfg

        g = random_dfg(
            rng,
            num_nodes=num_nodes,
            extra_edges=2 * num_nodes,
            max_delay=3,
            max_time=3,
        )
        names = g.node_names()
        g.add_edge(names[0], names[0], delay=2)
        e = next(iter(g.edges()))
        g.add_edge(e.src, e.dst, delay=e.delay + 1)
        return g

    def test_both_paths_forced_on_identical_graphs(self, monkeypatch):
        """Force python and numpy paths on the same graphs by swinging the
        threshold; the matrices must agree exactly."""
        import random

        from repro.graph import wd

        rng = random.Random(20020806)
        for num_nodes in (4, 7, 9, 12):
            g = self._awkward_graph(rng, num_nodes)
            monkeypatch.setattr(wd, "_NUMPY_THRESHOLD", 10**9)
            via_python = wd.wd_matrices(g)
            monkeypatch.setattr(wd, "_NUMPY_THRESHOLD", 0)
            via_numpy = wd.wd_matrices(g)
            assert via_python == via_numpy

    def test_dispatch_straddles_threshold(self, monkeypatch):
        """With the threshold pinned between two graph sizes, the smaller
        graph exercises the python path and the larger the numpy path —
        both matching their explicit reference implementations."""
        import random

        from repro.graph import wd
        from repro.graph.wd import _wd_matrices_numpy, wd_matrices_python

        monkeypatch.setattr(wd, "_NUMPY_THRESHOLD", 8)
        rng = random.Random(99)
        small = self._awkward_graph(rng, 6)   # 6 <= 8: python path
        large = self._awkward_graph(rng, 11)  # 11 > 8: numpy path
        assert wd.wd_matrices(small) == wd_matrices_python(small)
        assert wd.wd_matrices(large) == _wd_matrices_numpy(large)
        assert wd_matrices_python(large) == _wd_matrices_numpy(large)
