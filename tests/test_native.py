"""Tests for the optional C kernels and the live env-switch plumbing.

The native backend (:mod:`repro.native`) is off by default and must be
*provably optional*: every test here asserts either bit-identity against
the numpy reference or a clean ``None`` fallback.  The second half pins
the ``REPRO_*_THRESHOLD`` re-read behavior — environment changes made
*after* import must be honored (they once were read only at import time,
which made setting them afterwards silently dead).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import native


@pytest.fixture()
def native_state():
    """Snapshot/restore the module-level library cache around each test."""
    saved = (native._LIB, native._FAILED)
    yield native
    native._LIB, native._FAILED = saved


def _native_ready(monkeypatch) -> bool:
    monkeypatch.setenv("REPRO_NATIVE_KERNELS", "1")
    return native.native_available()


class TestSwitch:
    def test_disabled_by_default(self, monkeypatch, native_state):
        monkeypatch.delenv("REPRO_NATIVE_KERNELS", raising=False)
        assert not native.native_enabled()
        assert native.minplus_pass(
            np.zeros(3, dtype=np.int64), np.zeros((3, 3), dtype=np.int64)
        ) is None
        assert native.mulmod61(
            np.ones(3, dtype=np.uint64), np.ones(3, dtype=np.uint64)
        ) is None

    def test_broken_compiler_falls_back(self, monkeypatch, tmp_path, native_state):
        """No compiler (or a failing one) must never raise — the wrappers
        return ``None`` and the numpy paths carry on."""
        monkeypatch.setenv("REPRO_NATIVE_KERNELS", "1")
        monkeypatch.setenv("CC", str(tmp_path / "no-such-compiler"))
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
        native._LIB, native._FAILED = None, False
        assert native.minplus_pass(
            np.zeros(2, dtype=np.int64), np.zeros((2, 2), dtype=np.int64)
        ) is None
        assert native._FAILED  # the failure is remembered, not retried
        assert not native.native_available()


class TestBitIdentity:
    def test_minplus_pass_matches_numpy(self, monkeypatch, native_state):
        if not _native_ready(monkeypatch):
            pytest.skip("no working C compiler in this environment")
        INF = np.int64(2**61)
        rng = np.random.default_rng(7)
        for _ in range(30):
            n = int(rng.integers(1, 40))
            before = -rng.integers(0, 2**40, size=n).astype(np.int64)
            C = rng.integers(-(2**40), 2**40, size=(n, n)).astype(np.int64)
            # INF rows/entries must participate in the min exactly like the
            # numpy broadcast does (INF + negative weight beats INF).
            C[rng.random((n, n)) < 0.4] = INF
            ref = np.minimum(before, (before[:, None] + C).min(axis=0))
            out = native.minplus_pass(before, C)
            assert out is not None
            assert np.array_equal(out, ref)

    def test_mulmod61_matches_exact(self, monkeypatch, native_state):
        if not _native_ready(monkeypatch):
            pytest.skip("no working C compiler in this environment")
        M = (1 << 61) - 1
        rng = np.random.default_rng(11)
        a = rng.integers(0, M, size=200, dtype=np.uint64)
        b = rng.integers(0, M, size=200, dtype=np.uint64)
        ref = np.array(
            [(int(x) * int(y)) % M for x, y in zip(a, b)], dtype=np.uint64
        )
        out = native.mulmod61(a, b)
        assert out is not None and np.array_equal(out, ref)
        # Scalar-vector broadcasting, mirroring the trace backend's use.
        s = np.uint64(M - 1)
        out = native.mulmod61(s, b[:16])
        ref = np.array([(int(s) * int(y)) % M for y in b[:16]], dtype=np.uint64)
        assert np.array_equal(out, ref)
        edge = np.array([0, 1, M - 1, M // 2, 2**32, 2**32 - 1], dtype=np.uint64)
        out = native.mulmod61(edge, edge[::-1].copy())
        ref = np.array(
            [(int(x) * int(y)) % M for x, y in zip(edge, edge[::-1])],
            dtype=np.uint64,
        )
        assert np.array_equal(out, ref)


class TestEndToEnd:
    def test_minimize_cycle_period_identical(self, monkeypatch, native_state):
        """The full period search is bit-identical with the C pass live."""
        if not _native_ready(monkeypatch):
            pytest.skip("no working C compiler in this environment")
        from repro.graph.generators import random_unit_time_dfg
        from repro.retiming import incremental as inc_mod
        from repro.retiming.optimal import minimize_cycle_period

        g = random_unit_time_dfg(
            random.Random(3), num_nodes=40, extra_edges=40, max_delay=4
        )
        saved = inc_mod._NUMPY_THRESHOLD
        try:
            inc_mod._NUMPY_THRESHOLD = 0  # force the dense numpy backend
            monkeypatch.setenv("REPRO_NATIVE_KERNELS", "0")
            p_ref, r_ref = minimize_cycle_period(g, method="incremental")
            monkeypatch.setenv("REPRO_NATIVE_KERNELS", "1")
            p_nat, r_nat = minimize_cycle_period(g, method="incremental")
        finally:
            inc_mod._NUMPY_THRESHOLD = saved
        assert p_nat == p_ref
        assert r_nat.as_dict() == r_ref.as_dict()

    def test_trace_backend_identical(self, monkeypatch, native_state):
        """A traced VM run is bit-identical with the C mulmod live."""
        if not _native_ready(monkeypatch):
            pytest.skip("no working C compiler in this environment")
        from repro.core import csr_pipelined_loop
        from repro.machine import run_program
        from repro.retiming.optimal import minimize_cycle_period
        from repro.workloads import WORKLOADS

        g = WORKLOADS["elliptic"]()
        _, r = minimize_cycle_period(g)
        p = csr_pipelined_loop(g, r)
        n = 400 + (p.meta.get("min_n", 1) or 1)
        monkeypatch.setenv("REPRO_NATIVE_KERNELS", "0")
        ref = run_program(p, n)
        monkeypatch.setenv("REPRO_NATIVE_KERNELS", "1")
        out = run_program(p, n)
        assert out.arrays == ref.arrays
        assert (out.executed, out.disabled) == (ref.executed, ref.disabled)


class TestThresholdEnvReRead:
    """``REPRO_*_NUMPY_THRESHOLD`` changes after import must take effect.

    Regression tests for the snapshot-compare pattern: each module keeps
    the env string it last parsed and re-parses on change, so both
    post-import ``setenv`` *and* direct ``_NUMPY_THRESHOLD`` monkeypatching
    (used throughout the test-suite) keep working.
    """

    @pytest.mark.parametrize(
        "mod_path, env",
        [
            ("repro.graph.wd", "REPRO_WD_NUMPY_THRESHOLD"),
            ("repro.graph.kernel", "REPRO_KERNEL_NUMPY_THRESHOLD"),
            ("repro.retiming.incremental", "REPRO_INC_NUMPY_THRESHOLD"),
        ],
    )
    def test_post_import_setenv_honored(self, monkeypatch, mod_path, env):
        import importlib

        mod = importlib.import_module(mod_path)
        default = mod._current_threshold()
        monkeypatch.setenv(env, "3")
        assert mod._current_threshold() == 3
        monkeypatch.setenv(env, "not-a-number")  # unparsable -> default
        assert mod._current_threshold() == default
        monkeypatch.delenv(env)
        assert mod._current_threshold() == default
        # With the env untouched, direct monkeypatching still wins.
        monkeypatch.setattr(mod, "_NUMPY_THRESHOLD", 12345)
        assert mod._current_threshold() == 12345

    def test_solver_backend_follows_env(self, monkeypatch):
        """End to end: the env var set *after* import selects the
        incremental solver's relaxation backend."""
        from repro.graph.generators import random_unit_time_dfg
        from repro.graph.wd import wd_matrices
        from repro.retiming.incremental import IncrementalFeasibility

        g = random_unit_time_dfg(
            random.Random(1), num_nodes=12, extra_edges=12, max_delay=3
        )
        W, D = wd_matrices(g)
        monkeypatch.setenv("REPRO_INC_NUMPY_THRESHOLD", "0")
        assert IncrementalFeasibility(g, W, D)._use_numpy
        monkeypatch.setenv("REPRO_INC_NUMPY_THRESHOLD", "1000000")
        assert not IncrementalFeasibility(g, W, D)._use_numpy
