"""Tests for the extra (beyond-paper) workloads."""

from __future__ import annotations

import pytest

from repro.core import assert_equivalent, csr_pipelined_loop
from repro.graph import DFGError, cycle_period, iteration_bound, validate
from repro.retiming import minimize_cycle_period
from repro.workloads import biquad_cascade, fir_filter, get_workload


class TestFir:
    def test_acyclic(self):
        g = fir_filter(5)
        assert iteration_bound(g) == 0

    def test_node_count(self):
        for taps in (2, 4, 8):
            # source + taps multipliers + taps accumulators
            assert fir_filter(taps).num_nodes == 2 * taps + 1

    def test_fully_pipelineable(self):
        """No recurrence: retiming reaches period 1 (unit-time nodes)."""
        g = fir_filter(6)
        c, r = minimize_cycle_period(g)
        assert c == 1
        assert r.max_value == cycle_period(g) - 1

    def test_csr_on_acyclic(self):
        g = fir_filter(4)
        _, r = minimize_cycle_period(g)
        p = csr_pipelined_loop(g, r)
        for n in (0, 1, 3, 20):
            assert_equivalent(g, p, n)

    def test_minimum_taps(self):
        with pytest.raises(DFGError):
            fir_filter(1)

    def test_registered(self):
        assert get_workload("fir").name == "fir5"


class TestBiquadCascade:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_size_scales(self, k):
        assert biquad_cascade(k).num_nodes == 8 * k

    def test_bound_independent_of_length(self):
        """The recurrence lives inside each section; cascading through a
        delay does not tighten the bound."""
        assert iteration_bound(biquad_cascade(1)) == iteration_bound(
            biquad_cascade(4)
        )

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_valid_and_verifiable(self, k):
        g = biquad_cascade(k)
        validate(g)
        _, r = minimize_cycle_period(g)
        assert_equivalent(g, csr_pipelined_loop(g, r), 8)

    def test_retiming_depth_grows_with_length(self):
        _, r1 = minimize_cycle_period(biquad_cascade(1))
        _, r6 = minimize_cycle_period(biquad_cascade(6))
        assert r6.max_value >= r1.max_value

    def test_rejects_zero_sections(self):
        with pytest.raises(DFGError):
            biquad_cascade(0)

    def test_registered_variants(self):
        assert get_workload("biquad2").num_nodes == 16
        assert get_workload("biquad4").num_nodes == 32


class TestLms:
    def test_node_count(self):
        from repro.workloads.extra import lms_filter

        for taps in (1, 3, 5):
            assert lms_filter(taps).num_nodes == 3 * taps + 3

    def test_bound_grows_with_taps(self):
        from fractions import Fraction

        from repro.workloads.extra import lms_filter

        assert iteration_bound(lms_filter(2)) == Fraction(5, 2)
        assert iteration_bound(lms_filter(4)) == Fraction(7, 2)

    def test_error_node_on_critical_cycle(self):
        from repro.graph import critical_cycle
        from repro.workloads.extra import lms_filter

        g = lms_filter(4)
        assert "E" in critical_cycle(g)

    def test_verifiable(self):
        from repro.workloads.extra import lms_filter

        g = lms_filter(3)
        _, r = minimize_cycle_period(g)
        assert_equivalent(g, csr_pipelined_loop(g, r), 10)

    def test_rejects_zero_taps(self):
        from repro.workloads.extra import lms_filter

        with pytest.raises(DFGError):
            lms_filter(0)
