"""Workload snapshot regression tests.

Every experimental number in EXPERIMENTS.md is a function of the exact
benchmark topologies.  These tests pin each workload builder to a frozen
JSON snapshot under ``tests/data/``, so an accidental edit to a filter
graph fails here with a precise diff instead of silently shifting table
cells.

To intentionally update a workload: re-run
``python -c "..."`` from the snapshot generator in the repo history (or
simply rewrite the one file with ``repro.graph.serialize.to_json``), and
update EXPERIMENTS.md in the same change.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.graph.serialize import from_json, to_json
from repro.workloads import WORKLOADS

DATA = Path(__file__).parent.parent / "data"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_matches_snapshot(name):
    snapshot = from_json((DATA / f"{name}.json").read_text())
    built = WORKLOADS[name]()
    assert built == snapshot, (
        f"workload {name!r} diverges from its frozen snapshot; if the "
        f"change is intentional, regenerate tests/data/{name}.json and "
        f"re-derive EXPERIMENTS.md"
    )


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_snapshot_roundtrips(name):
    text = (DATA / f"{name}.json").read_text()
    assert to_json(from_json(text)) + "\n" == text


def test_every_workload_has_a_snapshot():
    names = {p.stem for p in DATA.glob("*.json")}
    assert names == set(WORKLOADS)
