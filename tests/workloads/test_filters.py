"""Tests pinning the six DSP benchmarks to the paper's statistics."""

from __future__ import annotations

import pytest

from repro.core import assert_equivalent, csr_pipelined_loop
from repro.graph import cycle_period, validate
from repro.retiming import minimize_cycle_period
from repro.workloads import BENCHMARKS, PAPER_LABELS, benchmark_graphs, get_workload

# (node count, M_r, registers) as needed to reproduce Tables 1 and 2.
# The paper's elliptic row is internally inconsistent (M_r = 1 admits at
# most 2 distinct values but the paper lists 3 registers); we pin the
# consistent optimum.
EXPECTED = {
    "iir": (8, 1, 2),
    "diffeq": (11, 2, 3),
    "allpole": (15, 3, 4),
    "elliptic": (34, 1, 2),
    "lattice": (26, 2, 3),
    "volterra": (27, 1, 2),
}


class TestTargets:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_node_count(self, name):
        assert get_workload(name).num_nodes == EXPECTED[name][0]

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_retiming_depth(self, name):
        g = get_workload(name)
        _, r = minimize_cycle_period(g)
        assert r.max_value == EXPECTED[name][1]

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_register_count(self, name):
        g = get_workload(name)
        _, r = minimize_cycle_period(g)
        assert r.registers_needed() == EXPECTED[name][2]

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_retiming_improves_period(self, name):
        g = get_workload(name)
        c, _ = minimize_cycle_period(g)
        assert c < cycle_period(g)

    def test_all_valid(self):
        for g in benchmark_graphs():
            validate(g)

    def test_labels_cover_benchmarks(self):
        assert set(PAPER_LABELS) == set(BENCHMARKS)

    def test_registry_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("no-such-filter")

    def test_fresh_instances(self):
        assert get_workload("iir") is not get_workload("iir")


class TestSemantics:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_csr_equivalence(self, name):
        """Every benchmark's optimal-retiming CSR program computes the same
        arrays as the original loop."""
        g = get_workload(name)
        _, r = minimize_cycle_period(g)
        assert_equivalent(g, csr_pipelined_loop(g, r), 13)

    def test_iir_is_a_biquad(self):
        g = get_workload("iir")
        assert g.predecessors("S1") == ["M1", "M2"]
        assert g.predecessors("Y") == ["S1", "S2"]
        # Feedback taps read y one and two iterations back.
        delays = {(e.src, e.dst): e.delay for e in g.edges()}
        assert delays[("Y", "M3")] == 1
        assert delays[("Y", "M4")] == 2
