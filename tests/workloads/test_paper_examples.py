"""Tests asserting every number the paper states about its running examples."""

from __future__ import annotations

from fractions import Fraction

from repro.graph import cycle_period, iteration_bound
from repro.retiming import Retiming, minimize_cycle_period
from repro.workloads import figure1, figure2_example, figure4_loop, figure8


class TestFigure1:
    def test_shape(self):
        g = figure1()
        assert g.num_nodes == 2
        delays = {(e.src, e.dst): e.delay for e in g.edges()}
        assert delays == {("A", "B"): 0, ("B", "A"): 2}

    def test_paper_retiming(self):
        """r(A)=1, r(B)=0 yields one delay on each edge (Figure 1(b))."""
        g = figure1()
        r = Retiming(g, {"A": 1, "B": 0})
        retimed = r.apply()
        assert all(e.delay == 1 for e in retimed.edges())

    def test_period_halves(self):
        """'The schedule length of the new loop body is then reduced from
        two control steps to one control step.'"""
        g = figure1()
        assert cycle_period(g) == 2
        c, _ = minimize_cycle_period(g)
        assert c == 1


class TestFigure2:
    def test_paper_retiming_found(self):
        _, r = minimize_cycle_period(figure2_example())
        assert r.as_dict() == {"A": 3, "B": 2, "C": 2, "D": 1, "E": 0}

    def test_four_distinct_values(self):
        """'Since there are four different retiming values, we need to use
        four conditional registers.'"""
        _, r = minimize_cycle_period(figure2_example())
        assert r.registers_needed() == 4

    def test_loop_runs_n_plus_3_times(self):
        """'The loop will now be executed for n - 3 + 3 + 3 = n + 3 times.'"""
        from repro.core import csr_pipelined_loop

        g = figure2_example()
        _, r = minimize_cycle_period(g)
        p = csr_pipelined_loop(g, r)
        n = 20
        assert p.loop.trip_count(n) == n + 3


class TestFigure4:
    def test_shape(self):
        g = figure4_loop()
        assert g.num_nodes == 3
        delays = {(e.src, e.dst): e.delay for e in g.edges()}
        assert delays == {("B", "A"): 3, ("A", "B"): 0, ("B", "C"): 0}

    def test_bound(self):
        assert iteration_bound(figure4_loop()) == Fraction(2, 3)

    def test_section_3_4_retiming_corrected(self):
        """Section 3.4's Figure 6(a) shows B executing one iteration ahead.
        The figure's literal 'r(B) = 1' is illegal under the paper's own
        delay formula (A->B with d = 0 would go negative); the legal
        retiming producing that pipeline shifts A along with B."""
        g = figure4_loop()
        assert not Retiming(g, {"B": 1}).is_legal()
        r = Retiming(g, {"A": 1, "B": 1})
        assert r.is_legal()
        assert cycle_period(r.apply()) == 2


class TestFigure8:
    def test_non_unit_times(self):
        g = figure8()
        times = sorted(v.time for v in g.nodes())
        assert times == [2, 3, 5, 7, 10]
        assert any(v.time > 1 for v in g.nodes())

    def test_bound_denominator_four(self):
        assert iteration_bound(figure8()) == Fraction(27, 4)

    def test_retiming_alone_cannot_be_rate_optimal(self):
        g = figure8()
        c, _ = minimize_cycle_period(g)
        assert c > iteration_bound(g)
