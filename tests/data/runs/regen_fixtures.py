"""Regenerate the canned run-directory fixtures for the report tests.

Usage (from the repo root)::

    PYTHONPATH=src python tests/data/runs/regen_fixtures.py

Three fixture trees are written next to this script:

``clean/``
    A complete, healthy pair of runs: a ``tables`` journal whose
    payloads are computed by the *real* table payload functions (so the
    report's paper tables are rebuilt from genuine data), a handcrafted
    ``sweep`` journal covering every aggregate section, an
    ``--outcomes-out`` document and a ``BENCH_*.json`` baseline.

``degraded/``
    The same shapes after a bad day: FAILED/TIMED_OUT table rows, a
    failed oracle job, a pending (shed) unit, a torn journal tail, a
    journal with mid-file damage (must be skipped, not fatal), and junk
    files the scanner has to step around.

``regressed/``
    ``clean`` with deliberate regressions — a changed Table-1 cell, a
    worse oracle gap, failed jobs in the outcomes stats, a 3x op-counter
    blowup — the ``--diff`` golden and the CI report-smoke gate compare
    against this tree.

Everything written is deterministic (``compute_time`` is pinned to 0.0
in the handcrafted payloads), so regenerating produces identical bytes
unless the underlying table code changed — exactly when the goldens
*should* move.
"""

from __future__ import annotations

import json
import shutil
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent

sys.path.insert(0, str(HERE.parents[2] / "src"))

from repro.analysis.experiments import (  # noqa: E402
    _orders_payload,
    _table1_payload,
    _table2_payload,
)
from repro.core.predicated import PER_COPY, PER_ITERATION  # noqa: E402
from repro.graph.serialize import to_json  # noqa: E402
from repro.runner.journal import RunJournal  # noqa: E402
from repro.workloads import BENCHMARKS, get_workload  # noqa: E402


def _graph_json(name: str) -> str:
    return to_json(get_workload(name), indent=None)


def _done(journal: RunJournal, key: str, label: str, payload: dict, **outcome) -> None:
    journal.job_submitted(key, label)
    journal.job_done(
        key, label, payload, outcome={"status": "ok", **outcome}
    )


def _failed(journal: RunJournal, key: str, label: str, status: str, error: str) -> None:
    journal.job_submitted(key, label)
    journal.job_failed(
        key,
        label,
        {
            "ok": False,
            "failed": True,
            "status": status,
            "error": error,
            "error_type": "FaultInjected",
        },
        outcome={"status": status, "attempts": 3},
    )


# ----------------------------------------------------------------------
# The tables run: real payloads, journaled exactly as the CLI would.
# ----------------------------------------------------------------------


def write_tables_journal(run_dir: Path, degraded: bool = False, doctor=None) -> None:
    journal = RunJournal(run_dir, fsync=False)
    journal.run_start("tables", {"tables": ["1", "2", "3", "4"]})
    for name in BENCHMARKS:
        label = f"table1:{name}"
        if degraded and name == "volterra":
            _failed(journal, f"k:{label}", label, "failed", "worker died (injected)")
            continue
        payload = _table1_payload({"graph": _graph_json(name)})
        if doctor is not None:
            payload = doctor(label, payload)
        _done(journal, f"k:{label}", label, payload)
    for name in BENCHMARKS:
        label = f"table2:{name}"
        if degraded and name == "elliptic":
            _failed(journal, f"k:{label}", label, "timed_out", "deadline exceeded")
            continue
        payload = _table2_payload(
            {"graph": _graph_json(name), "factor": 3, "trip_count": 101}
        )
        _done(journal, f"k:{label}", label, payload)
    for graph, mode, periods in (
        ("figure8", PER_ITERATION, [None, None, None]),
        ("lattice", PER_COPY, [16, 24, 32]),
    ):
        for f, period in zip((2, 3, 4), periods):
            label = f"orders:{graph}:f={f}"
            payload = _orders_payload(
                {
                    "graph": _graph_json(graph),
                    "factor": f,
                    "period": period,
                    "csr_mode": mode,
                }
            )
            _done(journal, f"k:{label}", label, payload)
    journal.run_end("degraded" if degraded else "ok")
    journal.close()


# ----------------------------------------------------------------------
# The sweep run: handcrafted payloads with the real key sets.
# ----------------------------------------------------------------------

#: (graph seed, plain code size, CSR code size) per transform pair —
#: chosen so the reduction stats are non-trivial (mixed signs).
_SWEEP_SIZES = {
    "rand0": {"pipelined": (12, 8), "retime-unfold": (20, 13), "unfold-retime": (22, 15)},
    "rand1": {"pipelined": (9, 9), "retime-unfold": (16, 12), "unfold-retime": (18, 13)},
    "rand2": {"pipelined": (15, 10), "retime-unfold": (26, 16), "unfold-retime": (26, 18)},
    "rand3": {"pipelined": (11, 12), "retime-unfold": (18, 15), "unfold-retime": (20, 16)},
}

#: (S_fr, S_rf) per graph for the orders jobs — one tie, no violations.
_ORDERS_SIZES = {"rand0": (22, 20), "rand1": (18, 18), "rand2": (26, 21), "rand3": (20, 19)}


def _exec_payload(code_size: int, retimed: bool = True) -> dict:
    payload = {
        "effective_n": 3,
        "code_size": code_size,
        "equivalent": True,
        "executed": 3,
        "disabled": 1,
        "ok": True,
        "error": None,
        "compute_time": 0.0,
    }
    if retimed:
        payload.update({"period": 2, "registers": 2, "max_retiming": 1})
    return payload


def _oracle_payload_for(seed: int, gap: int = 0, proven: bool = True) -> dict:
    period = 2 + seed % 2
    return {
        "period_optimal": period + gap,
        "optimum_lower": period,
        "proven": proven,
        "probes": 3,
        "periods": [period + gap, period + gap + 1],
        "gap": gap,
        "rotation_length": 2,
        "rotation_gap": 0,
        "modulo_ii": period,
        "modulo_ii_optimal": period,
        "modulo_gap": 0,
        "optimal_code_size": 6 + seed,
        "heuristic_code_size": 6 + seed + gap,
        "min_max_retiming": 1,
        "violations": [],
        "bounds_ok": True,
        "ok": True,
        "error": None,
        "compute_time": 0.0,
    }


def write_sweep_journal(run_dir: Path, degraded: bool = False, doctor=None) -> None:
    journal = RunJournal(run_dir, fsync=False)
    journal.run_start(
        "sweep", {"graphs": len(_SWEEP_SIZES), "factors": [2], "seed": 0}
    )
    for graph in sorted(_SWEEP_SIZES):
        seed = int(graph[4:])
        for pair, (plain_size, csr_size) in sorted(_SWEEP_SIZES[graph].items()):
            f = 1 if pair == "pipelined" else 2
            for transform, size in ((pair, plain_size), (f"csr-{pair}", csr_size)):
                label = f"{graph}/{transform}/f={f}/n=3"
                _done(journal, f"k:{label}", label, _exec_payload(size))
        s_fr, s_rf = _ORDERS_SIZES[graph]
        label = f"{graph}/orders/f=2/n=3"
        _done(
            journal,
            f"k:{label}",
            label,
            {
                "period": 2,
                "registers": 2,
                "size_unfold_retime": s_fr,
                "size_retime_unfold": s_rf,
                "inequality_holds": s_fr >= s_rf,
                "equivalent": True,
                "executed": 3,
                "disabled": 1,
                "ok": True,
                "error": None,
                "compute_time": 0.0,
            },
        )
        label = f"{graph}/oracle/f=1/n=0"
        if degraded and graph == "rand1":
            _failed(journal, f"k:{label}", label, "timed_out", "oracle deadline")
            continue
        payload = _oracle_payload_for(seed)
        if doctor is not None:
            payload = doctor(label, payload)
        _done(journal, f"k:{label}", label, payload)
    if degraded:
        # One unit submitted but never completed: shed by the crash the
        # torn tail below simulates; accounting must show shed == 1.
        journal.job_submitted("k:rand9/oracle/f=1/n=0", "rand9/oracle/f=1/n=0")
    else:
        journal.run_end("ok")
    journal.close()
    if degraded:
        # A torn final line — the crash signature scan_journal tolerates.
        with open(run_dir / "journal.jsonl", "a") as fh:
            fh.write('{"v": 1, "seq": 999, "ty')


def write_outcomes(path: Path, regressed: bool = False) -> None:
    failed = 2 if regressed else 0
    calls = 33
    doc = {
        "stats": {
            "calls": calls,
            "computed": calls,
            "completed": calls - failed,
            "errors": 0,
            "retried": 1,
            "timed_out": 0,
            "failed": failed,
            "resumed": 0,
            "respawned": 0,
        },
        "outcomes": [
            {
                "label": "rand0/orders/f=2/n=3",
                "status": "ok",
                "attempts": 2,
                "faults": 1,
                "error": None,
                "resumed": False,
                "respawned": False,
                "oracle_gap": None,
            },
            {
                "label": "rand0/oracle/f=1/n=0",
                "status": "ok",
                "attempts": 1,
                "faults": 0,
                "error": None,
                "resumed": False,
                "respawned": False,
                "oracle_gap": 0,
            },
        ],
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")


def write_bench(path: Path, regressed: bool = False) -> None:
    blow = 3 if regressed else 1
    doc = {
        "benchmark": "iir",
        "mode": "verify",
        "sizes": [8, 16],
        "trip_count": 64,
        "results": {
            "baseline": [
                {
                    "size": 8,
                    "period": 2,
                    "ref_s": 0.0021,
                    "new_s": 0.0012,
                    "speedup": 1.75,
                    "counters": {"vm.instructions": 1200 * blow, "vm.loads": 300},
                },
                {
                    "size": 16,
                    "period": 2,
                    "ref_s": 0.0044,
                    "new_s": 0.0021,
                    "speedup": 2.1,
                    "counters": {"vm.instructions": 2500 * blow, "vm.loads": 640},
                },
            ]
        },
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")


# ----------------------------------------------------------------------
# Trees
# ----------------------------------------------------------------------


def write_clean(root: Path) -> None:
    write_tables_journal(root / "tables")
    write_sweep_journal(root / "sweep")
    write_outcomes(root / "sweep" / "outcomes.json")
    write_bench(root / "BENCH_iir.json")


def write_degraded(root: Path) -> None:
    write_tables_journal(root / "tables", degraded=True)
    write_sweep_journal(root / "sweep", degraded=True)
    write_outcomes(root / "sweep" / "outcomes.json")
    # Mid-file damage: flip payload bytes on a middle line without
    # touching the checksum — scan_journal must refuse the whole file
    # and the report must skip-and-report it.
    corrupt = root / "corrupt"
    write_sweep_journal(corrupt)
    lines = (corrupt / "journal.jsonl").read_text().splitlines()
    lines[2] = lines[2].replace('"ok":true', '"ok":folse', 1)
    (corrupt / "journal.jsonl").write_text("\n".join(lines) + "\n")
    (root / "junk.json").write_text('{"neither": "outcomes", "nor": "bench"}\n')
    (root / "broken.json").write_text("{not json at all\n")
    (root / "notes.txt").write_text("free-form text the scanner ignores\n")
    (root / "empty").mkdir(parents=True, exist_ok=True)
    (root / "empty" / ".gitkeep").write_text("")


def write_regressed(root: Path) -> None:
    def doctor_tables(label: str, payload: dict) -> dict:
        if label == "table1:iir":
            # The CR rewrite "lost" its savings: the changed cell (and
            # the derived %Red column) must trip the --diff gate.
            return {**payload, "csr": payload["csr"] + 8}
        return payload

    def doctor_sweep(label: str, payload: dict) -> dict:
        if label == "rand2/oracle/f=1/n=0":
            return {
                **payload,
                "gap": 2,
                "proven": False,
                "period_optimal": payload["optimum_lower"] + 2,
                "heuristic_code_size": payload["heuristic_code_size"] + 2,
            }
        return payload

    write_tables_journal(root / "tables", doctor=doctor_tables)
    write_sweep_journal(root / "sweep", doctor=doctor_sweep)
    write_outcomes(root / "sweep" / "outcomes.json", regressed=True)
    write_bench(root / "BENCH_iir.json", regressed=True)


def main() -> int:
    for name, writer in (
        ("clean", write_clean),
        ("degraded", write_degraded),
        ("regressed", write_regressed),
    ):
        root = HERE / name
        if root.exists():
            shutil.rmtree(root)
        root.mkdir(parents=True)
        writer(root)
        files = sorted(p.relative_to(root) for p in root.rglob("*") if p.is_file())
        print(f"{name}/: {len(files)} files")
        for f in files:
            print(f"  {f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
