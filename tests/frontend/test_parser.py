"""Tests for the loop-source parser."""

from __future__ import annotations

import pytest

from repro.core import assert_equivalent, csr_pipelined_loop
from repro.frontend import ParseError, parse_loop
from repro.graph import OpKind
from repro.retiming import minimize_cycle_period
from repro.workloads import figure2_example, figure4_loop

FIGURE2_SOURCE = """
A[i] = E[i-4] + 9
B[i] = A[i] * 5
C[i] = A[i] + B[i-2]
D[i] = A[i] * C[i]
E[i] = D[i] + 30
"""

FIGURE4_SOURCE = """
A[i] = B[i-3] * 3;
B[i] = A[i] + 7;
C[i] = B[i] * 2;
"""


class TestPaperSources:
    def test_figure2_roundtrip(self):
        """Parsing the paper's Figure-3(a) source reproduces the hand-built
        figure2 workload graph — ops, immediates, edges, delays."""
        parsed = parse_loop(FIGURE2_SOURCE, name="figure2")
        hand = figure2_example()
        assert parsed.num_nodes == hand.num_nodes
        for v in hand.nodes():
            p = parsed.node(v.name)
            assert (p.op, p.imm) == (v.op, v.imm), v.name
        assert {(e.src, e.dst, e.delay) for e in parsed.edges()} == {
            (e.src, e.dst, e.delay) for e in hand.edges()
        }

    def test_figure4_roundtrip(self):
        parsed = parse_loop(FIGURE4_SOURCE)
        hand = figure4_loop()
        assert {(e.src, e.dst, e.delay) for e in parsed.edges()} == {
            (e.src, e.dst, e.delay) for e in hand.edges()
        }

    def test_parsed_graph_flows_through_pipeline(self):
        """Front-end to back-end: parse, retime, reduce, verify."""
        g = parse_loop(FIGURE2_SOURCE)
        _, r = minimize_cycle_period(g)
        assert_equivalent(g, csr_pipelined_loop(g, r), 17)


class TestShapes:
    def test_copy(self):
        g = parse_loop("A[i] = B[i-1]\nB[i] = A[i-1] + 1")
        assert g.node("A").op is OpKind.COPY

    def test_ref_plus_const_is_add(self):
        g = parse_loop("A[i] = B[i-1] + 4\nB[i] = A[i-1]")
        assert g.node("A").op is OpKind.ADD
        assert g.node("A").imm == 4

    def test_add_multiple_refs(self):
        g = parse_loop("S[i] = A[i-1] + B[i-2] + 7\nA[i] = S[i-1]\nB[i] = S[i-2]")
        assert g.node("S").op is OpKind.ADD
        assert g.node("S").imm == 7
        assert len(g.in_edges("S")) == 2

    def test_mul_with_constant(self):
        g = parse_loop("A[i] = A[i-1] * 3")
        assert g.node("A").op is OpKind.MUL
        assert g.node("A").imm == 3

    def test_product_of_refs(self):
        g = parse_loop("P[i] = A[i-1] * B[i-1]\nA[i] = P[i-1]\nB[i] = P[i-2]")
        assert g.node("P").op is OpKind.MUL
        assert g.node("P").imm == 1

    def test_mac(self):
        g = parse_loop(
            "M[i] = A[i-1] * B[i-1] + C[i-2]\n"
            "A[i] = M[i-1]\nB[i] = M[i-2]\nC[i] = M[i-1]"
        )
        assert g.node("M").op is OpKind.MAC

    def test_sub_chain(self):
        g = parse_loop("U[i] = U[i-1] - V[i-2] - 3\nV[i] = U[i-1]")
        assert g.node("U").op is OpKind.SUB
        assert g.node("U").imm == -3

    def test_source(self):
        g = parse_loop("X[i] = input(5)\nY[i] = X[i] + X[i-1]")
        assert g.node("X").op is OpKind.SOURCE
        assert g.node("X").imm == 5

    def test_comments_and_blanks(self):
        g = parse_loop(
            """
            # a comment
            A[i] = A[i-1] + 1   // trailing comment

            """
        )
        assert g.num_nodes == 1

    def test_negative_constant(self):
        g = parse_loop("A[i] = A[i-1] + -2")
        assert g.node("A").op is OpKind.ADD
        assert g.node("A").imm == -2


class TestErrors:
    def test_forward_reference_rejected(self):
        with pytest.raises(ParseError, match="forward reference"):
            parse_loop("A[i] = A[i+1] + 1")

    def test_current_index_allowed(self):
        g = parse_loop("A[i] = B[i] + 1\nB[i] = A[i-1]")
        delays = {(e.src, e.dst): e.delay for e in g.edges()}
        assert delays[("B", "A")] == 0

    def test_double_assignment_rejected(self):
        with pytest.raises(ParseError, match="already assigned"):
            parse_loop("A[i] = A[i-1] + 1\nA[i] = A[i-2] + 2")

    def test_unknown_array_rejected(self):
        with pytest.raises(ParseError, match="never assigned"):
            parse_loop("A[i] = Z[i-1] + 1")

    def test_missing_equals(self):
        with pytest.raises(ParseError, match="expected"):
            parse_loop("A[i] + 1")

    def test_bad_lhs(self):
        with pytest.raises(ParseError, match="left-hand side"):
            parse_loop("A[i-1] = B[i] + 1")

    def test_constant_only_rhs(self):
        with pytest.raises(ParseError, match="constant-only"):
            parse_loop("A[i] = 5")

    def test_garbage_term(self):
        with pytest.raises(ParseError, match="cannot parse"):
            parse_loop("A[i] = B[j] + 1")

    def test_zero_delay_cycle_rejected(self):
        with pytest.raises(Exception, match="zero-delay cycle"):
            parse_loop("A[i] = B[i] + 1\nB[i] = A[i] + 1")

    def test_dangling_operator(self):
        with pytest.raises(ParseError, match="dangling"):
            parse_loop("A[i] = B[i-1] +")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError, match="line 3"):
            parse_loop("A[i] = A[i-1] + 1\nB[i] = A[i]\nC[i] = Q[j]")
