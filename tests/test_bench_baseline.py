"""Schema validation of the committed hot-path benchmark baseline.

``BENCH_hotpaths.json`` is a CI gate: quick-mode runs compare their
operation counters against it (see ``benchmarks/bench_hotpaths.py
--check``).  A malformed or stale baseline silently weakens that gate —
rows the checker cannot match are skipped, not flagged — so this test
pins the committed file's shape: full mode, every section present, every
row carrying the gated counters the checker keys on.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO / "benchmarks"))

from bench_hotpaths import FULL_SIZES, GATED_COUNTERS, _counter_rows  # noqa: E402


@pytest.fixture(scope="module")
def baseline() -> dict:
    path = REPO / "BENCH_hotpaths.json"
    assert path.exists(), "committed baseline BENCH_hotpaths.json is missing"
    return json.loads(path.read_text())


def test_top_level_shape(baseline):
    assert baseline["benchmark"] == "hotpaths"
    assert baseline["mode"] == "full", (
        "the committed baseline must be a full-mode run so quick-mode CI "
        "checks find every (path, label, counter) key"
    )
    assert baseline["sizes"] == list(FULL_SIZES)
    assert set(baseline["results"]) == {
        "minimize_cycle_period", "iteration_bound", "vm", "vliw",
    }


def test_rows_have_measurements(baseline):
    for path, rows in baseline["results"].items():
        assert rows, f"{path}: empty section"
        for row in rows:
            assert ("size" in row) != ("workload" in row)
            for key in ("ref_s", "new_s", "speedup"):
                assert isinstance(row[key], (int, float)), (path, key)
            assert isinstance(row["counters"], dict)
            for name, value in row["counters"].items():
                assert isinstance(value, int), (path, name)


def test_gated_counters_present(baseline):
    """Every gated counter the new engines emit appears in the rows the
    checker will key on — including the counters added with the trace
    backend and the shared-kernel sweeps."""
    seen = {name for (_p, _l, name, _v) in _counter_rows(baseline)}
    assert seen == set(GATED_COUNTERS), (
        f"baseline gated-counter coverage drifted: missing "
        f"{set(GATED_COUNTERS) - seen}, unknown {seen - set(GATED_COUNTERS)}"
    )


def test_counter_keys_unique(baseline):
    """The checker builds a dict keyed by (path, label, counter); duplicate
    keys would shadow rows and weaken the gate."""
    keys = [(p, l, n) for (p, l, n, _v) in _counter_rows(baseline)]
    assert len(keys) == len(set(keys))


def test_recorded_speedups_meet_floors(baseline):
    """The committed (already-measured) numbers back the performance
    claims: >= 3x on the 500-node period search and >= 5x on every VM and
    VLIW workload row.  This reads the committed JSON — it never re-times
    anything, so it cannot flake."""
    minimize = {r["size"]: r for r in baseline["results"]["minimize_cycle_period"]}
    assert minimize[500]["speedup"] >= 3.0
    for section in ("vm", "vliw"):
        for row in baseline["results"][section]:
            assert row["speedup"] >= 5.0, (section, row["workload"])
