"""The oracle gap table and the status-aware FailedCell degradation."""

from __future__ import annotations

from repro.analysis import format_gap_table
from repro.analysis.experiments import FailedCell, _failed_cell
from repro.analysis.tables import GAP_TABLE_HEADERS
from repro.runner.difftest import OracleRecord


class TestFormatGapTable:
    def test_ok_rows_render_certificate_columns(self):
        record = OracleRecord(
            seed=7, label="rand7", status="ok",
            period=3, optimum_lower=3, proven=True, gap=0,
        )
        text = format_gap_table([record.as_row()])
        header, rule, row = text.splitlines()
        for col in GAP_TABLE_HEADERS:
            assert col in header
        assert rule.strip("- ") == ""
        assert "rand7" in row and "yes" in row

    def test_unproven_row_shows_gap(self):
        record = OracleRecord(
            seed=1, label="rand1", status="ok",
            period=5, optimum_lower=3, proven=False, gap=2,
        )
        row = format_gap_table([record.as_row()]).splitlines()[-1]
        assert "no" in row
        assert row.rstrip().endswith("2")

    def test_non_ok_rows_render_status_markers(self):
        rows = [
            OracleRecord(seed=0, label="rand0", status="failed").as_row(),
            OracleRecord(seed=1, label="rand1", status="timed_out").as_row(),
            OracleRecord(seed=2, label="rand2", status="error").as_row(),
        ]
        text = format_gap_table(rows)
        assert text.count("FAILED") == 4
        assert text.count("TIMED_OUT") == 4
        assert text.count("ERROR") == 4

    def test_mixed_table_stays_rectangular(self):
        rows = [
            OracleRecord(
                seed=0, label="rand0", status="ok",
                period=2, optimum_lower=2, proven=True, gap=0,
            ).as_row(),
            OracleRecord(seed=1, label="rand1", status="failed").as_row(),
        ]
        lines = format_gap_table(rows).splitlines()
        assert len(lines) == 4
        assert len({len(line) for line in lines}) == 1

    def test_empty_table_is_just_the_header(self):
        assert len(format_gap_table([]).splitlines()) == 2


class TestFailedCellStatus:
    def test_engine_level_status_is_preserved(self):
        payload = {
            "ok": False,
            "status": "timed_out",
            "error": "deadline exceeded",
            "error_type": "JobTimeoutError",
        }
        cell = _failed_cell(payload, name="iir", label="IIR")
        assert isinstance(cell, FailedCell)
        assert cell.status == "timed_out"
        assert cell.error == "deadline exceeded"

    def test_in_band_errors_default_to_error_status(self):
        # Pre-resilience payloads carry no "status" key at all; the cell
        # must not claim an engine-level failure for them.
        cell = _failed_cell({"ok": False, "error": "zero-delay cycle"})
        assert cell.status == "error"

    def test_ok_payload_yields_no_cell(self):
        assert _failed_cell({"ok": True}) is None
