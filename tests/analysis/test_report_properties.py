"""Property tests for the report pipeline's aggregation invariants.

The report promises that its *aggregate* sections (randomized code-size
reduction, inequality margins, oracle gaps) depend only on the **set of
completed units of work** — never on how the journal records were
distributed across files, what order they were written in, how many
times a unit was replayed across resumes, or which shard a run
directory landed in.  These tests generate a logical workload, journal
it in many adversarial physical layouts, and require the report to come
out identical every time.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.report import build_report, diff_reports, report_json
from repro.runner.journal import RunJournal

#: The aggregate sections that must be layout-invariant (accounting is
#: per-journal by design, so it is excluded).
AGGREGATE_SLUGS = ("code-size", "inequality", "oracle-gaps")


# ----------------------------------------------------------------------
# Logical workloads: a list of (key, label, payload, failed) units.
# ----------------------------------------------------------------------


def _unit(seed: int, kind: str, a: int, b: int, ok: bool):
    graph = f"rand{seed}"
    if kind == "orders":
        label = f"{graph}/orders/f=2/n=3"
        payload = {
            "ok": True,
            "period": 2,
            "size_unfold_retime": max(a, b),
            "size_retime_unfold": min(a, b),
            "inequality_holds": True,
            "compute_time": 0.0,
        }
    elif kind == "oracle":
        label = f"{graph}/oracle/f=1/n=0"
        payload = {
            "ok": True,
            "period_optimal": 2 + b % 3,
            "optimum_lower": 2,
            "proven": b % 3 == 0,
            "gap": b % 3,
            "bounds_ok": True,
            "compute_time": 0.0,
        }
    else:  # a pipelined/csr pair member
        label = f"{graph}/{kind}/f=1/n=3"
        payload = {"ok": True, "code_size": 4 + a, "compute_time": 0.0}
    if not ok:
        payload = {
            "ok": False,
            "failed": True,
            "status": "failed",
            "error": "injected",
            "error_type": "FaultInjected",
        }
    return (f"k:{label}", label, payload, not ok)


units_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.sampled_from(["pipelined", "csr-pipelined", "orders", "oracle"]),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
        st.booleans(),
    ),
    min_size=1,
    max_size=10,
)


def _materialize(raw) -> list[tuple]:
    """Unique logical units (first draw wins per key — content address)."""
    seen: dict[str, tuple] = {}
    for seed, kind, a, b, ok in raw:
        unit = _unit(seed, kind, a, b, ok)
        seen.setdefault(unit[0], unit)
    return list(seen.values())


def _write_journal(run_dir: Path, units, pending=(), finish=True) -> None:
    journal = RunJournal(run_dir, fsync=False)
    journal.run_start("sweep", {"graphs": len(units)})
    for key, label, payload, failed in units:
        journal.job_submitted(key, label)
        if failed:
            journal.job_failed(key, label, payload, outcome={"status": "failed"})
        else:
            journal.job_done(key, label, payload, outcome={"status": "ok"})
    for key, label in pending:
        journal.job_submitted(key, label)
    if finish:
        journal.run_end("ok")
    journal.close()


def _aggregate_docs(runs_root: Path) -> dict:
    doc = json.loads(report_json(build_report([runs_root])))
    return {
        s["slug"]: s for s in doc["sections"] if s["slug"] in AGGREGATE_SLUGS
    }


class TestLayoutInvariance:
    @given(units=units_strategy, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_sharding_and_order_invariant(self, units, data):
        """Any split of the units across journal files, in any record
        order, with any units replayed into extra shards, aggregates to
        the same report sections."""
        units = _materialize(units)
        baseline_order = sorted(units)
        with tempfile.TemporaryDirectory() as td:
            base = Path(td)
            _write_journal(base / "baseline" / "run", baseline_order)
            reference = _aggregate_docs(base / "baseline")

            shuffled = data.draw(st.permutations(units))
            cut = data.draw(st.integers(min_value=0, max_value=len(shuffled)))
            shards = [shuffled[:cut], shuffled[cut:]]
            # Replay a random subset into a third shard: duplicated keys
            # are the resume signature and must not double-count.
            replayed = [u for u in units if data.draw(st.booleans())]
            if replayed:
                shards.append(replayed)
            for i, shard in enumerate(shards):
                if shard:
                    _write_journal(base / "sharded" / f"shard{i}", shard)
            assert _aggregate_docs(base / "sharded") == reference

    @given(units=units_strategy)
    @settings(max_examples=25, deadline=None)
    def test_failed_and_pending_units_do_not_skew_aggregates(self, units):
        """FAILED completions and pending (shed) submissions change the
        accounting table, never the aggregate statistics."""
        units = _materialize(units)
        healthy = [u for u in units if not u[3]]
        with tempfile.TemporaryDirectory() as td:
            base = Path(td)
            _write_journal(base / "healthy" / "run", sorted(healthy))
            _write_journal(
                base / "noisy" / "run",
                sorted(units),
                pending=[("k:ghost", "rand9/oracle/f=1/n=0")],
                finish=False,
            )
            healthy_docs = _aggregate_docs(base / "healthy")
            noisy_docs = _aggregate_docs(base / "noisy")
            # Oracle FAILED rows are *shown* in the gap table (marker
            # rows), so compare only the sections that aggregate stats
            # over ok payloads when failures are present.  The empty-
            # section explanatory note may legitimately differ (a tree
            # whose every unit failed has no healthy counterpart jobs at
            # all), so the invariant covers status + data, not prose.
            for slug in ("code-size", "inequality"):
                assert noisy_docs[slug]["status"] == healthy_docs[slug]["status"]
                assert noisy_docs[slug]["data"] == healthy_docs[slug]["data"]

    @given(units=units_strategy)
    @settings(max_examples=15, deadline=None)
    def test_self_diff_is_always_clean(self, units):
        units = _materialize(units)
        with tempfile.TemporaryDirectory() as td:
            base = Path(td)
            _write_journal(base / "runs" / "run", units)
            doc = json.loads(report_json(build_report([base / "runs"])))
            result = diff_reports(doc, doc)
            assert result.clean, result.summary()
            # Round-tripping through JSON must not change the verdict.
            doc2 = json.loads(json.dumps(doc))
            assert diff_reports(doc, doc2).clean


class TestAccountingIdentity:
    @given(units=units_strategy, pending_n=st.integers(min_value=0, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_conservation_law_holds_per_journal(self, units, pending_n):
        """Every accounting row satisfies
        ``completed + failed + shed == submitted`` whatever mix of done,
        failed and shed units the journal records."""
        units = _materialize(units)
        pending = [
            (f"k:pending{i}", f"rand{8 + i}/oracle/f=1/n=0")
            for i in range(pending_n)
        ]
        with tempfile.TemporaryDirectory() as td:
            base = Path(td)
            _write_journal(
                base / "run", units, pending=pending, finish=pending_n == 0
            )
            report = build_report([base])
            acc = report.section("accounting")
            assert acc.status == "ok"
            assert acc.data["identity_ok"]
            for row in acc.data["rows"]:
                submitted, completed, failed, shed = row[2:6]
                assert completed + failed + shed == submitted
                assert shed == pending_n
                assert failed == sum(1 for u in units if u[3])
