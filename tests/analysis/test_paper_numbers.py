"""Regression pins for the paper's published numbers (Tables 1-4).

``PAPER_TABLE*`` are transcriptions of the 2002 paper — they must never
drift, and the engine-driven table pipeline must render the same bytes as
the direct one.  A cache bug, a refactor of the drivers, or an accidental
edit of a published column fails here, in tier-1, before it can silently
corrupt EXPERIMENTS.md or the benchmark reports.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    format_order_comparison,
    format_table1,
    format_table2,
    table1_rows,
    table2_rows,
    table3_comparison,
    table4_comparison,
)
from repro.runner import ExperimentEngine, ResultCache


class TestPublishedNumbers:
    """Byte-for-byte pins of the transcribed paper columns."""

    def test_table1_published_columns(self):
        assert PAPER_TABLE1 == {
            "iir": (8, 16, 12, 2, 25.0),
            "diffeq": (11, 33, 17, 3, 48.5),
            "allpole": (15, 60, 23, 4, 61.7),
            "elliptic": (34, 68, 40, 3, 41.2),
            "lattice": (26, 78, 32, 3, 59.0),
            "volterra": (27, 54, 31, 2, 42.6),
        }

    def test_table2_published_columns(self):
        assert PAPER_TABLE2 == {
            "iir": (48, 32, 2, 33.3),
            "diffeq": (77, 45, 3, 41.6),
            "allpole": (120, 61, 4, 49.2),
            "elliptic": (238, 114, 3, 52.1),
            "lattice": (182, 90, 3, 50.5),
            "volterra": (168, 89, 2, 47.0),
        }

    def test_table3_published_columns(self):
        assert PAPER_TABLE3 == {
            "unfold-retime": (20, 30, 40),
            "retime-unfold": (20, 30, 30),
            "retime-unfold-CR": (14, 19, 24),
            "iteration period": (20, 19, 13.5),
        }

    def test_table4_published_columns(self):
        assert PAPER_TABLE4 == {
            "unfold-retime": (156, 312, 416),
            "retime-unfold": (130, 156, 182),
            "retime-unfold-CR": (61, 90, 119),
        }


@pytest.fixture(scope="module")
def engine(tmp_path_factory):
    return ExperimentEngine(jobs=1, cache=ResultCache(tmp_path_factory.mktemp("cache")))


class TestEngineRendersIdenticalTables:
    """The engine path must be byte-identical to the direct path — twice,
    so the second (cache-served) render is pinned too."""

    def test_table1_bytes(self, engine):
        direct = format_table1(table1_rows())
        assert format_table1(table1_rows(engine=engine)) == direct
        assert format_table1(table1_rows(engine=engine)) == direct  # cached

    def test_table2_bytes(self, engine):
        direct = format_table2(table2_rows())
        assert format_table2(table2_rows(engine=engine)) == direct
        assert format_table2(table2_rows(engine=engine)) == direct

    def test_table3_bytes(self, engine):
        direct = format_order_comparison(table3_comparison(), PAPER_TABLE3)
        for _ in range(2):
            assert (
                format_order_comparison(table3_comparison(engine=engine), PAPER_TABLE3)
                == direct
            )

    def test_table4_bytes(self, engine):
        direct = format_order_comparison(table4_comparison(), PAPER_TABLE4)
        for _ in range(2):
            assert (
                format_order_comparison(table4_comparison(engine=engine), PAPER_TABLE4)
                == direct
            )

    def test_second_pass_served_from_cache(self, engine):
        """After the renders above, the hit rate reflects real cache use."""
        assert engine.cache.stats.hits >= 18
        assert engine.cache.stats.hit_rate >= 0.5

    def test_measured_rows_match_published_where_exact(self, engine):
        """The engine-computed measured columns hit the published values on
        the rows the reproduction matches exactly (guards cache payloads
        against type drift, e.g. Fraction -> float)."""
        rows = {r.name: r for r in table1_rows(engine=engine)}
        for name in ("iir", "diffeq", "allpole", "lattice", "volterra"):
            paper = PAPER_TABLE1[name]
            assert rows[name].original == paper[0]
            assert rows[name].retimed == paper[1]
            assert rows[name].csr == paper[2]
            assert rows[name].registers == paper[3]
        cols = table3_comparison(engine=engine)
        assert [c.retime_unfold_size for c in cols] == [20, 30, 30]
        cols4 = table4_comparison(engine=engine)
        assert [c.csr_size for c in cols4] == [61, 90, 119]
