"""Up-front CLI validation: incompatible flag combos die with one line.

Covers :func:`validate_engine_args` (bad distributed-execution combos),
the topology fingerprint a journal records, and
:func:`check_topology`'s refusal to ``--resume`` under a different
execution fabric than the journal was written with.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.analysis.__main__ import (
    build_parser,
    check_topology,
    topology_from_args,
    validate_engine_args,
)
from repro.runner import JournalError


def _args(*argv: str):
    return build_parser().parse_args(list(argv))


class TestValidateEngineArgs:
    def test_plain_and_valid_remote_combos_pass(self):
        validate_engine_args(_args())
        validate_engine_args(_args("--supervised"))
        validate_engine_args(_args("--workers", "remote"))
        validate_engine_args(
            _args("--workers", "remote", "--remote-workers", "3",
                  "--lease-timeout", "5")
        )
        validate_engine_args(
            _args("--workers", "remote", "--coordinator", "127.0.0.1:8750")
        )

    def test_supervised_and_remote_are_mutually_exclusive(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            validate_engine_args(_args("--supervised", "--workers", "remote"))

    @pytest.mark.parametrize(
        "argv",
        [
            ("--coordinator", "127.0.0.1:8750"),
            ("--remote-workers", "2"),
            ("--lease-timeout", "5"),
        ],
    )
    def test_remote_flags_require_remote_workers(self, argv):
        with pytest.raises(SystemExit, match="requires --workers remote"):
            validate_engine_args(_args(*argv))

    def test_coordinator_excludes_spawned_workers(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            validate_engine_args(
                _args("--workers", "remote", "--coordinator", "h:1",
                      "--remote-workers", "2")
            )

    def test_cli_dies_with_single_error_line(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "1",
             "--coordinator", "127.0.0.1:9"],
            env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode != 0
        lines = [l for l in proc.stderr.splitlines() if l]
        assert lines == ["error: --coordinator requires --workers remote"]
        assert proc.stdout == ""  # validation fired before any work


class TestTopologyFingerprint:
    def test_fingerprint_shape(self):
        assert topology_from_args(_args()) == {
            "workers": "local", "supervised": False,
        }
        assert topology_from_args(_args("--workers", "remote")) == {
            "workers": "remote", "supervised": False,
        }
        assert topology_from_args(_args("--supervised")) == {
            "workers": "local", "supervised": True,
        }

    def test_old_journals_without_fingerprint_stay_resumable(self):
        check_topology({"graphs": 5}, _args("--workers", "remote"))

    def test_matching_topology_resumes(self):
        args = _args("--workers", "remote")
        check_topology({"topology": topology_from_args(args)}, args)

    def test_mismatch_refused_with_both_topologies_named(self):
        recorded = {"topology": {"workers": "local", "supervised": True}}
        with pytest.raises(JournalError) as err:
            check_topology(recorded, _args("--workers", "remote"))
        message = str(err.value)
        assert "topology mismatch" in message
        assert "workers=local supervised=yes" in message
        assert "workers=remote supervised=no" in message
