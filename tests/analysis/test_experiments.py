"""Tests for the experiment drivers: the shape of every paper table."""

from __future__ import annotations

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    format_order_comparison,
    format_table1,
    format_table2,
    table1_rows,
    table2_rows,
    table3_comparison,
    table4_comparison,
)


@pytest.fixture(scope="module")
def t1():
    return table1_rows()


@pytest.fixture(scope="module")
def t2():
    return table2_rows()


@pytest.fixture(scope="module")
def t3():
    return table3_comparison()


@pytest.fixture(scope="module")
def t4():
    return table4_comparison()


class TestTable1:
    def test_exact_rows(self, t1):
        """Five of six rows reproduce the paper exactly; elliptic differs
        only where the paper is internally inconsistent."""
        for row in t1:
            paper = PAPER_TABLE1[row.name]
            assert row.original == paper[0]
            assert row.retimed == paper[1]
            if row.name != "elliptic":
                assert row.csr == paper[2]
                assert row.registers == paper[3]
                assert row.reduction_pct == pytest.approx(paper[4], abs=0.1)

    def test_elliptic_is_consistent_even_if_paper_is_not(self, t1):
        row = next(r for r in t1 if r.name == "elliptic")
        # M_r = 1 admits at most two distinct retiming values.
        assert row.registers == 2
        assert row.csr == row.original + 2 * row.registers

    def test_csr_always_smaller_than_retimed(self, t1):
        for row in t1:
            assert row.csr < row.retimed

    def test_reduction_up_to_61_percent(self, t1):
        """The abstract's headline: 'up to 61%' code-size reduction."""
        assert max(row.reduction_pct for row in t1) > 60.0

    def test_periods_improve(self, t1):
        for row in t1:
            assert row.period_after < row.period_before

    def test_formatting(self, t1):
        text = format_table1(t1)
        assert "IIR Filter" in text
        assert "%Red(ours)" in text


class TestTable2:
    def test_exact_rows(self, t2):
        for row in t2:
            paper = PAPER_TABLE2[row.name]
            if row.name in ("iir", "diffeq", "allpole", "lattice"):
                assert row.expanded == paper[0]
            assert row.registers <= paper[2]

    def test_csr_cells_match_paper_where_registers_match(self, t2):
        for row in t2:
            paper = PAPER_TABLE2[row.name]
            if row.registers == paper[2]:
                assert row.csr == paper[1]

    def test_same_registers_as_table1(self, t1, t2):
        """Theorem 4.7: unfolding does not increase the register count."""
        regs1 = {r.name: r.registers for r in t1}
        for row in t2:
            assert row.registers == regs1[row.name]

    def test_reduction_always_positive(self, t2):
        for row in t2:
            assert row.reduction_pct > 0

    def test_formatting(self, t2):
        assert "R-U(ours)" in format_table2(t2)


class TestTable3:
    def test_size_rows_match_paper_exactly(self, t3):
        assert [c.unfold_retime_size for c in t3] == list(PAPER_TABLE3["unfold-retime"])
        assert [c.retime_unfold_size for c in t3] == list(PAPER_TABLE3["retime-unfold"])

    def test_csr_strictly_smallest(self, t3):
        for c in t3:
            assert c.csr_size < c.retime_unfold_size
            assert c.csr_size <= c.unfold_retime_size

    def test_order_theorem(self, t3):
        for c in t3:
            assert c.retime_unfold_size <= c.unfold_retime_size

    def test_iteration_period_reaches_bound_at_f4(self, t3):
        by_f = {c.factor: c for c in t3}
        assert by_f[4].iteration_period == by_f[4].bound
        assert by_f[2].iteration_period > by_f[2].bound
        assert by_f[3].iteration_period > by_f[3].bound

    def test_formatting_includes_paper_rows(self, t3):
        text = format_order_comparison(t3, PAPER_TABLE3)
        assert "unfold-retime (paper)" in text


class TestTable4:
    def test_csr_row_matches_paper_exactly(self, t4):
        assert [c.csr_size for c in t4] == list(PAPER_TABLE4["retime-unfold-CR"])

    def test_rows_grow_linearly_in_f(self, t4):
        ru = [c.retime_unfold_size for c in t4]
        assert ru[1] - ru[0] == ru[2] - ru[1] == 26  # L per extra factor

    def test_order_theorem_strict_at_larger_f(self, t4):
        for c in t4:
            assert c.retime_unfold_size <= c.unfold_retime_size
        assert t4[1].retime_unfold_size < t4[1].unfold_retime_size
        assert t4[2].retime_unfold_size < t4[2].unfold_retime_size

    def test_iteration_period_fixed(self, t4):
        assert all(c.iteration_period == 8 for c in t4)
