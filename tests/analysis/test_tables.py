"""Tests for the table formatter."""

from __future__ import annotations

import pytest

from repro.analysis import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_header_rule(self):
        text = format_table(["x"], [[1]])
        assert text.splitlines()[1].strip("- ") == ""

    def test_floats_one_decimal(self):
        assert "2.5" in format_table(["v"], [[2.46]])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert len(text.splitlines()) == 2
