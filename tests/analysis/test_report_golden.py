"""Golden-file pins for the report pipeline.

Every rendered byte of the report — markdown, LaTeX, ``report.json``,
the ``--paper-tables`` text and the ``--diff`` summary — is pinned
against committed golden files generated from the canned run fixtures
in ``tests/data/runs/`` (see ``regen_fixtures.py`` there).

When an intentional change moves the output, regenerate with::

    PYTHONPATH=src python -m pytest tests/analysis/test_report_golden.py --regen-golden

and commit the updated files under ``tests/data/golden/`` after
reviewing the diff — the review IS the point of the pin.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.report import (
    build_report,
    diff_reports,
    load_report_doc,
    main,
    paper_tables_text,
    render_latex,
    render_markdown,
    report_json,
)

DATA = Path(__file__).resolve().parents[1] / "data"
RUNS = DATA / "runs"
GOLDEN = DATA / "golden"

CLEAN = RUNS / "clean"
DEGRADED = RUNS / "degraded"
REGRESSED = RUNS / "regressed"


def check_golden(name: str, text: str, regen: bool) -> None:
    """Compare ``text`` against the committed golden (or rewrite it)."""
    path = GOLDEN / name
    if regen:
        GOLDEN.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return
    assert path.exists(), (
        f"missing golden file {path.name}; generate it with "
        "pytest --regen-golden"
    )
    assert text == path.read_text(), (
        f"report output diverged from golden {path.name}; if the change "
        "is intentional, rerun with --regen-golden and commit the diff"
    )


@pytest.fixture(scope="module")
def clean_report():
    return build_report([CLEAN])


@pytest.fixture(scope="module")
def degraded_report():
    return build_report([DEGRADED])


class TestCleanGoldens:
    def test_markdown(self, clean_report, regen_golden):
        check_golden("clean_report.md", render_markdown(clean_report), regen_golden)

    def test_latex(self, clean_report, regen_golden):
        check_golden("clean_report.tex", render_latex(clean_report), regen_golden)

    def test_json(self, clean_report, regen_golden):
        check_golden("clean_report.json", report_json(clean_report), regen_golden)

    def test_paper_tables(self, clean_report, regen_golden):
        check_golden(
            "clean_paper_tables.txt", paper_tables_text(clean_report), regen_golden
        )

    def test_every_section_ok(self, clean_report):
        assert [s.status for s in clean_report.sections] == ["ok"] * 9

    def test_paper_tables_match_live_renderers(self, clean_report):
        """The report's paper-table text is built from the same cells
        and titles the live ``python -m repro.analysis`` CLI prints —
        the ``=== Table N ... ===`` framing must round-trip exactly."""
        text = paper_tables_text(clean_report)
        for num in ("1", "2", "3", "4"):
            section = clean_report.section(f"table{num}")
            assert f"=== {section.title} ===\n{section.plain}\n\n" in text


class TestDegradedGoldens:
    def test_markdown(self, degraded_report, regen_golden):
        check_golden(
            "degraded_report.md", render_markdown(degraded_report), regen_golden
        )

    def test_latex(self, degraded_report, regen_golden):
        check_golden(
            "degraded_report.tex", render_latex(degraded_report), regen_golden
        )

    def test_failed_cells_have_a_latex_rendering(self, degraded_report):
        """FailedCell / marker rows must typeset as \\textsc, never leak
        a bare underscore into LaTeX (TIMED_OUT would be a TeX error)."""
        tex = render_latex(degraded_report)
        assert r"\textsc{failed}" in tex
        assert r"\textsc{timed out}" in tex
        assert "TIMED_OUT" not in tex
        md = render_markdown(degraded_report)
        assert "FAILED" in md  # markdown keeps the plain marker

    def test_skips_are_reported_not_fatal(self, degraded_report):
        names = {s["name"] for s in degraded_report.inputs["skipped"]}
        assert "degraded/corrupt/journal.jsonl" in names
        assert "degraded/junk.json" in names
        assert "degraded/broken.json" in names
        # The torn journal is usable (crash signature), not skipped.
        assert "degraded/sweep/journal.jsonl" in degraded_report.inputs["journals"]

    def test_shed_unit_is_accounted(self, degraded_report):
        acc = degraded_report.section("accounting")
        rows = {r[0]: r for r in acc.data["rows"]}
        sweep = rows["degraded/sweep/journal.jsonl"]
        submitted, completed, failed, shed = sweep[2:6]
        assert shed == 1  # the unit lost to the simulated crash
        assert completed + failed + shed == submitted


class TestDiffGoldens:
    def test_diff_summary(self, regen_golden):
        a = load_report_doc(CLEAN)
        b = load_report_doc(REGRESSED)
        result = diff_reports(a, b)
        check_golden(
            "diff_clean_regressed.txt", result.summary() + "\n", regen_golden
        )
        assert not result.clean
        # Every doctored regression is caught and named by table.
        text = result.summary()
        assert "Table 1" in text and "IIR Filter" in text
        assert "max oracle gap grew" in text
        assert "total failed grew" in text
        assert "vm.instructions grew 3.00x" in text

    def test_self_diff_is_empty(self):
        doc = load_report_doc(CLEAN)
        assert diff_reports(doc, doc).clean

    def test_cli_exit_codes(self, capsys):
        assert main(["--diff", str(CLEAN), str(CLEAN)]) == 0
        assert main(["--diff", str(CLEAN), str(REGRESSED)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out


class TestLiveByteIdentity:
    def test_report_reproduces_live_tables_output(self, tmp_path, capsys):
        """The acceptance pin: a journaled ``tables`` run replayed
        through ``report --paper-tables`` is byte-identical to what the
        live ``python -m repro.analysis`` CLI printed."""
        from repro.analysis.__main__ import main as analysis_main

        run_dir = tmp_path / "tables-run"
        rc = analysis_main(
            ["--journal", str(run_dir), "--cache-dir", str(tmp_path / "cache")]
        )
        assert rc == 0
        live = capsys.readouterr().out
        assert main([str(run_dir), "--paper-tables"]) == 0
        assert capsys.readouterr().out == live


class TestCliSurface:
    def test_out_dir_writes_all_artifacts(self, tmp_path, capsys):
        out = tmp_path / "report"
        assert main([str(CLEAN), "-o", str(out)]) == 0
        capsys.readouterr()
        names = sorted(p.name for p in out.iterdir())
        assert names == [
            "paper_tables.txt",
            "report.json",
            "report.md",
            "report.tex",
        ]

    def test_no_usable_inputs_is_exit_2(self, tmp_path, capsys):
        junk = tmp_path / "nothing"
        junk.mkdir()
        (junk / "noise.txt").write_text("hello")
        assert main([str(junk)]) == 2
        assert "no usable inputs" in capsys.readouterr().err

    def test_missing_args_is_exit_2(self, capsys):
        assert main([]) == 2
        capsys.readouterr()

    def test_module_alias(self, capsys):
        """``python -m repro.analysis report ...`` delegates here."""
        from repro.analysis.__main__ import main as analysis_main

        assert analysis_main(["report", "--diff", str(CLEAN), str(CLEAN)]) == 0
        capsys.readouterr()
