"""Tests for the resilient HTTP client and the offload executor.

Everything runs against injected fakes — ``transport``, ``clock``,
``sleep`` — so the retry ladder, the Retry-After floor, the circuit
breaker's closed/open/half-open walk and the hedging race are asserted
without sockets or real seconds.
"""

from __future__ import annotations

import threading

import pytest

from repro.runner.jobs import Job, execute_job
from repro.server.client import (
    CircuitOpenError,
    ClientPolicy,
    RemoteOffloadExecutor,
    RemoteUnavailableError,
    ResilientClient,
    _jitter,
)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class ScriptedTransport:
    """Replays a script of outcomes: an exception instance to raise, or a
    ``(status, headers, body_bytes)`` tuple to return.  The last entry
    repeats forever."""

    def __init__(self, script: list) -> None:
        self.script = list(script)
        self.calls = 0

    def __call__(self, method, path, body):
        self.calls += 1
        step = self.script.pop(0) if len(self.script) > 1 else self.script[0]
        if isinstance(step, Exception):
            raise step
        return step


OK = (200, {}, b'{"ok": true}')
FAIL = ConnectionRefusedError("down")


def make_client(script, *, sleeps=None, clock=None, **policy_kw):
    policy = ClientPolicy(backoff=0.1, backoff_cap=1.0, **policy_kw)
    transport = ScriptedTransport(script)
    client = ResilientClient(
        "127.0.0.1:1",
        policy=policy,
        seed=7,
        transport=transport,
        clock=clock if clock is not None else FakeClock(),
        sleep=(sleeps.append if sleeps is not None else lambda _s: None),
    )
    return client, transport


class TestRequestRetries:
    def test_address_must_be_host_port(self):
        with pytest.raises(ValueError, match="host:port"):
            ResilientClient("nonsense")

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ClientPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="breaker_threshold"):
            ClientPolicy(breaker_threshold=0)

    def test_jitter_is_deterministic_and_bounded(self):
        values = {_jitter(7, "/p", a) for a in range(1, 20)}
        assert all(0.5 <= v < 1.0 for v in values)
        assert len(values) > 1  # varies per attempt
        assert _jitter(7, "/p", 1) == _jitter(7, "/p", 1)

    def test_transport_failures_retried_with_capped_backoff(self):
        sleeps: list[float] = []
        client, transport = make_client([FAIL, FAIL, OK], sleeps=sleeps)
        assert client.call("/v1/x", {"a": 1}, idempotent=True) == {"ok": True}
        assert transport.calls == 3
        assert client.retries == 2
        # backoff * 2**(attempt-1), scaled into [0.5, 1.0) by the jitter
        assert 0.05 <= sleeps[0] < 0.1
        assert 0.1 <= sleeps[1] < 0.2

    def test_budget_exhaustion_raises_unavailable(self):
        client, transport = make_client([FAIL], max_attempts=3)
        with pytest.raises(RemoteUnavailableError, match="3 attempt"):
            client.request("/v1/x", {}, idempotent=True)
        assert transport.calls == 3

    def test_non_idempotent_requests_never_retry(self):
        client, transport = make_client([FAIL, OK])
        with pytest.raises(RemoteUnavailableError, match="1 attempt"):
            client.request("/v1/x", {})
        assert transport.calls == 1

    def test_503_retry_after_raises_the_backoff_floor(self):
        sleeps: list[float] = []
        shed = (503, {"retry-after": "3"}, b'{"error": "overloaded"}')
        client, transport = make_client([shed, OK], sleeps=sleeps)
        status, _, body = client.request("/v1/x", {}, idempotent=True)
        assert status == 200 and body == {"ok": True}
        assert transport.calls == 2
        assert sleeps == [3.0]  # far above the 0.1 backoff base

    def test_retry_after_in_body_counts_too(self):
        sleeps: list[float] = []
        shed = (503, {}, b'{"retry_after": 2.5}')
        client, _ = make_client([shed, OK], sleeps=sleeps)
        client.request("/v1/x", {}, idempotent=True)
        assert sleeps == [2.5]

    def test_error_statuses_are_answers_not_failures(self):
        client, transport = make_client([(400, {}, b'{"error": "bad"}')])
        status, _, body = client.request("/v1/x", {}, idempotent=True)
        assert status == 400 and body == {"error": "bad"}
        assert transport.calls == 1  # no retry: the server answered

    def test_non_json_body_is_wrapped_not_fatal(self):
        client, _ = make_client([(200, {}, b"<html>oops</html>")])
        _, _, body = client.request("/v1/x", {}, idempotent=True)
        assert body == {"raw": "<html>oops</html>"}


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        client, transport = make_client(
            [FAIL], max_attempts=2, breaker_threshold=2
        )
        with pytest.raises(RemoteUnavailableError):
            client.request("/v1/x", {}, idempotent=True)
        assert client.breaker_state("/v1/x") == "open"
        assert client.breaker_opens == 1
        calls = transport.calls
        with pytest.raises(CircuitOpenError):
            client.request("/v1/x", {}, idempotent=True)
        assert transport.calls == calls  # the network was never touched

    def test_breakers_are_per_endpoint(self):
        client, _ = make_client([FAIL, OK], max_attempts=1, breaker_threshold=1)
        with pytest.raises(RemoteUnavailableError):
            client.request("/v1/dead", {}, idempotent=True)
        assert client.breaker_state("/v1/dead") == "open"
        assert client.call("/v1/alive", {}, idempotent=True) == {"ok": True}

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        client, _ = make_client(
            [FAIL, OK],
            clock=clock,
            max_attempts=1,
            breaker_threshold=1,
            breaker_reset=10.0,
        )
        with pytest.raises(RemoteUnavailableError):
            client.request("/v1/x", {}, idempotent=True)
        with pytest.raises(CircuitOpenError):
            client.request("/v1/x", {}, idempotent=True)
        clock.advance(11.0)  # past breaker_reset: one probe is admitted
        assert client.call("/v1/x", {}, idempotent=True) == {"ok": True}
        assert client.breaker_state("/v1/x") == "closed"

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        client, _ = make_client(
            [FAIL], clock=clock, max_attempts=1, breaker_threshold=1,
            breaker_reset=10.0,
        )
        with pytest.raises(RemoteUnavailableError):
            client.request("/v1/x", {}, idempotent=True)
        clock.advance(11.0)
        with pytest.raises(RemoteUnavailableError):
            client.request("/v1/x", {}, idempotent=True)  # the failed probe
        with pytest.raises(CircuitOpenError):
            client.request("/v1/x", {}, idempotent=True)
        assert client.breaker_opens == 2


class TestHedging:
    def test_slow_primary_loses_to_hedge(self):
        release = threading.Event()
        calls = []

        def transport(method, path, body):
            calls.append(path)
            if len(calls) == 1:
                release.wait(10.0)  # the primary stalls
            return OK

        client = ResilientClient(
            "127.0.0.1:1",
            policy=ClientPolicy(hedge_delay=0.02),
            transport=transport,
        )
        try:
            status, _, body = client.request(
                "/v1/x", {}, idempotent=True, hedge=True
            )
            assert status == 200 and body == {"ok": True}
            assert client.hedges == 1
            assert client.hedge_wins == 1
        finally:
            release.set()

    def test_fast_primary_never_hedges(self):
        client, transport = make_client([OK])
        client.request("/v1/x", {}, idempotent=True, hedge=True)
        assert transport.calls == 1
        assert client.hedges == 0

    def test_hedge_requires_idempotence(self):
        release = threading.Event()
        calls = []

        def transport(method, path, body):
            calls.append(path)
            return OK

        client = ResilientClient(
            "127.0.0.1:1",
            policy=ClientPolicy(hedge_delay=0.0),
            transport=transport,
        )
        client.request("/v1/x", {}, idempotent=False, hedge=True)
        assert len(calls) == 1 and client.hedges == 0
        release.set()

    def test_stats_line_mentions_everything(self):
        client, _ = make_client([OK])
        line = client.stats_line()
        assert "retries" in line and "hedges" in line and "breaker" in line


def _tasks(count: int = 2) -> list[tuple]:
    jobs = [
        Job(transform="csr-pipelined", workload="iir", trip_count=3),
        Job(transform="pipelined", workload="fir", trip_count=4),
    ][:count]
    return [
        (execute_job, j.to_params(), f"key{i}", None, False, j.label,
         None, None)
        for i, j in enumerate(jobs)
    ]


class _UnreachableClient:
    def __init__(self) -> None:
        self.breaker_opens = 0

    def request(self, path, doc, **kw):
        raise RemoteUnavailableError("nobody home")

    def stats_line(self) -> str:
        return "unreachable"


class _AnsweringClient:
    """Answers every offload with a canned payload keyed to the request."""

    def __init__(self, key_for) -> None:
        self.key_for = key_for
        self.breaker_opens = 0
        self.docs: list[dict] = []

    def request(self, path, doc, **kw):
        self.docs.append(doc)
        key = self.key_for(len(self.docs) - 1)
        return 200, {}, {"ok": True, "key": key, "cached": True,
                         "payload": {"ok": True, "served": "remote"}}

    def stats_line(self) -> str:
        return "fake"


class TestRemoteOffloadExecutor:
    def test_request_doc_shapes(self):
        [(fn, params, *_rest)] = _tasks(1)
        doc = RemoteOffloadExecutor._request_doc(
            (fn, params, "k", None, False, "l", None, None)
        )
        assert doc["kind"] == "transform"
        assert doc["params"]["transform"] == "csr-pipelined"

        oracle = dict(params, transform="oracle", oracle_timeout=1.0)
        doc = RemoteOffloadExecutor._request_doc(
            (fn, oracle, "k", None, False, "l", None, None)
        )
        assert doc["kind"] == "oracle"

        traced = dict(params, trace=True)
        assert RemoteOffloadExecutor._request_doc(
            (fn, traced, "k", None, False, "l", None, None)
        ) is None  # the wire protocol has no trace knob

        assert RemoteOffloadExecutor._request_doc(
            (print, params, "k", None, False, "l", None, None)
        ) is None  # not the job executor

    def test_unreachable_coordinator_degrades_to_local(self):
        tasks = _tasks()
        ex = RemoteOffloadExecutor("127.0.0.1:1", client=_UnreachableClient())
        seen: list[int] = []
        out = ex.run(tasks, on_result=lambda i, env: seen.append(i))
        assert len(out) == len(tasks)
        assert all(env["payload"]["ok"] for env in out)
        assert ex.local_units == len(tasks) and ex.offloaded == 0
        assert sorted(seen) == list(range(len(tasks)))

    def test_offload_accepted_when_key_matches(self):
        tasks = _tasks()
        client = _AnsweringClient(key_for=lambda i: tasks[i][2])
        # One in-flight request at a time keeps request order == task
        # order, so the fake can key its answers by arrival.
        ex = RemoteOffloadExecutor("127.0.0.1:1", client=client, concurrency=1)
        out = ex.run(tasks)
        assert ex.offloaded == len(tasks) and ex.local_units == 0
        assert all(env["payload"]["served"] == "remote" for env in out)
        assert all(env["cached"] for env in out)

    def test_key_mismatch_falls_back_to_local(self):
        tasks = _tasks(1)
        client = _AnsweringClient(key_for=lambda i: "wrong-key")
        ex = RemoteOffloadExecutor("127.0.0.1:1", client=client, concurrency=1)
        out = ex.run(tasks)
        assert ex.offloaded == 0 and ex.local_units == 1
        assert out[0]["payload"]["ok"]  # computed locally instead

    def test_empty_batch(self):
        ex = RemoteOffloadExecutor("127.0.0.1:1", client=_UnreachableClient())
        assert ex.run([]) == []
        ex.close()
