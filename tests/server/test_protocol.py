"""Request validation, normalization and content-address stability.

The single-flight and caching layers are only as good as the key
function: structurally identical requests MUST collide (that is the
dedup) and any semantic difference MUST separate (that is correctness).
"""

from __future__ import annotations

import json

import pytest

from repro.graph.serialize import to_json
from repro.runner.cache import cache_key
from repro.runner.jobs import TRANSFORMS
from repro.server import (
    ProtocolError,
    canonical_bytes,
    error_envelope,
    parse_request,
    response_envelope,
)
from repro.workloads import get_workload


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_request([1, 2])

    def test_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown request kind"):
            parse_request({"kind": "frobnicate"})

    def test_rejects_missing_kind(self):
        with pytest.raises(ProtocolError, match="unknown request kind"):
            parse_request({"params": {}})

    def test_rejects_non_dict_params(self):
        with pytest.raises(ProtocolError, match="params"):
            parse_request({"kind": "analyze", "params": 7})

    def test_requires_exactly_one_graph_source(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            parse_request({"kind": "analyze", "params": {}})
        with pytest.raises(ProtocolError, match="exactly one"):
            parse_request(
                {
                    "kind": "analyze",
                    "params": {"workload": "iir", "graph": "{}"},
                }
            )

    def test_rejects_unknown_workload(self):
        with pytest.raises(ProtocolError, match="unknown workload"):
            parse_request({"kind": "analyze", "params": {"workload": "nope"}})

    def test_rejects_invalid_graph_document(self):
        with pytest.raises(ProtocolError, match="invalid graph"):
            parse_request(
                {"kind": "analyze", "params": {"graph": '{"nodes": "what"}'}}
            )

    def test_rejects_bool_masquerading_as_int(self):
        with pytest.raises(ProtocolError, match="trip_count"):
            parse_request(
                {
                    "kind": "analyze",
                    "params": {"workload": "iir", "trip_count": True},
                }
            )

    def test_rejects_negative_trip_count(self):
        with pytest.raises(ProtocolError, match="trip_count"):
            parse_request(
                {
                    "kind": "analyze",
                    "params": {"workload": "iir", "trip_count": -1},
                }
            )

    def test_rejects_unknown_transform(self):
        with pytest.raises(ProtocolError, match="unknown transform"):
            parse_request(
                {
                    "kind": "transform",
                    "params": {"workload": "iir", "transform": "nope"},
                }
            )

    def test_transform_kind_rejects_oracle(self):
        with pytest.raises(ProtocolError, match='use kind "oracle"'):
            parse_request(
                {
                    "kind": "transform",
                    "params": {"workload": "iir", "transform": "oracle"},
                }
            )

    def test_rejects_bad_factor_through_job_validation(self):
        with pytest.raises(ProtocolError):
            parse_request(
                {
                    "kind": "transform",
                    "params": {
                        "workload": "iir",
                        "transform": "unfolded",
                        "factor": 0,
                    },
                }
            )

    def test_sweep_rejects_bad_factors(self):
        for bad in ([], [2, True], "2,3"):
            with pytest.raises(ProtocolError, match="factors"):
                parse_request({"kind": "sweep", "params": {"factors": bad}})

    def test_sweep_rejects_nonpositive_graphs(self):
        with pytest.raises(ProtocolError, match="graphs"):
            parse_request({"kind": "sweep", "params": {"graphs": 0}})


class TestNormalization:
    def test_workload_and_explicit_graph_share_a_key(self):
        """The dedup-critical property: naming a workload and sending its
        serialized graph are the *same request*."""
        g = get_workload("iir")
        by_name = parse_request({"kind": "analyze", "params": {"workload": "iir"}})
        by_graph = parse_request(
            {"kind": "analyze", "params": {"graph": to_json(g, indent=None)}}
        )
        assert by_name.key == by_graph.key

    def test_graph_object_and_string_share_a_key(self):
        g = get_workload("diffeq")
        doc = to_json(g, indent=None)
        as_string = parse_request({"kind": "analyze", "params": {"graph": doc}})
        as_object = parse_request(
            {"kind": "analyze", "params": {"graph": json.loads(doc)}}
        )
        assert as_string.key == as_object.key

    def test_whitespace_variant_graph_shares_a_key(self):
        g = get_workload("iir")
        pretty = to_json(g, indent=2)
        compact = to_json(g, indent=None)
        a = parse_request({"kind": "analyze", "params": {"graph": pretty}})
        b = parse_request({"kind": "analyze", "params": {"graph": compact}})
        assert a.key == b.key

    def test_different_params_separate_keys(self):
        base = {"kind": "analyze", "params": {"workload": "iir"}}
        other = {
            "kind": "analyze",
            "params": {"workload": "iir", "trip_count": 21},
        }
        assert parse_request(base).key != parse_request(other).key

    def test_sweep_defaults_match_explicit_defaults(self):
        implicit = parse_request({"kind": "sweep"})
        explicit = parse_request(
            {
                "kind": "sweep",
                "params": {
                    "graphs": 200,
                    "seed": 0,
                    "factors": [2, 3],
                    "max_nodes": 6,
                    "oracle": False,
                },
            }
        )
        assert implicit.key == explicit.key

    def test_transform_request_uses_the_job_namespace(self):
        """Server transform keys ARE engine sweep-cell keys — the basis of
        the byte-identical differential guarantee."""
        req = parse_request(
            {
                "kind": "transform",
                "params": {
                    "workload": "iir",
                    "transform": "csr-pipelined",
                    "trip_count": 7,
                },
            }
        )
        assert req.engine_kind == "job"
        assert req.key == cache_key("job", req.params)

    def test_all_non_oracle_transforms_parse(self):
        for t in TRANSFORMS:
            if t == "oracle":
                continue
            req = parse_request(
                {
                    "kind": "transform",
                    "params": {
                        "workload": "iir",
                        "transform": t,
                        "factor": 2,
                        "trip_count": 3,
                    },
                }
            )
            assert req.kind == "transform" and req.engine_kind == "job"

    def test_oracle_kind_builds_an_oracle_job(self):
        req = parse_request(
            {
                "kind": "oracle",
                "params": {"workload": "iir", "oracle_timeout": 1.5},
            }
        )
        assert req.engine_kind == "job"
        assert req.params["transform"] == "oracle"
        assert req.params["oracle_timeout"] == 1.5


class TestEnvelopes:
    def test_response_envelope_mirrors_payload_ok(self):
        req = parse_request({"kind": "analyze", "params": {"workload": "iir"}})
        good = response_envelope(req, {"ok": True, "x": 1}, cached=True)
        assert good["ok"] and good["cached"] and good["key"] == req.key
        bad = response_envelope(req, {"ok": False, "error": "e"}, cached=False)
        assert not bad["ok"] and not bad["cached"]

    def test_error_envelope_fields(self):
        env = error_envelope("busy", "OverloadedError", retry_after=2.0)
        assert env == {
            "ok": False,
            "error": "busy",
            "error_type": "OverloadedError",
            "retry_after": 2.0,
        }

    def test_canonical_bytes_are_order_insensitive(self):
        assert canonical_bytes({"b": 1, "a": [2]}) == canonical_bytes(
            {"a": [2], "b": 1}
        )
        assert canonical_bytes({"a": 1}) == b'{"a":1}'
