"""Single-flight deduplication, proven by counters — never by timing.

The dispatcher gate (:meth:`RetimingService.hold` / ``release``) freezes
dispatch while requests arrive, so "N identical concurrent requests"
is a deterministic scenario: everything submitted while held is in
flight together, and the counters must show exactly one engine job.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server import canonical_bytes, parse_request

from .conftest import analyze_doc, make_service, transform_doc


def run(coro):
    return asyncio.run(coro)


class TestSingleFlight:
    def test_n_identical_requests_run_one_engine_job(self):
        async def scenario():
            svc = make_service()
            await svc.start()
            svc.hold()
            doc = analyze_doc("iir", n=4)
            tasks = [
                asyncio.create_task(svc.submit(parse_request(doc)))
                for _ in range(8)
            ]
            # Let every submit reach its await before dispatch resumes.
            while svc.stats.submitted < 8:
                await asyncio.sleep(0)
            assert svc.inflight == 1  # one key in flight, 7 joiners
            svc.release()
            envs = await asyncio.gather(*tasks)
            await svc.aclose()
            return svc, envs

        svc, envs = run(scenario())
        assert svc.stats.jobs_submitted == 1
        assert svc.stats.deduped == 7
        assert svc.stats.completed == 8
        assert svc.engine.stats.calls == 1  # the engine saw ONE unit
        assert svc.engine.stats.computed == 1
        # Every requester got the identical response, byte for byte.
        blobs = {canonical_bytes(env) for env in envs}
        assert len(blobs) == 1
        assert envs[0]["ok"]

    def test_distinct_requests_are_not_coalesced(self):
        async def scenario():
            svc = make_service()
            await svc.start()
            svc.hold()
            docs = [analyze_doc("iir", n=n) for n in (1, 2, 3)]
            results = asyncio.gather(
                *(svc.submit(parse_request(d)) for d in docs)
            )
            while svc.stats.submitted < 3:
                await asyncio.sleep(0)
            svc.release()
            envs = await results
            await svc.aclose()
            return svc, envs

        svc, envs = run(scenario())
        assert svc.stats.jobs_submitted == 3
        assert svc.stats.deduped == 0
        assert len({env["key"] for env in envs}) == 3

    def test_join_after_completion_is_a_cache_hit_not_a_join(self):
        async def scenario(tmpdir):
            svc = make_service(cache_dir=tmpdir)
            await svc.start()
            doc = transform_doc("iir")
            first = await svc.submit(parse_request(doc))
            # The key has left the in-flight table; a repeat is a fresh
            # job served from the result cache, not a dedup join.
            second = await svc.submit(parse_request(doc))
            await svc.aclose()
            return svc, first, second

        import tempfile

        with tempfile.TemporaryDirectory() as tmpdir:
            svc, first, second = run(scenario(tmpdir))
        assert svc.stats.deduped == 0
        assert svc.stats.jobs_submitted == 2
        assert not first["cached"] and second["cached"]
        assert first["payload"] == second["payload"]

    def test_mixed_duplicates_count_exactly(self):
        async def scenario():
            svc = make_service()
            await svc.start()
            svc.hold()
            docs = (
                [analyze_doc("iir", n=1)] * 3
                + [analyze_doc("iir", n=2)] * 2
                + [analyze_doc("diffeq", n=1)]
            )
            results = asyncio.gather(
                *(svc.submit(parse_request(d)) for d in docs)
            )
            while svc.stats.submitted < len(docs):
                await asyncio.sleep(0)
            svc.release()
            envs = await results
            await svc.aclose()
            return svc, envs

        svc, envs = run(scenario())
        assert svc.stats.jobs_submitted == 3  # three distinct keys
        assert svc.stats.deduped == 3  # 2 + 1 + 0 joiners
        assert svc.stats.completed == 6
        assert svc.engine.stats.calls == 3


class TestDedupProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        ids=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=10),
        order=st.randoms(use_true_random=False),
    )
    def test_random_interleavings_preserve_the_dedup_invariants(self, ids, order):
        """Property: for ANY arrival order and interleaving of duplicate
        requests submitted while dispatch is held,

        * ``jobs_submitted`` equals the number of distinct keys,
        * every requester is answered, identically per key,
        * the accounting identity holds.
        """
        docs = {i: analyze_doc("iir", n=i, verify=False) for i in set(ids)}
        arrival = list(ids)
        order.shuffle(arrival)

        async def scenario():
            svc = make_service()
            await svc.start()
            svc.hold()
            tasks = []
            for i in arrival:
                tasks.append(
                    asyncio.create_task(svc.submit(parse_request(docs[i])))
                )
                # A random number of scheduler ticks between arrivals —
                # the "interleaving" under test.
                for _ in range(order.randrange(3)):
                    await asyncio.sleep(0)
            while svc.stats.submitted < len(arrival):
                await asyncio.sleep(0)
            svc.release()
            envs = await asyncio.gather(*tasks)
            await svc.aclose()
            return svc, envs

        svc, envs = run(scenario())
        s = svc.stats
        assert s.jobs_submitted == len(set(arrival))
        assert s.deduped == len(arrival) - len(set(arrival))
        assert s.completed + s.failed + s.shed == s.submitted == len(arrival)
        by_key: dict[str, set[bytes]] = {}
        for env in envs:
            by_key.setdefault(env["key"], set()).add(canonical_bytes(env))
        # Identical requests -> identical responses, byte for byte.
        assert all(len(blobs) == 1 for blobs in by_key.values())
        assert len(by_key) == len(set(arrival))
