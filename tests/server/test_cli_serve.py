"""End-to-end test of ``python -m repro serve``: real process, real
socket, SIGTERM drain, clean exit."""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time


def _wait_for(predicate, timeout: float = 30.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not met before deadline")


def _unix_http(sock_path: str, method: str, path: str, body: bytes = b"") -> tuple[int, bytes]:
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(30.0)
        s.connect(sock_path)
        head = f"{method} {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
        s.sendall(head.encode() + body)
        raw = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            raw += chunk
    head_bytes, _, payload = raw.partition(b"\r\n\r\n")
    return int(head_bytes.split()[1]), payload


def test_serve_answers_and_drains_on_sigterm(tmp_path):
    sock_path = str(tmp_path / "repro.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            sock_path,
            "--cache-dir",
            str(tmp_path / "cache"),
            "--max-inflight",
            "16",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        _wait_for(lambda: os.path.exists(sock_path))

        status, payload = _unix_http(
            sock_path,
            "POST",
            "/v1/request",
            json.dumps(
                {
                    "kind": "analyze",
                    "params": {"workload": "iir", "trip_count": 3},
                }
            ).encode(),
        )
        assert status == 200
        body = json.loads(payload)
        assert body["ok"] and body["payload"]["period"] == 3  # iir retimed

        status, payload = _unix_http(sock_path, "GET", "/healthz")
        assert status == 200
        assert json.loads(payload)["stats"]["completed"] == 1

        status, payload = _unix_http(sock_path, "GET", "/metrics")
        assert status == 200
        assert b"server_completed 1" in payload

        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
    except BaseException:
        proc.kill()
        proc.communicate(timeout=30)
        raise

    assert proc.returncode == 0, err
    assert "serving on unix socket" in out
    assert "draining..." in out
    assert "drained: 1 submitted, 1 completed" in out
    assert not os.path.exists(sock_path)  # the socket file is cleaned up
