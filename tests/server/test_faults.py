"""Fault injection at the server's own sites: ``server.accept`` and
``server.respond``.

The degradation contract (mirroring ``tests/runner/test_resilience.py``):
an injected fault at either site degrades into a *structured error
response* — correct status code, JSON body with ``error_type`` — never a
hung connection or an unanswered request, and the accounting identity
survives.
"""

from __future__ import annotations

import asyncio

from repro.runner import resilience
from repro.runner.resilience import FaultPlan, FaultSpec

from .conftest import (
    analyze_doc,
    http_json,
    make_service,
    serve_frontend,
)


def run(coro):
    return asyncio.run(coro)


class TestRespondFaults:
    def test_respond_fault_degrades_to_error_envelope(self):
        from repro.server import parse_request

        resilience.activate(
            FaultPlan(
                [FaultSpec(site="server.respond", match="iir/analyze/n=1", times=1)]
            )
        )

        async def scenario():
            svc = make_service()
            await svc.start()
            first = await svc.submit(parse_request(analyze_doc(n=1)))
            second = await svc.submit(parse_request(analyze_doc(n=2)))
            await svc.aclose()
            return svc, first, second

        svc, first, second = run(scenario())
        assert first["ok"] is False
        assert first["error_type"] == "FaultInjected"
        assert second["ok"] is True  # a different label, outside the match
        s = svc.stats
        assert s.failed == 1 and s.completed == 1
        assert s.completed + s.failed + s.shed == s.submitted

    def test_respond_fault_hits_one_requester_not_the_flight(self):
        """Per-(site, label) occurrence budgets mean ONE delivery is
        faulted; the other joiners of the same single-flight computation
        still receive the computed answer."""
        from repro.server import parse_request

        resilience.activate(
            FaultPlan([FaultSpec(site="server.respond", match="*", times=1)])
        )

        async def scenario():
            svc = make_service()
            await svc.start()
            svc.hold()
            doc = analyze_doc(n=3)
            tasks = [
                asyncio.create_task(svc.submit(parse_request(doc)))
                for _ in range(5)
            ]
            while svc.stats.submitted < 5:
                await asyncio.sleep(0)
            svc.release()
            envs = await asyncio.gather(*tasks)
            await svc.aclose()
            return svc, envs

        svc, envs = run(scenario())
        faulted = [e for e in envs if e.get("error_type") == "FaultInjected"]
        served = [e for e in envs if e["ok"]]
        assert len(faulted) == 1 and len(served) == 4
        assert svc.stats.jobs_submitted == 1  # the computation still ran once
        assert svc.stats.failed == 1 and svc.stats.completed == 4

    def test_respond_fault_label_matching_scopes_the_blast_radius(self):
        from repro.server import parse_request

        resilience.activate(
            FaultPlan(
                [FaultSpec(site="server.respond", match="iir/*", times=0)]
            )
        )

        async def scenario():
            svc = make_service()
            await svc.start()
            iir = await svc.submit(parse_request(analyze_doc("iir", n=1)))
            other = await svc.submit(parse_request(analyze_doc("diffeq", n=1)))
            await svc.aclose()
            return iir, other

        iir, other = run(scenario())
        assert iir["error_type"] == "FaultInjected"
        assert other["ok"]


class TestAcceptFaults:
    def test_accept_fault_returns_structured_500_over_http(self):
        resilience.activate(
            FaultPlan([FaultSpec(site="server.accept", match="*", times=1)])
        )

        async def scenario():
            svc = make_service()
            frontend, host, port = await serve_frontend(svc)
            first = await http_json(host, port, analyze_doc(n=1))
            second = await http_json(host, port, analyze_doc(n=1))
            await frontend.aclose()
            await svc.drain()
            return first, second

        (s1, _, b1), (s2, _, b2) = run(scenario())
        assert s1 == 500
        assert b1["error_type"] == "FaultInjected"
        assert b1["kind"] == "analyze" and "key" in b1
        assert s2 == 200 and b2["ok"]  # budget exhausted, service healthy

    def test_accept_fault_never_hangs_the_connection(self):
        """Even with the site firing on EVERY request, each connection
        gets a complete, well-formed HTTP response."""
        resilience.activate(
            FaultPlan([FaultSpec(site="server.accept", match="*", times=0)])
        )

        async def scenario():
            svc = make_service()
            frontend, host, port = await serve_frontend(svc)
            responses = [
                await asyncio.wait_for(
                    http_json(host, port, analyze_doc(n=n)), timeout=10.0
                )
                for n in range(4)
            ]
            await frontend.aclose()
            await svc.drain()
            return svc, responses

        svc, responses = run(scenario())
        assert [status for status, _, _ in responses] == [500] * 4
        assert all(
            body["error_type"] == "FaultInjected" for _, _, body in responses
        )
        # Faulted at admission: the service never saw the requests.
        assert svc.stats.submitted == 0

    def test_accept_fault_leaves_health_and_metrics_reachable(self):
        from .conftest import http_request

        resilience.activate(
            FaultPlan([FaultSpec(site="server.accept", match="*", times=0)])
        )

        async def scenario():
            svc = make_service()
            frontend, host, port = await serve_frontend(svc)
            health = await http_request(host, port, "GET", "/healthz")
            metrics = await http_request(host, port, "GET", "/metrics")
            await frontend.aclose()
            await svc.drain()
            return health, metrics

        (hs, _, _), (ms, _, _) = run(scenario())
        assert hs == 200 and ms == 200  # only /v1/request is in blast radius
