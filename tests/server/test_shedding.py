"""Bounded-queue load shedding and graceful drain — counter-based.

The invariant every scenario re-asserts at the end::

    completed + failed + shed == submitted

No request is ever lost (unanswered) or double-counted, whatever mix of
admission, dedup joins, refusals and drain the scenario produced.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.server import (
    OverloadedError,
    RetimingService,
    ServiceClosedError,
    parse_request,
)

from .conftest import analyze_doc, make_service


def run(coro):
    return asyncio.run(coro)


def assert_accounting(svc) -> None:
    s = svc.stats
    assert s.completed + s.failed + s.shed == s.submitted


class TestShedding:
    def test_queue_overflow_sheds_with_retry_after(self):
        async def scenario():
            svc = make_service(max_inflight=2, retry_after=3.0)
            await svc.start()
            svc.hold()
            t1 = asyncio.create_task(svc.submit(parse_request(analyze_doc(n=1))))
            t2 = asyncio.create_task(svc.submit(parse_request(analyze_doc(n=2))))
            while svc.stats.submitted < 2:
                await asyncio.sleep(0)
            # Queue is at capacity: a third DISTINCT request is refused.
            with pytest.raises(OverloadedError) as exc_info:
                await svc.submit(parse_request(analyze_doc(n=3)))
            shed_exc = exc_info.value
            svc.release()
            envs = await asyncio.gather(t1, t2)
            await svc.aclose()
            return svc, envs, shed_exc

        svc, envs, shed_exc = run(scenario())
        assert shed_exc.retry_after == 3.0
        assert svc.stats.shed == 1
        assert svc.stats.completed == 2
        assert all(env["ok"] for env in envs)
        assert_accounting(svc)

    def test_joining_a_full_queue_is_still_admitted(self):
        """A dedup join costs no queue slot and no engine work — shedding
        it would only waste the answer we are already computing."""

        async def scenario():
            svc = make_service(max_inflight=1)
            await svc.start()
            svc.hold()
            owner = asyncio.create_task(
                svc.submit(parse_request(analyze_doc(n=1)))
            )
            while svc.stats.submitted < 1:
                await asyncio.sleep(0)
            # Queue full; an identical request joins anyway...
            joiner = asyncio.create_task(
                svc.submit(parse_request(analyze_doc(n=1)))
            )
            while svc.stats.submitted < 2:
                await asyncio.sleep(0)
            # ...while a distinct one is refused.
            with pytest.raises(OverloadedError):
                await svc.submit(parse_request(analyze_doc(n=2)))
            svc.release()
            envs = await asyncio.gather(owner, joiner)
            await svc.aclose()
            return svc, envs

        svc, envs = run(scenario())
        assert svc.stats.deduped == 1
        assert svc.stats.shed == 1
        assert svc.stats.completed == 2
        assert envs[0] == envs[1]
        assert_accounting(svc)

    def test_draining_service_refuses_new_work(self):
        async def scenario():
            svc = make_service()
            await svc.start()
            env = await svc.submit(parse_request(analyze_doc(n=1)))
            await svc.drain()
            with pytest.raises(ServiceClosedError):
                await svc.submit(parse_request(analyze_doc(n=2)))
            return svc, env

        svc, env = run(scenario())
        assert env["ok"]
        assert svc.stats.shed == 1
        assert_accounting(svc)

    def test_drain_completes_queued_work_first(self):
        """Drain is graceful: everything admitted before the drain is
        answered, nothing is abandoned."""

        async def scenario():
            svc = make_service()
            await svc.start()
            svc.hold()
            tasks = [
                asyncio.create_task(svc.submit(parse_request(analyze_doc(n=n))))
                for n in range(4)
            ]
            while svc.stats.submitted < 4:
                await asyncio.sleep(0)
            # drain() re-opens the gate itself — a held gate must not
            # wedge shutdown.
            await svc.drain()
            return svc, await asyncio.gather(*tasks)

        svc, envs = run(scenario())
        assert svc.stats.completed == 4
        assert all(env["ok"] for env in envs)
        assert_accounting(svc)

    def test_aclose_resolves_pending_waiters_structurally(self):
        """A hard close never leaves a waiter hanging: pending requests
        resolve to a structured shutdown error."""

        async def scenario():
            svc = make_service()
            await svc.start()
            svc.hold()
            task = asyncio.create_task(
                svc.submit(parse_request(analyze_doc(n=1)))
            )
            while svc.stats.submitted < 1:
                await asyncio.sleep(0)
            await svc.aclose()
            return svc, await asyncio.wait_for(task, timeout=5.0)

        svc, env = run(scenario())
        assert env["ok"] is False
        assert env["error_type"] == "ServiceClosedError"
        assert svc.stats.failed == 1
        assert_accounting(svc)


class TestConfigValidation:
    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ValueError, match="max_inflight"):
            RetimingService(max_inflight=0)
        with pytest.raises(ValueError, match="batch_max"):
            RetimingService(batch_max=0)
