"""Shared helpers for the request-server battery.

Every test here is *deterministic*: concurrency is controlled through the
service's dispatcher gate (:meth:`RetimingService.hold` /
:meth:`~RetimingService.release`), assertions are counter-based
(``jobs_submitted``, ``deduped``, the accounting identity), and latency
budgets use the op-counter histogram — never wall clocks.

Tests drive their own event loops with ``asyncio.run`` (no async test
plugin is assumed), so helpers are plain coroutines.
"""

from __future__ import annotations

import asyncio
import json

from repro.runner.engine import ExperimentEngine
from repro.server import RetimingService
from repro.server.http import HttpFrontend


def make_service(
    cache_dir=None, shards: int = 0, **kwargs
) -> RetimingService:
    """A service over a single-process engine (no cache by default)."""
    cache = None
    if cache_dir is not None:
        from repro.runner.cache import ResultCache

        cache = ResultCache(cache_dir, shards=shards)
    return RetimingService(ExperimentEngine(jobs=1, cache=cache), **kwargs)


def analyze_doc(workload: str = "iir", n: int = 5, verify: bool = False) -> dict:
    """A small, fast ``analyze`` request document."""
    return {
        "kind": "analyze",
        "params": {"workload": workload, "trip_count": n, "verify": verify},
    }


def transform_doc(
    workload: str = "iir",
    transform: str = "csr-pipelined",
    factor: int = 1,
    n: int = 5,
) -> dict:
    return {
        "kind": "transform",
        "params": {
            "workload": workload,
            "transform": transform,
            "factor": factor,
            "trip_count": n,
            "verify": True,
        },
    }


async def submit_all(service: RetimingService, docs: list[dict]) -> list:
    """Submit every doc concurrently; returns envelopes/exceptions in
    submission order.  The service is started and NOT drained."""
    from repro.server import parse_request

    await service.start()
    tasks = [
        asyncio.create_task(service.submit(parse_request(doc))) for doc in docs
    ]
    return await asyncio.gather(*tasks, return_exceptions=True)


async def http_request(
    host: str,
    port: int,
    method: str = "GET",
    path: str = "/healthz",
    body: bytes | None = None,
    unix: str | None = None,
) -> tuple[int, dict[str, str], bytes]:
    """One raw HTTP round trip; returns (status, headers, body)."""
    if unix is not None:
        reader, writer = await asyncio.open_unix_connection(unix)
    else:
        reader, writer = await asyncio.open_connection(host, port)
    head = [f"{method} {path} HTTP/1.1", "Host: test"]
    if body is not None:
        head.append(f"Content-Length: {len(body)}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + (body or b""))
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), timeout=30.0)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head_bytes, _, payload = raw.partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload


async def http_json(
    host: str, port: int, doc: dict, unix: str | None = None
) -> tuple[int, dict[str, str], dict]:
    """POST one request document; returns (status, headers, decoded body)."""
    status, headers, payload = await http_request(
        host,
        port,
        "POST",
        "/v1/request",
        json.dumps(doc).encode(),
        unix=unix,
    )
    return status, headers, json.loads(payload)


async def serve_frontend(service: RetimingService) -> tuple[HttpFrontend, str, int]:
    """An HTTP front-end on an ephemeral local port."""
    frontend = HttpFrontend(service)
    host, port = await frontend.start_tcp("127.0.0.1", 0)
    return frontend, host, port
