"""Server-vs-CLI differential guarantees, pinned byte for byte.

The server is a transport, not a second implementation: a sweep
requested over the server must produce the *byte-identical* summary that
``python -m repro sweep`` prints, and a transform request must share
cache entries (and therefore payload bytes) with the CLI sweep cells —
both directions, server-first and CLI-first.
"""

from __future__ import annotations

import asyncio

from repro.__main__ import main as cli_main
from repro.runner.difftest import _graph_for_seed
from repro.runner.jobs import execute_job
from repro.server import canonical_bytes, parse_request

from .conftest import make_service

SWEEP = {"graphs": 2, "seed": 0, "factors": [2, 3], "max_nodes": 6}


def _cli_sweep(tmp_path, capsys) -> str:
    rc = cli_main(
        [
            "sweep",
            "--graphs",
            str(SWEEP["graphs"]),
            "--seed",
            str(SWEEP["seed"]),
            "--factors",
            *[str(f) for f in SWEEP["factors"]],
            "--max-nodes",
            str(SWEEP["max_nodes"]),
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
    )
    assert rc == 0
    return capsys.readouterr().out


async def _server_sweep(tmp_path) -> dict:
    svc = make_service(cache_dir=tmp_path / "cache")
    await svc.start()
    env = await svc.submit(parse_request({"kind": "sweep", "params": SWEEP}))
    await svc.drain()
    return env


def test_server_sweep_summary_is_byte_identical_to_cli(tmp_path, capsys):
    cli_out = _cli_sweep(tmp_path, capsys)
    env = asyncio.run(_server_sweep(tmp_path))
    assert env["ok"]
    # The CLI prints the summary plus a trailing newline; the server
    # carries the identical bytes in the payload.
    assert env["payload"]["summary"] + "\n" == cli_out
    assert env["payload"]["graphs"] == SWEEP["graphs"]
    assert env["payload"]["failures"] == []


def test_server_sweep_rides_the_cli_populated_cache(tmp_path, capsys):
    """CLI first: the server's sweep cells must all be cache hits —
    proof the two paths compute identical keys AND identical payloads
    (a changed payload would still hit, so equality is asserted too)."""
    _cli_sweep(tmp_path, capsys)
    env = asyncio.run(_server_sweep(tmp_path))
    assert env["ok"]
    # A second server run serves the whole *sweep* from its own cache
    # entry, byte-identically.
    again = asyncio.run(_server_sweep(tmp_path))
    assert again["cached"]
    assert canonical_bytes(again["payload"]) == canonical_bytes(env["payload"])


def test_cli_sweep_rides_the_server_populated_cache(tmp_path, capsys):
    """Server first: the CLI sweep over the same cache directory recomputes
    nothing — the reverse direction of key compatibility."""
    asyncio.run(_server_sweep(tmp_path))
    cli_out = _cli_sweep(tmp_path, capsys)
    assert "PASS" in cli_out
    # Every job cell was served from the server-written cache: a third
    # run with --stats shows zero computed units.
    rc = cli_main(
        [
            "sweep",
            "--graphs",
            str(SWEEP["graphs"]),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--stats",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 computed" in out


def test_transform_request_matches_a_sweep_cell(tmp_path, capsys):
    """One server transform request addresses the exact cache entry a CLI
    sweep cell wrote: served cached, payload equal to direct execution."""
    _cli_sweep(tmp_path, capsys)
    graph_json = _graph_for_seed(SWEEP["seed"], SWEEP["max_nodes"], 5)
    doc = {
        "kind": "transform",
        "params": {
            "graph": graph_json,
            "transform": "csr-pipelined",
            "factor": 1,
            "trip_count": 7,
            "verify": True,
        },
    }

    async def scenario():
        svc = make_service(cache_dir=tmp_path / "cache")
        await svc.start()
        env = await svc.submit(parse_request(doc))
        await svc.drain()
        return svc, env

    svc, env = asyncio.run(scenario())
    assert env["ok"]
    assert env["cached"], "server transform missed the CLI sweep's cache entry"
    assert svc.engine.stats.computed == 0

    # And the cached payload is exactly what direct execution computes.
    req = parse_request(doc)
    direct = execute_job(dict(req.params))
    direct.pop("compute_time", None)
    assert canonical_bytes(env["payload"]) == canonical_bytes(direct)


def test_oracle_request_matches_direct_execution(tmp_path):
    doc = {"kind": "oracle", "params": {"workload": "iir"}}

    async def scenario():
        svc = make_service(cache_dir=tmp_path / "cache")
        await svc.start()
        env = await svc.submit(parse_request(doc))
        await svc.drain()
        return env

    env = asyncio.run(scenario())
    assert env["ok"]
    req = parse_request(doc)
    direct = execute_job(dict(req.params))
    direct.pop("compute_time", None)
    assert canonical_bytes(env["payload"]) == canonical_bytes(direct)
    assert env["payload"]["proven"] is True
