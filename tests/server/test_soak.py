"""Deterministic 500-request soak: conservation, dedup, cached-path cost.

A seeded request mix (duplicates, several workloads, two request kinds)
is pushed through one service.  Every assertion is exact:

* **conservation** — 500 in, 500 answered, the accounting identity holds,
  and no response is lost or duplicated;
* **consistency** — all responses for one key carry the identical payload;
* **latency budget** — op-counter style: the p50 of engine units computed
  per request must be 0 (the cached/deduped path does no engine work),
  bounded via :meth:`Histogram.percentile`, never a wall clock.
"""

from __future__ import annotations

import asyncio
import random

from repro.server import canonical_bytes, parse_request

from .conftest import analyze_doc, make_service, transform_doc

SOAK_REQUESTS = 500
SOAK_SEED = 20020809

#: The distinct request pool the soak draws from (workload x kind x n).
_WORKLOADS = ("iir", "diffeq", "allpole", "lattice")


def _request_pool() -> list[dict]:
    docs: list[dict] = []
    for w in _WORKLOADS:
        for n in (2, 5):
            docs.append(analyze_doc(w, n=n, verify=False))
        docs.append(transform_doc(w, "csr-pipelined", n=4))
        docs.append(transform_doc(w, "pipelined", n=4))
    return docs


def test_soak_500_requests_no_losses_no_duplicates(tmp_path):
    pool = _request_pool()
    rng = random.Random(SOAK_SEED)
    sequence = [rng.randrange(len(pool)) for _ in range(SOAK_REQUESTS)]

    async def scenario():
        svc = make_service(cache_dir=tmp_path / "cache", batch_max=8)
        await svc.start()
        envs: list[dict] = []
        # Waves of concurrent submissions: each wave overlaps in flight
        # (exercising dedup), waves run back-to-back (exercising the
        # cache path for repeats of earlier waves).
        i = 0
        while i < len(sequence):
            wave = sequence[i : i + 25]
            i += 25
            envs.extend(
                await asyncio.gather(
                    *(
                        svc.submit(parse_request(pool[j]))
                        for j in wave
                    )
                )
            )
        await svc.drain()
        return svc, envs

    svc, envs = asyncio.run(scenario())
    s = svc.stats

    # -- conservation: nothing lost, nothing double-counted ------------
    assert s.submitted == SOAK_REQUESTS
    assert len(envs) == SOAK_REQUESTS
    assert s.completed + s.failed + s.shed == s.submitted
    assert s.shed == 0 and s.failed == 0
    assert s.completed == SOAK_REQUESTS

    # -- dedup + cache actually bounded the work -----------------------
    distinct = len({parse_request(d).key for d in pool})
    assert svc.engine.stats.computed == distinct  # each key computed ONCE
    assert s.jobs_submitted + s.deduped == SOAK_REQUESTS

    # -- per-key consistency: identical responses modulo the cached flag
    by_key: dict[str, set[bytes]] = {}
    for env in envs:
        assert env["ok"], env
        body = dict(env)
        body.pop("cached")  # first computation vs later cache hits
        by_key.setdefault(env["key"], set()).add(canonical_bytes(body))
    assert len(by_key) == distinct
    assert all(len(blobs) == 1 for blobs in by_key.values())

    # -- deterministic latency budget (op-counter, not wall-clock) -----
    h = svc.request_cost
    assert h.count == SOAK_REQUESTS
    # Exactly `distinct` requests paid an engine unit; every other
    # request rode the single-flight join or the result cache for free.
    assert h.sum == distinct
    # p50 resolves to the first bucket: at least half the requests did
    # zero engine work.  (A generous budget by design — the mix has ~20x
    # more requests than keys.)
    assert h.percentile(50) <= 1.0
    assert h.percentile(100) <= 1.0  # no request ever cost more than 1 unit

    # -- batching actually coalesced ----------------------------------
    assert s.batches <= s.jobs_submitted
    assert s.batched_units == s.jobs_submitted


def test_soak_second_run_is_fully_cached(tmp_path):
    """Re-running a soak against the same cache computes nothing."""
    pool = _request_pool()[:6]

    async def one_run():
        svc = make_service(cache_dir=tmp_path / "cache")
        await svc.start()
        envs = await asyncio.gather(
            *(svc.submit(parse_request(d)) for d in pool)
        )
        await svc.drain()
        return svc, envs

    svc1, envs1 = asyncio.run(one_run())
    svc2, envs2 = asyncio.run(one_run())
    assert svc1.engine.stats.computed == len(pool)
    assert svc2.engine.stats.computed == 0  # pure replay
    assert all(env["cached"] for env in envs2)
    assert svc2.request_cost.sum == 0.0
    for a, b in zip(envs1, envs2):
        assert a["payload"] == b["payload"]
