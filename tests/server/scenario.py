"""CI scenario: 200 HTTP requests against a live in-process server under
the canned server fault plan, with deterministic counter assertions.

Not a pytest module — the CI ``server-matrix`` job runs it directly:

    PYTHONPATH=src python tests/server/scenario.py \\
        --fault-plan tests/data/faultplans/server-faults.json \\
        --metrics-out server-metrics.prom

The scenario has two gated phases (the dispatcher gate makes every
count exact, independent of scheduling):

* **dedup** — 160 requests over 8 distinct keys (20 copies each) while
  the dispatcher is held, so every copy either owns or joins an
  in-flight future: exactly 8 engine jobs, 150 joins, minus the 2
  requests the ``server.accept`` fault eats and the 1 response the
  ``server.respond`` fault corrupts (both structured 500s, no hangs).
* **shed** — 8 distinct keys fill ``--max-inflight``, the next 24
  distinct keys are refused with 503 + ``Retry-After``, while 8
  duplicates of in-flight keys are still admitted as joiners.

It finishes by asserting the conservation law
(completed + failed + shed == submitted), fetching ``GET /metrics``,
and writing the Prometheus snapshot for upload as a CI artifact.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile

from repro import observability
from repro.runner import resilience
from repro.runner.cache import ResultCache
from repro.runner.engine import ExperimentEngine
from repro.runner.resilience import FaultPlan
from repro.server import HttpFrontend, RetimingService

MAX_INFLIGHT = 8
COPIES = 20  # per dedup key
SHED_EXTRA = 24  # distinct keys beyond capacity
TOTAL = 200

# 8 dedup keys: exactly ONE matches the fault plan's "iir/analyze/*".
DEDUP_WORKLOADS = [
    "iir", "fir", "diffeq", "biquad2", "allpole", "figure1", "figure2", "figure4",
]
# Shed-phase keys must not collide with the dedup keys or the plan match.
SHED_WORKLOADS = ["elliptic", "lattice", "lms", "figure8"]


def analyze_doc(workload: str, n: int) -> dict:
    return {
        "kind": "analyze",
        "params": {"workload": workload, "trip_count": n, "verify": False},
    }


async def post(host: str, port: int, doc: dict) -> tuple[int, dict, dict]:
    body = json.dumps(doc).encode()
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        b"POST /v1/request HTTP/1.1\r\nContent-Length: "
        + str(len(body)).encode()
        + b"\r\n\r\n"
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, payload = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(payload)


async def get(host: str, port: int, path: str) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    return raw.partition(b"\r\n\r\n")[2]


async def settle(predicate, what: str, timeout: float = 60.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        await asyncio.sleep(0.005)


async def run(fault_plan: str | None, metrics_out: str | None) -> None:
    observability.enable()
    if fault_plan:
        resilience.activate(FaultPlan.from_file(fault_plan))

    with tempfile.TemporaryDirectory() as cache_dir:
        engine = ExperimentEngine(jobs=1, cache=ResultCache(cache_dir, shards=4))
        svc = RetimingService(engine, max_inflight=MAX_INFLIGHT, batch_max=8)
        await svc.start()
        frontend = HttpFrontend(svc)
        host, port = await frontend.start_tcp("127.0.0.1", 0)

        # -- phase 1: dedup under a held dispatcher ---------------------
        svc.hold()
        dedup_docs = [analyze_doc(w, 3) for w in DEDUP_WORKLOADS]
        tasks = [
            asyncio.create_task(post(host, port, doc))
            for doc in dedup_docs
            for _ in range(COPIES)
        ]
        n_dedup = len(tasks)  # 160
        accepted = n_dedup - 2  # the accept fault eats exactly 2
        await settle(
            lambda: svc.stats.submitted == accepted
            and svc.stats.jobs_submitted + svc.stats.deduped == accepted,
            "all dedup-phase requests to register",
        )
        assert svc.stats.jobs_submitted == len(DEDUP_WORKLOADS), svc.stats.as_dict()
        assert svc.stats.deduped == accepted - len(DEDUP_WORKLOADS)
        svc.release()
        dedup_results = await asyncio.gather(*tasks)

        faulted = [r for r in dedup_results if r[0] == 500]
        assert len(faulted) == 3, f"expected 2 accept + 1 respond faults, got {len(faulted)}"
        assert all(r[2]["error_type"] == "FaultInjected" for r in faulted)
        oks = [r for r in dedup_results if r[0] == 200]
        assert len(oks) == n_dedup - 3
        # every admitted copy of a key received byte-identical envelopes
        by_key: dict[str, set] = {}
        for _, _, env in oks:
            by_key.setdefault(env["key"], set()).add(json.dumps(env, sort_keys=True))
        assert len(by_key) == len(DEDUP_WORKLOADS)
        assert all(len(bodies) == 1 for bodies in by_key.values())
        print(f"dedup: {n_dedup} requests -> {svc.stats.jobs_submitted} engine jobs, "
              f"{svc.stats.deduped} joined, {len(faulted)} injected faults")

        # -- phase 2: shedding at capacity ------------------------------
        svc.hold()
        fill_docs = [analyze_doc(w, n) for w in SHED_WORKLOADS for n in (1, 2)][:MAX_INFLIGHT]
        fill_tasks = [asyncio.create_task(post(host, port, doc)) for doc in fill_docs]
        await settle(lambda: svc.inflight == MAX_INFLIGHT, "capacity to fill")

        shed_docs = [analyze_doc(w, n) for w in SHED_WORKLOADS for n in range(3, 9)]
        assert len(shed_docs) == SHED_EXTRA
        shed_results = await asyncio.gather(
            *(post(host, port, doc) for doc in shed_docs)
        )
        assert all(status == 503 for status, _, _ in shed_results)
        assert all("retry-after" in headers for _, headers, _ in shed_results)

        join_tasks = [asyncio.create_task(post(host, port, doc)) for doc in fill_docs]
        await settle(
            lambda: svc.stats.deduped
            == accepted - len(DEDUP_WORKLOADS) + len(join_tasks),
            "duplicates to join in-flight keys",
        )
        svc.release()
        fill_results = await asyncio.gather(*fill_tasks)
        join_results = await asyncio.gather(*join_tasks)
        assert all(status == 200 for status, _, _ in fill_results + join_results)
        print(f"shed: {len(shed_results)} refused with Retry-After, "
              f"{len(join_tasks)} duplicates still admitted at capacity")

        # -- accounting --------------------------------------------------
        total = n_dedup + len(fill_tasks) + len(shed_results) + len(join_tasks)
        assert total == TOTAL, total
        stats = svc.stats
        assert stats.submitted == TOTAL - 2  # accept faults never submit
        assert stats.shed == SHED_EXTRA
        assert stats.jobs_submitted == len(DEDUP_WORKLOADS) + len(fill_docs)
        assert stats.failed == 1  # the respond fault
        assert stats.completed + stats.failed + stats.shed == stats.submitted, (
            f"conservation violated: {stats.as_dict()}"
        )

        metrics = (await get(host, port, "/metrics")).decode()
        for needle in (
            f"server_submitted {stats.submitted}",
            f"server_deduped {stats.deduped}",
            f"server_shed {stats.shed}",
            f"server_jobs_submitted {stats.jobs_submitted}",
            f"server_completed {stats.completed}",
            f"server_failed {stats.failed}",
        ):
            assert needle in metrics, f"{needle!r} missing from /metrics"
        if metrics_out:
            with open(metrics_out, "w") as fh:
                fh.write(metrics)
            print(f"wrote /metrics snapshot: {metrics_out}")

        await frontend.aclose()
        await svc.drain()
    resilience.deactivate()
    print(f"OK: {TOTAL} requests, {stats.as_dict()}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--fault-plan", default=None)
    parser.add_argument("--metrics-out", default=None)
    args = parser.parse_args(argv)
    asyncio.run(asyncio.wait_for(run(args.fault_plan, args.metrics_out), timeout=300))
    return 0


if __name__ == "__main__":
    sys.exit(main())
