"""Socket-level tests of the raw HTTP/1.1 transport.

Every route and every error status is exercised end to end over a real
connection (TCP on an ephemeral port, plus the unix-socket path), and
every response is checked to be complete and structured.
"""

from __future__ import annotations

import asyncio
import json

from .conftest import (
    analyze_doc,
    http_json,
    http_request,
    make_service,
    serve_frontend,
)


def run(coro):
    return asyncio.run(coro)


class TestRoutes:
    def test_healthz_reports_accounting(self):
        async def scenario():
            svc = make_service()
            frontend, host, port = await serve_frontend(svc)
            await http_json(host, port, analyze_doc(n=1))
            status, _, payload = await http_request(host, port, "GET", "/healthz")
            await frontend.aclose()
            await svc.drain()
            return status, json.loads(payload)

        status, body = run(scenario())
        assert status == 200
        assert body["status"] == "ok"
        assert body["stats"]["submitted"] == 1
        assert body["stats"]["completed"] == 1
        assert body["engine"]["calls"] == 1

    def test_metrics_is_prometheus_text(self):
        async def scenario():
            svc = make_service()
            frontend, host, port = await serve_frontend(svc)
            await http_json(host, port, analyze_doc(n=1))
            status, headers, payload = await http_request(
                host, port, "GET", "/metrics"
            )
            await frontend.aclose()
            await svc.drain()
            return status, headers, payload.decode()

        status, headers, text = run(scenario())
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert "server_submitted 1" in text
        assert "server_completed 1" in text
        assert "# TYPE server_submitted gauge" in text

    def test_request_roundtrip_returns_canonical_json(self):
        async def scenario():
            svc = make_service()
            frontend, host, port = await serve_frontend(svc)
            status, headers, body = await http_json(host, port, analyze_doc(n=2))
            await frontend.aclose()
            await svc.drain()
            return status, headers, body

        status, headers, body = run(scenario())
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert headers["connection"] == "close"
        assert body["ok"] and body["kind"] == "analyze"
        assert body["payload"]["period"] <= body["payload"]["period_original"]


class TestErrorStatuses:
    def test_invalid_json_is_400(self):
        async def scenario():
            svc = make_service()
            frontend, host, port = await serve_frontend(svc)
            status, _, payload = await http_request(
                host, port, "POST", "/v1/request", b"{nope"
            )
            await frontend.aclose()
            await svc.drain()
            return status, json.loads(payload)

        status, body = run(scenario())
        assert status == 400
        assert body["error_type"] == "ProtocolError"

    def test_protocol_error_is_400(self):
        async def scenario():
            svc = make_service()
            frontend, host, port = await serve_frontend(svc)
            result = await http_json(host, port, {"kind": "nope"})
            await frontend.aclose()
            await svc.drain()
            return result

        status, _, body = run(scenario())
        assert status == 400
        assert body["error_type"] == "ProtocolError"
        assert "unknown request kind" in body["error"]

    def test_unknown_route_is_404_and_wrong_method_is_405(self):
        async def scenario():
            svc = make_service()
            frontend, host, port = await serve_frontend(svc)
            missing = await http_request(host, port, "GET", "/nope")
            wrong = await http_request(host, port, "POST", "/healthz", b"{}")
            await frontend.aclose()
            await svc.drain()
            return missing, wrong

        (s404, _, b404), (s405, _, _) = run(scenario())
        assert s404 == 404
        assert json.loads(b404)["error_type"] == "NotFound"
        assert s405 == 405

    def test_oversized_body_is_413(self):
        from repro.server.http import MAX_BODY

        async def scenario():
            svc = make_service()
            frontend, host, port = await serve_frontend(svc)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                f"POST /v1/request HTTP/1.1\r\n"
                f"Content-Length: {MAX_BODY + 1}\r\n\r\n".encode()
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=10.0)
            writer.close()
            await frontend.aclose()
            await svc.drain()
            return raw

        raw = run(scenario())
        assert b"413" in raw.split(b"\r\n", 1)[0]

    def test_shed_request_carries_retry_after_header(self):
        from repro.server import parse_request

        async def scenario():
            svc = make_service(max_inflight=1, retry_after=2.5)
            frontend, host, port = await serve_frontend(svc)
            svc.hold()
            blocker = asyncio.create_task(
                svc.submit(parse_request(analyze_doc(n=1)))
            )
            while svc.stats.submitted < 1:
                await asyncio.sleep(0)
            shed = await http_json(host, port, analyze_doc(n=2))
            svc.release()
            await blocker
            await frontend.aclose()
            await svc.drain()
            return shed

        status, headers, body = run(scenario())
        assert status == 503
        assert headers["retry-after"] == "2.5"
        assert body["error_type"] == "OverloadedError"
        assert body["retry_after"] == 2.5

    def test_draining_service_answers_503(self):
        async def scenario():
            svc = make_service()
            frontend, host, port = await serve_frontend(svc)
            await svc.drain()
            health = await http_request(host, port, "GET", "/healthz")
            refused = await http_json(host, port, analyze_doc(n=1))
            await frontend.aclose()
            return health, refused

        (hs, _, hb), (rs, _, rb) = run(scenario())
        assert hs == 503
        assert json.loads(hb)["status"] == "draining"
        assert rs == 503
        assert rb["error_type"] == "ServiceClosedError"


class TestUnixSocket:
    def test_unix_socket_roundtrip(self, tmp_path):
        sock = str(tmp_path / "repro.sock")

        async def scenario():
            from repro.server.http import HttpFrontend

            svc = make_service()
            frontend = HttpFrontend(svc)
            await frontend.start_unix(sock)
            status, _, body = await http_json(
                "", 0, analyze_doc(n=1), unix=sock
            )
            health = await http_request("", 0, "GET", "/healthz", unix=sock)
            await frontend.aclose()
            await svc.drain()
            return status, body, health

        status, body, (hs, _, _) = run(scenario())
        assert status == 200 and body["ok"]
        assert hs == 200
