"""Warm-pool tests: the bounded LRU, the shared (W, D) matrices, and the
compiled-program pool — including the bit-identity guarantee that makes
warming safe (pooled state may change speed, never results)."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.graph.wd import wd_matrices
from repro.machine.dispatch import WarmPool, program_pool, warm_program
from repro.retiming.optimal import minimize_cycle_period
from repro.server import parse_request
from repro.server.work import WD_POOL, analyze_graph, graph_digest
from repro.workloads import get_workload

from .conftest import analyze_doc, make_service


class TestWarmPool:
    def test_get_or_build_builds_once(self):
        pool = WarmPool(capacity=4)
        built = []

        def build():
            built.append(1)
            return "value"

        assert pool.get_or_build("k", build) == "value"
        assert pool.get_or_build("k", build) == "value"
        assert built == [1]
        assert pool.hits == 1 and pool.misses == 1

    def test_lru_evicts_least_recently_used(self):
        pool = WarmPool(capacity=2)
        pool.put("a", 1)
        pool.put("b", 2)
        assert pool.get("a") == 1  # touch: "a" becomes most-recent
        pool.put("c", 3)  # evicts "b", the LRU
        assert pool.get("b") is None
        assert pool.get("a") == 1 and pool.get("c") == 3
        assert pool.evictions == 1
        assert len(pool) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            WarmPool(capacity=0)

    def test_stats_and_clear(self):
        pool = WarmPool(capacity=2)
        pool.put("a", 1)
        pool.get("a")
        pool.get("missing")
        stats = pool.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1 and stats["capacity"] == 2
        pool.clear()
        assert len(pool) == 0

    def test_concurrent_get_or_build_is_safe(self):
        """Thread-safety smoke: racing builders never corrupt the pool and
        every thread observes the same value per key."""
        pool = WarmPool(capacity=8)
        seen: list = []

        def worker(i: int):
            v = pool.get_or_build(f"k{i % 4}", lambda: i % 4)
            seen.append((i % 4, v))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(32)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(key == value for key, value in seen)
        assert len(pool) == 4


class TestWarmWD:
    def test_wd_parameter_is_bit_identical(self, bench_graph):
        """Feeding precomputed (W, D) into minimize_cycle_period must not
        change the result — the safety property warming relies on."""
        cold_period, cold_r = minimize_cycle_period(bench_graph, method="shared")
        wd = wd_matrices(bench_graph)
        warm_period, warm_r = minimize_cycle_period(
            bench_graph, method="shared", wd=wd
        )
        assert warm_period == cold_period
        assert warm_r.as_dict() == cold_r.as_dict()

    def test_analyze_reuses_pooled_wd_across_calls(self):
        from repro.graph.serialize import to_json

        WD_POOL.clear()
        g = get_workload("elliptic")
        params = {
            "graph": to_json(g, indent=None),
            "trip_count": 2,
            "verify": False,
        }
        before = WD_POOL.stats()
        first = analyze_graph(dict(params))
        second = analyze_graph(dict(params))
        after = WD_POOL.stats()
        assert first["ok"] and second["ok"]
        assert after["misses"] == before["misses"] + 1  # built once
        assert after["hits"] >= before["hits"] + 1  # reused after
        for key in ("period", "registers", "code_size_csr"):
            assert first[key] == second[key]

    def test_pool_eviction_does_not_change_payloads(self):
        """Force eviction between two identical analyses: byte-equal."""
        from repro.graph.serialize import to_json

        g = get_workload("iir")
        params = {
            "graph": to_json(g, indent=None),
            "trip_count": 3,
            "verify": True,
        }
        first = analyze_graph(dict(params))
        WD_POOL.clear()
        program_pool().clear()
        second = analyze_graph(dict(params))
        first.pop("compute_time")
        second.pop("compute_time")
        assert first == second


class TestWarmPrograms:
    def test_warm_program_pools_and_precompiles(self):
        from repro.core.csr import csr_pipelined_loop

        program_pool().clear()
        g = get_workload("iir")
        _, r = minimize_cycle_period(g)
        key = ("csr-pipelined", graph_digest("iir-test"))
        built = []

        def build():
            built.append(1)
            return csr_pipelined_loop(g, r)

        p1 = warm_program(key, build)
        p2 = warm_program(key, build)
        assert p1 is p2  # the SAME object: id-keyed compile cache hits
        assert built == [1]

    def test_server_analyze_warms_across_requests(self):
        """Two analyze requests for one graph: the second does no compute
        at the engine level (cache off, so it's a fresh engine unit) yet
        reuses the pooled (W, D) matrices."""
        WD_POOL.clear()

        async def scenario():
            svc = make_service()  # no result cache: both requests execute
            await svc.start()
            a = await svc.submit(
                parse_request(analyze_doc("elliptic", n=2, verify=False))
            )
            b = await svc.submit(
                parse_request(analyze_doc("elliptic", n=3, verify=False))
            )
            await svc.drain()
            return svc, a, b

        svc, a, b = asyncio.run(scenario())
        assert a["ok"] and b["ok"]
        assert svc.engine.stats.computed == 2  # distinct keys, both ran
        stats = WD_POOL.stats()
        assert stats["misses"] >= 1 and stats["hits"] >= 1
        assert a["payload"]["period"] == b["payload"]["period"]
