"""Drain vs. new-connection races: always 503 + Retry-After, never a hang.

A connection that arrives while the server is draining must get a clean,
immediate answer — a 503 carrying ``Retry-After`` (the client may find a
respawned server there) — while requests already in flight complete and
deliver.  Determinism comes from the service's dispatcher gate
(``hold``/``release``) and the synchronous ``begin_drain`` half of the
drain, not from sleeps.
"""

from __future__ import annotations

import asyncio
import json

from repro.server import ServiceClosedError, parse_request
from repro.server.http import HttpFrontend

from .conftest import analyze_doc, http_json, make_service


async def _wait_until(predicate, timeout: float = 30.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while not predicate():
        assert asyncio.get_event_loop().time() < deadline
        await asyncio.sleep(0.005)


def test_service_closed_error_carries_retry_after():
    exc = ServiceClosedError()
    assert exc.retry_after == 1.0
    assert "draining" in str(exc)
    assert ServiceClosedError(retry_after=2.5).retry_after == 2.5


def test_begin_drain_sheds_submissions_with_retry_after():
    async def scenario():
        service = make_service(retry_after=0.7)
        await service.start()
        service.begin_drain()
        try:
            await service.submit(parse_request(analyze_doc()))
        except ServiceClosedError as exc:
            assert exc.retry_after == 0.7
        else:
            raise AssertionError("draining service admitted new work")
        assert service.stats.shed == 1
        await service.drain()

    asyncio.run(scenario())


def test_unix_socket_connection_racing_drain_gets_503(tmp_path):
    async def scenario():
        sock = str(tmp_path / "repro.sock")
        service = make_service(retry_after=0.7)
        frontend = HttpFrontend(service)
        await frontend.start_unix(sock)

        # Park one request mid-flight behind the dispatcher gate.
        service.hold()
        inflight = asyncio.create_task(
            http_json("", 0, analyze_doc(n=3), unix=sock)
        )
        await _wait_until(lambda: service.stats.submitted == 1)

        # Admission stops *now*; the in-flight request is unaffected.
        service.begin_drain()
        status, headers, body = await asyncio.wait_for(
            http_json("", 0, analyze_doc(n=9), unix=sock), timeout=30.0
        )
        assert status == 503
        assert headers.get("retry-after") == "0.7"
        assert body["ok"] is False and body["retry_after"] == 0.7
        assert "draining" in body["error"]

        # Release the gate and finish the drain: the parked request must
        # be answered, not dropped.
        service.release()
        drain = asyncio.create_task(service.drain())
        status, _, body = await asyncio.wait_for(inflight, timeout=30.0)
        assert status == 200 and body["ok"] and body["payload"]["period"] == 3
        await drain
        await frontend.aclose()

        stats = service.stats
        assert stats.submitted == 2
        assert stats.completed == 1 and stats.shed == 1
        assert stats.completed + stats.failed + stats.shed == stats.submitted

    asyncio.run(scenario())


def test_connection_during_full_drain_is_never_hung(tmp_path):
    """The same race through the real ``drain()`` coroutine: a request
    that slips in after admission closed gets its 503 while the drain is
    still waiting on in-flight work."""

    async def scenario():
        sock = str(tmp_path / "repro.sock")
        service = make_service()
        frontend = HttpFrontend(service)
        await frontend.start_unix(sock)

        service.hold()
        inflight = asyncio.create_task(
            http_json("", 0, analyze_doc(n=4), unix=sock)
        )
        await _wait_until(lambda: service.stats.submitted == 1)

        # drain() releases the gate itself; the parked unit proceeds
        # while we race a fresh connection against the drain.
        drain = asyncio.create_task(service.drain())
        status, headers, _ = await asyncio.wait_for(
            http_json("", 0, analyze_doc(n=11), unix=sock), timeout=30.0
        )
        assert status == 503
        assert float(headers.get("retry-after", "0")) > 0

        status, _, body = await asyncio.wait_for(inflight, timeout=30.0)
        assert status == 200 and body["ok"]
        await drain
        await frontend.aclose()

    asyncio.run(scenario())
