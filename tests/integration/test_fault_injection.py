"""Fault injection: the verification net must catch broken transformations.

Equivalence checking is only meaningful if it *fails* on incorrect code.
Each test here mutates a correct conditional-register program in a way a
buggy compiler might (off-by-one register init, missing decrement, wrong
guard, wrong loop bound, swapped operand delay) and asserts the VM or the
equivalence checker rejects it.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.codegen import ComputeInstr, DecInstr, IndexExpr, Loop, SetupInstr
from repro.core import EquivalenceError, assert_equivalent, csr_pipelined_loop, equivalent
from repro.machine import MachineError
from repro.retiming import minimize_cycle_period
from repro.workloads import figure2_example

N = 9


@pytest.fixture
def good():
    g = figure2_example()
    _, r = minimize_cycle_period(g)
    return g, csr_pipelined_loop(g, r)


def _with_body(program, body):
    return replace(
        program,
        loop=Loop(program.loop.start, program.loop.end, program.loop.step, tuple(body)),
    )


class TestFaultsAreDetected:
    def test_reference_program_passes(self, good):
        g, p = good
        assert_equivalent(g, p, N)

    def test_off_by_one_register_init(self, good):
        """Initializing a register one too high delays its class by one
        iteration — instances go missing or double."""
        g, p = good
        pre = list(p.pre)
        pre[0] = replace(pre[0], init=pre[0].init + 1)
        bad = replace(p, pre=tuple(pre))
        with pytest.raises((MachineError, EquivalenceError)):
            assert_equivalent(g, bad, N)

    def test_missing_decrement(self, good):
        g, p = good
        body = [i for i in p.loop.body]
        drop = next(k for k, i in enumerate(body) if isinstance(i, DecInstr))
        del body[drop]
        bad = _with_body(p, body)
        with pytest.raises((MachineError, EquivalenceError)):
            assert_equivalent(g, bad, N)

    def test_wrong_guard_register(self, good):
        """Guarding A (r=3) with E's register executes A out of window."""
        g, p = good
        body = list(p.loop.body)
        k = next(
            k for k, i in enumerate(body) if isinstance(i, ComputeInstr) and i.node == "A"
        )
        body[k] = replace(body[k], guard=replace(body[k].guard, register="p4"))
        bad = _with_body(p, body)
        with pytest.raises((MachineError, EquivalenceError)):
            assert_equivalent(g, bad, N)

    def test_loop_start_off_by_one(self, good):
        """Starting at 1 - M_r + 1 skips the first prologue iteration."""
        g, p = good
        bad = replace(
            p,
            loop=Loop(
                IndexExpr.const(p.loop.start.offset + 1),
                p.loop.end,
                p.loop.step,
                p.loop.body,
            ),
        )
        with pytest.raises((MachineError, EquivalenceError)):
            assert_equivalent(g, bad, N)

    def test_loop_end_extension_is_harmless(self, good):
        """Running extra trailing iterations is NOT a fault: every guard is
        already past its window (p <= -LC), so the extended loop executes
        nothing — the predicate design is robust to a sloppy upper bound."""
        g, p = good
        extended = replace(
            p,
            loop=Loop(p.loop.start, IndexExpr.trip(1), p.loop.step, p.loop.body),
        )
        assert_equivalent(g, extended, N)

    def test_wrong_operand_delay(self, good):
        """Reading B[i] instead of B[i-2] in C — values diverge."""
        g, p = good
        body = list(p.loop.body)
        k = next(
            k for k, i in enumerate(body) if isinstance(i, ComputeInstr) and i.node == "C"
        )
        srcs = list(body[k].srcs)
        srcs[1] = replace(srcs[1], index=IndexExpr.loop(srcs[1].index.offset + 2))
        body[k] = replace(body[k], srcs=tuple(srcs))
        bad = _with_body(p, body)
        assert not equivalent(g, bad, N)

    def test_swapped_decrement_amount(self, good):
        g, p = good
        body = list(p.loop.body)
        k = next(k for k, i in enumerate(body) if isinstance(i, DecInstr))
        body[k] = replace(body[k], amount=2)
        bad = _with_body(p, body)
        with pytest.raises((MachineError, EquivalenceError)):
            assert_equivalent(g, bad, N)

    def test_dropped_instruction(self, good):
        g, p = good
        body = [
            i
            for i in p.loop.body
            if not (isinstance(i, ComputeInstr) and i.node == "D")
        ]
        bad = _with_body(p, body)
        # Detection may surface as a missing instance or as a downstream
        # wrong value, whichever array sorts first in the diagnosis.
        with pytest.raises(EquivalenceError):
            assert_equivalent(g, bad, N)

    def test_duplicated_instruction(self, good):
        g, p = good
        body = list(p.loop.body)
        k = next(k for k, i in enumerate(body) if isinstance(i, ComputeInstr))
        body.insert(k, body[k])
        bad = _with_body(p, body)
        with pytest.raises(MachineError, match="computed twice"):
            assert_equivalent(g, bad, N)
