"""Property tests with *random* legal retimings (not optimizer witnesses).

The optimizer's retimings have special structure (pointwise-maximal
Bellman-Ford solutions).  These tests push delays through random node
sequences instead, exercising code generation and CSR across the whole
legal retiming space.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import pipelined_loop, retimed_unfolded_loop
from repro.core import (
    assert_equivalent,
    csr_pipelined_loop,
    csr_retimed_unfolded_loop,
    size_csr_pipelined,
    size_pipelined,
)
from repro.machine import run_program

from ..conftest import dfgs, random_legal_retiming


@given(dfgs(max_nodes=6), st.integers(0, 2**32 - 1), st.integers(0, 12))
@settings(max_examples=40, deadline=None)
def test_pipelined_any_legal_retiming(g, seed, n):
    r = random_legal_retiming(g, random.Random(seed))
    if n >= r.max_value:
        assert_equivalent(g, pipelined_loop(g, r), n)


@given(dfgs(max_nodes=6), st.integers(0, 2**32 - 1), st.integers(0, 12))
@settings(max_examples=40, deadline=None)
def test_csr_any_legal_retiming(g, seed, n):
    r = random_legal_retiming(g, random.Random(seed))
    assert_equivalent(g, csr_pipelined_loop(g, r), n)


@given(dfgs(max_nodes=5), st.integers(0, 2**32 - 1), st.integers(1, 3), st.integers(0, 10))
@settings(max_examples=40, deadline=None)
def test_combined_any_legal_retiming(g, seed, f, n):
    r = random_legal_retiming(g, random.Random(seed))
    assert_equivalent(g, csr_retimed_unfolded_loop(g, r, f), n)
    if n >= r.max_value:
        leftover = (n - r.max_value) % f
        assert_equivalent(g, retimed_unfolded_loop(g, r, f, leftover), n)


@given(dfgs(max_nodes=6), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_size_models_any_legal_retiming(g, seed):
    r = random_legal_retiming(g, random.Random(seed))
    assert pipelined_loop(g, r).code_size == size_pipelined(g, r)
    assert csr_pipelined_loop(g, r).code_size == size_csr_pipelined(g, r)


@given(dfgs(max_nodes=5), st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_plain_and_csr_agree_any_retiming(g, seed):
    r = random_legal_retiming(g, random.Random(seed))
    n = 9 + r.max_value
    a = run_program(pipelined_loop(g, r), n)
    b = run_program(csr_pipelined_loop(g, r), n)
    assert a.arrays == b.arrays


@given(dfgs(max_nodes=5), st.integers(0, 2**32 - 1), st.integers(2, 4), st.integers(0, 10))
@settings(max_examples=30, deadline=None)
def test_decrement_modes_agree_randomly(g, seed, f, n):
    """Per-copy and per-iteration decrement placement are two encodings of
    the same predicate schedule: identical array states for random graphs,
    retimings, factors and trip counts."""
    from repro.core import PER_COPY, PER_ITERATION

    r = random_legal_retiming(g, random.Random(seed))
    a = run_program(csr_retimed_unfolded_loop(g, r, f, PER_COPY), n)
    b = run_program(csr_retimed_unfolded_loop(g, r, f, PER_ITERATION), n)
    assert a.arrays == b.arrays
    assert a.executed == b.executed


# ----------------------------------------------------------------------
# The same ground, routed through the experiment engine.
# ----------------------------------------------------------------------


def _engine_jobs(seeds: range) -> list:
    """Deterministic per-seed job slices of the random-graph matrix."""
    from repro.graph.generators import random_dfg
    from repro.graph.serialize import to_json
    from repro.runner import Job

    jobs = []
    for seed in seeds:
        rng = random.Random(seed)
        g = random_dfg(rng, num_nodes=rng.randint(1, 5), extra_edges=rng.randint(0, 4))
        graph_json = to_json(g, indent=None)
        for transform, f in (
            ("csr-pipelined", 1),
            ("csr-retime-unfold", 2),
            ("csr-unfold-retime", 2),
        ):
            jobs.append(
                Job(
                    transform=transform,
                    graph_json=graph_json,
                    factor=f,
                    trip_count=rng.randint(0, 9),
                )
            )
    return jobs


def test_engine_parallel_matches_serial_run():
    """Determinism under parallelism: the same seeded job matrix, run
    inline and across a 2-process pool, yields bit-identical payloads."""
    from repro.runner import ExperimentEngine

    jobs = _engine_jobs(range(20))
    serial = ExperimentEngine(jobs=1, cache=None).run_jobs(jobs)
    parallel = ExperimentEngine(jobs=2, cache=None).run_jobs(jobs)
    assert all(r.ok for r in serial), [r.error for r in serial if not r.ok]
    assert [r.payload for r in serial] == [r.payload for r in parallel]


def test_engine_cached_rerun_matches_fresh_run(tmp_path):
    """A cache-served re-run of the seeded matrix replays the fresh
    results exactly (and actually comes from the cache)."""
    from repro.runner import ExperimentEngine, ResultCache

    jobs = _engine_jobs(range(10))
    engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
    fresh = engine.run_jobs(jobs)
    replay = engine.run_jobs(jobs)
    assert all(r.cached for r in replay)
    assert [r.payload for r in fresh] == [r.payload for r in replay]
