"""End-to-end pipeline: every program form, every benchmark, one truth.

For each workload this builds all seven program forms — original,
pipelined, CSR-pipelined, unfolded, CSR-unfolded, retimed-unfolded (+CSR),
unfold-retimed (+CSR) — and requires bit-identical array states from the
VM.
"""

from __future__ import annotations

import pytest

from repro.codegen import (
    original_loop,
    pipelined_loop,
    retimed_unfolded_loop,
    unfold_retimed_loop,
    unfolded_loop,
)
from repro.core import (
    assert_equivalent,
    csr_pipelined_loop,
    csr_retimed_unfolded_loop,
    csr_unfold_retimed_loop,
    csr_unfolded_loop,
)
from repro.retiming import minimize_cycle_period
from repro.unfolding import retime_unfold, unfold_retime
from repro.workloads import BENCHMARKS, get_workload

FORMS_N = 23  # prime, not divisible by any factor used below
FACTOR = 3


def _all_programs(g):
    _, r = minimize_cycle_period(g)
    ru = retime_unfold(g, FACTOR)
    ur = unfold_retime(g, FACTOR)
    return [
        pipelined_loop(g, r),
        csr_pipelined_loop(g, r),
        unfolded_loop(g, FACTOR, residue=FORMS_N % FACTOR),
        csr_unfolded_loop(g, FACTOR),
        retimed_unfolded_loop(
            g, ru.retiming, FACTOR, (FORMS_N - ru.retiming.max_value) % FACTOR
        ),
        csr_retimed_unfolded_loop(g, ru.retiming, FACTOR),
        unfold_retimed_loop(g, ur.retiming, FACTOR, residue=FORMS_N % FACTOR),
        csr_unfold_retimed_loop(g, ur.retiming, FACTOR),
    ]


@pytest.mark.parametrize("name", BENCHMARKS + ("figure2", "figure4", "figure8"))
def test_all_forms_equivalent(name):
    g = get_workload(name)
    for program in _all_programs(g):
        assert_equivalent(g, program, FORMS_N)


@pytest.mark.parametrize("name", ["iir", "figure4"])
@pytest.mark.parametrize("n", [6, 7, 8, 9, 10])
def test_forms_across_residues(name, n):
    """Sweep trip counts across every residue class mod the factor."""
    g = get_workload(name)
    _, r = minimize_cycle_period(g)
    ru = retime_unfold(g, FACTOR)
    assert_equivalent(g, unfolded_loop(g, FACTOR, residue=n % FACTOR), n)
    assert_equivalent(g, csr_unfolded_loop(g, FACTOR), n)
    assert_equivalent(
        g,
        retimed_unfolded_loop(
            g, ru.retiming, FACTOR, (n - ru.retiming.max_value) % FACTOR
        ),
        n,
    )
    assert_equivalent(g, csr_retimed_unfolded_loop(g, ru.retiming, FACTOR), n)


def test_csr_code_sizes_strictly_smaller_across_suite():
    """Summary invariant over every benchmark: CSR never loses to the
    plain pipelined form (Table 1 as an inequality)."""
    for name in BENCHMARKS:
        g = get_workload(name)
        _, r = minimize_cycle_period(g)
        plain = pipelined_loop(g, r)
        csr = csr_pipelined_loop(g, r)
        assert csr.code_size < plain.code_size


def test_executed_instruction_counts_identical():
    """Beyond final state: every form executes exactly n computes per node."""
    from repro.machine import run_program

    g = get_workload("diffeq")
    for program in _all_programs(g):
        res = run_program(program, FORMS_N)
        assert res.executed == FORMS_N * g.num_nodes
