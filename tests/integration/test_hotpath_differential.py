"""Differential pinning of the overhauled hot paths against the originals.

The acceptance bar for the hot-path overhaul: the new engines — integer
parametric iteration bound, warm-started incremental retiming, threaded
dispatch VM — must be *bit-identical* to the implementations they replace
on the full workload registry plus hundreds of random graphs.  These
sweeps are deterministic (seeded) so a divergence is a reproducible bug,
not a flake.
"""

from __future__ import annotations

import random

import pytest

from repro.codegen import original_loop, pipelined_loop
from repro.graph import (
    EdgeKernel,
    iteration_bound,
    iteration_bound_exhaustive,
    iteration_bound_fraction,
)
from repro.graph.generators import random_dfg
from repro.machine import run_program
from repro.machine.vliw_vm import run_packed
from repro.retiming import minimize_cycle_period
from repro.schedule import ResourceModel
from repro.workloads import WORKLOADS

#: Seeded random graphs shared by all sweeps (>= 200 per acceptance bar).
RANDOM_GRAPH_COUNT = 210


def _random_graphs():
    rng = random.Random(0xD5B)
    graphs = []
    for i in range(RANDOM_GRAPH_COUNT):
        graphs.append(
            random_dfg(
                rng,
                num_nodes=rng.randint(2, 10),
                extra_edges=rng.randint(0, 10),
                max_delay=4,
                max_time=rng.choice((1, 1, 5)),
                name=f"diff{i}",
            )
        )
    return graphs


def _registry_graphs():
    return [fn() for fn in WORKLOADS.values()]


class TestIterationBoundOracle:
    """Integer parametric search vs Fraction relaxation vs exhaustive."""

    def test_registry(self):
        for g in _registry_graphs():
            assert iteration_bound(g) == iteration_bound_fraction(g)

    def test_random_graphs(self):
        for g in _random_graphs():
            got = iteration_bound(g)
            assert got == iteration_bound_fraction(g), g.name
            if g.num_nodes <= 8:
                assert got == iteration_bound_exhaustive(g), g.name

    def test_kernel_cycle_oracle_matches_fraction_test(self):
        """The non-strict integer cycle test agrees with the Fraction
        comparison on probe values around the true bound."""
        for g in _registry_graphs():
            bound = iteration_bound_fraction(g)
            if bound == 0:
                continue
            kernel = EdgeKernel(g)
            for num, den, expect in (
                (bound.numerator, bound.denominator, True),   # ratio == λ
                (bound.numerator, bound.denominator * 2, True),  # λ halved
                (bound.numerator * 2, bound.denominator, False),  # λ doubled
            ):
                assert (
                    kernel.has_positive_cycle(num, den, strict=False) is expect
                ), (g.name, num, den)


class TestMinimizePeriodEngines:
    """reference / shared / incremental strategies, pinned exactly equal."""

    def test_registry(self):
        for g in _registry_graphs():
            p_ref, r_ref = minimize_cycle_period(g, method="reference")
            p_shared, r_shared = minimize_cycle_period(g, method="shared")
            p_inc, r_inc = minimize_cycle_period(g, method="incremental")
            assert p_ref == p_shared == p_inc, g.name
            assert r_ref.as_dict() == r_shared.as_dict() == r_inc.as_dict(), g.name

    def test_random_graphs(self):
        for g in _random_graphs():
            p_ref, r_ref = minimize_cycle_period(g, method="reference")
            p_inc, r_inc = minimize_cycle_period(
                g, method="incremental", verify=True
            )
            assert p_ref == p_inc, g.name
            assert r_ref.as_dict() == r_inc.as_dict(), g.name


class TestVmDispatchSweep:
    """Threaded dispatch vs reference interpreter on random programs."""

    def test_random_graphs(self):
        rng = random.Random(4242)
        for g in _random_graphs():
            programs = [original_loop(g)]
            # Pipelining multi-time-unit graphs is out of codegen scope;
            # guard like the paper pipeline does.
            if all(v.time == 1 for v in g.nodes()):
                programs.append(
                    pipelined_loop(g, minimize_cycle_period(g)[1])
                )
            for p in programs:
                min_n = p.meta.get("min_n", 1) or 1
                n = max(min_n, rng.randint(1, 12))
                ref = run_program(p, n, dispatch=False)
                new = run_program(p, n)
                assert new.arrays == ref.arrays, (g.name, p.name)
                assert (new.executed, new.disabled) == (
                    ref.executed,
                    ref.disabled,
                ), (g.name, p.name)


class TestVliwDispatchSweep:
    """Packed executor: pre-compiled word slots vs reference, registry-wide."""

    MACHINE = ResourceModel(units={"alu": 2, "mul": 1})

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_registry_packed(self, name):
        g = WORKLOADS[name]()
        p = original_loop(g)
        min_n = p.meta.get("min_n", 1) or 1
        for n in (min_n, min_n + 9):
            ref = run_packed(
                p, n, self.MACHINE, control_slots=2, dispatch=False
            )
            new = run_packed(p, n, self.MACHINE, control_slots=2)
            assert new.arrays == ref.arrays
            assert (new.cycles, new.executed, new.disabled) == (
                ref.cycles,
                ref.executed,
                ref.disabled,
            )

    def test_random_graphs_packed(self):
        rng = random.Random(77)
        for g in _random_graphs()[:60]:
            p = original_loop(g)
            min_n = p.meta.get("min_n", 1) or 1
            n = max(min_n, rng.randint(1, 10))
            ref = run_packed(
                p, n, self.MACHINE, control_slots=2, dispatch=False
            )
            new = run_packed(p, n, self.MACHINE, control_slots=2)
            assert new.arrays == ref.arrays, g.name
            assert (new.cycles, new.executed, new.disabled) == (
                ref.cycles,
                ref.executed,
                ref.disabled,
            ), g.name
