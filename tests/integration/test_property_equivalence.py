"""Property-based equivalence: the crown-jewel test.

For random legal cyclic DFGs, random retimings/unfolding factors and random
trip counts, every code generator in the library must produce a program the
VM proves equivalent to the original loop.  This is the strongest evidence
the reproduction offers that the paper's transformations (and ours) are
semantics-preserving in general, not just on the showcased examples.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import (
    pipelined_loop,
    retimed_unfolded_loop,
    unfold_retimed_loop,
    unfolded_loop,
)
from repro.core import (
    assert_equivalent,
    csr_pipelined_loop,
    csr_unfolded_loop,
)
from repro.retiming import minimize_cycle_period
from repro.unfolding import retime_unfold, unfold_retime

from ..conftest import dfgs

EXAMPLES = 35


class TestPipelinedForms:
    @given(dfgs(max_nodes=6), st.integers(min_value=0, max_value=15))
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_pipelined(self, g, n):
        _, r = minimize_cycle_period(g)
        if n >= r.max_value:
            assert_equivalent(g, pipelined_loop(g, r), n)

    @given(dfgs(max_nodes=6), st.integers(min_value=0, max_value=15))
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_csr_pipelined_every_n(self, g, n):
        _, r = minimize_cycle_period(g)
        assert_equivalent(g, csr_pipelined_loop(g, r), n)


class TestUnfoldedForms:
    @given(
        dfgs(max_nodes=5),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=14),
    )
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_unfolded(self, g, f, n):
        assert_equivalent(g, unfolded_loop(g, f, residue=n % f), n)

    @given(
        dfgs(max_nodes=5),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=14),
    )
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_csr_unfolded(self, g, f, n):
        assert_equivalent(g, csr_unfolded_loop(g, f), n)


class TestCombinedForms:
    @given(
        dfgs(max_nodes=5),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=14),
    )
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_retimed_unfolded(self, g, f, n):
        res = retime_unfold(g, f)
        m = res.retiming.max_value
        if n >= m:
            p = retimed_unfolded_loop(g, res.retiming, f, (n - m) % f)
            assert_equivalent(g, p, n)

    @given(
        dfgs(max_nodes=4),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=EXAMPLES, deadline=None)
    def test_unfold_retimed(self, g, f, n):
        res = unfold_retime(g, f)
        p = unfold_retimed_loop(g, res.retiming, f, residue=n % f)
        if n >= p.meta["min_n"]:
            assert_equivalent(g, p, n)
