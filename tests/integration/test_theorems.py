"""Each theorem of Section 4 as an executable check.

These tests state the paper's theorems in terms of generated programs and
VM executions, so the suite doubles as a machine-checked reading of the
paper's theory section.
"""

from __future__ import annotations

import pytest

from repro.codegen import original_loop, pipelined_loop
from repro.core import (
    assert_equivalent,
    csr_pipelined_loop,
    csr_retimed_unfolded_loop,
    size_retime_unfold,
    size_unfold_retime,
)
from repro.machine import run_program
from repro.retiming import minimize_cycle_period
from repro.unfolding import retime_unfold, unfold_retime
from repro.workloads import get_workload


class TestTheorem41And42:
    """Prologue and epilogue are correctly replaced by conditionally
    executing the loop body M_r extra times."""

    def test_execution_counts(self, fig2):
        _, r = minimize_cycle_period(fig2)
        n = 12
        p = csr_pipelined_loop(fig2, r)
        res = run_program(p, n, trace=True)
        # The loop body runs n + M_r times...
        assert p.loop.trip_count(n) == n + r.max_value
        # ...and each node executes exactly n times within it.
        for v in fig2.node_names():
            assert res.trace.instances_of(v) == list(range(1, n + 1))

    def test_node_start_iteration(self, fig2):
        """A node with retiming value r(v) first executes in iteration
        M_r - r(v) + 1 of the extended loop (Theorem 4.1's indexing)."""
        _, r = minimize_cycle_period(fig2)
        p = csr_pipelined_loop(fig2, r)
        res = run_program(p, 10, trace=True)
        base = p.loop.start.resolve(None, 10)
        first_i = {}
        for e in res.trace.events:
            if e.node not in first_i:
                first_i[e.node] = e.i
        m = r.max_value
        for v in fig2.node_names():
            # Iteration index (1-based) within the extended loop:
            k = first_i[v] - base + 1
            assert k == m - r[v] + 1

    def test_agreement_with_explicit_prologue_epilogue(self, bench_graph):
        """The CSR program and the explicit prologue/body/epilogue program
        compute identical array states."""
        _, r = minimize_cycle_period(bench_graph)
        n = 9
        a = run_program(pipelined_loop(bench_graph, r), n)
        b = run_program(csr_pipelined_loop(bench_graph, r), n)
        assert a.arrays == b.arrays


class TestTheorem43:
    """|N_r| conditional registers achieve the optimal code size."""

    def test_register_count(self, bench_graph):
        _, r = minimize_cycle_period(bench_graph)
        p = csr_pipelined_loop(bench_graph, r)
        assert len(p.registers()) == len(r.distinct_values())

    def test_optimal_size_is_body_plus_overhead(self, bench_graph):
        """'The minimal code size required for a correct execution is only
        the code size of the loop body' — plus the register management."""
        _, r = minimize_cycle_period(bench_graph)
        p = csr_pipelined_loop(bench_graph, r)
        assert p.compute_size == bench_graph.num_nodes
        assert p.overhead_size == 2 * len(r.distinct_values())

    def test_fails_with_fewer_registers(self, fig2):
        """With a register file smaller than |N_r| the program cannot even
        be loaded — the machine enforces Theorem 4.3's lower bound."""
        from repro.machine import MachineError

        _, r = minimize_cycle_period(fig2)
        p = csr_pipelined_loop(fig2, r)
        with pytest.raises(MachineError):
            run_program(p, 6, register_capacity=r.registers_needed() - 1)


class TestTheorems44And45:
    """Code sizes of the two orders; S_{r,f} <= S_{f,r}."""

    @pytest.mark.parametrize("name", ["iir", "diffeq", "lattice"])
    @pytest.mark.parametrize("f", [2, 3])
    def test_order_inequality_at_matched_period(self, name, f):
        g = get_workload(name)
        ru = retime_unfold(g, f)
        ur = unfold_retime(g, f, period=ru.period)
        assert size_retime_unfold(g, ru.retiming, f) <= size_unfold_retime(
            g, ur.retiming, f
        )

    def test_formula_terms(self, fig4):
        """S_{f,r} = (M+1) * L * f and S_{r,f} = (M_rf + f) * L."""
        f = 3
        ru = retime_unfold(fig4, f)
        ur = unfold_retime(fig4, f, period=ru.period)
        L = fig4.num_nodes
        assert size_retime_unfold(fig4, ru.retiming, f) == (
            ru.retiming.max_value + f
        ) * L
        assert size_unfold_retime(fig4, ur.retiming, f) == (
            ur.retiming.max_value + 1
        ) * L * f


class TestTheorems46And47:
    """CSR for retimed-unfolded loops: correct, and with P_{r,f} = P_r."""

    @pytest.mark.parametrize("f", [2, 3, 4])
    def test_register_invariance(self, bench_graph, f):
        _, r = minimize_cycle_period(bench_graph)
        p1 = csr_pipelined_loop(bench_graph, r)
        pf = csr_retimed_unfolded_loop(bench_graph, r, f)
        assert len(pf.registers()) == len(p1.registers())

    @pytest.mark.parametrize("f", [2, 3])
    @pytest.mark.parametrize("n", [0, 1, 5, 11, 12, 13])
    def test_correct_replacement(self, fig2, f, n):
        _, r = minimize_cycle_period(fig2)
        assert_equivalent(fig2, csr_retimed_unfolded_loop(fig2, r, f), n)

    def test_prologue_hidden_in_ceil_mr_over_f_iterations(self, fig2):
        """Theorem 4.6: the prologue is absorbed by ceil(M_r / f) extra
        unfolded iterations."""
        import math

        _, r = minimize_cycle_period(fig2)
        f = 2
        p = csr_retimed_unfolded_loop(fig2, r, f)
        n = 10
        plain_iterations = math.ceil(n / f)
        extra = p.loop.trip_count(n) - plain_iterations
        assert extra == math.ceil(r.max_value / f)
