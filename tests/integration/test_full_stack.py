"""Full-stack integration: front-end -> compiler -> packer -> packed VM.

The longest path through the library: parse a loop from source, let the
driver choose factor/scheduler/budgets, pack the result for a VLIW model,
and execute the packed words — all four layers must agree with the plain
sequential reference.
"""

from __future__ import annotations

import pytest

from repro import compile_loop, parse_loop
from repro.codegen import (
    original_loop,
    pipelined_loop,
    retimed_unfolded_loop,
    unfold_retimed_loop,
    unfolded_loop,
)
from repro.core import (
    csr_pipelined_loop,
    csr_retimed_unfolded_loop,
    csr_unfold_retimed_loop,
    csr_unfolded_loop,
    reference_result,
)
from repro.machine import run_packed, run_program
from repro.retiming import minimize_cycle_period
from repro.schedule import ResourceModel
from repro.unfolding import retime_unfold, unfold_retime
from repro.workloads import get_workload

MACHINE = ResourceModel(units={"alu": 3, "mul": 2})
N = 14


@pytest.mark.parametrize("name", ["iir", "diffeq", "figure2", "figure8"])
def test_all_forms_packed_equivalence(name):
    """Every program form, packed and executed with parallel-commit word
    semantics, reproduces the sequential reference arrays."""
    g = get_workload(name)
    _, r = minimize_cycle_period(g)
    ru = retime_unfold(g, 2)
    ur = unfold_retime(g, 2)
    forms = [
        original_loop(g),
        pipelined_loop(g, r),
        csr_pipelined_loop(g, r),
        unfolded_loop(g, 2, residue=N % 2),
        csr_unfolded_loop(g, 2),
        retimed_unfolded_loop(g, ru.retiming, 2, (N - ru.retiming.max_value) % 2),
        csr_retimed_unfolded_loop(g, ru.retiming, 2),
        unfold_retimed_loop(g, ur.retiming, 2, residue=N % 2),
        csr_unfold_retimed_loop(g, ur.retiming, 2),
    ]
    want = reference_result(g, N).arrays
    for program in forms:
        got = run_packed(program, N, MACHINE, control_slots=2)
        assert got.arrays == want, program.name


SOURCE = """
ACC[i] = ACC[i-4] + PROD[i-1]
PROD[i] = X[i] * COEF[i-2]
COEF[i] = ACC[i-3] * 3
X[i] = input(7)
"""


def test_parse_compile_pack_execute():
    g = parse_loop(SOURCE, name="fullstack")
    result = compile_loop(g, resources=MACHINE, max_unfold=3, verify_n=11)
    want = reference_result(g, 25).arrays
    got = run_packed(result.program, 25, MACHINE, control_slots=2)
    assert got.arrays == want
    # Cycle accounting is exact and positive.
    assert got.cycles >= result.period


def test_compile_budgets_through_stack():
    g = parse_loop(SOURCE, name="budgeted")
    tight = compile_loop(g, max_unfold=4, code_budget=12)
    loose = compile_loop(g, max_unfold=4)
    assert tight.code_size <= 12
    assert loose.iteration_period <= tight.iteration_period
