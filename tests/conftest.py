"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.graph import DFG, OpKind
from repro.graph.generators import random_dfg
from repro.runner import resilience
from repro.workloads import (
    benchmark_graphs,
    figure1,
    figure2_example,
    figure4_loop,
    figure8,
    get_workload,
)


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden report files under tests/data/golden/ "
        "from current output instead of comparing against them",
    )


@pytest.fixture
def regen_golden(request) -> bool:
    return request.config.getoption("--regen-golden")


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """A test that activates a fault plan must not leak it into the next
    test — the global is process state, like the observability singleton."""
    yield
    resilience.deactivate()


# ----------------------------------------------------------------------
# Hand-built fixture graphs
# ----------------------------------------------------------------------


@pytest.fixture
def fig1() -> DFG:
    return figure1()


@pytest.fixture
def fig2() -> DFG:
    return figure2_example()


@pytest.fixture
def fig4() -> DFG:
    return figure4_loop()


@pytest.fixture
def fig8() -> DFG:
    return figure8()


@pytest.fixture(params=["iir", "diffeq", "allpole", "elliptic", "lattice", "volterra"])
def bench_graph(request) -> DFG:
    """Parametrized over all six paper benchmarks."""
    return get_workload(request.param)


@pytest.fixture
def two_node_cycle() -> DFG:
    """Minimal cyclic graph: A -> B (d=0), B -> A (d=2)."""
    g = DFG("two")
    g.add_node("A", op=OpKind.ADD, imm=1)
    g.add_node("B", op=OpKind.MUL, imm=2)
    g.add_edge("A", "B", 0)
    g.add_edge("B", "A", 2)
    return g


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------


@st.composite
def dfgs(
    draw,
    max_nodes: int = 7,
    max_extra_edges: int = 6,
    max_delay: int = 3,
    max_time: int = 1,
) -> DFG:
    """Random legal cyclic DFGs (seed-driven, shrinkable via the seed)."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    extra = draw(st.integers(min_value=0, max_value=max_extra_edges))
    rng = random.Random(seed)
    return random_dfg(
        rng,
        num_nodes=num_nodes,
        extra_edges=extra,
        max_delay=max_delay,
        max_time=max_time,
    )


@st.composite
def timed_dfgs(draw, max_nodes: int = 6, max_time: int = 5) -> DFG:
    """Random DFGs with non-unit node times."""
    return draw(dfgs(max_nodes=max_nodes, max_time=max_time))


def random_legal_retiming(g, rng: random.Random, max_pushes: int = 8):
    """A random legal normalized retiming built from delay pushes.

    Used by property tests to exercise code generation away from the
    optimizer's witnesses (which have special structure).
    """
    from repro.retiming import Retiming, can_push, push_nodes

    r = Retiming.zero(g)
    for _ in range(rng.randrange(max_pushes + 1)):
        candidates = [n for n in g.node_names() if can_push(r.apply(), {n})]
        if not candidates:
            break
        r = push_nodes(r, {rng.choice(candidates)})
    return r.normalized()
