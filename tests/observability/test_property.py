"""Seeded property tests for the observability layer itself.

Two laws the rest of the system depends on:

* the Chrome trace-event exporter is invertible — any nested span tree
  survives a round trip through ``chrome_trace_events`` unchanged in
  names, nesting, attributes and durations;
* metric aggregation is partition-invariant — counters and histograms
  sharded across N simulated worker processes and merged equal the
  registry a serial run would have produced.
"""

from __future__ import annotations

import random

import pytest

from repro.observability import (
    MetricsRegistry,
    Span,
    chrome_trace_events,
    spans_from_chrome_events,
)

SEEDS = range(40)


# ----------------------------------------------------------------------
# Span-tree round trip
# ----------------------------------------------------------------------


def _random_tree(rng: random.Random, lo: int, hi: int, depth: int) -> Span:
    """A random span strictly inside ``[lo, hi]`` ns with nested children.

    Children occupy disjoint, strictly interior subintervals, so time
    containment (what the importer reconstructs nesting from) is
    unambiguous by construction.
    """
    span = Span(
        name=f"s{rng.randrange(1000)}",
        start_ns=lo,
        duration_ns=hi - lo,
        attributes={"k": rng.randrange(100)} if rng.random() < 0.5 else {},
        pid=rng.choice([1, 2, 3]),
    )
    if depth > 0 and hi - lo >= 8000:
        cuts = sorted(
            rng.sample(range(lo + 1000, hi - 1000, 1000), rng.randrange(0, 4))
        )
        bounds = [lo + 1000] + cuts + [hi - 1000]
        for a, b in zip(bounds[:-1], bounds[1:]):
            if b - a >= 2000 and rng.random() < 0.8:
                span.children.append(
                    _random_tree(rng, a + 500, b - 500, depth - 1)
                )
    return span


def _normalize(span: Span, epoch: int) -> tuple:
    """Structure fingerprint: name, relative timing, attrs, children."""
    return (
        span.name,
        span.start_ns - epoch,
        span.duration_ns,
        tuple(sorted(span.attributes.items())),
        tuple(_normalize(c, epoch) for c in span.children),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_span_tree_round_trips_through_chrome_export(seed):
    rng = random.Random(seed)
    # Children inherit the root's pid: the importer reconstructs nesting
    # per pid lane, so a tree spanning lanes is (correctly) split.
    roots = []
    for _ in range(rng.randint(1, 3)):
        base = rng.randrange(0, 10**9, 1000)
        root = _random_tree(rng, base, base + rng.randrange(10**5, 10**6, 1000), 3)
        for s in root.walk():
            s.pid = root.pid
        roots.append(root)

    events = chrome_trace_events(roots)
    rebuilt = spans_from_chrome_events(events)

    epoch = min(s.start_ns for r in roots for s in r.walk())
    want = sorted(_normalize(r, epoch) for r in roots)
    got = sorted(_normalize(r, 0) for r in rebuilt)
    assert got == want


@pytest.mark.parametrize("seed", SEEDS)
def test_round_trip_preserves_span_count(seed):
    rng = random.Random(seed + 10_000)
    root = _random_tree(rng, 0, 10**6, 4)
    for s in root.walk():
        s.pid = 1
    events = chrome_trace_events([root])
    rebuilt = spans_from_chrome_events(events)
    assert sum(1 for r in rebuilt for _ in r.walk()) == len(events)


# ----------------------------------------------------------------------
# Cross-process metric aggregation
# ----------------------------------------------------------------------

_COUNTERS = ["vm.executed", "cache.hits", "retiming.iterations"]
_BOUNDS = (1, 10, 100, 1000)


@pytest.mark.parametrize("seed", SEEDS)
def test_merged_worker_counters_equal_serial_totals(seed):
    rng = random.Random(seed)
    num_workers = rng.randint(1, 6)

    serial = MetricsRegistry()
    parent = MetricsRegistry()
    for _ in range(num_workers):
        # Each simulated worker records into its own fresh registry …
        worker = MetricsRegistry()
        for _ in range(rng.randrange(20)):
            name = rng.choice(_COUNTERS)
            n = rng.randrange(1, 50)
            worker.counter(name).inc(n)
            serial.counter(name).inc(n)
        for _ in range(rng.randrange(20)):
            v = rng.randrange(0, 2000)
            worker.histogram("wall", bounds=_BOUNDS).observe(v)
            serial.histogram("wall", bounds=_BOUNDS).observe(v)
        # … and ships its JSON snapshot home, like an engine worker does.
        parent.merge(worker.as_dict())

    assert parent.as_dict() == serial.as_dict()


@pytest.mark.parametrize("seed", range(10))
def test_merge_is_associative_across_partitions(seed):
    """Merging (A then B) equals merging (B then A) for counters/histograms."""
    rng = random.Random(seed)
    observations = [
        (rng.choice(_COUNTERS), rng.randrange(1, 30)) for _ in range(30)
    ]
    cut = rng.randrange(len(observations))

    def registry_of(obs_slice):
        m = MetricsRegistry()
        for name, n in obs_slice:
            m.counter(name).inc(n)
        return m

    ab = MetricsRegistry()
    ab.merge(registry_of(observations[:cut]).as_dict())
    ab.merge(registry_of(observations[cut:]).as_dict())
    ba = MetricsRegistry()
    ba.merge(registry_of(observations[cut:]).as_dict())
    ba.merge(registry_of(observations[:cut]).as_dict())
    assert ab.as_dict()["counters"] == ba.as_dict()["counters"]
    assert ab.as_dict() == registry_of(observations).as_dict()
