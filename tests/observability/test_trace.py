"""Tracer behavior: nesting, timing, transport, and the Chrome exporter."""

from __future__ import annotations

import json
import time

from repro import observability
from repro.observability import (
    Span,
    Tracer,
    aggregate_spans,
    chrome_trace_events,
    format_breakdown,
    spans_from_chrome_events,
    write_chrome_trace,
)


class TestTracer:
    def test_spans_nest_by_entry_order(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                with t.span("leaf"):
                    pass
            with t.span("sibling"):
                pass
        assert len(t.roots) == 1
        outer = t.roots[0]
        assert [c.name for c in outer.children] == ["inner", "sibling"]
        assert [c.name for c in outer.children[0].children] == ["leaf"]

    def test_timings_are_positive_and_contained(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                time.sleep(0.002)
        outer, inner = t.roots[0], t.roots[0].children[0]
        assert inner.duration_ns > 0
        assert outer.start_ns <= inner.start_ns
        assert inner.end_ns <= outer.end_ns

    def test_attributes_at_entry_and_via_set(self):
        t = Tracer()
        with t.span("op", graph="iir") as sp:
            sp.set(period=3)
        assert t.roots[0].attributes == {"graph": "iir", "period": 3}

    def test_sequential_roots(self):
        t = Tracer()
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        assert [s.name for s in t.roots] == ["a", "b"]

    def test_span_closed_on_exception(self):
        t = Tracer()
        try:
            with t.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert [s.name for s in t.roots] == ["boom"]
        assert t.current() is None

    def test_absorb_attaches_under_open_span(self):
        t = Tracer()
        foreign = Span(name="worker.job", start_ns=5, duration_ns=10, pid=4242)
        with t.span("engine.map"):
            t.absorb([foreign.to_dict()])
        batch = t.roots[0]
        assert [c.name for c in batch.children] == ["worker.job"]
        assert batch.children[0].pid == 4242

    def test_absorb_without_open_span_becomes_root(self):
        t = Tracer()
        t.absorb([Span(name="orphan", start_ns=1, duration_ns=2).to_dict()])
        assert [s.name for s in t.roots] == ["orphan"]

    def test_export_round_trips_dicts(self):
        t = Tracer()
        with t.span("a", k=1):
            with t.span("b"):
                pass
        docs = t.export()
        rebuilt = [Span.from_dict(d) for d in docs]
        assert rebuilt[0].name == "a"
        assert rebuilt[0].attributes == {"k": 1}
        assert rebuilt[0].children[0].name == "b"


class TestGlobalSwitch:
    def test_disabled_span_is_shared_noop(self, obs_off):
        cm1 = observability.span("x", a=1)
        cm2 = observability.span("y")
        assert cm1 is cm2  # the NULL_SPAN singleton
        with cm1 as sp:
            sp.set(anything=True)  # no-op, no error
        assert observability.OBS.tracer.roots == []

    def test_enabled_span_records(self, obs):
        with observability.span("x"):
            pass
        assert [s.name for s in obs.tracer.roots] == ["x"]

    def test_count_guarded(self, obs_off):
        observability.count("c", 5)
        assert len(observability.OBS.metrics) == 0

    def test_export_state_resets(self, obs):
        with observability.span("x"):
            observability.count("c", 2)
        state = observability.export_state()
        assert [s["name"] for s in state["spans"]] == ["x"]
        assert state["metrics"]["counters"] == {"c": 2}
        assert obs.tracer.roots == []
        assert len(obs.metrics) == 0

    def test_absorb_state_merges(self, obs):
        observability.count("c", 1)
        observability.absorb_state(
            {"spans": [], "metrics": {"counters": {"c": 3, "d": 4}}}
        )
        counters = obs.metrics.as_dict()["counters"]
        assert counters == {"c": 4, "d": 4}


class TestChromeExport:
    def _tree(self) -> list[Span]:
        t = Tracer()
        with t.span("root", phase="x"):
            with t.span("child1"):
                with t.span("leaf"):
                    pass
            with t.span("child2"):
                pass
        return t.roots

    def test_events_are_complete_events(self):
        events = chrome_trace_events(self._tree())
        assert len(events) == 4
        assert all(e["ph"] == "X" for e in events)
        assert events[0]["name"] == "root"
        assert events[0]["args"] == {"phase": "x"}
        for e in events:
            assert e["dur"] >= 0 and e["ts"] >= 0
        # Timestamps are rebased: the earliest event sits at ts == 0.
        assert min(e["ts"] for e in events) == 0

    def test_write_is_valid_json_with_trace_events_key(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._tree())
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert len(doc["traceEvents"]) == 4

    def test_import_rebuilds_nesting(self):
        roots = self._tree()
        rebuilt = spans_from_chrome_events(chrome_trace_events(roots))
        assert len(rebuilt) == 1
        root = rebuilt[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child1", "child2"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_import_separates_pid_lanes(self):
        a = Span(name="a", start_ns=0, duration_ns=10_000, pid=1)
        b = Span(name="b", start_ns=0, duration_ns=10_000, pid=2)
        rebuilt = spans_from_chrome_events(chrome_trace_events([a, b]))
        assert sorted(s.name for s in rebuilt) == ["a", "b"]
        assert all(not s.children for s in rebuilt)


class TestReporting:
    def test_aggregate_counts_and_self_time(self):
        root = Span(name="root", start_ns=0, duration_ns=10_000_000)
        root.children = [
            Span(name="leaf", start_ns=1, duration_ns=3_000_000),
            Span(name="leaf", start_ns=2, duration_ns=4_000_000),
        ]
        agg = aggregate_spans([root])
        assert agg["leaf"]["count"] == 2
        assert agg["leaf"]["total_ns"] == 7_000_000
        assert agg["root"]["self_ns"] == 3_000_000

    def test_format_breakdown(self):
        root = Span(name="root", start_ns=0, duration_ns=10_000_000)
        out = format_breakdown([root])
        assert "root" in out and "100.0%" in out

    def test_format_breakdown_empty(self):
        assert "no spans" in format_breakdown([])
