"""Fixtures isolating the process-global observability state per test."""

from __future__ import annotations

import pytest

from repro import observability


@pytest.fixture
def obs():
    """Fresh, *enabled* observability state, restored to off afterwards."""
    observability.OBS.reset()
    observability.enable()
    yield observability.OBS
    observability.disable()
    observability.OBS.reset()


@pytest.fixture
def obs_off():
    """Fresh, *disabled* observability state (the production default)."""
    observability.OBS.reset()
    observability.disable()
    yield observability.OBS
    observability.OBS.reset()
