"""Overhead regression: disabled hooks must not slow the VM hot path.

Wall-clock assertions are flaky, so the budget is counted, not timed: with
observability *off*, one ``run_program`` call may perform at most
``CALLS_PER_INSTR`` Python-level calls per instruction dispatched (plus a
per-run constant).  A hook accidentally placed inside the per-instruction
loop — a span per instruction, an unguarded counter lookup — blows the
budget immediately, because every ``with span(...)`` costs several calls
and the measured baseline is ~17 calls/instruction with ~75% headroom.

The workload itself is pinned too (figure8, CSR-pipelined, n=50 →
exactly 250 executed + 15 disabled), so the budget cannot drift by the
workload quietly shrinking.
"""

from __future__ import annotations

import sys

from repro.core import csr_pipelined_loop
from repro.machine.vm import run_program
from repro.retiming import minimize_cycle_period
from repro.workloads import get_workload

#: Ceiling on Python calls per executed/disabled instruction with
#: observability off.  Measured baseline: ~17 (CPython 3.11).
CALLS_PER_INSTR = 30

#: Per-run constant: interpreter startup of the call, guard checks, the
#: single disabled-span call, result construction.
CALLS_FIXED = 400

N = 50
PINNED_EXECUTED = 250
PINNED_DISABLED = 15


def _count_calls(fn):
    counts = {"calls": 0}

    def prof(frame, event, arg):
        if event in ("call", "c_call"):
            counts["calls"] += 1

    sys.setprofile(prof)
    try:
        result = fn()
    finally:
        sys.setprofile(None)
    return result, counts["calls"]


def test_vm_call_budget_with_observability_disabled(obs_off):
    g = get_workload("figure8")
    _, r = minimize_cycle_period(g)
    program = csr_pipelined_loop(g, r)

    run_program(program, N)  # warm lazy imports outside the measurement
    result, calls = _count_calls(lambda: run_program(program, N))

    # The workload is pinned: the budget is meaningless if this drifts.
    assert result.executed == PINNED_EXECUTED
    assert result.disabled == PINNED_DISABLED

    instructions = result.executed + result.disabled
    budget = CALLS_PER_INSTR * instructions + CALLS_FIXED
    assert calls <= budget, (
        f"VM made {calls} Python calls for {instructions} instructions "
        f"(budget {budget}); an observability hook is likely running "
        f"inside the per-instruction loop"
    )


def test_disabled_run_records_nothing(obs_off):
    g = get_workload("figure8")
    _, r = minimize_cycle_period(g)
    run_program(csr_pipelined_loop(g, r), N)
    assert obs_off.tracer.roots == []
    assert len(obs_off.metrics) == 0


def test_enabled_run_counts_pinned_instructions(obs):
    g = get_workload("figure8")
    _, r = minimize_cycle_period(g)
    run_program(csr_pipelined_loop(g, r), N)
    counters = obs.metrics.as_dict()["counters"]
    assert counters["vm.instructions.executed"] == PINNED_EXECUTED
    assert counters["vm.instructions.disabled"] == PINNED_DISABLED
    assert any(s.name == "vm.run" for s in obs.tracer.roots)
