"""Metrics registry: instruments, exporters, and merge semantics."""

from __future__ import annotations

import json

import pytest

from repro.observability import MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.counter("c").inc(4)
        assert m.as_dict()["counters"]["c"] == 5

    def test_counter_rejects_negative(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError, match="negative"):
            m.counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        m = MetricsRegistry()
        m.gauge("g").set(2.5)
        m.gauge("g").set(1.0)
        assert m.as_dict()["gauges"]["g"] == 1.0

    def test_histogram_buckets_and_summary(self):
        m = MetricsRegistry()
        h = m.histogram("h", bounds=(1, 10, 100))
        for v in (0, 1, 5, 50, 500):
            h.observe(v)
        doc = h.as_dict()
        # <=1: {0, 1}; <=10: {5}; <=100: {50}; +Inf: {500}
        assert doc["buckets"] == [2, 1, 1, 1]
        assert doc["count"] == 5
        assert doc["sum"] == 556
        assert doc["min"] == 0 and doc["max"] == 500

    def test_histogram_requires_sorted_bounds(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError, match="sorted"):
            m.histogram("h", bounds=(10, 1))

    def test_get_or_create_returns_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("c") is m.counter("c")
        assert m.gauge("g") is m.gauge("g")
        assert m.histogram("h") is m.histogram("h")


class TestExporters:
    def _registry(self) -> MetricsRegistry:
        m = MetricsRegistry()
        m.counter("vm.instructions.executed", "computes run").inc(42)
        m.gauge("cache.hit_rate", "percent").set(100.0)
        h = m.histogram("job.wall", bounds=(1, 10))
        h.observe(0.5)
        h.observe(20)
        return m

    def test_json_export_is_valid_and_complete(self):
        doc = json.loads(self._registry().to_json())
        assert doc["counters"]["vm.instructions.executed"] == 42
        assert doc["gauges"]["cache.hit_rate"] == 100.0
        assert doc["histograms"]["job.wall"]["count"] == 2

    def test_prometheus_text_format(self):
        text = self._registry().to_prometheus()
        assert "# TYPE vm_instructions_executed counter" in text
        assert "vm_instructions_executed 42" in text
        assert "# TYPE cache_hit_rate gauge" in text
        assert "cache_hit_rate 100.0" in text
        assert "# HELP vm_instructions_executed computes run" in text
        # Histogram: cumulative buckets, +Inf, sum, count.
        assert 'job_wall_bucket{le="1"} 1' in text
        assert 'job_wall_bucket{le="10"} 1' in text
        assert 'job_wall_bucket{le="+Inf"} 2' in text
        assert "job_wall_sum 20.5" in text
        assert "job_wall_count 2" in text

    def test_prometheus_empty_registry(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestMerge:
    def test_merge_adds_counters_pointwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        b.counter("d").inc(1)
        a.merge(b.as_dict())
        assert a.as_dict()["counters"] == {"c": 7, "d": 1}

    def test_merge_histograms_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1, 5):
            a.histogram("h", bounds=(2, 8)).observe(v)
        for v in (3, 100):
            b.histogram("h", bounds=(2, 8)).observe(v)
        a.merge(b.as_dict())
        doc = a.histogram("h").as_dict()
        assert doc["count"] == 4
        assert doc["buckets"] == [1, 2, 1]
        assert doc["min"] == 1 and doc["max"] == 100

    def test_merge_rejects_mismatched_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1, 2)).observe(1)
        b.histogram("h", bounds=(3, 4)).observe(1)
        with pytest.raises(ValueError, match="mismatched"):
            a.merge(b.as_dict())

    def test_merge_gauge_takes_incoming(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.merge(b.as_dict())
        assert a.as_dict()["gauges"]["g"] == 9.0

    def test_reset(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.reset()
        assert len(m) == 0


class TestPercentile:
    """The bucket-resolution percentile estimator the request server's
    soak tests use as a deterministic latency budget."""

    def test_empty_histogram_has_no_percentile(self):
        h = MetricsRegistry().histogram("h", bounds=(1, 10))
        assert h.percentile(50) is None

    def test_percentile_is_the_covering_bucket_bound(self):
        h = MetricsRegistry().histogram("h", bounds=(1, 10, 100))
        for v in (0, 0, 0, 5, 50):  # 3 in <=1, 1 in <=10, 1 in <=100
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 1.0  # rank 2.5 covered by bucket <=1
        assert h.percentile(60) == 1.0  # rank 3.0 still covered
        assert h.percentile(80) == 10.0  # rank 4.0 needs bucket <=10
        assert h.percentile(100) == 100.0

    def test_overflow_bucket_reports_the_exact_max(self):
        h = MetricsRegistry().histogram("h", bounds=(1, 10))
        h.observe(5000)
        assert h.percentile(100) == 5000.0

    def test_out_of_range_quantile_rejected(self):
        h = MetricsRegistry().histogram("h")
        h.observe(1)
        with pytest.raises(ValueError, match="percentile"):
            h.percentile(101)
        with pytest.raises(ValueError, match="percentile"):
            h.percentile(-1)

    def test_percentile_is_monotone_in_q(self):
        h = MetricsRegistry().histogram("h", bounds=(1, 5, 25, 125))
        for v in range(0, 130, 7):
            h.observe(v)
        qs = [0, 10, 25, 50, 75, 90, 99, 100]
        values = [h.percentile(q) for q in qs]
        assert values == sorted(values)
