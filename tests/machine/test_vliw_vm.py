"""Tests for the cycle-accurate packed executor.

The decisive property: packed execution with parallel-commit word
semantics must produce exactly the sequential VM's arrays for every
program form — this validates the *packer's* dependency analysis
semantically, not just structurally.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import original_loop, pipelined_loop
from repro.core import (
    PER_COPY,
    PER_ITERATION,
    csr_pipelined_loop,
    csr_retimed_unfolded_loop,
    csr_unfolded_loop,
)
from repro.machine import run_program
from repro.machine.vliw_vm import run_packed
from repro.retiming import minimize_cycle_period
from repro.schedule import ResourceModel
from repro.schedule.vliw import estimate_cycles
from repro.unfolding import retime_unfold
from repro.workloads import get_workload

from ..conftest import dfgs

MACHINES = [
    ResourceModel(units={"alu": 1, "mul": 1}),
    ResourceModel(units={"alu": 2, "mul": 1}),
    ResourceModel(units={"alu": 4, "mul": 2}),
]

N = 13


def _assert_packed_matches(g, program, machine, n=N, control_slots=2):
    want = run_program(program, n)
    got = run_packed(program, n, machine, control_slots=control_slots)
    assert got.arrays == want.arrays
    assert got.executed == want.executed
    assert got.disabled == want.disabled


class TestPackedEquivalence:
    @pytest.mark.parametrize("machine", MACHINES, ids=["1x1", "2x1", "4x2"])
    def test_original(self, bench_graph, machine):
        _assert_packed_matches(bench_graph, original_loop(bench_graph), machine)

    @pytest.mark.parametrize("machine", MACHINES, ids=["1x1", "2x1", "4x2"])
    def test_pipelined(self, bench_graph, machine):
        _, r = minimize_cycle_period(bench_graph)
        _assert_packed_matches(bench_graph, pipelined_loop(bench_graph, r), machine)

    @pytest.mark.parametrize("machine", MACHINES, ids=["1x1", "2x1", "4x2"])
    def test_csr_pipelined(self, bench_graph, machine):
        _, r = minimize_cycle_period(bench_graph)
        _assert_packed_matches(bench_graph, csr_pipelined_loop(bench_graph, r), machine)

    def test_csr_unfolded(self, fig4):
        _assert_packed_matches(fig4, csr_unfolded_loop(fig4, 3), MACHINES[1])

    @pytest.mark.parametrize("mode", [PER_COPY, PER_ITERATION])
    def test_csr_retimed_unfolded_both_modes(self, fig2, mode):
        """Per-copy bodies interleave decrements with slots — the register
        read/write chains in the packer must serialize them correctly."""
        _, r = minimize_cycle_period(fig2)
        p = csr_retimed_unfolded_loop(fig2, r, 3, mode=mode)
        _assert_packed_matches(fig2, p, MACHINES[1], control_slots=1)

    @given(dfgs(max_nodes=5), st.integers(min_value=0, max_value=9))
    @settings(max_examples=30, deadline=None)
    def test_random_csr_programs(self, g, n):
        _, r = minimize_cycle_period(g)
        p = csr_pipelined_loop(g, r)
        want = run_program(p, n)
        got = run_packed(p, n, MACHINES[1], control_slots=2)
        assert got.arrays == want.arrays


class TestCycleCounts:
    def test_cycles_match_estimate(self, bench_graph):
        """run_packed turns estimate_cycles into an exact statement."""
        _, r = minimize_cycle_period(bench_graph)
        p = csr_pipelined_loop(bench_graph, r)
        for machine in MACHINES:
            est = estimate_cycles(p, machine, N, control_slots=2)
            got = run_packed(p, N, machine, control_slots=2)
            assert got.cycles == est

    def test_wider_machine_never_slower(self, fig2):
        _, r = minimize_cycle_period(fig2)
        p = csr_pipelined_loop(fig2, r)
        cycles = [
            run_packed(p, N, m, control_slots=4).cycles for m in MACHINES
        ]
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_trip_count_contract_enforced(self, fig2):
        from repro.machine import MachineError

        _, r = minimize_cycle_period(fig2)
        p = pipelined_loop(fig2, r)
        with pytest.raises(MachineError):
            run_packed(p, 1, MACHINES[1])


class TestErrorPaths:
    """The packed executor's own error detection, exercised directly."""

    @staticmethod
    def _program(body, name="bad", pre=(), post=(), meta=None):
        from repro.codegen.ir import IndexExpr, Loop, LoopProgram

        return LoopProgram(
            name=name,
            pre=tuple(pre),
            loop=Loop(
                start=IndexExpr.const(1),
                end=IndexExpr.trip(0),
                step=1,
                body=tuple(body),
            ),
            post=tuple(post),
            meta=meta or {},
        )

    @staticmethod
    def _compute(dest_offset=0, name="A", src=None):
        from repro.codegen.ir import ComputeInstr, IndexExpr, Operand
        from repro.graph import OpKind

        srcs = (Operand(src, IndexExpr.loop(-1)),) if src else ()
        return ComputeInstr(
            dest=Operand(name, IndexExpr.loop(dest_offset)),
            op=OpKind.ADD,
            imm=1,
            srcs=srcs,
            node=name,
        )

    def test_write_outside_range_raises(self):
        from repro.machine import MachineError

        p = self._program([self._compute(dest_offset=5)])
        with pytest.raises(MachineError, match="outside"):
            run_packed(p, 3, MACHINES[0])

    def test_double_write_raises(self):
        from repro.machine import MachineError

        # Two unguarded computes of the same instance in one iteration.
        p = self._program([self._compute(), self._compute()])
        with pytest.raises(MachineError, match="computed twice"):
            run_packed(p, 2, MACHINES[1], control_slots=2)

    def test_min_n_contract_raises(self):
        from repro.machine import MachineError

        p = self._program([self._compute()], meta={"min_n": 5})
        with pytest.raises(MachineError, match="below the program's minimum"):
            run_packed(p, 3, MACHINES[0])

    def test_residue_contract_raises(self):
        from repro.machine import MachineError

        p = self._program([self._compute()], meta={"factor": 2, "residue": 1})
        with pytest.raises(MachineError, match="residue"):
            run_packed(p, 4, MACHINES[0])

    def test_zero_trip_count_executes_nothing(self):
        p = self._program([self._compute(src="A")])
        got = run_packed(p, 0, MACHINES[0])
        assert got.arrays == {} and got.executed == 0
        assert got.cycles == 0

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_csr_below_m_r_matches_sequential(self, fig8, n):
        """CSR programs run at trip counts below M_r: guards disable the
        out-of-range copies and packed execution still matches the VM."""
        _, r = minimize_cycle_period(fig8)
        assert n < r.max_value  # genuinely below M_r
        p = csr_pipelined_loop(fig8, r)
        _assert_packed_matches(fig8, p, MACHINES[1], n=n)
