"""Tests for the conditional-register file semantics."""

from __future__ import annotations

import pytest

from repro.codegen import Guard
from repro.machine import ConditionalRegisterFile, MachineError


class TestWindow:
    """The paper's predicate window: active iff -LC < p + offset <= 0."""

    def test_active_at_zero(self):
        regs = ConditionalRegisterFile(trip_count=10)
        regs.setup("p", 0)
        assert regs.is_active(Guard("p"))

    def test_disabled_when_positive(self):
        regs = ConditionalRegisterFile(trip_count=10)
        regs.setup("p", 3)
        assert not regs.is_active(Guard("p"))

    def test_becomes_active_after_decrements(self):
        regs = ConditionalRegisterFile(trip_count=10)
        regs.setup("p", 2)
        regs.decrement("p")
        assert not regs.is_active(Guard("p"))
        regs.decrement("p")
        assert regs.is_active(Guard("p"))

    def test_disabled_at_negative_boundary(self):
        regs = ConditionalRegisterFile(trip_count=3)
        regs.setup("p", -2)
        assert regs.is_active(Guard("p"))  # p = -2 > -3
        regs.decrement("p")
        assert not regs.is_active(Guard("p"))  # p = -3, not > -LC

    def test_offset_shifts_window(self):
        regs = ConditionalRegisterFile(trip_count=5)
        regs.setup("p", 1)
        assert not regs.is_active(Guard("p", 0))
        assert regs.is_active(Guard("p", -1))

    def test_unguarded_always_active(self):
        regs = ConditionalRegisterFile(trip_count=0)
        assert regs.is_active(None)

    def test_window_exactly_n_wide(self):
        """A register swept from M downward enables exactly n iterations."""
        n = 7
        regs = ConditionalRegisterFile(trip_count=n)
        regs.setup("p", 3)
        active = 0
        for _ in range(30):
            if regs.is_active(Guard("p")):
                active += 1
            regs.decrement("p")
        assert active == n


class TestFileSemantics:
    def test_decrement_amount(self):
        regs = ConditionalRegisterFile(trip_count=10)
        regs.setup("p", 0)
        regs.decrement("p", 3)
        assert regs.value("p") == -3

    def test_decrement_before_setup(self):
        regs = ConditionalRegisterFile(trip_count=10)
        with pytest.raises(MachineError, match="before setup"):
            regs.decrement("p")

    def test_read_before_setup(self):
        regs = ConditionalRegisterFile(trip_count=10)
        with pytest.raises(MachineError, match="before setup"):
            regs.value("p")

    def test_capacity_enforced(self):
        regs = ConditionalRegisterFile(trip_count=10, capacity=2)
        regs.setup("p1", 0)
        regs.setup("p2", 0)
        with pytest.raises(MachineError, match="exhausted"):
            regs.setup("p3", 0)

    def test_re_setup_does_not_consume_capacity(self):
        regs = ConditionalRegisterFile(trip_count=10, capacity=1)
        regs.setup("p1", 0)
        regs.setup("p1", 5)
        assert regs.value("p1") == 5

    def test_negative_trip_count_rejected(self):
        with pytest.raises(MachineError):
            ConditionalRegisterFile(trip_count=-1)

    def test_snapshot(self):
        regs = ConditionalRegisterFile(trip_count=10)
        regs.setup("a", 1)
        regs.setup("b", 2)
        assert regs.snapshot() == {"a": 1, "b": 2}
