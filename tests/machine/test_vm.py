"""Tests for the virtual machine: execution, invariants, traces."""

from __future__ import annotations

import pytest

from repro.codegen import (
    ComputeInstr,
    IndexExpr,
    Loop,
    LoopProgram,
    Operand,
    original_loop,
    pipelined_loop,
    unfolded_loop,
)
from repro.graph import DFG, OpKind
from repro.machine import MachineError, default_initial, run_program
from repro.retiming import minimize_cycle_period


def _single_node_program(dest_index: IndexExpr, name="p") -> LoopProgram:
    instr = ComputeInstr(
        dest=Operand("A", dest_index), op=OpKind.ADD, imm=1, srcs=()
    )
    return LoopProgram(
        name=name,
        pre=(),
        loop=Loop(IndexExpr.const(1), IndexExpr.trip(0), 1, (instr,)),
        post=(),
    )


class TestExecution:
    def test_simple_loop(self, fig4):
        res = run_program(original_loop(fig4), 5)
        assert set(res.arrays) == {"A", "B", "C"}
        assert sorted(res.arrays["A"]) == [1, 2, 3, 4, 5]
        assert res.executed == 15
        assert res.disabled == 0

    def test_values_follow_op_semantics(self, fig4):
        res = run_program(original_loop(fig4), 2)
        # A[1] = B[-2] * 3 with B[-2] an initial value.
        b_init = default_initial("B", -2)
        assert res.arrays["A"][1] == b_init * 3
        assert res.arrays["B"][1] == res.arrays["A"][1] + 7
        assert res.arrays["C"][1] == res.arrays["B"][1] * 2

    def test_zero_trip_count(self, fig4):
        res = run_program(original_loop(fig4), 0)
        assert res.arrays == {}
        assert res.executed == 0

    def test_negative_trip_count_rejected(self, fig4):
        with pytest.raises(MachineError):
            run_program(original_loop(fig4), -1)

    def test_source_nodes_stream(self):
        g = DFG()
        g.add_node("X", op=OpKind.SOURCE, imm=2)
        res = run_program(original_loop(g), 3)
        assert res.arrays["X"] == {1: 15, 2: 28, 3: 41}


class TestInvariants:
    def test_double_write_detected(self):
        p = _single_node_program(IndexExpr.const(1))
        with pytest.raises(MachineError, match="computed twice"):
            run_program(p, 3)

    def test_out_of_range_write_detected(self):
        p = _single_node_program(IndexExpr.loop(5))
        with pytest.raises(MachineError, match="outside"):
            run_program(p, 3)

    def test_min_n_enforced(self, fig2):
        _, r = minimize_cycle_period(fig2)
        p = pipelined_loop(fig2, r)
        with pytest.raises(MachineError, match="minimum"):
            run_program(p, 2)  # M_r = 3

    def test_residue_contract_enforced(self, fig4):
        p = unfolded_loop(fig4, 3, residue=1)
        run_program(p, 7)  # 7 mod 3 == 1: fine
        with pytest.raises(MachineError, match="residue"):
            run_program(p, 9)


class TestInitialValues:
    def test_default_initial_deterministic(self):
        assert default_initial("A", -3) == default_initial("A", -3)
        assert default_initial("A", -3) != default_initial("B", -3)
        assert default_initial("A", -3) != default_initial("A", -2)

    def test_custom_initial(self, fig4):
        res = run_program(original_loop(fig4), 1, initial=lambda a, i: 0)
        assert res.arrays["A"][1] == 0  # B[-2] = 0, times 3

    def test_initial_only_for_unwritten(self, fig4):
        # B[i-3] for i=4 reads the *computed* B[1], not an initial value.
        res = run_program(original_loop(fig4), 4)
        assert res.arrays["A"][4] == res.arrays["B"][1] * 3


class TestTrace:
    def test_trace_records_order(self, fig4):
        res = run_program(original_loop(fig4), 2, trace=True)
        assert res.trace is not None
        assert [(e.node, e.instance) for e in res.trace.events] == [
            ("A", 1),
            ("B", 1),
            ("C", 1),
            ("A", 2),
            ("B", 2),
            ("C", 2),
        ]

    def test_trace_regions(self, fig2):
        _, r = minimize_cycle_period(fig2)
        res = run_program(pipelined_loop(fig2, r), 6, trace=True)
        regions = {e.region for e in res.trace.events}
        assert regions == {"pre", "body", "post"}

    def test_trace_instances_of(self, fig4):
        res = run_program(original_loop(fig4), 3, trace=True)
        assert res.trace.instances_of("B") == [1, 2, 3]

    def test_producers_before_consumers(self, fig2):
        """Every read instance was written earlier in the trace — the
        execution-order substance of Theorems 4.1/4.2."""
        _, r = minimize_cycle_period(fig2)
        res = run_program(pipelined_loop(fig2, r), 8, trace=True)
        order = res.trace.order_of()
        # D[i] = A[i] * C[i] : check producer precedence for every instance.
        for m in range(1, 9):
            assert order[("A", m)] < order[("D", m)]
            assert order[("C", m)] < order[("D", m)]

    def test_register_capacity_threaded(self, fig2):
        from repro.core import csr_pipelined_loop

        _, r = minimize_cycle_period(fig2)
        p = csr_pipelined_loop(fig2, r)
        run_program(p, 5, register_capacity=4)  # exactly enough
        with pytest.raises(MachineError, match="exhausted"):
            run_program(p, 5, register_capacity=3)
