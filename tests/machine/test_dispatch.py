"""Tests for the pre-compiled threaded-dispatch execution engine.

The contract is total behavioral equivalence with the reference
interpreter — same arrays, same counters, same exceptions with the same
messages — plus sane compile-cache behavior.
"""

from __future__ import annotations

import gc
import random

import pytest

from repro.codegen import original_loop, pipelined_loop
from repro.codegen.ir import (
    ComputeInstr,
    IndexBase,
    IndexExpr,
    Loop,
    LoopProgram,
    Operand,
)
from repro.graph import OpKind
from repro.graph.dfg import DFGError
from repro.graph.generators import random_dfg
from repro.machine import MachineError, run_program
from repro.machine.dispatch import _CACHE, compile_program
from repro.retiming import minimize_cycle_period
from repro.workloads import WORKLOADS

_EMPTY_LOOP = Loop(
    start=IndexExpr(IndexBase.CONST, 1),
    end=IndexExpr(IndexBase.CONST, 0),
    step=1,
    body=(),
)


def _assert_same_outcome(program, n, **kwargs):
    """Run both engines; pin results or exceptions equal."""
    ref_exc = new_exc = ref = new = None
    try:
        ref = run_program(program, n, dispatch=False, **kwargs)
    except Exception as exc:  # noqa: BLE001 - parity check needs everything
        ref_exc = exc
    try:
        new = run_program(program, n, **kwargs)
    except Exception as exc:  # noqa: BLE001
        new_exc = exc
    if ref_exc is not None or new_exc is not None:
        assert type(ref_exc) is type(new_exc), (ref_exc, new_exc)
        assert str(ref_exc) == str(new_exc)
        return None
    assert new.arrays == ref.arrays
    assert new.executed == ref.executed
    assert new.disabled == ref.disabled
    return new


class TestDispatchEquivalence:
    def test_workload_registry(self, bench_graph):
        p = original_loop(bench_graph)
        _assert_same_outcome(p, 17)
        _, r = minimize_cycle_period(bench_graph)
        _assert_same_outcome(pipelined_loop(bench_graph, r), 17)

    def test_random_programs(self):
        rng = random.Random(31337)
        for i in range(40):
            g = random_dfg(rng, num_nodes=rng.randint(3, 10), name=f"d{i}")
            p = original_loop(g)
            min_n = p.meta.get("min_n", 1) or 1
            _assert_same_outcome(p, max(min_n, rng.randint(1, 15)))

    def test_trace_uses_reference_path(self, fig8):
        """Tracing needs the reference interpreter's hooks; results still
        match the dispatch path."""
        p = original_loop(fig8)
        traced = run_program(p, 9, trace=True)
        assert traced.trace is not None
        dispatched = run_program(p, 9)
        assert dispatched.trace is None
        assert dispatched.arrays == traced.arrays


class TestDispatchErrors:
    def test_negative_trip_count(self, fig8):
        p = original_loop(fig8)
        _assert_same_outcome(p, -1)

    def test_negative_capacity(self, fig8):
        p = original_loop(fig8)
        _assert_same_outcome(p, 5, register_capacity=-2)

    def test_capacity_exhaustion_message(self, bench_graph):
        _, r = minimize_cycle_period(bench_graph)
        p = pipelined_loop(bench_graph, r)
        _assert_same_outcome(p, 11, register_capacity=0)

    def test_loop_var_index_outside_body(self):
        """A loop-variable index in pre/post must raise DFGError at
        *execution* time on both paths."""
        bad = ComputeInstr(
            dest=Operand("A", IndexExpr(IndexBase.I, 0)),
            op=OpKind.SOURCE,
            imm=1,
            srcs=(),
        )
        p = LoopProgram(
            name="bad-pre",
            pre=(bad,),
            loop=_EMPTY_LOOP,
            post=(),
        )
        with pytest.raises(DFGError, match="outside the loop body"):
            run_program(p, 3)
        _assert_same_outcome(p, 3)

    def test_double_write_message(self):
        instr = ComputeInstr(
            dest=Operand("A", IndexExpr(IndexBase.CONST, 1)),
            op=OpKind.SOURCE,
            imm=1,
            srcs=(),
        )
        p = LoopProgram(
            name="dup", pre=(instr, instr), loop=_EMPTY_LOOP, post=()
        )
        with pytest.raises(MachineError, match=r"A\[1\] computed twice"):
            run_program(p, 2)
        _assert_same_outcome(p, 2)

    def test_out_of_range_write_message(self):
        instr = ComputeInstr(
            dest=Operand("A", IndexExpr(IndexBase.CONST, 99)),
            op=OpKind.SOURCE,
            imm=1,
            srcs=(),
        )
        p = LoopProgram(name="oob", pre=(instr,), loop=_EMPTY_LOOP, post=())
        with pytest.raises(MachineError, match=r"write to A\[99\] outside"):
            run_program(p, 2)
        _assert_same_outcome(p, 2)


class TestCompileCache:
    def test_same_object_hits_cache(self, fig8):
        p = original_loop(fig8)
        assert compile_program(p) is compile_program(p)

    def test_distinct_programs_compile_separately(self, fig8):
        p1 = original_loop(fig8)
        p2 = original_loop(fig8)
        c1, c2 = compile_program(p1), compile_program(p2)
        assert c1 is not c2

    def test_cache_entry_dies_with_program(self, fig8):
        p = original_loop(fig8)
        key = id(p)
        compile_program(p)
        assert key in _CACHE
        del p
        gc.collect()
        assert key not in _CACHE

    def test_id_reuse_does_not_serve_stale_code(self, fig8):
        """If a new program object lands on a recycled id, the weakref
        guard must force a recompile rather than serve the old code."""
        p1 = original_loop(fig8)
        c1 = compile_program(p1)
        # Simulate id reuse: plant c1 under p2's id with a dead-ish ref.
        p2 = pipelined_loop(fig8, minimize_cycle_period(fig8)[1])
        _CACHE[id(p2)] = c1
        c2 = compile_program(p2)
        assert c2 is not c1
        assert c2.program_ref() is p2


class TestCompileCacheConcurrency:
    """The id-keyed cache under threads: single-compilation semantics and
    no cross-thread aliasing after GC recycles an id."""

    def test_concurrent_compile_is_single_compilation(self, fig8):
        """N threads racing on one uncached program must all receive the
        same CompiledProgram object and leave exactly one cache entry."""
        import threading

        p = original_loop(fig8)
        _CACHE.pop(id(p), None)
        nthreads = 8
        barrier = threading.Barrier(nthreads)
        results: list[object] = [None] * nthreads
        errors: list[BaseException] = []

        def worker(slot: int) -> None:
            try:
                barrier.wait()
                results[slot] = compile_program(p)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(nthreads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        first = results[0]
        assert all(r is first for r in results)
        assert _CACHE[id(p)] is first

    def test_concurrent_distinct_programs_do_not_cross_alias(self, fig8):
        """Threads compiling different programs concurrently each get a
        compilation bound to their own program."""
        import threading

        programs = [original_loop(fig8) for _ in range(6)]
        barrier = threading.Barrier(len(programs))
        compiled: dict[int, object] = {}
        errors: list[BaseException] = []

        def worker(slot: int) -> None:
            try:
                barrier.wait()
                compiled[slot] = compile_program(programs[slot])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(programs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        for slot, program in enumerate(programs):
            assert compiled[slot].program_ref() is program
        assert len({id(c) for c in compiled.values()}) == len(programs)

    def test_gc_id_reuse_recompiles_for_new_program(self, fig8):
        """Compile, keep the compilation alive, drop the program, collect,
        then allocate new programs: whichever lands on the recycled id must
        get a fresh compilation, never the kept-alive stale one."""
        p1 = original_loop(fig8)
        c1 = compile_program(p1)
        old_id = id(p1)
        del p1
        gc.collect()
        assert old_id not in _CACHE  # finalize purged the dead entry
        # Churn allocations until one reuses the id (usually immediate in
        # CPython); either way the guard must hold for every new program.
        for _ in range(50):
            p2 = original_loop(fig8)
            c2 = compile_program(p2)
            assert c2 is not c1
            assert c2.program_ref() is p2
            if id(p2) == old_id:
                break
            del p2
            gc.collect()


class TestWorkloadSweep:
    """Every registry workload, original + pipelined, at several trip
    counts — the in-suite slice of the full differential sweep."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_registry_program(self, name):
        g = WORKLOADS[name]()
        for p in (original_loop(g), pipelined_loop(g, minimize_cycle_period(g)[1])):
            min_n = p.meta.get("min_n", 1) or 1
            for n in {min_n, min_n + 7, min_n + 20}:
                _assert_same_outcome(p, n)
