"""Differential battery for the trace-compiling vector VM backend.

The contract is identical to the dispatch engine's: total behavioral
equivalence with the reference interpreter — same arrays, same
executed/disabled counters, same exceptions with the same messages — with
the extra twist that the trace backend silently falls back to the
interpreter whenever it cannot *prove* the loop body vectorizable, so the
battery deliberately mixes traceable programs (guarded CSR bodies, affine
recurrences) with fallback shapes (multi-writer unfolded bodies, malformed
arities, out-of-range writes, zero trip counts).
"""

from __future__ import annotations

import random

import pytest

from repro import observability
from repro.codegen import original_loop, pipelined_loop, retimed_unfolded_loop
from repro.codegen.ir import (
    ComputeInstr,
    Guard,
    IndexBase,
    IndexExpr,
    Loop,
    LoopProgram,
    Operand,
    SetupInstr,
)
from repro.core.csr import csr_pipelined_loop
from repro.graph import OpKind
from repro.graph.generators import random_dfg
from repro.machine.dispatch import compile_program
from repro.machine.trace import body_hook
from repro.machine.vm import run_program
from repro.machine.vliw_vm import run_packed
from repro.retiming import minimize_cycle_period
from repro.schedule.resources import ResourceModel
from repro.workloads import WORKLOADS

_MACHINE = ResourceModel(units={"alu": 2, "mul": 1})


def _outcome(fn):
    try:
        return fn(), None
    except Exception as exc:  # noqa: BLE001 - parity check needs everything
        return None, exc


def _assert_trace_parity(program, n, monkeypatch=None, **kwargs):
    """Reference vs dispatch-with-trace vs dispatch-without-trace."""
    ref, ref_exc = _outcome(lambda: run_program(program, n, dispatch=False, **kwargs))
    new, new_exc = _outcome(lambda: run_program(program, n, **kwargs))
    if ref_exc is not None or new_exc is not None:
        assert type(ref_exc) is type(new_exc), (ref_exc, new_exc)
        assert str(ref_exc) == str(new_exc)
        return None
    assert new.arrays == ref.arrays
    assert new.executed == ref.executed
    assert new.disabled == ref.disabled
    return new


def _assert_packed_parity(program, n):
    ref, ref_exc = _outcome(lambda: run_packed(program, n, _MACHINE, dispatch=False))
    new, new_exc = _outcome(lambda: run_packed(program, n, _MACHINE))
    if ref_exc is not None or new_exc is not None:
        assert type(ref_exc) is type(new_exc), (ref_exc, new_exc)
        assert str(ref_exc) == str(new_exc)
        return None
    assert new.arrays == ref.arrays
    assert new.cycles == ref.cycles
    assert new.executed == ref.executed
    assert new.disabled == ref.disabled
    return new


def _program_variants(g, rng):
    """Original, software-pipelined and CSR forms (CSR exercises guards)."""
    yield original_loop(g)
    _, r = minimize_cycle_period(g)
    yield pipelined_loop(g, r)
    yield csr_pipelined_loop(g, r)
    # Unfolded bodies write each array from several instructions per
    # iteration — a guaranteed static-fallback shape.
    yield retimed_unfolded_loop(g, r, rng.choice((2, 3)))


class TestTraceDifferential:
    def test_random_program_battery(self):
        """200+ program/trip-count differential runs, trace vs reference."""
        rng = random.Random(0xC0DE)
        runs = 0
        for i in range(20):
            g = random_dfg(rng, num_nodes=rng.randint(3, 12), name=f"t{i}")
            for p in _program_variants(g, rng):
                min_n = p.meta.get("min_n", 1) or 1
                factor = p.meta.get("factor") or 1
                shift = p.meta.get("residue_shift", 0)
                for k in (0, 1, rng.randint(2, 5)):
                    n = min_n + k * factor
                    if factor > 1 and (n - shift) % factor != (min_n - shift) % factor:
                        continue
                    _assert_trace_parity(p, n)
                    runs += 1
        assert runs >= 200

    def test_registry_workloads_sequential(self, bench_graph):
        _, r = minimize_cycle_period(bench_graph)
        p = csr_pipelined_loop(bench_graph, r)
        min_n = p.meta.get("min_n", 1) or 1
        for n in (min_n, min_n + 1, min_n + 29):
            _assert_trace_parity(p, n)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_registry_workloads_packed(self, name):
        g = WORKLOADS[name]()
        _, r = minimize_cycle_period(g)
        p = csr_pipelined_loop(g, r)
        min_n = p.meta.get("min_n", 1) or 1
        for n in (min_n, min_n + 23):
            _assert_packed_parity(p, n)

    def test_random_packed_battery(self):
        rng = random.Random(0xF00D)
        for i in range(12):
            g = random_dfg(rng, num_nodes=rng.randint(3, 9), name=f"pk{i}")
            p = original_loop(g)
            min_n = p.meta.get("min_n", 1) or 1
            _assert_packed_parity(p, min_n + rng.randint(0, 9))

    def test_zero_trip_count(self, fig8):
        """An empty trip must leave pre/post semantics untouched."""
        _, r = minimize_cycle_period(fig8)
        for p in (original_loop(fig8), csr_pipelined_loop(fig8, r)):
            lo = p.loop.start.resolve(None, 0)
            hi = p.loop.end.resolve(None, 0)
            min_n = p.meta.get("min_n", 0) or 0
            if hi < lo and min_n == 0:
                _assert_trace_parity(p, 0)

    def test_custom_initial_values(self, fig8):
        """A non-default initial function must flow through the vector
        prestate path bit-identically."""
        p = original_loop(fig8)
        _assert_trace_parity(p, 9, initial=lambda a, i: (len(a) * 1000 + i) % 97)
        _assert_trace_parity(p, 9, initial=lambda a, i: -3 * i)  # negative values

    def test_raising_initial_falls_back(self, fig8):
        """An initial function that raises must surface the interpreter's
        exception, not a vector-path artifact."""

        def bad(array, index):
            raise ValueError(f"no live-in for {array}[{index}]")

        p = original_loop(fig8)
        _assert_trace_parity(p, 5, initial=bad)


class TestTraceFallbackShapes:
    """Statically untraceable bodies must be *detected*, not mis-executed."""

    def _loop(self, body, start=1, end_off=0):
        return Loop(
            start=IndexExpr(IndexBase.CONST, start),
            end=IndexExpr(IndexBase.N, end_off),
            step=1,
            body=tuple(body),
        )

    def test_setup_inside_body(self):
        body = [
            SetupInstr(register="p", init=0),
            ComputeInstr(
                dest=Operand("A", IndexExpr(IndexBase.I, 0)),
                op=OpKind.SOURCE,
                imm=5,
                srcs=(),
                guard=Guard("p"),
            ),
        ]
        p = LoopProgram(name="setup-body", pre=(), loop=self._loop(body), post=())
        assert body_hook(compile_program(p), p.loop, 6, None) is None
        _assert_trace_parity(p, 6)

    def test_constant_dest_in_body(self):
        body = [
            ComputeInstr(
                dest=Operand("A", IndexExpr(IndexBase.CONST, 1)),
                op=OpKind.SOURCE,
                imm=5,
                srcs=(),
            )
        ]
        p = LoopProgram(name="const-dest", pre=(), loop=self._loop(body), post=())
        assert body_hook(compile_program(p), p.loop, 1, None) is None
        _assert_trace_parity(p, 1)  # n=1: single write, no double-write error
        _assert_trace_parity(p, 3)  # n=3: double write must raise identically

    def test_malformed_arity_falls_back(self):
        body = [
            ComputeInstr(
                dest=Operand("A", IndexExpr(IndexBase.I, 0)),
                op=OpKind.MAC,  # MAC needs >= 2 inputs: DFGError at exec
                imm=5,
                srcs=(Operand("A", IndexExpr(IndexBase.I, -1)),),
            )
        ]
        p = LoopProgram(name="bad-mac", pre=(), loop=self._loop(body), post=())
        assert body_hook(compile_program(p), p.loop, 4, None) is None
        _assert_trace_parity(p, 4)

    def test_out_of_range_write_error_parity(self):
        body = [
            ComputeInstr(
                dest=Operand("A", IndexExpr(IndexBase.I, 2)),  # writes n+2
                op=OpKind.SOURCE,
                imm=5,
                srcs=(),
            )
        ]
        p = LoopProgram(name="oob-body", pre=(), loop=self._loop(body), post=())
        _assert_trace_parity(p, 4)

    def test_nonaffine_recurrence_falls_back_correctly(self):
        """x[i] = x[i-1] * x[i-2]: a cyclic component whose recurrence is
        state * state — must run through the interpreter, bit-identically."""
        body = [
            ComputeInstr(
                dest=Operand("X", IndexExpr(IndexBase.I, 0)),
                op=OpKind.MUL,
                imm=3,
                srcs=(
                    Operand("X", IndexExpr(IndexBase.I, -1)),
                    Operand("X", IndexExpr(IndexBase.I, -2)),
                ),
            )
        ]
        p = LoopProgram(name="nonaffine", pre=(), loop=self._loop(body), post=())
        result = _assert_trace_parity(p, 12)
        assert result is not None and result.executed == 12

    def test_affine_self_recurrence_is_traced(self):
        """x[i] = 7*x[i-1] + 11: the simplest cyclic-scan case."""
        body = [
            ComputeInstr(
                dest=Operand("X", IndexExpr(IndexBase.I, 0)),
                op=OpKind.MAC,
                imm=11,
                srcs=(
                    Operand("X", IndexExpr(IndexBase.I, -1)),
                    Operand("C", IndexExpr(IndexBase.CONST, 1)),
                ),
            )
        ]
        p = LoopProgram(name="affine-rec", pre=(), loop=self._loop(body), post=())
        hook = body_hook(compile_program(p), p.loop, 500, run_program.__defaults__[0])
        assert hook is not None
        _assert_trace_parity(p, 500)

    def test_guard_windows_cover_never_and_always(self):
        """Guards that are always-off, always-on and windowed mid-trip."""
        pre = [
            SetupInstr(register="off", init=5),  # never in (-n, 0]
            SetupInstr(register="on", init=0),  # always active (never dec'd)
            SetupInstr(register="win", init=3),  # activates at iteration 4
        ]
        body = [
            ComputeInstr(
                dest=Operand("A", IndexExpr(IndexBase.I, 0)),
                op=OpKind.SOURCE,
                imm=2,
                srcs=(),
                guard=Guard("off"),
            ),
            ComputeInstr(
                dest=Operand("B", IndexExpr(IndexBase.I, 0)),
                op=OpKind.SOURCE,
                imm=4,
                srcs=(),
                guard=Guard("on"),
            ),
            ComputeInstr(
                dest=Operand("C", IndexExpr(IndexBase.I, 0)),
                op=OpKind.COPY,
                imm=1,
                srcs=(Operand("B", IndexExpr(IndexBase.I, 0)),),
                guard=Guard("win", offset=1),
            ),
            ComputeInstr(
                dest=Operand("D", IndexExpr(IndexBase.I, 0)),
                op=OpKind.COPY,
                imm=0,
                srcs=(Operand("C", IndexExpr(IndexBase.I, -1)),),
                guard=Guard("win"),
            ),
        ]
        from repro.codegen.ir import DecInstr

        body.append(DecInstr(register="win", amount=1))
        p = LoopProgram(
            name="windows", pre=tuple(pre), loop=self._loop(body), post=()
        )
        result = _assert_trace_parity(p, 9)
        assert result is not None
        assert result.disabled > 0  # the windows really masked instances


class TestTraceSwitchesAndCounters:
    def test_kill_switch(self, fig8, monkeypatch):
        """REPRO_VM_TRACE=0 must disable the backend (hook is None) while
        results stay identical through the interpreter."""
        _, r = minimize_cycle_period(fig8)
        p = csr_pipelined_loop(fig8, r)
        compiled = compile_program(p)
        n = (p.meta.get("min_n", 1) or 1) + 10
        enabled = run_program(p, n)
        assert body_hook(compiled, p.loop, n, run_program.__defaults__[0]) is not None
        monkeypatch.setenv("REPRO_VM_TRACE", "0")
        assert body_hook(compiled, p.loop, n, run_program.__defaults__[0]) is None
        disabled = run_program(p, n)
        assert disabled.arrays == enabled.arrays
        assert disabled.executed == enabled.executed
        assert disabled.disabled == enabled.disabled

    def test_trace_steps_counter(self, fig8):
        """A traced run must report vm.trace.steps and the same
        vm.instructions.* totals as the interpreter."""
        _, r = minimize_cycle_period(fig8)
        p = csr_pipelined_loop(fig8, r)
        n = (p.meta.get("min_n", 1) or 1) + 15
        observability.enable()
        try:
            run_program(p, n)
            counters = observability.OBS.metrics.as_dict()["counters"]
        finally:
            observability.disable()
        assert counters.get("vm.trace.steps", 0) > 0
        ref = run_program(p, n, dispatch=False)
        assert counters["vm.instructions.executed"] == ref.executed
        assert counters["vm.instructions.disabled"] == ref.disabled

    def test_trace_flag_still_uses_reference_path(self, fig8):
        p = original_loop(fig8)
        traced = run_program(p, 9, trace=True)
        assert traced.trace is not None
        vectored = run_program(p, 9)
        assert vectored.arrays == traced.arrays
