"""Smoke tests: every example script runs to completion and verifies."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert "verified" in out.lower() or "fastest" in out.lower() or out.strip()


def test_examples_present():
    """The five documented examples exist."""
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "iir_pipeline",
        "unfolding_orders",
        "design_space",
        "custom_loop",
    } <= names
