"""Tests for the retime-unfold / unfold-retime order pipelines."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DFG, DFGError, cycle_period, iteration_bound
from repro.retiming import minimize_cycle_period
from repro.unfolding import (
    min_delay_exceeding_time,
    retime_unfold,
    retime_unfold_for_period,
    unfold,
    unfold_retime,
)

from ..conftest import dfgs


class TestMinDelayExceedingTime:
    def test_single_node_exceeding(self):
        g = DFG()
        g.add_node("A", time=5)
        g.add_edge("A", "A", 2)
        wc = min_delay_exceeding_time(g, 4)
        assert wc[("A", "A")] == 0  # the trivial walk already exceeds 4

    def test_needs_cycle_to_exceed(self):
        g = DFG()
        g.add_node("A", time=2)
        g.add_edge("A", "A", 3)
        wc = min_delay_exceeding_time(g, 5)
        # Walk A,A,A has T=6 > 5 with 2 cycle traversals: delay 6.
        assert wc[("A", "A")] == 6

    def test_chain(self, fig4):
        wc = min_delay_exceeding_time(fig4, 2)
        # A->B->C has T=3 > 2 with no delays.
        assert wc[("A", "C")] == 0
        # A->B with T=2 is not > 2; the cheapest longer walk loops around.
        assert wc[("A", "B")] == 3

    def test_unreachable_time_absent(self):
        g = DFG()
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B", 0)
        wc = min_delay_exceeding_time(g, 10)
        assert wc == {}  # no walk ever exceeds time 10 (acyclic, T<=2)


class TestRetimeUnfoldForPeriod:
    def test_f1_matches_ls_optimum(self, bench_graph):
        """At f=1 the exact W_c method must agree with Leiserson-Saxe."""
        c_opt, _ = minimize_cycle_period(bench_graph)
        assert retime_unfold_for_period(bench_graph, 1, c_opt) is not None
        if c_opt > 1:
            assert retime_unfold_for_period(bench_graph, 1, c_opt - 1) is None

    @given(dfgs(max_nodes=5, max_extra_edges=4))
    @settings(max_examples=40, deadline=None)
    def test_f1_agreement_random(self, g):
        c_opt, _ = minimize_cycle_period(g)
        assert retime_unfold_for_period(g, 1, c_opt) is not None
        if c_opt > 1:
            assert retime_unfold_for_period(g, 1, c_opt - 1) is None

    def test_witness_achieves_period(self, fig8):
        r = retime_unfold_for_period(fig8, 4, 27)
        assert r is not None
        assert cycle_period(unfold(r.apply(), 4)) <= 27

    def test_infeasible_below_node_time(self, fig8):
        assert retime_unfold_for_period(fig8, 4, 9) is None

    def test_invalid_factor(self, fig4):
        with pytest.raises(DFGError, match="factor"):
            retime_unfold_for_period(fig4, 0, 3)


class TestOrderPipelines:
    def test_retime_unfold_figure4(self, fig4):
        res = retime_unfold(fig4, 3)
        assert res.period == 2  # rate-optimal: bound 2/3, f*B = 2
        assert res.iteration_period == Fraction(2, 3)
        assert res.order == "retime-unfold"

    def test_unfold_retime_figure4(self, fig4):
        res = unfold_retime(fig4, 3)
        assert res.period == 2
        assert res.iteration_period == Fraction(2, 3)

    def test_explicit_period(self, fig4):
        res = retime_unfold(fig4, 3, period=3)
        assert res.period <= 3

    def test_unreachable_period_raises(self, fig4):
        with pytest.raises(DFGError, match="cannot reach"):
            retime_unfold(fig4, 3, period=1)
        with pytest.raises(DFGError, match="cannot reach"):
            unfold_retime(fig4, 3, period=1)

    def test_result_graphs_have_f_copies(self, fig4):
        res = retime_unfold(fig4, 3)
        assert res.graph.num_nodes == 9

    @given(dfgs(max_nodes=5, max_extra_edges=4), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_chao_sha_equivalence(self, g, f):
        """Both orders achieve the same minimum unfolded cycle period
        (Chao & Sha 1995) — here both optimizers are exact, so equality is
        testable directly."""
        ru = retime_unfold(g, f)
        ur = unfold_retime(g, f)
        assert ru.period == ur.period

    @given(dfgs(max_nodes=5, max_extra_edges=4), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_period_at_least_scaled_bound(self, g, f):
        import math

        ru = retime_unfold(g, f)
        assert ru.period >= math.ceil(f * iteration_bound(g))

    def test_benchmark_orders_agree(self, bench_graph):
        for f in (2, 3):
            ru = retime_unfold(bench_graph, f)
            ur = unfold_retime(bench_graph, f)
            assert ru.period == ur.period, f"f={f}"

    def test_retiming_is_over_original_nodes(self, fig4):
        res = retime_unfold(fig4, 3)
        assert set(res.retiming.as_dict()) == {"A", "B", "C"}

    def test_unfold_retime_retiming_is_over_copies(self, fig4):
        res = unfold_retime(fig4, 3)
        assert len(res.retiming.as_dict()) == 9
