"""Tests for the unfolding transformation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DFG, DFGError, cycle_period, iteration_bound, validate
from repro.unfolding import copy_name, parse_copy_name, unfold, unfolded_edge_delay

from ..conftest import dfgs, timed_dfgs


class TestNaming:
    def test_copy_name_roundtrip(self):
        assert parse_copy_name(copy_name("A", 3)) == ("A", 3)

    def test_copy_name_with_hash_in_base(self):
        # rpartition keeps earlier '#' characters in the base name.
        assert parse_copy_name(copy_name("s#1", 2)) == ("s#1", 2)

    def test_parse_rejects_plain_names(self):
        with pytest.raises(DFGError):
            parse_copy_name("plain")


class TestEdgeDelayRule:
    @pytest.mark.parametrize(
        "d,j,f,expected",
        [
            (0, 0, 3, 0),
            (0, 2, 3, 0),
            (1, 0, 3, 1),
            (1, 1, 3, 0),
            (3, 0, 3, 1),
            (3, 2, 3, 1),
            (4, 0, 3, 2),
            (4, 1, 3, 1),
            (7, 2, 4, 2),
        ],
    )
    def test_ceil_rule(self, d, j, f, expected):
        assert unfolded_edge_delay(d, j, f) == expected

    @given(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=1, max_value=8),
    )
    def test_delay_conservation_identity(self, d, f):
        """sum_j ceil((d - j)/f) == d for j in 0..f-1."""
        assert sum(unfolded_edge_delay(d, j, f) for j in range(f)) == d


class TestUnfold:
    def test_counts(self, fig4):
        gf = unfold(fig4, 3)
        assert gf.num_nodes == 9
        assert gf.num_edges == 9

    def test_f1_is_renamed_copy(self, fig4):
        gf = unfold(fig4, 1)
        assert set(gf.node_names()) == {"A#0", "B#0", "C#0"}
        assert gf.total_delay == fig4.total_delay

    def test_invalid_factor(self, fig4):
        with pytest.raises(DFGError, match="factor"):
            unfold(fig4, 0)

    def test_figure4_by_3(self, fig4):
        """The paper's Figure 5(a): B[i-3] -> A[i] becomes a one-delay
        self-stage dependency after unfolding by 3."""
        gf = unfold(fig4, 3)
        delays = {(e.src, e.dst): e.delay for e in gf.edges()}
        # B -> A with d=3: copy j of A reads B copy j, one unfolded
        # iteration earlier.
        for j in range(3):
            assert delays[(f"B#{j}", f"A#{j}")] == 1
        # A -> B and B -> C (d=0): same slot, zero delay.
        for j in range(3):
            assert delays[(f"A#{j}", f"B#{j}")] == 0
            assert delays[(f"B#{j}", f"C#{j}")] == 0

    def test_node_attributes_copied(self, fig8):
        gf = unfold(fig8, 2)
        assert gf.node("B#0").time == 10
        assert gf.node("B#1").op == fig8.node("B").op

    @given(dfgs(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_total_delay_preserved(self, g, f):
        assert unfold(g, f).total_delay == g.total_delay

    @given(dfgs(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_unfolded_graph_is_legal(self, g, f):
        validate(unfold(g, f))

    @given(dfgs(max_nodes=5), st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_iteration_bound_scales_by_f(self, g, f):
        """B(G_f) = f * B(G): unfolding preserves the per-original-iteration
        rate bound."""
        assert iteration_bound(unfold(g, f)) == f * iteration_bound(g)

    @given(timed_dfgs(max_nodes=4), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_iteration_bound_scales_timed(self, g, f):
        assert iteration_bound(unfold(g, f)) == f * iteration_bound(g)

    def test_unfolding_exposes_parallelism(self, fig4):
        """Figure 4's loop has bound 2/3; unfolded by 3 the bound is 2 and
        a period-2 unfolded body becomes possible (rate-optimal)."""
        gf = unfold(fig4, 3)
        assert iteration_bound(gf) == 2

    @given(dfgs(max_nodes=5), st.integers(min_value=2, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_cycle_period_never_increases_per_iteration(self, g, f):
        """Phi(G_f) <= f * Phi(G): the unfolded body is never slower than
        f plain iterations."""
        assert cycle_period(unfold(g, f)) <= f * cycle_period(g)
