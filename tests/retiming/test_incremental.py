"""Tests for incremental delay pushing (the rotation primitive)."""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import cycle_period
from repro.retiming import Retiming, RetimingError, can_push, push_nodes, pushable_nodes

from ..conftest import dfgs


class TestCanPush:
    def test_needs_delay_on_every_incoming(self, fig1):
        # A's only in-edge (B->A) has 2 delays: pushable.
        assert can_push(fig1, {"A"})
        # B's in-edge (A->B) has 0 delays: not pushable.
        assert not can_push(fig1, {"B"})

    def test_set_push_ignores_internal_edges(self, fig1):
        # Pushing {A, B} together: entering edges are B->A (d=2, external?
        # no - both nodes inside). All edges internal => pushable.
        assert can_push(fig1, {"A", "B"})

    def test_pushable_nodes(self, fig2):
        # Only A has all in-edges carrying delays (E->A with d=4).
        assert pushable_nodes(fig2) == ["A"]


class TestPushNodes:
    def test_push_single(self, fig1):
        r = push_nodes(Retiming.zero(fig1), {"A"})
        assert r.as_dict() == {"A": 1, "B": 0}
        assert cycle_period(r.apply()) == 1

    def test_push_illegal_raises(self, fig1):
        with pytest.raises(RetimingError, match="illegal"):
            push_nodes(Retiming.zero(fig1), {"B"})

    def test_push_unknown_node(self, fig1):
        with pytest.raises(RetimingError, match="unknown node"):
            push_nodes(Retiming.zero(fig1), {"Z"})

    def test_push_negative_amount_undoes(self, fig1):
        r = push_nodes(Retiming.zero(fig1), {"A"})
        back = push_nodes(r, {"A"}, amount=-1)
        assert back.as_dict() == {"A": 0, "B": 0}

    def test_repeated_pushes_mirror_paper_pipeline(self, fig2):
        """Pushing the ready frontier repeatedly rebuilds the paper's
        retiming {A:3, B:2, C:2, D:1, E:0}."""
        r = Retiming.zero(fig2)
        for nodes in ({"A"}, {"A", "B", "C"}, {"A", "B", "C", "D"}):
            assert can_push(r.apply(), nodes)
            r = push_nodes(r, nodes)
        assert r.as_dict() == {"A": 3, "B": 2, "C": 2, "D": 1, "E": 0}
        assert cycle_period(r.apply()) == 1


class TestIncrementalFeasibility:
    """The warm-started feasibility oracle must be indistinguishable from
    fresh per-probe solves: the fixpoint of a difference-constraint system
    is unique, so warm-started answers are pinned *exactly* equal."""

    @staticmethod
    def _solver_and_candidates(g):
        from repro.graph.wd import wd_matrices
        from repro.retiming.incremental import IncrementalFeasibility

        W, D = wd_matrices(g)
        return (W, D), IncrementalFeasibility(g, W, D), sorted(set(D.values()))

    @given(dfgs(max_nodes=8, max_extra_edges=8, max_delay=4))
    @settings(max_examples=60, deadline=None)
    def test_descending_probes_equal_fresh_solves(self, g):
        """The binary search's natural pattern: descending c.  For every
        candidate, feasibility and the *normalized witness* must equal a
        fresh retime_for_period solve."""
        from repro.retiming import Retiming
        from repro.retiming.optimal import retime_for_period

        wd, solver, candidates = self._solver_and_candidates(g)
        for c in reversed(candidates):
            fresh = retime_for_period(g, c, wd=wd, verify=False)
            warm = solver.try_period(c)
            if fresh is None:
                assert warm is None
            else:
                assert warm is not None
                assert Retiming(g, warm).normalized().as_dict() == (
                    fresh.as_dict()
                )

    @given(
        dfgs(max_nodes=7, max_extra_edges=6, max_delay=3),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_probe_order(self, g, seed):
        """Probes above the committed best period take the cold path;
        results must not depend on probe order at all."""
        import random

        from repro.retiming import Retiming
        from repro.retiming.optimal import retime_for_period

        wd, solver, candidates = self._solver_and_candidates(g)
        order = list(candidates) * 2  # revisits exercise warm == committed
        random.Random(seed).shuffle(order)
        for c in order:
            fresh = retime_for_period(g, c, wd=wd, verify=False)
            warm = solver.try_period(c)
            if fresh is None:
                assert warm is None
            else:
                assert Retiming(g, warm).normalized().as_dict() == (
                    fresh.as_dict()
                )

    @given(
        dfgs(max_nodes=7, max_extra_edges=6, max_delay=3),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_backends_agree_under_arbitrary_probe_order(self, g, seed):
        """The dense numpy relaxation and the per-edge python relaxation
        answer every probe identically — feasibility *and* fixpoint — for
        any interleaving of cold and warm probes, including revisits."""
        import random

        from repro.retiming import incremental as inc_mod

        order = None
        results = {}
        saved = inc_mod._NUMPY_THRESHOLD
        try:
            for label, threshold in (("python", 10**9), ("numpy", 0)):
                inc_mod._NUMPY_THRESHOLD = threshold
                _wd, solver, candidates = self._solver_and_candidates(g)
                assert solver._use_numpy == (label == "numpy")
                if order is None:
                    order = list(candidates) * 2
                    random.Random(seed).shuffle(order)
                results[label] = [solver.try_period(c) for c in order]
        finally:
            inc_mod._NUMPY_THRESHOLD = saved
        assert results["python"] == results["numpy"]

    @given(dfgs(max_nodes=8, max_extra_edges=8, max_delay=4, max_time=4))
    @settings(max_examples=40, deadline=None)
    def test_minimize_methods_agree_exactly(self, g):
        """All three search strategies return the same period and the same
        normalized witness."""
        from repro.retiming.optimal import minimize_cycle_period

        p_ref, r_ref = minimize_cycle_period(g, method="reference")
        p_shared, r_shared = minimize_cycle_period(
            g, method="shared", verify=True
        )
        p_inc, r_inc = minimize_cycle_period(
            g, method="incremental", verify=True
        )
        assert p_ref == p_shared == p_inc
        assert r_ref.as_dict() == r_shared.as_dict() == r_inc.as_dict()

    def test_numpy_and_python_backends_agree(self, monkeypatch):
        """Swing REPRO_INC_NUMPY_THRESHOLD so the same graph runs through
        both relaxation backends; fixpoints are pinned equal."""
        import random

        from repro.graph.generators import random_unit_time_dfg
        from repro.retiming import incremental as inc_mod

        g = random_unit_time_dfg(
            random.Random(5), num_nodes=30, extra_edges=30, max_delay=4
        )
        results = {}
        for label, threshold in (("python", 10**9), ("numpy", 0)):
            monkeypatch.setattr(inc_mod, "_NUMPY_THRESHOLD", threshold)
            _wd, solver, candidates = self._solver_and_candidates(g)
            assert solver._use_numpy == (label == "numpy")
            results[label] = [solver.try_period(c) for c in reversed(candidates)]
        assert results["python"] == results["numpy"]

    def test_unknown_method_rejected(self, fig2):
        import pytest as _pytest

        from repro.retiming.optimal import minimize_cycle_period

        with _pytest.raises(ValueError, match="unknown minimize_cycle_period"):
            minimize_cycle_period(fig2, method="spfa")

    def test_stats_counters_populated(self, fig2):
        _wd, solver, candidates = self._solver_and_candidates(fig2)
        for c in reversed(candidates):
            solver.try_period(c)
        assert solver.stats["probes"] == len(candidates)
        assert solver.stats["relaxations"] > 0
