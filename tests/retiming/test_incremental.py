"""Tests for incremental delay pushing (the rotation primitive)."""

from __future__ import annotations

import pytest

from repro.graph import cycle_period
from repro.retiming import Retiming, RetimingError, can_push, push_nodes, pushable_nodes


class TestCanPush:
    def test_needs_delay_on_every_incoming(self, fig1):
        # A's only in-edge (B->A) has 2 delays: pushable.
        assert can_push(fig1, {"A"})
        # B's in-edge (A->B) has 0 delays: not pushable.
        assert not can_push(fig1, {"B"})

    def test_set_push_ignores_internal_edges(self, fig1):
        # Pushing {A, B} together: entering edges are B->A (d=2, external?
        # no - both nodes inside). All edges internal => pushable.
        assert can_push(fig1, {"A", "B"})

    def test_pushable_nodes(self, fig2):
        # Only A has all in-edges carrying delays (E->A with d=4).
        assert pushable_nodes(fig2) == ["A"]


class TestPushNodes:
    def test_push_single(self, fig1):
        r = push_nodes(Retiming.zero(fig1), {"A"})
        assert r.as_dict() == {"A": 1, "B": 0}
        assert cycle_period(r.apply()) == 1

    def test_push_illegal_raises(self, fig1):
        with pytest.raises(RetimingError, match="illegal"):
            push_nodes(Retiming.zero(fig1), {"B"})

    def test_push_unknown_node(self, fig1):
        with pytest.raises(RetimingError, match="unknown node"):
            push_nodes(Retiming.zero(fig1), {"Z"})

    def test_push_negative_amount_undoes(self, fig1):
        r = push_nodes(Retiming.zero(fig1), {"A"})
        back = push_nodes(r, {"A"}, amount=-1)
        assert back.as_dict() == {"A": 0, "B": 0}

    def test_repeated_pushes_mirror_paper_pipeline(self, fig2):
        """Pushing the ready frontier repeatedly rebuilds the paper's
        retiming {A:3, B:2, C:2, D:1, E:0}."""
        r = Retiming.zero(fig2)
        for nodes in ({"A"}, {"A", "B", "C"}, {"A", "B", "C", "D"}):
            assert can_push(r.apply(), nodes)
            r = push_nodes(r, nodes)
        assert r.as_dict() == {"A": 3, "B": 2, "C": 2, "D": 1, "E": 0}
        assert cycle_period(r.apply()) == 1
