"""Tests for optimal retiming (W/D binary search) and FEAS agreement."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings

from repro.graph import DFG, cycle_period, iteration_bound
from repro.retiming import (
    Retiming,
    feas,
    minimize_cycle_period,
    minimum_cycle_period,
    retime_for_period,
)

from ..conftest import dfgs, timed_dfgs


class TestRetimeForPeriod:
    def test_figure1_period_one(self, fig1):
        r = retime_for_period(fig1, 1)
        assert r is not None
        assert cycle_period(r.apply()) <= 1
        assert r.is_normalized

    def test_figure2_period_one(self, fig2):
        r = retime_for_period(fig2, 1)
        assert r is not None
        assert cycle_period(r.apply()) == 1

    def test_infeasible_below_node_time(self, fig8):
        assert retime_for_period(fig8, 9) is None  # node B takes 10

    def test_infeasible_below_bound(self, fig4):
        # Bound 2/3 per iteration but period must cover whole cycles: the
        # 3-node cycle with 3 delays can reach period 1; period 0 never.
        assert retime_for_period(fig4, 0) is None

    def test_feasible_at_original_period(self, bench_graph):
        r = retime_for_period(bench_graph, cycle_period(bench_graph))
        assert r is not None

    def test_result_is_legal_and_normalized(self, bench_graph):
        r = retime_for_period(bench_graph, cycle_period(bench_graph))
        assert r.is_legal()
        assert r.is_normalized


class TestMinimizeCyclePeriod:
    def test_figure1(self, fig1):
        c, r = minimize_cycle_period(fig1)
        assert c == 1
        assert cycle_period(r.apply()) == 1

    def test_figure2_paper_retiming(self, fig2):
        c, r = minimize_cycle_period(fig2)
        assert c == 1
        assert r.as_dict() == {"A": 3, "B": 2, "C": 2, "D": 1, "E": 0}

    def test_figure8_non_unit(self, fig8):
        c, _ = minimize_cycle_period(fig8)
        # Bound 27/4 = 6.75, but the slowest node needs 10 time units.
        assert c >= 10

    def test_never_worse_than_original(self, bench_graph):
        c, _ = minimize_cycle_period(bench_graph)
        assert c <= cycle_period(bench_graph)

    def test_never_below_iteration_bound(self, bench_graph):
        c, _ = minimize_cycle_period(bench_graph)
        assert c >= iteration_bound(bench_graph)

    def test_minimum_cycle_period_shortcut(self, fig1):
        assert minimum_cycle_period(fig1) == 1

    @given(dfgs())
    @settings(max_examples=60, deadline=None)
    def test_optimal_is_feasible_and_tight(self, g):
        c, r = minimize_cycle_period(g)
        assert cycle_period(r.apply()) == c
        # One less must be infeasible (c is the minimum).
        if c > 1:
            assert retime_for_period(g, c - 1) is None

    @given(dfgs())
    @settings(max_examples=60, deadline=None)
    def test_optimal_at_least_ceil_bound(self, g):
        c, _ = minimize_cycle_period(g)
        bound = iteration_bound(g)
        assert c >= math.ceil(bound)


class TestFeasAgreement:
    @given(dfgs(max_nodes=6))
    @settings(max_examples=60, deadline=None)
    def test_feas_agrees_with_wd_search(self, g):
        """FEAS and the W/D reduction must agree on feasibility for every
        candidate period from 1 to the original cycle period."""
        for c in range(1, cycle_period(g) + 1):
            via_wd = retime_for_period(g, c)
            via_feas = feas(g, c)
            assert (via_wd is None) == (via_feas is None), f"disagree at c={c}"
            if via_feas is not None:
                assert cycle_period(via_feas.apply()) <= c

    def test_feas_on_benchmarks(self, bench_graph):
        c, _ = minimize_cycle_period(bench_graph)
        r = feas(bench_graph, c)
        assert r is not None
        assert cycle_period(r.apply()) <= c

    def test_feas_infeasible(self, fig8):
        assert feas(fig8, 9) is None

    def test_feas_trivially_feasible(self, fig1):
        r = feas(fig1, 2)
        assert r is not None
        assert cycle_period(r.apply()) <= 2
