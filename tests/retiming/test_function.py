"""Tests for retiming functions: legality, application, normalization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DFG, cycle_period
from repro.retiming import Retiming, RetimingError

from ..conftest import dfgs


class TestBasics:
    def test_defaults_to_zero(self, fig1):
        r = Retiming(fig1)
        assert r["A"] == 0 and r["B"] == 0
        assert r.max_value == 0

    def test_unknown_node_rejected(self, fig1):
        with pytest.raises(RetimingError, match="unknown nodes"):
            Retiming(fig1, {"Z": 1})

    def test_non_integer_rejected(self, fig1):
        with pytest.raises(RetimingError, match="int"):
            Retiming(fig1, {"A": 1.5})

    def test_lookup_unknown_node(self, fig1):
        r = Retiming(fig1)
        with pytest.raises(RetimingError, match="unknown node"):
            r["Z"]

    def test_zero_constructor(self, fig2):
        r = Retiming.zero(fig2)
        assert all(v == 0 for v in r.as_dict().values())

    def test_items_order(self, fig2):
        assert [n for n, _ in Retiming.zero(fig2).items()] == fig2.node_names()


class TestLegality:
    def test_figure1_retiming_legal(self, fig1):
        r = Retiming(fig1, {"A": 1})
        assert r.is_legal()
        retimed = r.apply()
        delays = {(e.src, e.dst): e.delay for e in retimed.edges()}
        assert delays == {("A", "B"): 1, ("B", "A"): 1}

    def test_illegal_retiming_detected(self, fig1):
        r = Retiming(fig1, {"B": 1})  # A->B d=0 becomes -1
        assert not r.is_legal()
        with pytest.raises(RetimingError, match="illegal retiming"):
            r.apply()

    def test_check_legal_names_edge(self, fig1):
        r = Retiming(fig1, {"B": 1})
        with pytest.raises(RetimingError, match="'A'->'B'"):
            r.check_legal()

    def test_constant_shift_always_legal(self, fig2):
        r = Retiming(fig2, {n: 7 for n in fig2.node_names()})
        assert r.is_legal()
        assert r.apply().total_delay == fig2.total_delay

    @given(dfgs(), st.integers(min_value=-3, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_shift_invariance(self, g, k):
        """Adding a constant to every node leaves retimed delays unchanged."""
        r0 = Retiming.zero(g)
        rk = r0.shifted(k)
        assert rk.apply() == r0.apply()


class TestConservation:
    @given(dfgs())
    @settings(max_examples=50, deadline=None)
    def test_cycle_delay_conservation(self, g):
        """Any legal retiming preserves the total delay of every cycle —
        checked via conservation on each edge plus telescoping: the sum of
        (d_r - d) around any cycle is zero because r telescopes."""
        import networkx as nx

        # Build some legal retiming: push through a random prefix of nodes.
        names = g.node_names()
        values = {n: i % 2 for i, n in enumerate(names)}
        r = Retiming(g, values)
        if not r.is_legal():
            r = Retiming.zero(g)
        retimed = r.apply()
        nxg = g.to_networkx()
        for cycle in nx.simple_cycles(nx.DiGraph(nxg)):
            orig = _cycle_delay(g, cycle)
            new = _cycle_delay(retimed, cycle)
            assert orig == new

    def test_figure2_retimed_delays(self, fig2):
        """Exact retimed delays of the paper's example; the E->A->B->C->D->E
        cycle keeps its 6 delays (4 + 2) redistributed as 1+1+2+1+1."""
        r = Retiming(fig2, {"A": 3, "B": 2, "C": 2, "D": 1, "E": 0})
        delays = {(e.src, e.dst): e.delay for e in r.apply().edges()}
        assert delays == {
            ("E", "A"): 1,
            ("A", "B"): 1,
            ("A", "C"): 1,
            ("B", "C"): 2,
            ("A", "D"): 2,
            ("C", "D"): 1,
            ("D", "E"): 1,
        }


def _cycle_delay(g: DFG, cycle: list[str]) -> int:
    total = 0
    for a, b in zip(cycle, cycle[1:] + cycle[:1]):
        total += min(e.delay for e in g.out_edges(a) if e.dst == b)
    return total


class TestNormalization:
    def test_normalized_min_zero(self, fig2):
        r = Retiming(fig2, {"A": 5, "B": 4, "C": 4, "D": 3, "E": 2})
        n = r.normalized()
        assert n.min_value == 0
        assert n.max_value == 3
        assert n.as_dict() == {"A": 3, "B": 2, "C": 2, "D": 1, "E": 0}

    def test_normalized_idempotent(self, fig2):
        r = Retiming(fig2, {"A": 3}).normalized()
        assert r.normalized() is r

    def test_normalization_preserves_retimed_graph(self, fig2):
        r = Retiming(fig2, {"A": 5, "B": 4, "C": 4, "D": 3, "E": 2})
        assert r.apply() == r.normalized().apply()


class TestPrologueEpilogue:
    def test_paper_example_counts(self, fig2):
        r = Retiming(fig2, {"A": 3, "B": 2, "C": 2, "D": 1, "E": 0})
        assert r.prologue_copies("A") == 3
        assert r.epilogue_copies("A") == 0
        assert r.prologue_copies("E") == 0
        assert r.epilogue_copies("E") == 3
        assert r.prologue_size() == 8
        assert r.epilogue_size() == 7

    def test_prologue_plus_epilogue(self, fig2):
        r = Retiming(fig2, {"A": 3, "B": 2, "C": 2, "D": 1, "E": 0})
        assert r.prologue_size() + r.epilogue_size() == r.max_value * fig2.num_nodes

    def test_unnormalized_rejected(self, fig2):
        r = Retiming(fig2, {n: 1 for n in fig2.node_names()})
        with pytest.raises(RetimingError, match="normalized"):
            r.prologue_size()

    def test_registers_needed(self, fig2):
        r = Retiming(fig2, {"A": 3, "B": 2, "C": 2, "D": 1, "E": 0})
        assert r.distinct_values() == {0, 1, 2, 3}
        assert r.registers_needed() == 4


class TestCompose:
    def test_compose_applies_sequentially(self, fig1):
        r1 = Retiming(fig1, {"A": 1})
        r2 = Retiming(fig1, {"B": 1})
        combined = r1.compose(r2)
        assert combined.as_dict() == {"A": 1, "B": 1}
        # Retimed delays unchanged: constant retiming.
        assert combined.apply() == fig1.copy()

    def test_compose_different_graphs_rejected(self, fig1, fig2):
        with pytest.raises(RetimingError, match="different node sets"):
            Retiming.zero(fig1).compose(Retiming.zero(fig2))


class TestPeriodEffect:
    def test_retiming_reduces_period(self, fig1):
        assert cycle_period(fig1) == 2
        r = Retiming(fig1, {"A": 1})
        assert cycle_period(r.apply()) == 1

    def test_paper_retiming_period_one(self, fig2):
        r = Retiming(fig2, {"A": 3, "B": 2, "C": 2, "D": 1, "E": 0})
        assert cycle_period(r.apply()) == 1
