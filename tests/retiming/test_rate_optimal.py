"""Tests for rate-optimality analysis."""

from __future__ import annotations

from fractions import Fraction

from repro.retiming import rate_optimal_retiming


class TestRateOptimal:
    def test_figure1_rate_optimal(self, fig1):
        res = rate_optimal_retiming(fig1)
        assert res.period == 1
        assert res.bound == 1
        assert res.is_rate_optimal
        assert res.required_unfolding == 1

    def test_figure4_needs_unfolding(self, fig4):
        res = rate_optimal_retiming(fig4)
        assert res.bound == Fraction(2, 3)
        assert not res.is_rate_optimal
        assert res.required_unfolding == 3
        assert res.period == 1  # best integral period

    def test_figure8(self, fig8):
        res = rate_optimal_retiming(fig8)
        assert res.bound == Fraction(27, 4)
        assert res.required_unfolding == 4
        assert not res.is_rate_optimal

    def test_benchmarks_have_witness(self, bench_graph):
        res = rate_optimal_retiming(bench_graph)
        assert res.retiming.is_legal()
        assert res.period >= res.bound
