"""Tests for the difference-constraint solver."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retiming import DifferenceConstraints


class TestSolve:
    def test_trivial_system(self):
        s = DifferenceConstraints()
        s.add_variable("x")
        assert s.solve() == {"x": 0}

    def test_simple_feasible(self):
        s = DifferenceConstraints()
        s.add("x", "y", 3)  # x - y <= 3
        sol = s.solve()
        assert sol is not None
        assert sol["x"] - sol["y"] <= 3

    def test_infeasible_cycle(self):
        s = DifferenceConstraints()
        s.add("x", "y", 1)
        s.add("y", "x", -2)  # x - y <= 1 and y - x <= -2  =>  x - y >= 2
        assert s.solve() is None
        assert not s.is_feasible()

    def test_equality_via_two_constraints(self):
        s = DifferenceConstraints()
        s.add("x", "y", 0)
        s.add("y", "x", 0)
        sol = s.solve()
        assert sol["x"] == sol["y"]

    def test_duplicate_pairs_tightened(self):
        s = DifferenceConstraints()
        s.add("x", "y", 5)
        s.add("x", "y", 2)
        s.add("x", "y", 9)
        assert s.num_constraints == 1
        assert list(s.constraints()) == [("x", "y", 2)]

    def test_chain(self):
        s = DifferenceConstraints()
        s.add("b", "a", 1)
        s.add("c", "b", 1)
        s.add("a", "c", -2)  # a - c <= -2, forces exact spacing
        sol = s.solve()
        assert sol is not None
        assert sol["b"] - sol["a"] <= 1
        assert sol["c"] - sol["b"] <= 1
        assert sol["a"] - sol["c"] <= -2

    def test_check_validates_assignment(self):
        s = DifferenceConstraints()
        s.add("x", "y", 1)
        assert s.check({"x": 0, "y": 0})
        assert not s.check({"x": 5, "y": 0})

    def test_variables_in_first_mention_order(self):
        s = DifferenceConstraints()
        s.add("q", "p", 1)
        s.add_variable("z")
        assert s.variables == ["q", "p", "z"]

    def test_unconstrained_variables_get_zero(self):
        s = DifferenceConstraints()
        s.add_variable("lonely")
        s.add("x", "y", -1)
        sol = s.solve()
        assert sol["lonely"] == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5), st.integers(0, 5), st.integers(-4, 4)
            ),
            max_size=25,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_solutions_always_satisfy(self, triples):
        s = DifferenceConstraints()
        for a, b, c in triples:
            s.add(f"v{a}", f"v{b}", c)
        sol = s.solve()
        if sol is not None:
            assert s.check(sol)

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 3)),
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_nonnegative_bounds_always_feasible(self, triples):
        """With all c >= 0, the zero assignment satisfies everything."""
        s = DifferenceConstraints()
        for a, b, c in triples:
            s.add(f"v{a}", f"v{b}", c)
        assert s.is_feasible()


class TestSlowConvergence:
    """The adversarial-edge-order worst case: relaxation improves something
    in every one of the ``n - 1`` allowed passes, so the early-exit branch
    never fires and feasibility is decided purely by the final verification
    pass over the constraints."""

    N = 12

    def _chain(self) -> DifferenceConstraints:
        # x(v_{i+1}) - x(v_i) <= -1, added in reverse propagation order:
        # each pass can push the frontier only one link further down the
        # chain, so settling takes the full n - 1 passes.
        s = DifferenceConstraints()
        for i in range(self.N - 2, -1, -1):
            s.add(f"v{i + 1}", f"v{i}", -1)
        return s

    def test_full_pass_budget_still_feasible(self):
        s = self._chain()
        sol = s.solve()
        assert sol == {f"v{i}": -i for i in range(self.N)}
        assert s.check(sol)

    def test_full_pass_budget_then_negative_cycle(self):
        # Closing the chain with x(v_0) - x(v_{N-1}) <= N - 3 makes the
        # cycle sum (N - 3) - (N - 1) = -2: infeasible, and detected only
        # by the verification pass after the exhausted pass budget.
        s = self._chain()
        s.add("v0", f"v{self.N - 1}", self.N - 3)
        assert s.solve() is None

    def test_exact_pass_budget_boundary(self):
        # Closing the cycle with sum exactly 0 stays feasible: the
        # verification pass must not misreport a tight (zero-weight) cycle.
        s = self._chain()
        s.add("v0", f"v{self.N - 1}", self.N - 1)
        sol = s.solve()
        assert sol is not None
        assert s.check(sol)
