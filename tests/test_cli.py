"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "iir" in out and "figure8" in out

    def test_info(self, capsys):
        assert main(["info", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "M_r / |N_r|   : 3 / 4" in out
        assert "20 (pipelined) -> 13 (CSR)" in out

    def test_csr_listing(self, capsys):
        assert main(["csr", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "setup p1 = 0 : -LC" in out
        assert "for i = -2 to n do" in out

    def test_csr_unfolded(self, capsys):
        assert main(["csr", "figure4", "--unfold", "3"]) == 0
        out = capsys.readouterr().out
        assert "by 3" in out

    def test_run_verifies(self, capsys):
        assert main(["run", "iir", "-n", "7"]) == 0
        assert "equivalent to the original loop" in capsys.readouterr().out

    def test_dot(self, capsys):
        assert main(["dot", "figure1"]) == 0
        assert capsys.readouterr().out.startswith('digraph "figure1"')

    def test_json(self, capsys):
        assert main(["json", "figure1"]) == 0
        assert '"format": "repro-dfg-v1"' in capsys.readouterr().out

    def test_parse_from_file(self, tmp_path, capsys):
        src = tmp_path / "loop.txt"
        src.write_text("A[i] = B[i-2] * 3\nB[i] = A[i] + 1\n")
        assert main(["parse", str(src)]) == 0
        assert "for i = 1 to n do" in capsys.readouterr().out

    def test_parse_csr(self, tmp_path, capsys):
        src = tmp_path / "loop.txt"
        src.write_text("A[i] = B[i-2] * 3\nB[i] = A[i] + 1\n")
        assert main(["parse", str(src), "--csr"]) == 0
        assert "setup p1" in capsys.readouterr().out

    def test_parse_json(self, tmp_path, capsys):
        src = tmp_path / "loop.txt"
        src.write_text("A[i] = A[i-1] + 1\n")
        assert main(["parse", str(src), "--json"]) == 0
        assert "repro-dfg-v1" in capsys.readouterr().out

    def test_tables_subset(self, capsys):
        assert main(["tables", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 3" not in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["info", "nonexistent"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCompileCommand:
    def test_compile_unconstrained(self, capsys):
        from repro.__main__ import main

        assert main(["compile", "figure4", "--max-unfold", "3"]) == 0
        out = capsys.readouterr().out
        assert "iteration period  : 2/3" in out
        assert "setup p1" in out

    def test_compile_with_machine(self, capsys):
        from repro.__main__ import main

        assert main(["compile", "iir", "--alu", "2", "--mul", "1"]) == 0
        out = capsys.readouterr().out
        assert "verified at n" in out

    def test_compile_with_budget(self, capsys):
        from repro.__main__ import main

        assert main(["compile", "figure2", "--budget", "14"]) == 0
        out = capsys.readouterr().out
        assert "code size         : 13" in out


class TestCgenCommand:
    def test_cgen_original(self, capsys):
        assert main(["cgen", "figure4"]) == 0
        out = capsys.readouterr().out
        assert "#include <stdint.h>" in out
        assert "for (int64_t i = 1; i <= n; i += 1)" in out

    def test_cgen_csr(self, capsys):
        assert main(["cgen", "figure2", "--csr"]) == 0
        out = capsys.readouterr().out
        assert "int64_t p1 = 0;" in out
        assert "-(int64_t)n < p1 && p1 <= 0" in out
