"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.__main__ import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "iir" in out and "figure8" in out

    def test_info(self, capsys):
        assert main(["info", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "M_r / |N_r|   : 3 / 4" in out
        assert "20 (pipelined) -> 13 (CSR)" in out

    def test_csr_listing(self, capsys):
        assert main(["csr", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "setup p1 = 0 : -LC" in out
        assert "for i = -2 to n do" in out

    def test_csr_unfolded(self, capsys):
        assert main(["csr", "figure4", "--unfold", "3"]) == 0
        out = capsys.readouterr().out
        assert "by 3" in out

    def test_run_verifies(self, capsys):
        assert main(["run", "iir", "-n", "7"]) == 0
        assert "equivalent to the original loop" in capsys.readouterr().out

    def test_dot(self, capsys):
        assert main(["dot", "figure1"]) == 0
        assert capsys.readouterr().out.startswith('digraph "figure1"')

    def test_json(self, capsys):
        assert main(["json", "figure1"]) == 0
        assert '"format": "repro-dfg-v1"' in capsys.readouterr().out

    def test_parse_from_file(self, tmp_path, capsys):
        src = tmp_path / "loop.txt"
        src.write_text("A[i] = B[i-2] * 3\nB[i] = A[i] + 1\n")
        assert main(["parse", str(src)]) == 0
        assert "for i = 1 to n do" in capsys.readouterr().out

    def test_parse_csr(self, tmp_path, capsys):
        src = tmp_path / "loop.txt"
        src.write_text("A[i] = B[i-2] * 3\nB[i] = A[i] + 1\n")
        assert main(["parse", str(src), "--csr"]) == 0
        assert "setup p1" in capsys.readouterr().out

    def test_parse_json(self, tmp_path, capsys):
        src = tmp_path / "loop.txt"
        src.write_text("A[i] = A[i-1] + 1\n")
        assert main(["parse", str(src), "--json"]) == 0
        assert "repro-dfg-v1" in capsys.readouterr().out

    def test_tables_subset(self, capsys):
        assert main(["tables", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 3" not in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["info", "nonexistent"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCompileCommand:
    def test_compile_unconstrained(self, capsys):
        from repro.__main__ import main

        assert main(["compile", "figure4", "--max-unfold", "3"]) == 0
        out = capsys.readouterr().out
        assert "iteration period  : 2/3" in out
        assert "setup p1" in out

    def test_compile_with_machine(self, capsys):
        from repro.__main__ import main

        assert main(["compile", "iir", "--alu", "2", "--mul", "1"]) == 0
        out = capsys.readouterr().out
        assert "verified at n" in out

    def test_compile_with_budget(self, capsys):
        from repro.__main__ import main

        assert main(["compile", "figure2", "--budget", "14"]) == 0
        out = capsys.readouterr().out
        assert "code size         : 13" in out


class TestCgenCommand:
    def test_cgen_original(self, capsys):
        assert main(["cgen", "figure4"]) == 0
        out = capsys.readouterr().out
        assert "#include <stdint.h>" in out
        assert "for (int64_t i = 1; i <= n; i += 1)" in out

    def test_cgen_csr(self, capsys):
        assert main(["cgen", "figure2", "--csr"]) == 0
        out = capsys.readouterr().out
        assert "int64_t p1 = 0;" in out
        assert "-(int64_t)n < p1 && p1 <= 0" in out


class TestProfileCommand:
    @pytest.fixture(autouse=True)
    def _fresh_observability(self):
        """``profile`` flips the global switch; leave no trace behind."""
        from repro import observability

        observability.OBS.reset()
        yield
        observability.disable()
        observability.OBS.reset()

    def test_profile_emits_breakdown_and_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.observability import spans_from_chrome_events

        trace = tmp_path / "out.json"
        assert main(
            ["profile", "--workload", "figure8", "--trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "profile: figure8" in out
        assert "stage.retiming" in out and "stage.vm_execute" in out
        assert "vm.instructions.executed" in out

        doc = json.loads(trace.read_text())
        assert doc["displayTimeUnit"] == "ms"
        # The span tree covers every pipeline stage the issue names.
        roots = spans_from_chrome_events(doc["traceEvents"])
        assert [r.name for r in roots] == ["profile"]
        names = {s.name for s in roots[0].walk()}
        assert {
            "stage.retiming",
            "retiming.minimize",
            "stage.csr_rewrite",
            "csr.rewrite",
            "stage.vm_execute",
            "vm.run",
        } <= names

    def test_profile_metrics_exports(self, tmp_path, capsys):
        import json

        m = tmp_path / "m.json"
        prom = tmp_path / "m.prom"
        assert main(
            [
                "profile", "--workload", "iir", "-n", "10", "--no-verify",
                "--metrics-out", str(m), "--prometheus-out", str(prom),
            ]
        ) == 0
        metrics = json.loads(m.read_text())
        assert metrics["counters"]["vm.instructions.executed"] > 0
        assert metrics["counters"]["csr.programs"] == 1
        assert "vm_instructions_executed" in prom.read_text()

    def test_profile_unfolded(self, capsys):
        assert main(
            ["profile", "--workload", "figure4", "--unfold", "2", "-n", "8"]
        ) == 0
        assert "unfold" in capsys.readouterr().out or True  # exit code is the contract


class TestObservabilityFlags:
    @pytest.fixture(autouse=True)
    def _fresh_observability(self):
        from repro import observability

        observability.OBS.reset()
        yield
        observability.disable()
        observability.OBS.reset()

    @pytest.mark.skipif(
        bool(os.environ.get("REPRO_FAULT_PLAN")),
        reason="an injected cache fault legitimately breaks the 100% hit rate",
    )
    def test_warm_sweep_reports_full_hit_rate_in_json_and_text(
        self, tmp_path, capsys
    ):
        """The acceptance scenario: a warm ``sweep --stats --metrics-out``
        reports a 100% aggregated cache hit-rate in both outputs."""
        import json

        argv = [
            "sweep", "--graphs", "3", "--seed", "5", "--max-nodes", "4",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0  # cold run populates the cache
        capsys.readouterr()

        m = tmp_path / "m.json"
        assert main(argv + ["--stats", "--metrics-out", str(m)]) == 0
        out = capsys.readouterr().out
        assert "(100.0% hit rate)" in out

        metrics = json.loads(m.read_text())
        assert metrics["gauges"]["cache.hit_rate"] == 100.0
        assert metrics["counters"]["cache.hits"] > 0
        assert metrics["counters"].get("cache.misses", 0) == 0

    def test_tables_trace_flag_writes_engine_spans(self, tmp_path, capsys):
        import json

        trace = tmp_path / "t.json"
        argv = [
            "tables", "1", "--no-cache", "--trace", str(trace),
        ]
        assert main(argv) == 0
        names = {ev["name"] for ev in json.loads(trace.read_text())["traceEvents"]}
        assert "engine.map" in names and "retiming.minimize" in names
