"""Process entry point: configuration, signal handling, graceful drain.

:func:`serve_main` is what ``python -m repro serve`` runs: build the
engine from a :class:`ServerConfig`, bind the
:class:`~repro.server.http.HttpFrontend` on TCP or a unix socket, then
park until SIGTERM/SIGINT.  Shutdown is a *drain*: the listener stops
accepting, queued work completes and is delivered, then the process
exits 0 — the contract the CLI shutdown test pins.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
from dataclasses import dataclass
from pathlib import Path

from .. import observability
from ..runner import resilience
from ..runner.cache import ResultCache
from ..runner.engine import ExperimentEngine
from ..runner.resilience import FaultPlan
from .http import HttpFrontend
from .service import RetimingService

__all__ = ["ServerConfig", "serve_main"]


@dataclass
class ServerConfig:
    """Everything ``python -m repro serve`` can set."""

    host: str = "127.0.0.1"
    port: int = 8750
    socket: str | None = None  # unix socket path; overrides host/port
    workers: int = 1  # engine process-pool width
    max_inflight: int = 128
    batch_max: int = 16
    shards: int = 0  # cache shard count (0/1 = unsharded layout)
    cache_dir: str | None = None  # None = default cache location
    no_cache: bool = False
    fault_plan: str | None = None  # JSON FaultPlan file (testing)
    distributed: bool = False  # run engine units through a work plane
    remote_workers: int = 0  # worker processes spawned on the work plane
    lease_timeout: float = 30.0  # work-plane lease expiry

    def build_engine(self) -> ExperimentEngine:
        if self.no_cache:
            cache = None
        elif self.cache_dir is not None:
            cache = ResultCache(self.cache_dir, shards=self.shards)
        else:
            cache = ResultCache(shards=self.shards)
        remote = None
        if self.distributed:
            from ..runner.remote import RemoteFabric

            remote = RemoteFabric(
                workers=self.remote_workers,
                lease_timeout=self.lease_timeout,
            )
        return ExperimentEngine(jobs=self.workers, cache=cache, remote=remote)

    def build_service(self) -> RetimingService:
        return RetimingService(
            self.build_engine(),
            max_inflight=self.max_inflight,
            batch_max=self.batch_max,
        )


async def _serve(config: ServerConfig) -> int:
    service = config.build_service()
    frontend = HttpFrontend(service)
    if config.socket is not None:
        where = await frontend.start_unix(config.socket)
        print(f"serving on unix socket {where}", flush=True)
    else:
        host, port = await frontend.start_tcp(config.host, config.port)
        print(f"serving on http://{host}:{port}", flush=True)
    if service.engine.remote is not None:
        # Starting the work plane eagerly puts its address on stdout so
        # external `repro worker --connect` processes can find it.
        print(
            f"work plane on http://{service.engine.remote.address}", flush=True
        )

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError):  # pragma: no cover
            loop.add_signal_handler(sig, stop.set)
    await stop.wait()

    # Drain first, close the listener after: a connection racing the
    # drain gets a structured 503 + Retry-After, never a refused or hung
    # socket.  Queued work completes and is delivered before the
    # listener goes away.
    print("draining...", flush=True)
    await service.drain()
    await frontend.aclose()
    service.engine.close()
    s = service.stats
    print(
        f"drained: {s.submitted} submitted, {s.completed} completed, "
        f"{s.failed} failed, {s.shed} shed, {s.deduped} deduped",
        flush=True,
    )
    if config.socket is not None:
        Path(config.socket).unlink(missing_ok=True)
    return 0


def serve_main(config: ServerConfig) -> int:
    """Blocking entry point for the ``serve`` subcommand."""
    observability.enable()
    if config.fault_plan is not None:
        resilience.activate(FaultPlan.from_file(config.fault_plan))
        print(f"fault plan active: {config.fault_plan}", file=sys.stderr)
    try:
        return asyncio.run(_serve(config))
    except KeyboardInterrupt:  # pragma: no cover - non-handler interrupt
        return 0
