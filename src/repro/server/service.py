"""The asyncio request service: single-flight dedup, batching, shedding.

:class:`RetimingService` sits between a transport (the raw-HTTP
front-end of :mod:`repro.server.http`, or a test client calling
:meth:`~RetimingService.submit` directly) and the
:class:`~repro.runner.engine.ExperimentEngine`:

* **single-flight dedup** — requests are keyed by content address; a
  request whose key is already in flight *joins* the existing
  computation instead of enqueueing a second one, and every joiner
  receives the identical response envelope;
* **batching** — queued requests drain in batches of up to
  ``batch_max`` into one engine dispatch per distinct kind
  (:meth:`~repro.runner.engine.ExperimentEngine.run_units`), executed on
  a single worker thread so the engine (which is not thread-safe) stays
  single-threaded while the event loop keeps accepting;
* **load shedding** — the queue is bounded by ``max_inflight`` distinct
  in-flight keys; beyond it new work is refused with
  :class:`OverloadedError` (HTTP 503 + ``Retry-After``), never queued
  into unbounded memory.  Joining an in-flight key is always admitted —
  a joiner costs no work;
* **graceful drain** — :meth:`drain` stops admission (new requests get
  :class:`ServiceClosedError`), lets everything queued complete, then
  stops the dispatcher.

Accounting is deterministic and test-facing
(:class:`ServerStats`): every submitted request is eventually counted in
exactly one of ``completed`` / ``failed`` / ``shed``, and
``jobs_submitted`` counts the units actually dispatched — the
single-flight tests assert ``jobs_submitted == 1`` for N identical
concurrent requests.

The ``server.respond`` fault site fires per delivered response; an
injected fault degrades that delivery into a structured error envelope
(the requester still gets an answer — never a hung connection).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from .. import observability
from ..observability import count
from ..observability.metrics import Histogram
from ..runner import resilience
from ..runner.difftest import differential_sweep
from ..runner.engine import ExperimentEngine, WorkUnit
from .protocol import Request, error_envelope, response_envelope
from .work import WD_POOL

__all__ = [
    "OverloadedError",
    "RetimingService",
    "ServerStats",
    "ServiceClosedError",
]


class OverloadedError(Exception):
    """The bounded queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"server overloaded; retry after {retry_after:g}s"
        )
        self.retry_after = retry_after


class ServiceClosedError(Exception):
    """The service is draining and admits no new work.

    Carries ``retry_after`` so the HTTP layer can answer a connection
    that races the drain with a proper 503 + ``Retry-After`` instead of
    a bare refusal — the client may find a respawned server there.
    """

    def __init__(
        self, message: str = "server is draining", retry_after: float = 1.0
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class ServerStats:
    """Deterministic request-accounting counters for one service.

    The conservation law every load test asserts::

        completed + failed + shed == submitted        (once drained)

    ``jobs_submitted`` counts units dispatched toward the engine (the
    single-flight measure: deduped joiners never increment it);
    ``deduped`` counts the joiners.
    """

    submitted: int = 0  # requests received
    deduped: int = 0  # requests that joined an in-flight computation
    shed: int = 0  # requests refused (overload or draining)
    jobs_submitted: int = 0  # unique units dispatched toward the engine
    completed: int = 0  # requests answered with an ok envelope
    failed: int = 0  # requests answered with an error envelope
    batches: int = 0  # engine batch dispatches
    batched_units: int = 0  # units carried by those batches

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "deduped": self.deduped,
            "shed": self.shed,
            "jobs_submitted": self.jobs_submitted,
            "completed": self.completed,
            "failed": self.failed,
            "batches": self.batches,
            "batched_units": self.batched_units,
        }

    @property
    def answered(self) -> int:
        return self.completed + self.failed


class RetimingService:
    """Single-flight, batching, shedding front-end over one engine."""

    def __init__(
        self,
        engine: ExperimentEngine | None = None,
        *,
        max_inflight: int = 128,
        batch_max: int = 16,
        retry_after: float = 1.0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.engine = engine if engine is not None else ExperimentEngine()
        self.max_inflight = max_inflight
        self.batch_max = batch_max
        self.retry_after = retry_after
        self.stats = ServerStats()
        #: Computed engine units per answered request (0 on every
        #: cached/deduped path) — the op-counter-style latency proxy the
        #: soak test budgets instead of wall clocks.
        self.request_cost = Histogram(
            "server.request.computed_units",
            "engine units computed per answered request",
        )
        self._pending: dict[str, asyncio.Future] = {}
        self._queue: asyncio.Queue[Request] = asyncio.Queue()
        self._gate = asyncio.Event()
        self._gate.set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch"
        )
        self._dispatcher: asyncio.Task | None = None
        self._draining = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Start the dispatcher (idempotent)."""
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(
                self._dispatch_loop(), name="repro-serve-dispatch"
            )

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        """Distinct keys currently queued or executing."""
        return len(self._pending)

    def begin_drain(self) -> None:
        """Stop admission immediately (new submissions shed with 503).

        The synchronous first half of :meth:`drain`: in-flight work keeps
        executing and delivering, but no new key enters the queue.  The
        drain-race tests use this to pin the admission decision without
        racing the full drain's completion wait.
        """
        self._draining = True

    async def drain(self) -> None:
        """Stop admission, complete everything in flight, stop dispatching."""
        self.begin_drain()
        self._gate.set()  # a held gate must not wedge the drain
        while self._pending:
            await asyncio.sleep(0.005)
        await self.aclose()

    async def aclose(self) -> None:
        """Stop the dispatcher and the batch executor (no drain).

        Anything still pending resolves to a structured shutdown error —
        a waiter never hangs on a closed service.
        """
        self._draining = True
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        while self._pending:
            _key, fut = self._pending.popitem()
            if not fut.done():
                fut.set_result(
                    (
                        error_envelope(
                            "service closed before completion",
                            "ServiceClosedError",
                        ),
                        0.0,
                    )
                )
        self._executor.shutdown(wait=True)

    # -- test hooks ----------------------------------------------------

    def hold(self) -> None:
        """Pause dispatching (deterministic concurrency tests)."""
        self._gate.clear()

    def release(self) -> None:
        """Resume dispatching after :meth:`hold`."""
        self._gate.set()

    # -- request path --------------------------------------------------

    async def submit(self, req: Request) -> dict:
        """Answer one request; always returns an envelope or raises a
        structured admission error (:class:`OverloadedError`,
        :class:`ServiceClosedError`)."""
        self.stats.submitted += 1
        count("server.requests")
        if self._draining:
            self.stats.shed += 1
            count("server.shed")
            raise ServiceClosedError(
                "server is draining", retry_after=self.retry_after
            )
        existing = self._pending.get(req.key)
        if existing is not None:
            self.stats.deduped += 1
            count("server.deduped")
            env, _cost = await existing
            return self._deliver(req, env, cost=0.0)
        # Bound on distinct in-flight keys, not raw queue depth: an entry
        # leaves _pending only when its result is delivered, so the check
        # cannot race with the dispatcher dequeuing the head of the queue.
        if len(self._pending) >= self.max_inflight:
            self.stats.shed += 1
            count("server.shed")
            raise OverloadedError(self.retry_after)
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[req.key] = fut
        self._queue.put_nowait(req)
        self.stats.jobs_submitted += 1
        count("server.jobs.submitted")
        env, cost = await fut
        return self._deliver(req, env, cost=cost)

    def _deliver(self, req: Request, env: dict, cost: float) -> dict:
        """Per-requester delivery: respond fault site, accounting, cost."""
        try:
            resilience.fault_point("server.respond", req.label)
        except resilience.FaultInjected as exc:
            env = error_envelope(
                str(exc), "FaultInjected", kind=req.kind, key=req.key
            )
            count("server.respond_faults")
        if env.get("ok"):
            self.stats.completed += 1
            count("server.completed")
        else:
            self.stats.failed += 1
            count("server.failed")
        self.request_cost.observe(cost)
        return env

    # -- dispatch ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._gate.wait()
            req = await self._queue.get()
            # Re-check after the (possibly long) dequeue wait: hold() may
            # have closed the gate while the queue was empty.
            await self._gate.wait()
            batch = [req]
            while len(batch) < self.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self.stats.batches += 1
            self.stats.batched_units += len(batch)
            count("server.batches")
            try:
                results = await loop.run_in_executor(
                    self._executor, self._run_batch, batch
                )
            except Exception as exc:  # defensive: _run_batch is total
                results = [
                    (
                        error_envelope(
                            str(exc), type(exc).__name__, kind=r.kind, key=r.key
                        ),
                        0.0,
                    )
                    for r in batch
                ]
            for r, result in zip(batch, results):
                fut = self._pending.pop(r.key, None)
                if fut is not None and not fut.done():
                    fut.set_result(result)

    def _run_batch(self, batch: list[Request]) -> list[tuple[dict, float]]:
        """Executor-thread body: one engine dispatch per distinct kind.

        Returns ``(envelope, cost)`` per request, where ``cost`` is the
        number of engine units computed for it (0 on cache hits).
        """
        out: list[tuple[dict, float] | None] = [None] * len(batch)
        unit_indices = [
            i for i, r in enumerate(batch) if r.engine_kind is not None
        ]
        if unit_indices:
            units = [
                WorkUnit(
                    kind=batch[i].engine_kind,
                    fn=batch[i].fn,
                    params=batch[i].params,
                    label=batch[i].label,
                )
                for i in unit_indices
            ]
            for i, (payload, cached, _wall, _outcome) in zip(
                unit_indices, self.engine.run_units(units)
            ):
                out[i] = (
                    response_envelope(batch[i], payload, cached),
                    0.0 if cached else 1.0,
                )
        for i, req in enumerate(batch):
            if req.kind == "sweep":
                out[i] = self._run_sweep(req)
        return [
            r
            if r is not None
            else (  # pragma: no cover - every kind is handled above
                error_envelope("unhandled request", "ServerError"),
                0.0,
            )
            for r in out
        ]

    def _run_sweep(self, req: Request) -> tuple[dict, float]:
        """Run (or serve from cache) one full differential sweep."""
        payload = self.engine.cache.get(req.key)
        if payload is not None:
            return response_envelope(req, payload, cached=True), 0.0
        p = req.params
        before = self.engine.stats.computed
        try:
            report = differential_sweep(
                num_graphs=p["graphs"],
                seed=p["seed"],
                factors=tuple(p["factors"]),
                max_nodes=p["max_nodes"],
                engine=self.engine,
                oracle=p["oracle"],
                oracle_timeout=p["oracle_timeout"],
            )
        except Exception as exc:
            return (
                error_envelope(
                    str(exc), type(exc).__name__, kind=req.kind, key=req.key
                ),
                0.0,
            )
        cost = float(self.engine.stats.computed - before)
        payload = {
            "ok": report.ok,
            "error": None,
            "summary": report.summary(),
            "graphs": report.graphs,
            "checks": report.checks,
            "equivalence_checks": report.equivalence_checks,
            "inequality_checks": report.inequality_checks,
            "oracle_checks": report.oracle_checks,
            "failures": [
                {
                    "seed": f.seed,
                    "label": f.label,
                    "kind": f.kind,
                    "detail": f.detail,
                }
                for f in report.failures
            ],
        }
        if report.oracle_records:
            payload["gap_table"] = report.gap_table()
            payload["max_gap"] = report.max_gap
        if report.ok:
            self.engine.cache.put_safe(req.key, payload)
        return response_envelope(req, payload, cached=False), cost

    # -- reporting -----------------------------------------------------

    def snapshot(self) -> dict:
        """The ``/healthz`` body: accounting, queue state, pool stats."""
        return {
            "status": "draining" if self._draining else "ok",
            "inflight": self.inflight,
            "queued": self._queue.qsize(),
            "max_inflight": self.max_inflight,
            "stats": self.stats.as_dict(),
            "engine": {
                "calls": self.engine.stats.calls,
                "computed": self.engine.stats.computed,
                "cache": self.engine.cache.stats.as_dict(),
            },
            "warm": {"wd": WD_POOL.stats()},
        }

    def publish_metrics(self) -> None:
        """Mirror service totals into the global registry (``/metrics``)."""
        m = observability.OBS.metrics
        s = self.stats
        m.gauge("server.inflight", "distinct keys queued or executing").set(
            self.inflight
        )
        m.gauge("server.queued", "requests waiting for dispatch").set(
            self._queue.qsize()
        )
        m.gauge("server.submitted", "requests received").set(s.submitted)
        m.gauge("server.deduped", "requests coalesced by single-flight").set(
            s.deduped
        )
        m.gauge("server.shed", "requests refused under load").set(s.shed)
        m.gauge(
            "server.jobs.submitted", "unique units dispatched to the engine"
        ).set(s.jobs_submitted)
        m.gauge("server.completed", "requests answered ok").set(s.completed)
        m.gauge("server.failed", "requests answered with an error").set(s.failed)
        m.gauge("server.batches", "engine batch dispatches").set(s.batches)
        m.gauge("server.warm.wd.hits", "warm (W,D) pool hits").set(
            WD_POOL.hits
        )
        m.gauge("server.warm.wd.misses", "warm (W,D) pool misses").set(
            WD_POOL.misses
        )
        self.engine.publish_metrics()
