"""Remote worker process: lease, heartbeat, execute, complete.

``python -m repro worker --connect HOST:PORT`` runs this loop against a
coordinator's work plane (a :class:`~repro.runner.remote.RemoteFabric`,
spawned by ``--workers remote`` sweeps or ``serve --distributed``):

1. **lease** a unit (``POST /v1/work/lease``) — the grant carries the
   wire task, a lease token, the lease **epoch**, the lease timeout, and
   the unit's prior dispatch count (for deterministic fault replay);
2. **renew** the lease from a daemon heartbeat thread every quarter of
   the timeout; a renewal that fails (network fault, expired lease)
   marks the worker a suspected zombie — it finishes the computation
   anyway, and the coordinator's epoch check decides;
3. **execute** through the exact
   :func:`~repro.runner.engine._pool_worker` body a local pool runs —
   same cache I/O, retry policy, fresh-per-task fault plan and
   observability deltas, so distributed results are bit-identical;
4. **complete** (``POST /v1/work/complete``) with the lease token and
   epoch; a ``{"accepted": false}`` response means the lease expired and
   the unit was requeued elsewhere — the worker logs and moves on.

Chaos hooks: ``worker.kill`` SIGKILLs the process at unit start (the
dead-host case — the lease expires and the unit requeues), and
``worker.partition`` simulates a network partition: heartbeats stop, the
worker sleeps past its own lease expiry, then executes and submits — a
zombie completion that the coordinator must discard by stale epoch.
Both advance their occurrence counters past the unit's prior dispatches,
so a ``times: 1`` spec hits the first dispatch only and the requeued
execution survives, exactly like the supervised pool.

All worker output goes to **stderr**; stdout stays silent so spawned
workers can never pollute the coordinating CLI's byte-identical output.
"""

from __future__ import annotations

import os
import sys
import threading
import time

from ..runner import resilience
from ..runner.remote import task_from_wire
from ..runner.resilience import JobOutcome, failure_payload
from .client import ClientPolicy, RemoteUnavailableError, ResilientClient

__all__ = ["worker_main"]


def _log(worker_id: str, message: str) -> None:
    print(f"repro-worker[{worker_id}]: {message}", file=sys.stderr, flush=True)


class _Heartbeat(threading.Thread):
    """Renews one lease until stopped; goes silent on the first failure.

    A failed renewal (injected ``remote.lease_renew`` fault, transport
    loss, or an ``ok: false`` answer because the lease already expired)
    sets ``lost`` and stops beating — from the coordinator's view this
    worker is now dead, and its eventual completion must lose the epoch
    race.  It does *not* abort the computation: proving the zombie
    completion is discarded is the point.
    """

    def __init__(
        self,
        client: ResilientClient,
        token: str,
        epoch: int,
        label: str,
        interval: float,
    ) -> None:
        super().__init__(name=f"lease-renew-{token}", daemon=True)
        self.client = client
        self.token = token
        self.epoch = epoch
        self.label = label
        self.interval = interval
        self.lost = False
        # Not named _stop: Thread.join() calls an internal _stop() method.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                resilience.fault_point("remote.lease_renew", self.label)
                resp = self.client.call(
                    "/v1/work/renew",
                    {"token": self.token, "epoch": self.epoch},
                    idempotent=True,
                )
            except (resilience.FaultInjected, RemoteUnavailableError):
                self.lost = True
                return
            if not resp.get("ok"):
                self.lost = True
                return

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=2.0)


def _failure_envelope(label: str, exc: BaseException) -> dict:
    return {
        "payload": failure_payload(exc, "failed"),
        "cached": False,
        "wall": 0.0,
        "outcome": JobOutcome(
            label,
            "failed",
            faults=[f"{type(exc).__name__}@worker"],
            error=str(exc),
        ).as_dict(),
        "cache_stats": {},
    }


def _execute_lease(client: ResilientClient, lease: dict, args) -> None:
    """Run one leased unit end to end (may SIGKILL itself: chaos)."""
    from ..runner.engine import _pool_worker

    doc = dict(lease["task"])
    label = doc["label"]
    token = lease["token"]
    epoch = lease["epoch"]
    idx = lease["idx"]
    lease_timeout = float(lease.get("lease_timeout", 30.0))
    prior = int(lease.get("prior_attempts", 0))
    if args.no_cache:
        doc["cache"] = None

    # Install the task's plan before any chaos hook — a worker reuses one
    # process across units, and the fresh-per-task instance (with the
    # occurrence counters advanced past prior dispatches) is what keeps
    # fault sequences identical however work lands on the fleet.
    plan_doc = doc.get("plan")
    if plan_doc is not None:
        resilience.activate(resilience.FaultPlan.from_dict(plan_doc))
    else:
        resilience.deactivate()
    resilience.worker_kill_point(label, prior)  # may not return
    partitioned = False
    plan = resilience.active_plan()
    if plan is not None:
        for _ in range(prior):
            plan.fire("worker.partition", label)
        partitioned = plan.fire("worker.partition", label) is not None

    heartbeat: _Heartbeat | None = None
    if partitioned:
        # The network is gone: no renewals ever happen, and the worker
        # lingers past its own lease's expiry before "reconnecting" —
        # guaranteeing the coordinator requeued the unit first, so this
        # completion arrives as a stale-epoch zombie.
        _log(args.id, f"partitioned while holding {label} (injected)")
        time.sleep(lease_timeout * 1.5)
    else:
        heartbeat = _Heartbeat(
            client, token, epoch, label, interval=max(0.05, lease_timeout / 4.0)
        )
        heartbeat.start()

    try:
        envelope = _pool_worker(task_from_wire(doc))
    except BaseException as exc:  # defensive: report, never die silently
        envelope = _failure_envelope(label, exc)
    finally:
        if heartbeat is not None:
            heartbeat.stop()
    if heartbeat is not None and heartbeat.lost:
        _log(args.id, f"lease renewal lost for {label}; submitting anyway")

    try:
        resp = client.call(
            "/v1/work/complete",
            {
                "token": token,
                "epoch": epoch,
                "idx": idx,
                "batch": lease.get("batch"),
                "worker": args.id,
                "envelope": envelope,
            },
            idempotent=True,
        )
    except RemoteUnavailableError as exc:
        _log(args.id, f"could not deliver {label}: {exc}")
        return
    if not resp.get("accepted"):
        _log(
            args.id,
            f"completion of {label} discarded by coordinator "
            f"({resp.get('reason', 'unknown')})",
        )


def worker_main(args) -> int:
    """The ``python -m repro worker`` entry point.

    Exit codes: 0 — coordinator finished (or ``--max-units`` reached);
    3 — coordinator unreachable through the whole retry budget.
    """
    policy = ClientPolicy(
        max_attempts=args.retry_max,
        backoff=args.retry_backoff,
        timeout=args.request_timeout,
    )
    client = ResilientClient(args.connect, policy=policy, seed=hash(args.id) & 0xFFFF)
    units = 0
    while True:
        try:
            lease = client.call(
                "/v1/work/lease", {"worker": args.id}, idempotent=True
            )
        except RemoteUnavailableError as exc:
            _log(args.id, f"coordinator unreachable: {exc}")
            return 3
        if lease.get("done"):
            _log(args.id, f"coordinator done; executed {units} unit(s)")
            return 0
        if "task" not in lease:
            wait = float(lease.get("wait", 0.05) or 0.05)
            time.sleep(min(max(wait, 0.01), args.poll_max))
            continue
        _execute_lease(client, lease, args)
        units += 1
        if args.max_units and units >= args.max_units:
            _log(args.id, f"--max-units reached; executed {units} unit(s)")
            return 0


def add_worker_arguments(parser) -> None:
    """CLI flags for the ``worker`` subcommand."""
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the coordinator's work-plane address",
    )
    parser.add_argument(
        "--id",
        default=f"worker-{os.getpid()}",
        help="worker identity in leases and journals (default: worker-<pid>)",
    )
    parser.add_argument(
        "--max-units",
        type=int,
        default=0,
        metavar="N",
        help="exit after N units (0 = run until the coordinator closes)",
    )
    parser.add_argument(
        "--poll-max",
        type=float,
        default=1.0,
        metavar="SEC",
        help="max sleep between idle lease polls",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the coordinator's shared cache spec (separate hosts)",
    )
    parser.add_argument(
        "--retry-max",
        type=int,
        default=4,
        metavar="N",
        help="client retry attempts per request",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SEC",
        help="client retry backoff base",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="SEC",
        help="per-request transport timeout",
    )
