"""Module-level work functions and warm state for the request server.

:func:`analyze_graph` is an engine unit of work (importable, JSON in /
JSON out — the process-pool pickling contract, same as
:func:`repro.runner.jobs.execute_job`).  Two warm pools make the
server's repeat-heavy traffic cheap even on cache misses:

* :data:`WD_POOL` keeps the shared (W, D) kernels
  (:class:`~repro.graph.wd.WDKernel` — dense matrices plus lazily
  materialized dicts) of recently analyzed graphs, fed into
  :func:`~repro.retiming.optimal.minimize_cycle_period` via its ``wd=``
  parameter, so warm-pool hits skip the flat edge-array rebuild too;
* the compiled-program pool of :mod:`repro.machine.dispatch`
  (:func:`~repro.machine.dispatch.warm_program`) keeps built CSR
  programs alive so the id-keyed dispatch compilation cache hits across
  requests.

Both pools are bounded LRUs and pure content caches — evicting or
clearing them can change only speed, never payload bytes.
"""

from __future__ import annotations

import hashlib
import time

from ..core.codesize import size_csr_pipelined, size_pipelined
from ..core.csr import csr_pipelined_loop
from ..core.verify import assert_equivalent
from ..graph.dfg import DFGError
from ..graph.iteration_bound import iteration_bound
from ..graph.period import cycle_period
from ..graph.serialize import from_json
from ..graph.wd import wd_kernel
from ..machine.dispatch import WarmPool, warm_program
from ..machine.vm import run_program
from ..observability import span
from ..retiming.optimal import minimize_cycle_period

__all__ = ["WD_POOL", "analyze_graph", "graph_digest"]

#: Warm shared-(W, D) matrices, keyed by graph digest.
WD_POOL = WarmPool(capacity=256)


def graph_digest(graph_json: str) -> str:
    """Short content digest of a serialized graph (warm-pool key)."""
    return hashlib.sha256(graph_json.encode()).hexdigest()[:16]


def analyze_graph(params: dict) -> dict:
    """Engine unit: full analysis payload for one serialized graph.

    ``params``: ``{"graph": <DFG JSON>, "trip_count": n, "verify": bool}``.
    Failures are in-band (``{"ok": False, ...}``), like every engine
    unit, so one malformed graph cannot take down a batch.
    """
    start = time.perf_counter()
    n = params["trip_count"]
    with span("server.analyze", n=n):
        try:
            graph_json = params["graph"]
            g = from_json(graph_json)
            digest = graph_digest(graph_json)
            wd = WD_POOL.get_or_build(digest, lambda: wd_kernel(g))
            period, r = minimize_cycle_period(g, method="shared", wd=wd)
            program = warm_program(
                ("csr-pipelined", digest), lambda: csr_pipelined_loop(g, r)
            )
            payload = {
                "graph": g.name,
                "nodes": g.num_nodes,
                "edges": g.num_edges,
                "period_original": cycle_period(g),
                "period": period,
                "iteration_bound": str(iteration_bound(g)),
                "registers": r.registers_needed(),
                "max_retiming": r.max_value,
                "code_size_original": g.num_nodes,
                "code_size_pipelined": size_pipelined(g, r),
                "code_size_csr": size_csr_pipelined(g, r),
            }
            if params["verify"]:
                result = assert_equivalent(g, program, n)
                payload["equivalent"] = True
            else:
                result = run_program(program, n)
            payload["executed"] = result.executed
            payload["disabled"] = result.disabled
            payload["ok"] = True
            payload["error"] = None
        except DFGError as exc:
            payload = {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
    payload["compute_time"] = time.perf_counter() - start
    return payload
