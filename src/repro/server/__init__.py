"""Retiming-as-a-service: the async request server.

The analysis/transformation pipeline as a long-running service
(``python -m repro serve``) — stdlib-only HTTP over TCP or a unix
socket, requests keyed by the same content addresses the experiment
engine caches under, single-flight deduplication of identical in-flight
work, batched dispatch into the engine, bounded-queue load shedding, and
warm pools for the hot per-graph state.  See ``docs/SERVER.md``.

Layers:

* :mod:`repro.server.protocol` — request validation/normalization,
  content-address computation, response envelopes;
* :mod:`repro.server.work` — the ``analyze`` engine unit and the warm
  (W, D) pool;
* :mod:`repro.server.service` — :class:`RetimingService`: single-flight,
  batching, shedding, accounting, drain;
* :mod:`repro.server.http` — the raw asyncio HTTP/1.1 transport;
* :mod:`repro.server.app` — process lifecycle (config, signals, drain).
"""

from .app import ServerConfig, serve_main
from .client import (
    CircuitOpenError,
    ClientPolicy,
    RemoteOffloadExecutor,
    RemoteUnavailableError,
    ResilientClient,
)
from .http import HttpFrontend
from .protocol import (
    ProtocolError,
    REQUEST_KINDS,
    Request,
    canonical_bytes,
    error_envelope,
    parse_request,
    response_envelope,
)
from .service import (
    OverloadedError,
    RetimingService,
    ServerStats,
    ServiceClosedError,
)

from .worker import worker_main

__all__ = [
    "CircuitOpenError",
    "ClientPolicy",
    "HttpFrontend",
    "OverloadedError",
    "RemoteOffloadExecutor",
    "RemoteUnavailableError",
    "ResilientClient",
    "ProtocolError",
    "REQUEST_KINDS",
    "Request",
    "RetimingService",
    "ServerConfig",
    "ServerStats",
    "ServiceClosedError",
    "canonical_bytes",
    "error_envelope",
    "parse_request",
    "response_envelope",
    "serve_main",
    "worker_main",
]
