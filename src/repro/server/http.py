"""Minimal asyncio HTTP/1.1 transport for the retiming service.

Stdlib only — raw request parsing over ``asyncio`` streams, one request
per connection (``Connection: close``).  Three routes:

* ``GET /healthz`` — the service :meth:`~RetimingService.snapshot`
  (status, queue depth, accounting), status 200 or 503 while draining;
* ``GET /metrics`` — Prometheus text exposition of the global metrics
  registry, after :meth:`~RetimingService.publish_metrics`;
* ``POST /v1/request`` — one protocol request
  (:func:`repro.server.protocol.parse_request`), answered with a JSON
  envelope.

Status mapping keeps every failure structured — a client always gets a
JSON body with ``ok``/``error``/``error_type``, never a hung socket:

========================  ======  =================================
condition                 status  body
========================  ======  =================================
malformed JSON / request  400     ``ProtocolError`` envelope
unknown route             404     ``NotFound`` envelope
shed (queue full)         503     envelope with ``retry_after``
draining                  503     ``ServiceClosedError`` + ``retry_after``
injected/unknown fault    500     structured error envelope
========================  ======  =================================

The ``server.accept`` fault site fires between parsing and dispatch, so
an injected accept fault exercises exactly the 500 path above.  Reads
are bounded by ``read_timeout`` and body size by ``MAX_BODY``.
"""

from __future__ import annotations

import asyncio
import json

from ..observability import count
from ..runner import resilience
from .protocol import ProtocolError, canonical_bytes, error_envelope, parse_request
from .service import OverloadedError, RetimingService, ServiceClosedError

__all__ = ["HttpFrontend", "MAX_BODY"]

#: Largest accepted request body, in bytes (covers any workload graph by
#: orders of magnitude; a guard against unbounded buffering, not a quota).
MAX_BODY = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpFrontend:
    """One listening endpoint (TCP or unix socket) over one service."""

    def __init__(
        self,
        service: RetimingService,
        *,
        read_timeout: float = 30.0,
    ) -> None:
        self.service = service
        self.read_timeout = read_timeout
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle -----------------------------------------------------

    async def start_tcp(self, host: str, port: int) -> tuple[str, int]:
        """Listen on ``host:port``; returns the bound address (for port 0)."""
        await self.service.start()
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    async def start_unix(self, path: str) -> str:
        """Listen on a unix domain socket at ``path``."""
        await self.service.start()
        self._server = await asyncio.start_unix_server(self._handle, path)
        return path

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body = await self._respond(reader)
            await self._write(writer, status, body)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError, ConnectionError):
            # A dead or dawdling client: nothing useful to answer.
            count("server.http.aborted")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        """Parse one request off the wire and produce (status, body)."""
        method, path, headers = await self._read_head(reader)
        if path == "/healthz":
            if method != "GET":
                return 405, error_envelope("use GET", "MethodNotAllowed")
            snap = self.service.snapshot()
            return (503 if self.service.draining else 200), snap
        if path == "/metrics":
            if method != "GET":
                return 405, error_envelope("use GET", "MethodNotAllowed")
            # /metrics returns raw exposition text, flagged via a marker
            # key the writer understands.
            self.service.publish_metrics()
            from .. import observability

            return 200, {"__text__": observability.OBS.metrics.to_prometheus()}
        if path != "/v1/request":
            return 404, error_envelope(f"no route {path}", "NotFound")
        if method != "POST":
            return 405, error_envelope("use POST", "MethodNotAllowed")

        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            return 413, error_envelope(
                f"body of {length} bytes exceeds {MAX_BODY}", "PayloadTooLarge"
            )
        raw = await asyncio.wait_for(
            reader.readexactly(length), timeout=self.read_timeout
        )
        try:
            doc = json.loads(raw) if raw else {}
        except ValueError as exc:
            return 400, error_envelope(f"invalid JSON: {exc}", "ProtocolError")

        try:
            req = parse_request(doc)
        except ProtocolError as exc:
            count("server.http.bad_requests")
            return 400, error_envelope(str(exc), "ProtocolError")

        try:
            resilience.fault_point("server.accept", f"{method} {path}")
            env = await self.service.submit(req)
            return (200 if env.get("ok") else 500), env
        except OverloadedError as exc:
            return 503, error_envelope(
                str(exc),
                "OverloadedError",
                kind=req.kind,
                key=req.key,
                retry_after=exc.retry_after,
            )
        except ServiceClosedError as exc:
            return 503, error_envelope(
                str(exc),
                "ServiceClosedError",
                kind=req.kind,
                key=req.key,
                retry_after=getattr(exc, "retry_after", None),
            )
        except resilience.FaultInjected as exc:
            count("server.accept_faults")
            return 500, error_envelope(
                str(exc), "FaultInjected", kind=req.kind, key=req.key
            )

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str]]:
        """Request line + headers, normalized; raises on malformed input."""
        line = await asyncio.wait_for(
            reader.readline(), timeout=self.read_timeout
        )
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise asyncio.IncompleteReadError(line, None)
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.read_timeout
            )
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _write(
        self, writer: asyncio.StreamWriter, status: int, body: dict
    ) -> None:
        if "__text__" in body:
            payload = body["__text__"].encode()
            ctype = "text/plain; version=0.0.4"
        else:
            payload = canonical_bytes(body)
            ctype = "application/json"
        retry_after = body.get("retry_after")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        if retry_after is not None:
            head.append(f"Retry-After: {retry_after:g}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        count("server.http.responses")
