"""Request/response protocol of the retiming service.

A request is a JSON object ``{"kind": ..., "params": {...}}``.  Four
kinds exist:

``analyze``
    Graph analysis: original and retimed cycle periods, iteration bound,
    register counts, code sizes, plus a prove-by-execution verification
    of the CSR program.  ``params``: exactly one of ``graph`` (a DFG
    JSON document, string or object) or ``workload`` (a registry name),
    optional ``trip_count`` (default 20) and ``verify`` (default true).

``transform``
    One cell of the experiment matrix — the exact unit of work
    ``python -m repro sweep`` executes.  ``params``: the graph as above
    plus ``transform`` (any :data:`repro.runner.jobs.TRANSFORMS` entry
    except ``oracle``), ``factor``, ``trip_count``, ``verify``.

``oracle``
    The exact-optimality battery of :mod:`repro.optimal` on one graph
    (PR 6's ``--oracle`` sweep mode as a request).  ``params``: the
    graph, optional ``oracle_timeout`` seconds.

``sweep``
    A full randomized differential sweep.  ``params``: ``graphs``,
    ``seed``, ``factors``, ``max_nodes``, ``oracle``, ``oracle_timeout``
    — same defaults as the CLI, and the response's ``summary`` field is
    byte-identical to ``python -m repro sweep`` stdout for the same
    parameters.

Normalization is the load-bearing step: workload names resolve to their
serialized graphs and explicit graphs are canonicalized through a
``from_json``/``to_json`` round trip, so the request's *content address*
(:attr:`Request.key`) is a pure function of graph structure and
parameters.  ``transform``/``oracle`` requests reuse the engine's
``"job"`` cache namespace — a server response and a CLI sweep cell for
the same work share one cache entry, which is what makes the
server-vs-CLI differential test byte-identical for free.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..graph.dfg import DFGError
from ..graph.serialize import from_json, to_json
from ..runner.cache import cache_key
from ..runner.jobs import TRANSFORMS, Job, execute_job
from ..workloads.registry import get_workload
from .work import analyze_graph

__all__ = [
    "ProtocolError",
    "REQUEST_KINDS",
    "Request",
    "canonical_bytes",
    "error_envelope",
    "parse_request",
    "response_envelope",
]

#: Request kinds the server accepts.
REQUEST_KINDS: tuple[str, ...] = ("analyze", "transform", "oracle", "sweep")

#: ``sweep`` parameter defaults — kept equal to the CLI flag defaults so
#: an empty-params sweep request means exactly ``python -m repro sweep``.
SWEEP_DEFAULTS: dict = {
    "graphs": 200,
    "seed": 0,
    "factors": [2, 3],
    "max_nodes": 6,
    "oracle": False,
    "oracle_timeout": None,
}


class ProtocolError(ValueError):
    """A malformed request (HTTP 400): bad kind, params, or graph."""


@dataclass(frozen=True)
class Request:
    """One validated, normalized request.

    ``key`` is the content address used for caching *and* single-flight
    dedup; ``engine_kind``/``fn`` describe the engine unit for unit
    kinds and are ``None`` for ``sweep`` (a composite the service runs
    through the engine itself).
    """

    kind: str
    params: dict
    key: str
    label: str
    engine_kind: str | None = None
    fn: object = field(default=None, compare=False)


def _int(params: dict, name: str, default: int) -> int:
    value = params.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{name} must be an integer, got {value!r}")
    return value


def _bool(params: dict, name: str, default: bool) -> bool:
    value = params.get(name, default)
    if not isinstance(value, bool):
        raise ProtocolError(f"{name} must be a boolean, got {value!r}")
    return value


def _graph_json(params: dict) -> str:
    """The canonical serialized graph a request's params name.

    Exactly one of ``workload`` / ``graph`` must be present; explicit
    graphs round-trip through the serializer so structurally equal
    graphs always produce the same bytes (and therefore the same key).
    """
    graph = params.get("graph")
    workload = params.get("workload")
    if (graph is None) == (workload is None):
        raise ProtocolError("exactly one of graph / workload is required")
    if workload is not None:
        if not isinstance(workload, str):
            raise ProtocolError(f"workload must be a string, got {workload!r}")
        try:
            g = get_workload(workload)
        except KeyError:
            raise ProtocolError(f"unknown workload {workload!r}") from None
        return to_json(g, indent=None)
    if isinstance(graph, dict):
        graph = json.dumps(graph)
    if not isinstance(graph, str):
        raise ProtocolError("graph must be a DFG JSON document (string or object)")
    try:
        g = from_json(graph)
    except DFGError as exc:
        raise ProtocolError(f"invalid graph: {exc}") from None
    return to_json(g, indent=None)


def _graph_name(graph_json: str) -> str:
    try:
        return json.loads(graph_json).get("name") or "dfg"
    except ValueError:  # pragma: no cover - graph_json is canonical
        return "dfg"


def parse_request(doc: object) -> Request:
    """Validate and normalize one decoded request document."""
    if not isinstance(doc, dict):
        raise ProtocolError("request must be a JSON object")
    kind = doc.get("kind")
    if kind not in REQUEST_KINDS:
        raise ProtocolError(
            f"unknown request kind {kind!r}; one of {REQUEST_KINDS}"
        )
    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("params must be a JSON object")

    if kind == "sweep":
        nparams = dict(SWEEP_DEFAULTS)
        nparams["graphs"] = _int(params, "graphs", nparams["graphs"])
        nparams["seed"] = _int(params, "seed", nparams["seed"])
        nparams["max_nodes"] = _int(params, "max_nodes", nparams["max_nodes"])
        nparams["oracle"] = _bool(params, "oracle", nparams["oracle"])
        factors = params.get("factors", nparams["factors"])
        if not (
            isinstance(factors, list)
            and factors
            and all(isinstance(f, int) and not isinstance(f, bool) for f in factors)
        ):
            raise ProtocolError(f"factors must be a non-empty integer list, got {factors!r}")
        nparams["factors"] = list(factors)
        timeout = params.get("oracle_timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ProtocolError(f"oracle_timeout must be a number, got {timeout!r}")
        nparams["oracle_timeout"] = timeout
        if nparams["graphs"] < 1:
            raise ProtocolError(f"graphs must be >= 1, got {nparams['graphs']}")
        return Request(
            kind="sweep",
            params=nparams,
            key=cache_key("sweep", nparams),
            label=f"sweep/graphs={nparams['graphs']}/seed={nparams['seed']}",
        )

    graph_json = _graph_json(params)

    if kind == "analyze":
        nparams = {
            "graph": graph_json,
            "trip_count": _int(params, "trip_count", 20),
            "verify": _bool(params, "verify", True),
        }
        if nparams["trip_count"] < 0:
            raise ProtocolError(f"trip_count must be >= 0, got {nparams['trip_count']}")
        label = f"{_graph_name(graph_json)}/analyze/n={nparams['trip_count']}"
        return Request(
            kind="analyze",
            params=nparams,
            key=cache_key("analyze", nparams),
            label=label,
            engine_kind="analyze",
            fn=analyze_graph,
        )

    if kind == "oracle":
        timeout = params.get("oracle_timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ProtocolError(f"oracle_timeout must be a number, got {timeout!r}")
        job = Job(
            transform="oracle",
            graph_json=graph_json,
            factor=1,
            trip_count=0,
            verify=False,
            oracle_timeout=timeout,
        )
    else:  # transform
        transform = params.get("transform")
        if transform == "oracle":
            raise ProtocolError('use kind "oracle" for oracle requests')
        if transform not in TRANSFORMS:
            raise ProtocolError(
                f"unknown transform {transform!r}; one of {TRANSFORMS}"
            )
        factor = _int(params, "factor", 1)
        trip_count = _int(params, "trip_count", 20)
        if factor < 1:
            raise ProtocolError(f"factor must be >= 1, got {factor}")
        if trip_count < 0:
            raise ProtocolError(f"trip_count must be >= 0, got {trip_count}")
        job = Job(
            transform=transform,
            graph_json=graph_json,
            factor=factor,
            trip_count=trip_count,
            verify=_bool(params, "verify", True),
        )
    job_params = job.to_params()
    return Request(
        kind=kind,
        params=job_params,
        key=cache_key("job", job_params),
        label=job.label,
        engine_kind="job",
        fn=execute_job,
    )


def response_envelope(req: Request, payload: dict, cached: bool) -> dict:
    """The success-path response body (``ok`` mirrors the payload's)."""
    return {
        "ok": bool(payload.get("ok", False)),
        "kind": req.kind,
        "key": req.key,
        "cached": bool(cached),
        "payload": payload,
    }


def error_envelope(
    error: str,
    error_type: str,
    kind: str | None = None,
    key: str | None = None,
    retry_after: float | None = None,
) -> dict:
    """A structured error response body (shed, fault, bad request)."""
    env: dict = {
        "ok": False,
        "error": error,
        "error_type": error_type,
    }
    if kind is not None:
        env["kind"] = kind
    if key is not None:
        env["key"] = key
    if retry_after is not None:
        env["retry_after"] = retry_after
    return env


def canonical_bytes(doc: dict) -> bytes:
    """Canonical JSON bytes of a response body.

    One rendering for every transport (and for the byte-identical
    differential tests): sorted keys, no whitespace, UTF-8.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
