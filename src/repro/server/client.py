"""Chaos-proof HTTP client: retries, circuit breaking, hedging, degradation.

Both halves of the distributed fabric talk through
:class:`ResilientClient` — the worker loop (lease / renew / complete
against the coordinator's work plane) and ``--workers remote`` sweeps
offloading units to a ``python -m repro serve`` daemon — so the failure
discipline lives in exactly one place:

* **capped-exponential retry with deterministic jitter**, honoring a
  503 response's ``Retry-After`` before the next attempt;
* a **per-endpoint circuit breaker** (closed → open after consecutive
  transport failures → half-open with a single probe request → closed on
  probe success), so a dead coordinator costs one fast
  :class:`CircuitOpenError` per call instead of a full retry ladder;
* **request hedging** for idempotent reads: when the primary attempt is
  slow, a second identical request races it and the first response wins.
  Hedging is safe here *by construction* — the server single-flights on
  content address, so a hedge duplicate joins the in-flight computation
  rather than doubling work;
* **structured degradation**: :class:`RemoteOffloadExecutor` runs any
  unit the server cannot take (unreachable, shedding past the retry
  budget, protocol mismatch) locally through the same cached worker
  body, so a sweep survives the total loss of its coordinator.

The network-shaped fault sites (``remote.connect``, ``remote.send``,
``remote.recv``) fire inside the default transport, making every retry /
breaker / hedge path reachable under a deterministic seeded
:class:`~repro.runner.resilience.FaultPlan`.  ``remote.recv`` is the
treacherous one — it fires *after* the response is read, simulating a
reply lost on the wire after the server committed the work; the retry is
correct only because requests are idempotent (dedup + lease epochs).

Everything is injectable (``transport``, ``clock``, ``sleep``), so the
full state machine is unit-testable without sockets or real seconds.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from http.client import HTTPConnection, HTTPException

from .. import observability
from ..observability import count
from ..runner import resilience
from ..runner.remote import run_task_local

__all__ = [
    "CircuitOpenError",
    "ClientPolicy",
    "RemoteOffloadExecutor",
    "RemoteUnavailableError",
    "ResilientClient",
]


class RemoteUnavailableError(Exception):
    """The endpoint stayed unreachable through the whole retry budget."""


class CircuitOpenError(RemoteUnavailableError):
    """Failing fast: the endpoint's circuit breaker is open."""


@dataclass(frozen=True)
class ClientPolicy:
    """Retry / breaker / hedging knobs for one client.

    ``backoff * 2**(attempt-1)`` (capped at ``backoff_cap``) scaled by a
    deterministic jitter in ``[0.5, 1.0)`` is slept between attempts; a
    503's ``Retry-After`` raises the floor.  ``breaker_threshold``
    consecutive transport failures open an endpoint's breaker for
    ``breaker_reset`` seconds, after which one probe is admitted.
    ``hedge_delay`` is how long an idempotent hedged request waits for
    the primary before racing a duplicate.
    """

    max_attempts: int = 4
    backoff: float = 0.05
    backoff_cap: float = 2.0
    timeout: float = 30.0
    breaker_threshold: int = 5
    breaker_reset: float = 10.0
    hedge_delay: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )


def _jitter(seed: int, path: str, attempt: int) -> float:
    """Deterministic backoff scale in ``[0.5, 1.0)`` (cf. the fault coin)."""
    h = hashlib.sha256(f"{seed}|{path}|{attempt}".encode()).digest()
    return 0.5 + (int.from_bytes(h[:8], "big") / 2**64) * 0.5


class _Breaker:
    """Per-endpoint circuit breaker state (guarded by the client lock)."""

    def __init__(self, threshold: int, reset: float) -> None:
        self.threshold = threshold
        self.reset = reset
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0

    def allow(self, now: float) -> bool:
        if self.state == "closed":
            return True
        if self.state == "open" and now - self.opened_at >= self.reset:
            self.state = "half-open"  # admit exactly one probe
            return True
        return False

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0

    def record_failure(self, now: float) -> bool:
        """Returns True when this failure *opens* the breaker."""
        self.failures += 1
        opening = (
            self.state == "half-open" or self.failures >= self.threshold
        ) and self.state != "open"
        if opening:
            self.state = "open"
        if self.state == "open":
            self.opened_at = now
        return opening


class ResilientClient:
    """HTTP JSON client hardened for a hostile network.

    ``address`` is ``host:port``.  ``transport(method, path, body_bytes)``
    must return ``(status, headers_lowercase, body_bytes)`` or raise; the
    default speaks real HTTP via :class:`http.client.HTTPConnection` with
    the ``remote.*`` fault sites armed.  Thread-safe: the worker's
    heartbeat thread and main loop share one instance.
    """

    def __init__(
        self,
        address: str,
        policy: ClientPolicy | None = None,
        seed: int = 0,
        transport=None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"address must be host:port, got {address!r}")
        self.host = host
        self.port = int(port)
        self.policy = policy if policy is not None else ClientPolicy()
        self.seed = seed
        self.transport = transport if transport is not None else self._http
        self.clock = clock
        self.sleep = sleep
        self.retries = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.breaker_opens = 0
        self._lock = threading.Lock()
        self._breakers: dict[str, _Breaker] = {}

    # -- default transport ---------------------------------------------

    def _http(self, method: str, path: str, body: bytes | None):
        resilience.fault_point("remote.connect", path)
        conn = HTTPConnection(self.host, self.port, timeout=self.policy.timeout)
        try:
            resilience.fault_point("remote.send", path)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            # The response was fully processed server-side; losing it now
            # is the nastiest network fault there is.
            resilience.fault_point("remote.recv", path)
            return (
                resp.status,
                {k.lower(): v for k, v in resp.getheaders()},
                raw,
            )
        finally:
            conn.close()

    # -- breaker plumbing ----------------------------------------------

    def _breaker(self, path: str) -> _Breaker:
        b = self._breakers.get(path)
        if b is None:
            b = self._breakers[path] = _Breaker(
                self.policy.breaker_threshold, self.policy.breaker_reset
            )
        return b

    def breaker_state(self, path: str) -> str:
        with self._lock:
            return self._breaker(path).state

    # -- request machinery ---------------------------------------------

    def _fire(self, method: str, path: str, body: bytes | None, hedge: bool):
        """One attempt, optionally hedged against its own slowness."""
        if not hedge:
            return self.transport(method, path, body)
        results: queue.Queue = queue.Queue()

        def runner(tag: str) -> None:
            try:
                results.put((tag, self.transport(method, path, body), None))
            except Exception as exc:
                results.put((tag, None, exc))

        threading.Thread(target=runner, args=("primary",), daemon=True).start()
        launched = 1
        try:
            tag, res, exc = results.get(timeout=self.policy.hedge_delay)
        except queue.Empty:
            with self._lock:
                self.hedges += 1
            count("client.hedges")
            threading.Thread(target=runner, args=("hedge",), daemon=True).start()
            launched = 2
            tag, res, exc = results.get()
        received = 1
        while exc is not None and received < launched:
            tag, res, exc = results.get()
            received += 1
        if exc is not None:
            raise exc
        if tag == "hedge":
            with self._lock:
                self.hedge_wins += 1
            count("client.hedge_wins")
        return res

    def request(
        self,
        path: str,
        doc: dict | None = None,
        method: str = "POST",
        idempotent: bool = False,
        hedge: bool = False,
    ) -> tuple[int, dict, dict]:
        """One logical request through the full resilience stack.

        Returns ``(status, headers, body_dict)`` for any HTTP response
        the server produced (including 4xx/5xx — those are *answers*,
        the caller's policy problem).  Raises :class:`CircuitOpenError`
        without touching the network while the endpoint's breaker is
        open, and :class:`RemoteUnavailableError` when every attempt
        failed at the transport level.  Transport failures are only
        retried for idempotent requests beyond the first attempt —
        every request in this protocol is idempotent by construction,
        but the contract is explicit at the call sites.
        """
        body = (
            json.dumps(doc).encode() if doc is not None else None
        )
        breaker = self._breaker(path)
        attempts = self.policy.max_attempts if idempotent else 1
        hedging = hedge and idempotent
        last_exc: Exception | None = None
        for attempt in range(1, attempts + 1):
            with self._lock:
                admitted = breaker.allow(self.clock())
            if not admitted:
                count("client.breaker_fastfail")
                raise CircuitOpenError(
                    f"circuit open for {self.host}:{self.port}{path}"
                )
            try:
                status, headers, raw = self._fire(method, path, body, hedging)
            except Exception as exc:
                last_exc = exc
                with self._lock:
                    opened = breaker.record_failure(self.clock())
                if opened:
                    self.breaker_opens += 1
                    count("client.breaker_open")
                if attempt < attempts:
                    self.retries += 1
                    count("client.retries")
                    self.sleep(self._delay(path, attempt))
                continue
            with self._lock:
                breaker.record_success()
            parsed = self._parse(raw)
            if status == 503 and attempt < attempts:
                retry_after = self._retry_after(headers, parsed)
                self.retries += 1
                count("client.retries")
                self.sleep(max(self._delay(path, attempt), retry_after))
                continue
            return status, headers, parsed
        raise RemoteUnavailableError(
            f"{self.host}:{self.port}{path} unreachable after "
            f"{attempts} attempt(s): {last_exc}"
        ) from last_exc

    def call(self, path: str, doc: dict | None = None, **kw) -> dict:
        """``request`` returning just the parsed body (any status)."""
        _, _, body = self.request(path, doc, **kw)
        return body

    def _delay(self, path: str, attempt: int) -> float:
        base = min(
            self.policy.backoff * 2 ** (attempt - 1), self.policy.backoff_cap
        )
        return base * _jitter(self.seed, path, attempt)

    @staticmethod
    def _parse(raw: bytes) -> dict:
        try:
            doc = json.loads(raw) if raw else {}
        except ValueError:
            return {"raw": raw.decode(errors="replace")}
        return doc if isinstance(doc, dict) else {"raw": doc}

    @staticmethod
    def _retry_after(headers: dict, body: dict) -> float:
        value = headers.get("retry-after") or body.get("retry_after") or 0.0
        try:
            return max(0.0, float(value))
        except (TypeError, ValueError):
            return 0.0

    def stats_line(self) -> str:
        return (
            f"{self.retries} retries, {self.hedges} hedges "
            f"({self.hedge_wins} won), {self.breaker_opens} breaker opens"
        )


class RemoteOffloadExecutor:
    """Engine executor that ships units to a ``repro serve`` coordinator.

    The ``--workers remote --coordinator HOST:PORT`` mode: each sweep
    cell becomes a ``/v1/request`` transform/oracle request (hedged —
    the server single-flights on the unit's content address, so a hedge
    joins rather than recomputes), and any unit the coordinator cannot
    answer — unreachable, open breaker, shedding past the retry budget,
    a kind the protocol cannot express — degrades to local execution of
    the *same* cached worker body.  Mirrors the ``SupervisedPool.run``
    contract (submission-order envelopes, per-completion ``on_result``),
    so the engine cannot tell it from a local pool.
    """

    def __init__(
        self,
        address: str,
        client: ResilientClient | None = None,
        concurrency: int = 8,
        hedge: bool = True,
        policy: ClientPolicy | None = None,
    ) -> None:
        self.client = (
            client if client is not None else ResilientClient(address, policy=policy)
        )
        self.concurrency = max(1, concurrency)
        self.hedge = hedge
        self.journal = None  # assigned by the engine per batch; unused
        self.offloaded = 0
        self.local_units = 0

    @staticmethod
    def _request_doc(task: tuple) -> dict | None:
        """The ``/v1/request`` document for one task, if expressible."""
        fn, params, _key, _cache, _obs, _label, _policy, _plan = task
        if f"{fn.__module__}:{fn.__qualname__}" != "repro.runner.jobs:execute_job":
            return None
        if params.get("trace"):
            return None  # the wire protocol has no trace knob
        if params["transform"] == "oracle":
            return {
                "kind": "oracle",
                "params": {
                    "graph": params["graph"],
                    "oracle_timeout": params.get("oracle_timeout"),
                },
            }
        return {
            "kind": "transform",
            "params": {
                "graph": params["graph"],
                "transform": params["transform"],
                "factor": params["factor"],
                "trip_count": params["trip_count"],
                "verify": params["verify"],
            },
        }

    def _offload_one(self, doc: dict, key: str, label: str) -> dict | None:
        """One unit against the coordinator; ``None`` = run it locally."""
        try:
            status, _headers, body = self.client.request(
                "/v1/request", doc, idempotent=True, hedge=self.hedge
            )
        except RemoteUnavailableError:
            return None
        if status != 200 or "payload" not in body or body.get("key") != key:
            # An error envelope (shed past the budget, injected server
            # fault, version skew on the content address) — the unit
            # still owes a result; compute it here.
            return None
        cached = bool(body.get("cached"))
        envelope = {
            "payload": body["payload"],
            "cached": cached,
            "wall": 0.0,
            "cache_stats": {},
        }
        if not cached:
            envelope["outcome"] = resilience.JobOutcome(label, "ok").as_dict()
        return envelope

    def run(self, tasks: list[tuple], on_result=None) -> list[dict]:
        """Execute every task: offload what the server takes, run the rest.

        Submission-order envelopes; ``on_result`` fires per completion on
        this thread (``as_completed`` drains here), keeping journal
        appends single-threaded.
        """
        if not tasks:
            return []
        envelopes: list[dict | None] = [None] * len(tasks)
        docs = [self._request_doc(t) for t in tasks]
        local = [i for i in range(len(tasks)) if docs[i] is None]
        remote = [i for i in range(len(tasks)) if docs[i] is not None]
        if remote:
            with ThreadPoolExecutor(
                max_workers=min(self.concurrency, len(remote))
            ) as pool:
                futures = {
                    pool.submit(
                        self._offload_one, docs[i], tasks[i][2], tasks[i][5]
                    ): i
                    for i in remote
                }
                for fut in as_completed(futures):
                    i = futures[fut]
                    envelope = fut.result()
                    if envelope is None:
                        local.append(i)
                        continue
                    envelopes[i] = envelope
                    self.offloaded += 1
                    count("client.offloaded")
                    if on_result is not None:
                        on_result(i, envelope)
        for i in sorted(local):
            # Structured degradation: same cached worker body, inline.
            envelope = run_task_local(tasks[i])
            envelopes[i] = envelope
            self.local_units += 1
            count("client.local_fallback")
            if on_result is not None:
                on_result(i, envelope)
        return envelopes  # type: ignore[return-value]

    def close(self) -> None:
        pass  # nothing persistent: connections are per-request

    def stats_line(self) -> str:
        return (
            f"{self.offloaded} units offloaded, {self.local_units} run "
            f"locally ({self.client.stats_line()})"
        )

    def publish_metrics(self) -> None:
        m = observability.OBS.metrics
        m.gauge("client.offloaded_units", "units answered by the coordinator").set(
            self.offloaded
        )
        m.gauge("client.local_fallback_units", "units degraded to local").set(
            self.local_units
        )
        m.gauge("client.breaker_opens", "circuit-breaker open transitions").set(
            self.client.breaker_opens
        )
