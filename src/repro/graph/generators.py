"""Random data-flow-graph generators.

Used by the property-based test-suite and by the algorithm benchmarks to
exercise the retiming/unfolding/codegen pipeline on inputs far away from the
six hand-built DSP benchmarks.  All generators are deterministic functions
of an explicit :class:`random.Random` instance (no global RNG state).

Every generated graph is a *legal loop body*: delays are non-negative and
the zero-delay subgraph is acyclic (guaranteed by only ever adding
zero-delay edges in the forward direction of a fixed node order).
"""

from __future__ import annotations

import random
from typing import Sequence

from .dfg import DFG, OpKind

__all__ = ["random_dfg", "random_unit_time_dfg", "line_dfg", "ring_dfg"]

# Operations that accept any number of inputs; used for random nodes so the
# generator never has to fix up arities.
_VARIADIC_OPS: Sequence[OpKind] = (OpKind.ADD, OpKind.MUL, OpKind.SUB)


def random_dfg(
    rng: random.Random,
    num_nodes: int = 6,
    extra_edges: int = 4,
    max_delay: int = 3,
    max_time: int = 1,
    back_edge_prob: float = 0.5,
    name: str = "random",
) -> DFG:
    """A random legal cyclic DFG.

    Construction: nodes ``n0..n{k-1}`` in a fixed order; a spanning chain of
    forward edges with random (possibly zero) delays keeps the graph
    connected; ``extra_edges`` additional edges are added, where forward
    edges may have any delay in ``[0, max_delay]`` and backward edges (which
    create cycles) have delay in ``[1, max_delay]`` so the zero-delay
    subgraph stays acyclic.  With ``back_edge_prob > 0`` the graph is cyclic
    with high probability.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if max_delay < 1:
        raise ValueError("max_delay must be >= 1")
    g = DFG(name)
    names = [f"n{i}" for i in range(num_nodes)]
    for n in names:
        g.add_node(
            n,
            time=rng.randint(1, max_time),
            op=rng.choice(_VARIADIC_OPS),
            imm=rng.randint(-4, 4),
        )
    for i in range(1, num_nodes):
        g.add_edge(names[i - 1], names[i], delay=rng.randint(0, max_delay))
    for _ in range(extra_edges):
        i = rng.randrange(num_nodes)
        j = rng.randrange(num_nodes)
        if i == j:
            # Self loop: always needs a delay.
            g.add_edge(names[i], names[j], delay=rng.randint(1, max_delay))
        elif i < j and rng.random() >= back_edge_prob:
            g.add_edge(names[i], names[j], delay=rng.randint(0, max_delay))
        else:
            src, dst = (names[max(i, j)], names[min(i, j)])
            g.add_edge(src, dst, delay=rng.randint(1, max_delay))
    return g


def random_unit_time_dfg(
    rng: random.Random,
    num_nodes: int = 6,
    extra_edges: int = 4,
    max_delay: int = 3,
    name: str = "random-unit",
) -> DFG:
    """Like :func:`random_dfg` but with unit-time nodes (the paper's setting)."""
    return random_dfg(
        rng,
        num_nodes=num_nodes,
        extra_edges=extra_edges,
        max_delay=max_delay,
        max_time=1,
        name=name,
    )


def line_dfg(num_nodes: int, delay_last: int = 1, name: str = "line") -> DFG:
    """A chain ``n0 -> n1 -> ... `` of zero-delay edges plus one feedback
    edge from the tail to the head carrying ``delay_last`` delays.

    The simplest cyclic graph family; its iteration bound is
    ``num_nodes / delay_last`` and its cycle period is ``num_nodes``
    (unit-time nodes), making expected algorithm outputs easy to state in
    tests.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    g = DFG(name)
    names = [f"n{i}" for i in range(num_nodes)]
    for n in names:
        g.add_node(n, op=OpKind.ADD, imm=1)
    for i in range(1, num_nodes):
        g.add_edge(names[i - 1], names[i], delay=0)
    g.add_edge(names[-1], names[0], delay=delay_last)
    return g


def ring_dfg(num_nodes: int, total_delay: int, name: str = "ring") -> DFG:
    """A single cycle of ``num_nodes`` unit-time nodes whose delays sum to
    ``total_delay``, all placed on the closing edge."""
    if total_delay < 1:
        raise ValueError("a cycle needs at least one delay")
    return line_dfg(num_nodes, delay_last=total_delay, name=name)
