"""Critical-cycle extraction: *which* recurrence limits the loop rate.

:func:`repro.graph.iteration_bound` returns the value ``max_C T(C)/D(C)``;
this module returns a witness cycle attaining it.  Designers need the
witness — it names the recurrence to attack (algebraic transformation,
extra delay insertion, pipelined functional units), and the CLI's ``info``
command prints it.

The extraction runs at ``lam = B(G)``: cycles of weight
``T(C) - lam * D(C) = 0`` are exactly the critical ones, and a
predecessor-tracing Bellman–Ford pass recovers one.
"""

from __future__ import annotations

from fractions import Fraction

from .dfg import DFG
from .iteration_bound import iteration_bound

__all__ = ["critical_cycle", "cycle_stats"]


def cycle_stats(g: DFG, cycle: list[str]) -> tuple[int, int]:
    """``(T, D)`` of a cycle given as a node list (closing edge implied).

    Parallel edges contribute their minimum delay (the binding one).
    """
    time = sum(g.node(n).time for n in cycle)
    delay = 0
    for a, b in zip(cycle, cycle[1:] + cycle[:1]):
        delay += min(e.delay for e in g.out_edges(a) if e.dst == b)
    return time, delay


def critical_cycle(g: DFG) -> list[str]:
    """A cycle ``C`` with ``T(C)/D(C) == B(G)``, as a node list.

    Returns ``[]`` for acyclic graphs (bound 0).  Deterministic for a given
    graph.
    """
    bound = iteration_bound(g)
    if bound == 0:
        return []

    # Zero-weight-cycle detection at lam = bound, with predecessor tracing.
    # Weights w(u->v) = t(u) - lam * d; critical cycles have weight sum 0,
    # all other cycles are negative-weight under maximization.
    lam = Fraction(bound)
    edges = []
    for e in g.edges():
        edges.append((e.src, e.dst, Fraction(g.node(e.src).time) - lam * e.delay))

    dist: dict[str, Fraction] = {n: Fraction(0) for n in g.node_names()}
    pred: dict[str, str] = {}
    n = g.num_nodes
    on_cycle: str | None = None
    # One extra pass: any node still relaxing with weight >= 0 cycles lies
    # on (or reaches) a zero-weight cycle.  Use strict epsilon-free check
    # by running n passes and catching the last updated node.
    for sweep in range(n + 1):
        changed_node = None
        for u, v, w in edges:
            cand = dist[u] + w
            if cand > dist[v]:
                dist[v] = cand
                pred[v] = u
                changed_node = v
        if changed_node is None:
            break
        if sweep == n:
            on_cycle = changed_node

    if on_cycle is None:
        # Relaxation converged: critical cycles have weight exactly 0 and
        # may never strictly relax past the zero initialization.  Recover a
        # cycle by walking predecessors from any node whose best path is 0
        # but which has an incoming zero-slack edge.  Fall back to direct
        # search over tight edges.
        tight = {
            (u, v)
            for u, v, w in edges
            if dist[u] + w == dist[v]
        }
        # Find a cycle within the tight-edge subgraph (DFS).
        succs: dict[str, list[str]] = {}
        for u, v in tight:
            succs.setdefault(u, []).append(v)
        color: dict[str, int] = {}
        stack: list[str] = []

        def dfs(x: str) -> list[str] | None:
            color[x] = 1
            stack.append(x)
            for y in succs.get(x, ()):  # deterministic insertion order
                if color.get(y, 0) == 1:
                    return stack[stack.index(y):]
                if color.get(y, 0) == 0:
                    found = dfs(y)
                    if found is not None:
                        return found
            color[x] = 2
            stack.pop()
            return None

        for start in g.node_names():
            if color.get(start, 0) == 0:
                found = dfs(start)
                if found is not None:
                    cycle = found
                    break
        else:  # pragma: no cover - bound > 0 guarantees a critical cycle
            raise AssertionError("no critical cycle found despite positive bound")
    else:
        # Walk predecessors n times to land inside the cycle, then collect.
        x = on_cycle
        for _ in range(n):
            x = pred[x]
        cycle = [x]
        y = pred[x]
        while y != x:
            cycle.append(y)
            y = pred[y]
        cycle.reverse()

    # Sanity: the witness must attain the bound.
    time, delay = cycle_stats(g, cycle)
    assert delay > 0 and Fraction(time, delay) == bound, "internal: witness not critical"
    return cycle
