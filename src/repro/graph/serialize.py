"""JSON (de)serialization and Graphviz export of data-flow graphs.

``to_json``/``from_json`` round-trip every DFG exactly (nodes with times,
ops and immediates; edges with delays and keys), so workloads and
experiment inputs can be shared as plain files.  ``to_dot`` renders the
Graphviz source used in the documentation: delays appear as slash marks on
edge labels (``d=2``), matching the paper's bar-line convention in spirit.

A document that cannot be decoded — invalid JSON, wrong format tag, a
missing or ill-typed field, a truncated file — raises a single exception
type, :class:`GraphFormatError`, whose message names the source file (when
known) and the offending field (``nodes[2].time``), so a bad graph in a
20-graph sweep is a one-line fix rather than a traceback hunt.
"""

from __future__ import annotations

import json
from pathlib import Path

from .dfg import DFG, DFGError, OpKind

__all__ = ["GraphFormatError", "from_json", "load_graph", "to_dot", "to_json"]

_FORMAT = "repro-dfg-v1"

#: Sentinel distinguishing "field absent" from "field is None".
_MISSING = object()


class GraphFormatError(DFGError):
    """A graph JSON document that cannot be decoded.

    Carries ``source`` (the file the text came from, when known) and
    ``field`` (the JSON path of the offending value, e.g.
    ``nodes[2].time``); both are folded into the message, so printing the
    exception tells the user exactly which file and field to fix.
    """

    def __init__(
        self,
        message: str,
        *,
        source: str | Path | None = None,
        field: str | None = None,
    ) -> None:
        self.source = str(source) if source is not None else None
        self.field = field
        if self.source:
            message = f"{self.source}: {message}"
        super().__init__(message)


def to_json(g: DFG, indent: int | None = 2) -> str:
    """Serialize ``g`` to a JSON string (stable key order)."""
    doc = {
        "format": _FORMAT,
        "name": g.name,
        "nodes": [
            {"name": v.name, "time": v.time, "op": v.op.value, "imm": v.imm}
            for v in g.nodes()
        ],
        "edges": [
            {"src": e.src, "dst": e.dst, "delay": e.delay, "key": e.key}
            for e in g.edges()
        ],
    }
    return json.dumps(doc, indent=indent)


def from_json(text: str, source: str | Path | None = None) -> DFG:
    """Rebuild a DFG from :func:`to_json` output.

    Raises :class:`GraphFormatError` (a :class:`DFGError` subclass) on
    format mismatches or malformed documents; when ``source`` is given
    (the file the text was read from) it is named in the message.
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"not valid JSON: {exc}", source=source) from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise GraphFormatError(f"not a {_FORMAT} document", source=source)

    def section(key: str) -> list:
        rows = doc.get(key, _MISSING)
        if rows is _MISSING:
            raise GraphFormatError(
                f"malformed {_FORMAT} document: missing section {key!r}",
                source=source,
                field=key,
            )
        if not isinstance(rows, list):
            raise GraphFormatError(
                f"malformed {_FORMAT} document: "
                f"{key!r} must be a list, not {type(rows).__name__}",
                source=source,
                field=key,
            )
        return rows

    def field(row: object, sect: str, idx: int, key: str, cast, default=_MISSING):
        path = f"{sect}[{idx}].{key}"
        if not isinstance(row, dict):
            raise GraphFormatError(
                f"malformed {_FORMAT} document: "
                f"{sect}[{idx}] must be an object, not {type(row).__name__}",
                source=source,
                field=f"{sect}[{idx}]",
            )
        value = row.get(key, default)
        if value is _MISSING:
            raise GraphFormatError(
                f"malformed {_FORMAT} document: missing field {path}",
                source=source,
                field=path,
            )
        try:
            return cast(value)
        except (TypeError, ValueError) as exc:
            raise GraphFormatError(
                f"malformed {_FORMAT} document: bad value for {path}: {exc}",
                source=source,
                field=path,
            ) from exc

    g = DFG(str(doc.get("name", "dfg")))
    for idx, nd in enumerate(section("nodes")):
        try:
            g.add_node(
                field(nd, "nodes", idx, "name", str),
                time=field(nd, "nodes", idx, "time", int, 1),
                op=field(nd, "nodes", idx, "op", OpKind, "add"),
                imm=field(nd, "nodes", idx, "imm", int, 0),
            )
        except GraphFormatError:
            raise
        except DFGError as exc:
            # Structural rejection (duplicate name, bad time) from the DFG
            # itself: same error surface, pinned to the offending node.
            raise GraphFormatError(
                f"malformed {_FORMAT} document: nodes[{idx}]: {exc}",
                source=source,
                field=f"nodes[{idx}]",
            ) from exc
    for idx, ed in enumerate(section("edges")):
        try:
            g.add_edge(
                field(ed, "edges", idx, "src", str),
                field(ed, "edges", idx, "dst", str),
                delay=field(ed, "edges", idx, "delay", int),
                key=field(ed, "edges", idx, "key", int, 0),
            )
        except GraphFormatError:
            raise
        except DFGError as exc:
            raise GraphFormatError(
                f"malformed {_FORMAT} document: edges[{idx}]: {exc}",
                source=source,
                field=f"edges[{idx}]",
            ) from exc
    return g


def load_graph(path: Path | str) -> DFG:
    """Read and deserialize the graph file at ``path``.

    One exception surface for callers: unreadable files are wrapped in
    :class:`GraphFormatError` alongside every decode failure, and the
    message always names the file.
    """
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise GraphFormatError(f"cannot read graph file: {exc}", source=p) from exc
    except UnicodeDecodeError as exc:
        raise GraphFormatError(f"not valid JSON: {exc}", source=p) from exc
    return from_json(text, source=p)


def to_dot(g: DFG) -> str:
    """Graphviz source for ``g``.

    Multiplier-class nodes are drawn as boxes, others as ellipses; edge
    labels carry the delay count when non-zero.
    """
    lines = [f'digraph "{g.name}" {{', "  rankdir=LR;"]
    for v in g.nodes():
        shape = "box" if v.op in (OpKind.MUL, OpKind.MAC) else "ellipse"
        label = v.name if v.time == 1 else f"{v.name}\\nt={v.time}"
        lines.append(f'  "{v.name}" [shape={shape}, label="{label}"];')
    for e in g.edges():
        attrs = []
        if e.delay:
            attrs.append(f'label="{e.delay}D"')
            attrs.append("style=dashed")
        attr = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{e.src}" -> "{e.dst}"{attr};')
    lines.append("}")
    return "\n".join(lines)
