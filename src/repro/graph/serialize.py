"""JSON (de)serialization and Graphviz export of data-flow graphs.

``to_json``/``from_json`` round-trip every DFG exactly (nodes with times,
ops and immediates; edges with delays and keys), so workloads and
experiment inputs can be shared as plain files.  ``to_dot`` renders the
Graphviz source used in the documentation: delays appear as slash marks on
edge labels (``d=2``), matching the paper's bar-line convention in spirit.
"""

from __future__ import annotations

import json

from .dfg import DFG, DFGError, OpKind

__all__ = ["to_json", "from_json", "to_dot"]

_FORMAT = "repro-dfg-v1"


def to_json(g: DFG, indent: int | None = 2) -> str:
    """Serialize ``g`` to a JSON string (stable key order)."""
    doc = {
        "format": _FORMAT,
        "name": g.name,
        "nodes": [
            {"name": v.name, "time": v.time, "op": v.op.value, "imm": v.imm}
            for v in g.nodes()
        ],
        "edges": [
            {"src": e.src, "dst": e.dst, "delay": e.delay, "key": e.key}
            for e in g.edges()
        ],
    }
    return json.dumps(doc, indent=indent)


def from_json(text: str) -> DFG:
    """Rebuild a DFG from :func:`to_json` output.

    Raises :class:`DFGError` on format mismatches or malformed documents.
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DFGError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise DFGError(f"not a {_FORMAT} document")
    g = DFG(str(doc.get("name", "dfg")))
    try:
        for nd in doc["nodes"]:
            g.add_node(
                str(nd["name"]),
                time=int(nd.get("time", 1)),
                op=OpKind(nd.get("op", "add")),
                imm=int(nd.get("imm", 0)),
            )
        for ed in doc["edges"]:
            g.add_edge(
                str(ed["src"]),
                str(ed["dst"]),
                delay=int(ed["delay"]),
                key=int(ed.get("key", 0)),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise DFGError(f"malformed {_FORMAT} document: {exc}") from exc
    return g


def to_dot(g: DFG) -> str:
    """Graphviz source for ``g``.

    Multiplier-class nodes are drawn as boxes, others as ellipses; edge
    labels carry the delay count when non-zero.
    """
    lines = [f'digraph "{g.name}" {{', "  rankdir=LR;"]
    for v in g.nodes():
        shape = "box" if v.op in (OpKind.MUL, OpKind.MAC) else "ellipse"
        label = v.name if v.time == 1 else f"{v.name}\\nt={v.time}"
        lines.append(f'  "{v.name}" [shape={shape}, label="{label}"];')
    for e in g.edges():
        attrs = []
        if e.delay:
            attrs.append(f'label="{e.delay}D"')
            attrs.append("style=dashed")
        attr = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{e.src}" -> "{e.dst}"{attr};')
    lines.append("}")
    return "\n".join(lines)
