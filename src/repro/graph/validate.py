"""Structural validation of data-flow graphs.

A DFG is a *legal loop body* when

1. every edge delay is non-negative (guaranteed by construction),
2. the zero-delay subgraph is acyclic — otherwise an iteration would depend
   on its own results and no static schedule exists, and
3. node computation times are positive (guaranteed by construction).

:func:`validate` checks the non-constructive invariants and raises
:class:`~repro.graph.dfg.DFGError` with a precise message on violation.
:func:`topological_order` returns a deterministic topological order of the
zero-delay subgraph — the canonical *intra-iteration execution order* used
by all code generators in :mod:`repro.codegen`.
"""

from __future__ import annotations

from .dfg import DFG, DFGError

__all__ = ["validate", "topological_order", "is_valid"]


def topological_order(g: DFG) -> list[str]:
    """Topological order of nodes w.r.t. zero-delay edges.

    Ties are broken by node insertion order, so the result is deterministic
    for a given graph.  Raises :class:`DFGError` if the zero-delay subgraph
    contains a cycle (the graph is then not schedulable).
    """
    indeg: dict[str, int] = {n: 0 for n in g.node_names()}
    succs: dict[str, list[str]] = {n: [] for n in g.node_names()}
    for e in g.zero_delay_edges():
        indeg[e.dst] += 1
        succs[e.src].append(e.dst)

    # Kahn's algorithm with a deterministic ready list (insertion order).
    order: list[str] = []
    ready = [n for n in g.node_names() if indeg[n] == 0]
    while ready:
        n = ready.pop(0)
        order.append(n)
        newly_ready = []
        for s in succs[n]:
            indeg[s] -= 1
            if indeg[s] == 0:
                newly_ready.append(s)
        # Preserve global insertion order among newly ready nodes.
        position = {name: i for i, name in enumerate(g.node_names())}
        ready.extend(newly_ready)
        ready.sort(key=lambda name: position[name])
    if len(order) != g.num_nodes:
        cyclic = sorted(set(g.node_names()) - set(order))
        raise DFGError(f"zero-delay cycle through nodes {cyclic}")
    return order


def validate(g: DFG) -> None:
    """Check that ``g`` is a legal loop body; raise :class:`DFGError` if not."""
    if g.num_nodes == 0:
        raise DFGError("graph has no nodes")
    topological_order(g)  # raises on zero-delay cycles


def is_valid(g: DFG) -> bool:
    """Boolean form of :func:`validate`."""
    try:
        validate(g)
    except DFGError:
        return False
    return True
