"""Leiserson–Saxe ``W``/``D`` matrices for retiming feasibility.

For an ordered node pair ``(u, v)`` connected by at least one path,

* ``W(u, v)`` is the minimum total delay over all paths ``u -> v``;
* ``D(u, v)`` is the maximum total *computation time* (including both
  endpoints) among the minimum-delay paths.

These matrices reduce "can ``G`` be retimed to cycle period ``<= c``?" to a
system of difference constraints (see :mod:`repro.retiming.optimal`): a
retiming pushes ``r(u) - r(v)`` extra delays onto every ``u -> v`` path (in
this paper's sign convention ``d_r(e(u->v)) = d(e) + r(u) - r(v)``), so a
pair with ``D(u, v) > c`` must retain at least one delay on all its
minimum-delay paths.

The computation is an all-pairs shortest path over the lexicographic edge
weight ``(d(e), -t(src(e)))`` (Floyd–Warshall), exactly as in the original
retiming paper [Leiserson & Saxe, Algorithmica 1991].

Two representations are available:

* :func:`wd_matrices` returns the classic pair-keyed dictionaries — the
  API every existing caller uses;
* :func:`wd_kernel` returns a :class:`WDKernel`: the same data kept as
  flat numpy matrices over the graph's shared
  :class:`~repro.graph.kernel.EdgeKernel`, with the dictionaries
  materialized lazily on first access.  The probe loops of the
  incremental feasibility solver consume the matrices directly, so the
  hot path never pays the O(V²) python dict construction.
"""

from __future__ import annotations

import os

from .dfg import DFG
from .kernel import EdgeKernel, shared_kernel

__all__ = ["WDKernel", "wd_kernel", "wd_matrices", "wd_matrices_python", "distinct_d_values"]

_INF = float("inf")


def _threshold_from_env(default: int = 64) -> int:
    """The numpy-dispatch node-count threshold, overridable via the
    ``REPRO_WD_NUMPY_THRESHOLD`` environment variable (unparsable values
    fall back to the default)."""
    raw = os.environ.get("REPRO_WD_NUMPY_THRESHOLD")
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


#: Node count above which the vectorized numpy Floyd–Warshall is used.
#: Measured crossover (this machine, random graphs with |E| ~ 2|V|): the
#: pure-python pass wins below ~60 nodes thanks to its infinity short-
#: circuit; numpy wins 4.5x at 80 nodes and ~15x at 250.  The numpy path
#: packs the lexicographic (delay, -time) weight into one integer so each
#: Floyd–Warshall sweep is a single broadcasted minimum.  Kept as a module
#: attribute so tests can monkeypatch it; ``REPRO_WD_NUMPY_THRESHOLD`` is
#: re-read whenever the environment value changes (it used to be frozen at
#: import time, which made setting it afterwards silently dead).
_NUMPY_THRESHOLD = _threshold_from_env()
_ENV_SNAPSHOT = os.environ.get("REPRO_WD_NUMPY_THRESHOLD")


def _current_threshold() -> int:
    """The live numpy-dispatch threshold (see the note on
    :data:`_NUMPY_THRESHOLD`)."""
    global _ENV_SNAPSHOT, _NUMPY_THRESHOLD
    raw = os.environ.get("REPRO_WD_NUMPY_THRESHOLD")
    if raw != _ENV_SNAPSHOT:
        _ENV_SNAPSHOT = raw
        _NUMPY_THRESHOLD = _threshold_from_env()
    return _NUMPY_THRESHOLD


class WDKernel:
    """Shared ``(W, D)`` state of one graph, matrices first.

    Holds the graph's :class:`EdgeKernel` plus the ``W``/``D`` data as
    dense int64 matrices (``reach`` masking connected pairs).  Either side
    — matrices or pair-keyed dicts — is derived lazily from whichever one
    the constructor received, and cached, so long-lived holders (the
    request server's warm pool) pay each materialization at most once.

    Iterating a :class:`WDKernel` yields ``W`` then ``D``, so
    ``W, D = wd_kernel(g)`` unpacks exactly like the classic
    :func:`wd_matrices` tuple.
    """

    __slots__ = ("kernel", "_matrices", "_dicts", "_d_values")

    def __init__(self, kernel: EdgeKernel, *, matrices=None, dicts=None) -> None:
        if matrices is None and dicts is None:
            raise ValueError("WDKernel needs matrices or dicts")
        self.kernel = kernel
        self._matrices = matrices  # (Wm, Dm, reach) int64/bool numpy arrays
        self._dicts = dicts  # (W, D) pair-keyed dictionaries
        self._d_values: list[int] | None = None

    @property
    def W(self) -> dict[tuple[str, str], int]:
        return self._materialize_dicts()[0]

    @property
    def D(self) -> dict[tuple[str, str], int]:
        return self._materialize_dicts()[1]

    def __iter__(self):
        W, D = self._materialize_dicts()
        yield W
        yield D

    def matrices(self):
        """``(Wm, Dm, reach)`` — int64 matrices plus the reachability mask."""
        if self._matrices is None:
            import numpy as np

            index = self.kernel.index
            nn = self.kernel.num_nodes
            Wm = np.zeros((nn, nn), dtype=np.int64)
            Dm = np.zeros((nn, nn), dtype=np.int64)
            reach = np.zeros((nn, nn), dtype=bool)
            W, D = self._dicts
            for (u, v), w in W.items():
                i, j = index[u], index[v]
                Wm[i, j] = w
                Dm[i, j] = D[(u, v)]
                reach[i, j] = True
            self._matrices = (Wm, Dm, reach)
        return self._matrices

    def d_values(self) -> list[int]:
        """Sorted distinct values of ``D`` (the binary-search domain)."""
        if self._d_values is None:
            if self._dicts is not None:
                self._d_values = sorted(set(self._dicts[1].values()))
            else:
                import numpy as np

                _Wm, Dm, reach = self._matrices
                self._d_values = [int(v) for v in np.unique(Dm[reach])]
        return self._d_values

    def _materialize_dicts(self):
        if self._dicts is None:
            Wm, Dm, reach = self._matrices
            names = self.kernel.names
            ii, jj = reach.nonzero()
            pairs = [
                (names[i], names[j])
                for i, j in zip(ii.tolist(), jj.tolist())
            ]
            self._dicts = (
                dict(zip(pairs, Wm[reach].tolist())),
                dict(zip(pairs, Dm[reach].tolist())),
            )
        return self._dicts


def wd_kernel(g: DFG) -> WDKernel:
    """The :class:`WDKernel` of ``g``, built over its shared edge kernel.

    Dispatches exactly like :func:`wd_matrices`: the packed Floyd–Warshall
    above :data:`_NUMPY_THRESHOLD` nodes (matrices native, dicts lazy),
    the tuple-weight python pass below it (dicts native, matrices lazy).
    Both representations are exact and cross-checked in the test-suite.
    """
    kernel = shared_kernel(g)
    if g.num_nodes > _current_threshold():
        matrices = _packed_floyd_warshall(kernel)
        if matrices is not None:
            return WDKernel(kernel, matrices=matrices)
    return WDKernel(kernel, dicts=wd_matrices_python(g))


def wd_matrices(g: DFG) -> tuple[dict[tuple[str, str], int], dict[tuple[str, str], int]]:
    """Compute the ``(W, D)`` matrices of ``g``.

    Returns two dictionaries keyed by ``(u, v)`` node-name pairs; pairs with
    no connecting path are absent.  The diagonal is included with
    ``W(u, u) = 0`` and ``D(u, u) = t(u)`` (the trivial path).  Dispatches
    to a vectorized implementation for larger graphs; both paths are exact
    and cross-checked in the test-suite.
    """
    wdk = wd_kernel(g)
    return (wdk.W, wdk.D)


def _packed_floyd_warshall(kernel: EdgeKernel):
    """``(Wm, Dm, reach)`` via Floyd–Warshall over the packed weight
    ``delay * K - time``, or ``None`` when no safe dtype exists.

    ``K = 2 * total_time + 1`` is tight: any cycle carries at least one
    delay (legal DFGs have no zero-delay cycles), contributing ``K`` to the
    packed weight while removing at most ``total_time < K`` — so optimal
    packed paths are simple, their times are bounded by ``total_time``, and
    integer comparison of packed sums equals lexicographic
    ``(delay, -time)`` comparison.  The tight ``K`` lets 500-node graphs
    run the O(V³) sweep in int32, roughly halving its memory traffic
    against the previous ``total_time * (|V| + 2) + 1`` packing.
    """
    import numpy as np

    nn = kernel.num_nodes
    if nn == 0:
        z = np.zeros((0, 0), dtype=np.int64)
        return (z, z.copy(), z.astype(bool))
    K = 2 * kernel.total_time + 1
    # Real packed values live in [-total_time, total_delay * K]; INF
    # entries degrade by at most total_time per FW sweep.  Keep both
    # populations a factor 4 from the unreachability threshold INF // 2.
    bound = (kernel.total_delay + 2) * K + kernel.total_time
    degrade = (nn + 2) * kernel.total_time
    for dtype, inf in ((np.int32, 2**30 - 1), (np.int64, 2**61)):
        if bound < inf // 4 and degrade < inf // 4:
            break
    else:
        return None  # pathological magnitudes: fall back to python dicts

    src, dst, delay, src_time, times = kernel.np_arrays()
    dist = np.full((nn, nn), inf, dtype=dtype)
    np.fill_diagonal(dist, 0)  # trivial path: 0 delays, 0 source time
    w = (delay * K - src_time).astype(dtype)
    np.minimum.at(dist, (src.astype(np.intp), dst.astype(np.intp)), w)
    for k in range(nn):
        cand = dist[:, k : k + 1] + dist[k : k + 1, :]
        np.minimum(dist, cand, out=dist)

    reach = dist < inf // 2
    packed = dist.astype(np.int64)
    q, rem = np.divmod(packed, K)
    Wm = q + (rem != 0)
    Dm = (K - rem) % K + times[None, :]
    Wm[~reach] = 0
    Dm[~reach] = 0
    return (Wm, Dm, reach)


def _wd_matrices_numpy(g: DFG) -> tuple[dict[tuple[str, str], int], dict[tuple[str, str], int]]:
    """Floyd–Warshall over the packed weight ``delay * K - time`` where
    ``K`` exceeds any achievable path time, so integer comparison equals
    lexicographic ``(delay, -time)`` comparison.

    Kept as the int64 wide-packing reference for the tighter
    :func:`_packed_floyd_warshall`; the test-suite pins all three
    implementations pairwise equal.
    """
    import numpy as np

    names = g.node_names()
    idx = {n: k for k, n in enumerate(names)}
    nn = len(names)
    # Path times are bounded by total_time * nn (walks that matter never
    # revisit a node more often than the FW relaxation allows).
    K = g.total_time * (nn + 2) + 1
    INF = np.int64(2**62 // (nn + 2))  # headroom so INF + INF never wraps

    dist = np.full((nn, nn), INF, dtype=np.int64)
    times = np.array([g.node(n).time for n in names], dtype=np.int64)
    for k in range(nn):
        dist[k, k] = 0 - 0  # trivial path: 0 delays, 0 source time
    for e in g.edges():
        w = np.int64(e.delay) * K - times[idx[e.src]]
        i, j = idx[e.src], idx[e.dst]
        if w < dist[i, j]:
            dist[i, j] = w
    for k in range(nn):
        cand = dist[:, k : k + 1] + dist[k : k + 1, :]
        np.minimum(dist, cand, out=dist)

    W: dict[tuple[str, str], int] = {}
    D: dict[tuple[str, str], int] = {}
    half = INF // 2
    for i, u in enumerate(names):
        row = dist[i]
        for j, v in enumerate(names):
            w = row[j]
            if w >= half:
                continue
            # Unpack delay and time: w = delay * K - time with 0 <= time < K.
            delay, neg = divmod(int(w), K)
            time = (K - neg) % K
            if neg:
                delay += 1
            W[(u, v)] = delay
            D[(u, v)] = time + g.node(v).time
    return W, D


def wd_matrices_python(
    g: DFG,
) -> tuple[dict[tuple[str, str], int], dict[tuple[str, str], int]]:
    """Pure-python reference implementation (tuple-weight Floyd–Warshall)."""
    names = g.node_names()
    # dist[u][v] = (min path delay, -max time among min-delay paths),
    # where "time" counts source nodes along the path (t(v) added at the end).
    dist: dict[str, dict[str, tuple[float, float]]] = {
        u: {v: (_INF, _INF) for v in names} for u in names
    }
    for u in names:
        dist[u][u] = (0, -0)
    for e in g.edges():
        w = (e.delay, -g.node(e.src).time)
        if w < dist[e.src][e.dst]:
            dist[e.src][e.dst] = w

    for k in names:
        dk = dist[k]
        for i in names:
            dik = dist[i][k]
            if dik[0] is _INF:
                continue
            di = dist[i]
            for j in names:
                dkj = dk[j]
                if dkj[0] is _INF:
                    continue
                cand = (dik[0] + dkj[0], dik[1] + dkj[1])
                if cand < di[j]:
                    di[j] = cand

    W: dict[tuple[str, str], int] = {}
    D: dict[tuple[str, str], int] = {}
    for u in names:
        for v in names:
            delay, neg_time = dist[u][v]
            if delay is _INF:
                continue
            W[(u, v)] = int(delay)
            D[(u, v)] = int(-neg_time) + g.node(v).time
    return W, D


def distinct_d_values(g: DFG) -> list[int]:
    """Sorted distinct values of the ``D`` matrix.

    The minimum achievable cycle period under retiming is always one of
    these values, so they are the binary-search domain of the optimal
    retiming algorithm.
    """
    return wd_kernel(g).d_values()
