"""Leiserson–Saxe ``W``/``D`` matrices for retiming feasibility.

For an ordered node pair ``(u, v)`` connected by at least one path,

* ``W(u, v)`` is the minimum total delay over all paths ``u -> v``;
* ``D(u, v)`` is the maximum total *computation time* (including both
  endpoints) among the minimum-delay paths.

These matrices reduce "can ``G`` be retimed to cycle period ``<= c``?" to a
system of difference constraints (see :mod:`repro.retiming.optimal`): a
retiming pushes ``r(u) - r(v)`` extra delays onto every ``u -> v`` path (in
this paper's sign convention ``d_r(e(u->v)) = d(e) + r(u) - r(v)``), so a
pair with ``D(u, v) > c`` must retain at least one delay on all its
minimum-delay paths.

The computation is an all-pairs shortest path over the lexicographic edge
weight ``(d(e), -t(src(e)))`` (Floyd–Warshall), exactly as in the original
retiming paper [Leiserson & Saxe, Algorithmica 1991].
"""

from __future__ import annotations

import os

from .dfg import DFG

__all__ = ["wd_matrices", "wd_matrices_python", "distinct_d_values"]

_INF = float("inf")


def _threshold_from_env(default: int = 64) -> int:
    """The numpy-dispatch node-count threshold, overridable via the
    ``REPRO_WD_NUMPY_THRESHOLD`` environment variable (unparsable values
    fall back to the default)."""
    raw = os.environ.get("REPRO_WD_NUMPY_THRESHOLD")
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


#: Node count above which the vectorized numpy Floyd–Warshall is used.
#: Measured crossover (this machine, random graphs with |E| ~ 2|V|): the
#: pure-python pass wins below ~60 nodes thanks to its infinity short-
#: circuit; numpy wins 4.5x at 80 nodes and ~15x at 250.  The numpy path
#: packs the lexicographic (delay, -time) weight into one int64 so each
#: Floyd–Warshall sweep is a single broadcasted minimum.  Override with the
#: ``REPRO_WD_NUMPY_THRESHOLD`` environment variable (read at import time;
#: tests monkeypatch the module attribute directly).
_NUMPY_THRESHOLD = _threshold_from_env()


def wd_matrices(g: DFG) -> tuple[dict[tuple[str, str], int], dict[tuple[str, str], int]]:
    """Compute the ``(W, D)`` matrices of ``g``.

    Returns two dictionaries keyed by ``(u, v)`` node-name pairs; pairs with
    no connecting path are absent.  The diagonal is included with
    ``W(u, u) = 0`` and ``D(u, u) = t(u)`` (the trivial path).  Dispatches
    to a vectorized implementation for larger graphs; both paths are exact
    and cross-checked in the test-suite.
    """
    if g.num_nodes > _NUMPY_THRESHOLD:
        return _wd_matrices_numpy(g)
    return wd_matrices_python(g)


def _wd_matrices_numpy(g: DFG) -> tuple[dict[tuple[str, str], int], dict[tuple[str, str], int]]:
    """Floyd–Warshall over the packed weight ``delay * K - time`` where
    ``K`` exceeds any achievable path time, so integer comparison equals
    lexicographic ``(delay, -time)`` comparison."""
    import numpy as np

    names = g.node_names()
    idx = {n: k for k, n in enumerate(names)}
    nn = len(names)
    # Path times are bounded by total_time * nn (walks that matter never
    # revisit a node more often than the FW relaxation allows).
    K = g.total_time * (nn + 2) + 1
    INF = np.int64(2**62 // (nn + 2))  # headroom so INF + INF never wraps

    dist = np.full((nn, nn), INF, dtype=np.int64)
    times = np.array([g.node(n).time for n in names], dtype=np.int64)
    for k in range(nn):
        dist[k, k] = 0 - 0  # trivial path: 0 delays, 0 source time
    for e in g.edges():
        w = np.int64(e.delay) * K - times[idx[e.src]]
        i, j = idx[e.src], idx[e.dst]
        if w < dist[i, j]:
            dist[i, j] = w
    for k in range(nn):
        cand = dist[:, k : k + 1] + dist[k : k + 1, :]
        np.minimum(dist, cand, out=dist)

    W: dict[tuple[str, str], int] = {}
    D: dict[tuple[str, str], int] = {}
    half = INF // 2
    for i, u in enumerate(names):
        row = dist[i]
        for j, v in enumerate(names):
            w = row[j]
            if w >= half:
                continue
            # Unpack delay and time: w = delay * K - time with 0 <= time < K.
            delay, neg = divmod(int(w), K)
            time = (K - neg) % K
            if neg:
                delay += 1
            W[(u, v)] = delay
            D[(u, v)] = time + g.node(v).time
    return W, D


def wd_matrices_python(
    g: DFG,
) -> tuple[dict[tuple[str, str], int], dict[tuple[str, str], int]]:
    """Pure-python reference implementation (tuple-weight Floyd–Warshall)."""
    names = g.node_names()
    # dist[u][v] = (min path delay, -max time among min-delay paths),
    # where "time" counts source nodes along the path (t(v) added at the end).
    dist: dict[str, dict[str, tuple[float, float]]] = {
        u: {v: (_INF, _INF) for v in names} for u in names
    }
    for u in names:
        dist[u][u] = (0, -0)
    for e in g.edges():
        w = (e.delay, -g.node(e.src).time)
        if w < dist[e.src][e.dst]:
            dist[e.src][e.dst] = w

    for k in names:
        dk = dist[k]
        for i in names:
            dik = dist[i][k]
            if dik[0] is _INF:
                continue
            di = dist[i]
            for j in names:
                dkj = dk[j]
                if dkj[0] is _INF:
                    continue
                cand = (dik[0] + dkj[0], dik[1] + dkj[1])
                if cand < di[j]:
                    di[j] = cand

    W: dict[tuple[str, str], int] = {}
    D: dict[tuple[str, str], int] = {}
    for u in names:
        for v in names:
            delay, neg_time = dist[u][v]
            if delay is _INF:
                continue
            W[(u, v)] = int(delay)
            D[(u, v)] = int(-neg_time) + g.node(v).time
    return W, D


def distinct_d_values(g: DFG) -> list[int]:
    """Sorted distinct values of the ``D`` matrix.

    The minimum achievable cycle period under retiming is always one of
    these values, so they are the binary-search domain of the optimal
    retiming algorithm.
    """
    _, D = wd_matrices(g)
    return sorted(set(D.values()))
