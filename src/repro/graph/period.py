"""Cycle period and critical paths of a data-flow graph.

The *cycle period* ``Phi(G)`` of a DFG is the total computation time of the
longest zero-delay path in the graph (Section 2.1 of the paper).  With
unlimited resources it equals the minimum static schedule length of one
iteration of the loop body; retiming minimizes it by redistributing delays.
"""

from __future__ import annotations

from .dfg import DFG
from .validate import topological_order

__all__ = ["cycle_period", "critical_path", "asap_times", "alap_times"]


def asap_times(g: DFG) -> dict[str, int]:
    """As-soon-as-possible start times over zero-delay dependencies.

    ``asap[v]`` is the earliest control step (0-based time unit) at which
    node ``v`` can start within one iteration, honouring every zero-delay
    edge ``u -> v`` (``v`` starts no earlier than ``asap[u] + t(u)``).
    """
    start: dict[str, int] = {}
    for name in topological_order(g):
        best = 0
        for e in g.in_edges(name):
            if e.delay == 0:
                cand = start[e.src] + g.node(e.src).time
                if cand > best:
                    best = cand
        start[name] = best
    return start


def alap_times(g: DFG, horizon: int | None = None) -> dict[str, int]:
    """As-late-as-possible start times within ``horizon`` time units.

    ``horizon`` defaults to the cycle period, in which case nodes on a
    critical path have identical ASAP/ALAP times (zero slack).
    """
    if horizon is None:
        horizon = cycle_period(g)
    start: dict[str, int] = {}
    for name in reversed(topological_order(g)):
        best = horizon - g.node(name).time
        for e in g.out_edges(name):
            if e.delay == 0:
                cand = start[e.dst] - g.node(name).time
                if cand < best:
                    best = cand
        start[name] = best
    return start


def cycle_period(g: DFG) -> int:
    """The cycle period ``Phi(G)``: longest zero-delay path time.

    Equals ``max_v (asap(v) + t(v))`` — the completion time of the latest
    node in an unconstrained intra-iteration schedule.
    """
    start = asap_times(g)
    return max(start[v.name] + v.time for v in g.nodes())


def critical_path(g: DFG) -> list[str]:
    """One longest zero-delay path, as a list of node names.

    Deterministic: among equal-length choices, the node that was inserted
    first into the graph wins.  Useful for critical-path-driven retiming
    heuristics and for diagnostics.
    """
    start = asap_times(g)
    # Find the sink of a critical path.
    period = cycle_period(g)
    position = {name: i for i, name in enumerate(g.node_names())}
    sinks = [v.name for v in g.nodes() if start[v.name] + v.time == period]
    tail = min(sinks, key=lambda n: position[n])

    path = [tail]
    while True:
        node = path[0]
        want = start[node]
        if want == 0:
            # Might still have a zero-delay predecessor chain of sources with
            # time summing to zero — impossible since times are >= 1.
            break
        preds = [
            e.src
            for e in g.in_edges(node)
            if e.delay == 0 and start[e.src] + g.node(e.src).time == want
        ]
        if not preds:
            break
        path.insert(0, min(preds, key=lambda n: position[n]))
    return path
