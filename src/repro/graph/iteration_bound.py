"""Iteration bound of a cyclic data-flow graph.

The *iteration bound* ``B(G) = max_C T(C) / D(C)`` over all cycles ``C``
(``T`` = total computation time on the cycle, ``D`` = total delay count) is
the fundamental lower bound on the average time per loop iteration of any
static schedule.  A schedule is *rate-optimal* when its iteration period
equals ``B(G)``; when ``B(G)`` is non-integral that can only be achieved by
unfolding the loop by a factor ``f`` that makes ``f * B(G)`` integral
(Section 4 of the paper).

Three independent algorithms are provided:

* :func:`iteration_bound` — Lawler-style parametric binary search whose
  positive-cycle oracle runs on *exact integer* edge weights
  ``q * T(C) - p * D(C)`` for probe ``λ = p/q`` over the shared
  :class:`~repro.graph.kernel.EdgeKernel` index-array adjacency; the result
  is snapped to an exact rational with bounded denominator and *verified*
  exactly.  This is the production hot path.
* :func:`iteration_bound_fraction` — the original ``Fraction``-arithmetic
  relaxation (edge preparation hoisted out of the search loop).  Kept as a
  differential-testing reference and benchmark baseline.
* :func:`iteration_bound_exhaustive` — direct enumeration of simple cycles
  via networkx; exponential in general, used as a cross-check in tests and
  as a fallback.
"""

from __future__ import annotations

from fractions import Fraction

from ..observability import count
from .dfg import DFG, DFGError
from .kernel import EdgeKernel, shared_kernel

__all__ = [
    "iteration_bound",
    "iteration_bound_fraction",
    "iteration_bound_exhaustive",
    "has_cycle_with_nonneg_weight",
    "minimum_unfolding_for_rate_optimality",
]


# ----------------------------------------------------------------------
# Fraction-arithmetic reference path
# ----------------------------------------------------------------------

def _edge_weights(g: DFG, lam: Fraction) -> list[tuple[str, str, Fraction]]:
    """Weighted edge list ``(u, v, t(u) - lam * d)`` for the cycle test.

    Assigning each edge the computation time of its *source* node makes the
    weight sum of any cycle equal ``T(C) - lam * D(C)``, since every node of
    a cycle is the source of exactly one of its edges.  Node times are
    looked up once into a dict (not per edge per probe via ``g.node``).
    """
    times = {v.name: v.time for v in g.nodes()}
    return [
        (e.src, e.dst, Fraction(times[e.src]) - lam * e.delay) for e in g.edges()
    ]


def _prepare_edges(g: DFG) -> list[tuple[str, str, int, int]]:
    """``(u, v, t(u), d)`` per edge — the λ-independent part of
    :func:`_edge_weights`, hoisted out of the binary-search loop."""
    times = {v.name: v.time for v in g.nodes()}
    return [(e.src, e.dst, times[e.src], e.delay) for e in g.edges()]


def _relax_positive_cycle(
    g: DFG,
    prepared: list[tuple[str, str, int, int]],
    lam: Fraction,
    strict: bool,
) -> bool:
    """Fraction-arithmetic Bellman–Ford cycle test over prepared edges."""
    edges = [(u, v, Fraction(t) - lam * d) for (u, v, t, d) in prepared]
    if not strict:
        # Detect weight >= 0 cycles by nudging every edge up by an epsilon
        # smaller than any achievable gap: with integral T and D and
        # lam = p/q, cycle weights are multiples of 1/q, so eps = 1/(2q*|E|)
        # per edge keeps total perturbation below 1/(2q) around zero.
        q = lam.denominator
        eps = Fraction(1, 2 * q * max(1, g.num_edges))
        edges = [(u, v, w + eps) for (u, v, w) in edges]

    dist: dict[str, Fraction] = {n: Fraction(0) for n in g.node_names()}
    n = g.num_nodes
    for _ in range(n - 1):
        changed = False
        for u, v, w in edges:
            cand = dist[u] + w
            if cand > dist[v]:
                dist[v] = cand
                changed = True
        if not changed:
            return False
    for u, v, w in edges:
        if dist[u] + w > dist[v]:
            return True
    return False


def _has_positive_cycle(g: DFG, lam: Fraction, strict: bool) -> bool:
    """Does a cycle with weight ``> 0`` (or ``>= 0`` if not strict) exist?

    Fraction-arithmetic reference implementation; the hot path uses the
    integer oracle of :class:`~repro.graph.kernel.EdgeKernel` instead.
    """
    return _relax_positive_cycle(g, _prepare_edges(g), lam, strict)


def iteration_bound_fraction(g: DFG) -> Fraction:
    """The original ``Fraction``-relaxation iteration bound.

    Exact, like :func:`iteration_bound`, but performs rational arithmetic
    inside the relaxation loops.  Retained as a differential-testing
    reference and as the benchmark baseline for the integer oracle.
    """
    from .validate import validate

    validate(g)

    total_delay = g.total_delay
    if total_delay == 0:
        # validate() guarantees no zero-delay cycle, so with no delays at
        # all the graph is acyclic.
        return Fraction(0)

    prepared = _prepare_edges(g)

    # Quick acyclicity check: if no cycle at lam=0 exists (i.e. no cycle at
    # all, since weights are then all positive node times), bound is 0.
    if not _relax_positive_cycle(g, prepared, Fraction(0), strict=True):
        return Fraction(0)

    lo = Fraction(0)  # B > 0 here: some cycle exists
    hi = Fraction(g.total_time)  # T(C) <= total_time, D(C) >= 1
    # Distinct candidate ratios have denominators <= total_delay, so once
    # the bracket is narrower than 1/total_delay^2 only one candidate fits.
    resolution = Fraction(1, 2 * total_delay * total_delay)
    while hi - lo > resolution:
        mid = (lo + hi) / 2
        if _relax_positive_cycle(g, prepared, mid, strict=True):
            lo = mid
        else:
            hi = mid

    candidate = ((lo + hi) / 2).limit_denominator(total_delay)
    if _relax_positive_cycle(g, prepared, candidate, strict=False) and not (
        _relax_positive_cycle(g, prepared, candidate, strict=True)
    ):
        return candidate

    # Extremely defensive fallback; unreachable for well-formed inputs but
    # keeps the function total.
    return iteration_bound_exhaustive(g)


# ----------------------------------------------------------------------
# Integer parametric hot path
# ----------------------------------------------------------------------

def has_cycle_with_nonneg_weight(g: DFG, lam: Fraction) -> bool:
    """Whether some cycle satisfies ``T(C) - lam * D(C) >= 0``.

    This is exactly the condition ``B(G) >= lam``.  Decided by the exact
    integer oracle (no epsilon perturbation).
    """
    lam = Fraction(lam)
    return shared_kernel(g).has_positive_cycle(
        lam.numerator, lam.denominator, strict=False
    )


def iteration_bound(g: DFG) -> Fraction:
    """Exact iteration bound ``max_C T(C)/D(C)`` as a :class:`Fraction`.

    Returns ``Fraction(0)`` for acyclic graphs (no cycle constrains the
    rate).  Raises :class:`DFGError` if the graph has a zero-delay cycle
    (such graphs have no legal schedule at all).

    Parametric binary search: each probe ``λ = p/q`` asks the integer
    oracle for a cycle with ``q*T(C) - p*D(C) > 0``; the bracket shrinks
    below the minimum spacing ``1/total_delay²`` of distinct candidate
    ratios, the unique surviving candidate is recovered with
    ``limit_denominator``, and the answer is verified exactly (a zero-weight
    cycle exists and no positive-weight cycle does).
    """
    from .validate import validate

    validate(g)

    total_delay = g.total_delay
    if total_delay == 0:
        # validate() guarantees no zero-delay cycle, so with no delays at
        # all the graph is acyclic.
        return Fraction(0)

    kernel = shared_kernel(g)

    # Quick acyclicity check: if no cycle at lam=0 exists (i.e. no cycle at
    # all, since weights are then all positive node times), bound is 0.
    if not kernel.has_positive_cycle(0, 1, strict=True):
        count("iteration_bound.probes", 1)
        return Fraction(0)

    lo = Fraction(0)  # B > 0 here: some cycle exists
    hi = Fraction(g.total_time)  # T(C) <= total_time, D(C) >= 1
    # Distinct candidate ratios have denominators <= total_delay, so once
    # the bracket is narrower than 1/total_delay^2 only one candidate fits.
    resolution = Fraction(1, 2 * total_delay * total_delay)
    probes = 1  # the acyclicity probe above
    while hi - lo > resolution:
        mid = (lo + hi) / 2
        probes += 1
        if kernel.has_positive_cycle(mid.numerator, mid.denominator, strict=True):
            lo = mid
        else:
            hi = mid
    count("iteration_bound.probes", probes + 2)  # + the two verify probes

    candidate = ((lo + hi) / 2).limit_denominator(total_delay)
    if _verify_bound_kernel(kernel, candidate):
        return candidate

    # Extremely defensive fallback; unreachable for well-formed inputs but
    # keeps the function total.
    return iteration_bound_exhaustive(g)


def _verify_bound_kernel(kernel: EdgeKernel, lam: Fraction) -> bool:
    """``lam`` is the iteration bound iff a zero-weight cycle exists and no
    positive-weight cycle exists at ``lam``."""
    p, q = lam.numerator, lam.denominator
    return kernel.has_positive_cycle(p, q, strict=False) and not (
        kernel.has_positive_cycle(p, q, strict=True)
    )


def _verify_bound(g: DFG, lam: Fraction) -> bool:
    """``lam`` is the iteration bound iff a zero-weight cycle exists and no
    positive-weight cycle exists at ``lam``."""
    return _verify_bound_kernel(shared_kernel(g), lam)


def iteration_bound_exhaustive(g: DFG) -> Fraction:
    """Iteration bound via explicit simple-cycle enumeration (networkx).

    Exponential in the worst case; intended for small graphs and as a
    ground-truth oracle in the test-suite.
    """
    import networkx as nx

    nxg = nx.DiGraph()
    nxg.add_nodes_from(g.node_names())
    # Collapse parallel edges to their minimum delay: for maximizing
    # T(C)/D(C), only the smallest-delay parallel edge can be on a critical
    # cycle.
    min_delay: dict[tuple[str, str], int] = {}
    for e in g.edges():
        k = (e.src, e.dst)
        if k not in min_delay or e.delay < min_delay[k]:
            min_delay[k] = e.delay
    for (u, v), d in min_delay.items():
        nxg.add_edge(u, v, delay=d)

    best = Fraction(0)
    found = False
    for cycle in nx.simple_cycles(nxg):
        time = sum(g.node(n).time for n in cycle)
        delay = sum(
            nxg.edges[cycle[i], cycle[(i + 1) % len(cycle)]]["delay"]
            for i in range(len(cycle))
        )
        if delay == 0:
            raise DFGError(f"zero-delay cycle through {sorted(cycle)}")
        ratio = Fraction(time, delay)
        if not found or ratio > best:
            best, found = ratio, True
    return best


def minimum_unfolding_for_rate_optimality(g: DFG, max_factor: int = 64) -> int:
    """Smallest unfolding factor ``f`` with ``f * B(G)`` integral.

    A rate-optimal *integral* cycle period for the unfolded graph requires
    ``f * B(G)`` to be an integer; the smallest such ``f`` is the
    denominator of the iteration bound.  ``max_factor`` guards against
    pathological graphs.
    """
    bound = iteration_bound(g)
    if bound == 0:
        return 1
    f = bound.denominator
    if f > max_factor:
        raise DFGError(
            f"rate-optimality needs unfolding factor {f} > max_factor={max_factor}"
        )
    return f
