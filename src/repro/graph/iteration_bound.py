"""Iteration bound of a cyclic data-flow graph.

The *iteration bound* ``B(G) = max_C T(C) / D(C)`` over all cycles ``C``
(``T`` = total computation time on the cycle, ``D`` = total delay count) is
the fundamental lower bound on the average time per loop iteration of any
static schedule.  A schedule is *rate-optimal* when its iteration period
equals ``B(G)``; when ``B(G)`` is non-integral that can only be achieved by
unfolding the loop by a factor ``f`` that makes ``f * B(G)`` integral
(Section 4 of the paper).

Two independent algorithms are provided:

* :func:`iteration_bound` — Lawler-style parametric binary search with a
  positive-cycle oracle, snapped to an exact rational with bounded
  denominator and *verified* exactly; near-linear-in-practice and exact.
* :func:`iteration_bound_exhaustive` — direct enumeration of simple cycles
  via networkx; exponential in general, used as a cross-check in tests and
  as a fallback.
"""

from __future__ import annotations

from fractions import Fraction

from .dfg import DFG, DFGError

__all__ = [
    "iteration_bound",
    "iteration_bound_exhaustive",
    "has_cycle_with_nonneg_weight",
    "minimum_unfolding_for_rate_optimality",
]


def _edge_weights(g: DFG, lam: Fraction) -> list[tuple[str, str, Fraction]]:
    """Weighted edge list ``(u, v, t(u) - lam * d)`` for the cycle test.

    Assigning each edge the computation time of its *source* node makes the
    weight sum of any cycle equal ``T(C) - lam * D(C)``, since every node of
    a cycle is the source of exactly one of its edges.
    """
    return [
        (e.src, e.dst, Fraction(g.node(e.src).time) - lam * e.delay)
        for e in g.edges()
    ]


def _has_positive_cycle(g: DFG, lam: Fraction, strict: bool) -> bool:
    """Does a cycle with weight ``> 0`` (or ``>= 0`` if not strict) exist?

    Bellman–Ford longest-path relaxation from a virtual super-source (all
    distances start at 0, so cycles anywhere in the graph are found).  A
    cycle of weight exactly zero does not cause divergence under strict
    inequality relaxation, so ``strict=True``/``False`` distinguish
    ``T - lam D > 0`` from ``T - lam D >= 0``.
    """
    edges = _edge_weights(g, lam)
    if not strict:
        # Detect weight >= 0 cycles by nudging every edge up by an epsilon
        # smaller than any achievable gap: with integral T and D and
        # lam = p/q, cycle weights are multiples of 1/q, so eps = 1/(2q*|V|)
        # per edge keeps total perturbation below 1/(2q) around zero.
        q = lam.denominator
        eps = Fraction(1, 2 * q * max(1, g.num_edges))
        edges = [(u, v, w + eps) for (u, v, w) in edges]

    dist: dict[str, Fraction] = {n: Fraction(0) for n in g.node_names()}
    n = g.num_nodes
    for _ in range(n - 1):
        changed = False
        for u, v, w in edges:
            cand = dist[u] + w
            if cand > dist[v]:
                dist[v] = cand
                changed = True
        if not changed:
            return False
    for u, v, w in edges:
        if dist[u] + w > dist[v]:
            return True
    return False


def has_cycle_with_nonneg_weight(g: DFG, lam: Fraction) -> bool:
    """Whether some cycle satisfies ``T(C) - lam * D(C) >= 0``.

    This is exactly the condition ``B(G) >= lam``.
    """
    return _has_positive_cycle(g, lam, strict=False)


def iteration_bound(g: DFG) -> Fraction:
    """Exact iteration bound ``max_C T(C)/D(C)`` as a :class:`Fraction`.

    Returns ``Fraction(0)`` for acyclic graphs (no cycle constrains the
    rate).  Raises :class:`DFGError` if the graph has a zero-delay cycle
    (such graphs have no legal schedule at all).
    """
    from .validate import validate

    validate(g)

    total_delay = g.total_delay
    if total_delay == 0:
        # validate() guarantees no zero-delay cycle, so with no delays at
        # all the graph is acyclic.
        return Fraction(0)

    # Quick acyclicity check: if no cycle at lam=0 exists (i.e. no cycle at
    # all, since weights are then all positive node times), bound is 0.
    if not _has_positive_cycle(g, Fraction(0), strict=True):
        return Fraction(0)

    lo = Fraction(0)  # B > 0 here: some cycle exists
    hi = Fraction(g.total_time)  # T(C) <= total_time, D(C) >= 1
    # Distinct candidate ratios have denominators <= total_delay, so once
    # the bracket is narrower than 1/total_delay^2 only one candidate fits.
    resolution = Fraction(1, 2 * total_delay * total_delay)
    while hi - lo > resolution:
        mid = (lo + hi) / 2
        if _has_positive_cycle(g, mid, strict=True):
            lo = mid
        else:
            hi = mid

    candidate = ((lo + hi) / 2).limit_denominator(total_delay)
    if _verify_bound(g, candidate):
        return candidate

    # Extremely defensive fallback; unreachable for well-formed inputs but
    # keeps the function total.
    return iteration_bound_exhaustive(g)


def _verify_bound(g: DFG, lam: Fraction) -> bool:
    """``lam`` is the iteration bound iff a zero-weight cycle exists and no
    positive-weight cycle exists at ``lam``."""
    return has_cycle_with_nonneg_weight(g, lam) and not _has_positive_cycle(
        g, lam, strict=True
    )


def iteration_bound_exhaustive(g: DFG) -> Fraction:
    """Iteration bound via explicit simple-cycle enumeration (networkx).

    Exponential in the worst case; intended for small graphs and as a
    ground-truth oracle in the test-suite.
    """
    import networkx as nx

    nxg = nx.DiGraph()
    nxg.add_nodes_from(g.node_names())
    # Collapse parallel edges to their minimum delay: for maximizing
    # T(C)/D(C), only the smallest-delay parallel edge can be on a critical
    # cycle.
    min_delay: dict[tuple[str, str], int] = {}
    for e in g.edges():
        k = (e.src, e.dst)
        if k not in min_delay or e.delay < min_delay[k]:
            min_delay[k] = e.delay
    for (u, v), d in min_delay.items():
        nxg.add_edge(u, v, delay=d)

    best = Fraction(0)
    found = False
    for cycle in nx.simple_cycles(nxg):
        time = sum(g.node(n).time for n in cycle)
        delay = sum(
            nxg.edges[cycle[i], cycle[(i + 1) % len(cycle)]]["delay"]
            for i in range(len(cycle))
        )
        if delay == 0:
            raise DFGError(f"zero-delay cycle through {sorted(cycle)}")
        ratio = Fraction(time, delay)
        if not found or ratio > best:
            best, found = ratio, True
    return best


def minimum_unfolding_for_rate_optimality(g: DFG, max_factor: int = 64) -> int:
    """Smallest unfolding factor ``f`` with ``f * B(G)`` integral.

    A rate-optimal *integral* cycle period for the unfolded graph requires
    ``f * B(G)`` to be an integer; the smallest such ``f`` is the
    denominator of the iteration bound.  ``max_factor`` guards against
    pathological graphs.
    """
    bound = iteration_bound(g)
    if bound == 0:
        return 1
    f = bound.denominator
    if f > max_factor:
        raise DFGError(
            f"rate-optimality needs unfolding factor {f} > max_factor={max_factor}"
        )
    return f
