"""Flat index-array adjacency kernel shared by the parametric hot paths.

The iteration-bound oracle and the retiming feasibility solvers all run
Bellman–Ford-style relaxations over the same graph many times, varying only
the edge weights between probes.  Touching :class:`~repro.graph.dfg.DFG`
objects inside those inner loops — ``g.node(e.src).time``, attribute
lookups on :class:`~repro.graph.dfg.Edge` — costs far more than the integer
arithmetic itself.  An :class:`EdgeKernel` extracts the graph once into
parallel flat lists indexed by small integers so that a probe is a pure
``zip``-driven integer loop.

The kernel is a snapshot: it does not track later mutations of the source
graph.  Build it after the graph is final (which is how every algorithm in
this library treats its input).
"""

from __future__ import annotations

from ..observability import count
from .dfg import DFG

__all__ = ["EdgeKernel"]


class EdgeKernel:
    """Index-array snapshot of a DFG's nodes and edges.

    Attributes
    ----------
    names:
        Node names in insertion order; position is the node's index.
    index:
        ``name -> index`` inverse of :attr:`names`.
    times:
        ``times[i]`` is the computation time of node ``i``.
    src, dst, delay, src_time:
        Parallel per-edge lists: endpoint indices, edge delay, and the
        (precomputed) computation time of the source node.
    """

    __slots__ = (
        "names",
        "index",
        "num_nodes",
        "num_edges",
        "times",
        "src",
        "dst",
        "delay",
        "src_time",
    )

    def __init__(self, g: DFG) -> None:
        names = g.node_names()
        index = {n: i for i, n in enumerate(names)}
        times = [g.node(n).time for n in names]
        src: list[int] = []
        dst: list[int] = []
        delay: list[int] = []
        src_time: list[int] = []
        for e in g.edges():
            s = index[e.src]
            src.append(s)
            dst.append(index[e.dst])
            delay.append(e.delay)
            src_time.append(times[s])
        self.names = names
        self.index = index
        self.num_nodes = len(names)
        self.num_edges = len(src)
        self.times = times
        self.src = src
        self.dst = dst
        self.delay = delay
        self.src_time = src_time

    def weighted_edges(self, p: int, q: int) -> list[tuple[int, int, int]]:
        """Per-edge integer weights ``q * t(src) - p * d`` for ``λ = p/q``.

        The weight sum of any cycle is then ``q * T(C) - p * D(C)``, whose
        sign against zero compares ``T(C)/D(C)`` with ``p/q`` exactly — no
        rational arithmetic inside relaxation loops.
        """
        return [
            (s, t, q * st - p * d)
            for s, t, st, d in zip(self.src, self.dst, self.src_time, self.delay)
        ]

    def has_positive_cycle(self, p: int, q: int, strict: bool = True) -> bool:
        """Whether a cycle with ``q*T(C) - p*D(C) > 0`` (``>= 0`` when not
        ``strict``) exists, by exact integer Bellman–Ford.

        The non-strict test scales every weight by ``num_nodes + 1`` and adds
        1 per edge: a simple cycle has at most ``num_nodes`` edges, so a
        cycle of original weight ``>= 0`` becomes strictly positive while a
        cycle of weight ``<= -1`` stays strictly negative — an exact
        encoding, unlike epsilon perturbation over rationals.
        """
        edges = self.weighted_edges(p, q)
        if not strict:
            m = self.num_nodes + 1
            edges = [(s, t, w * m + 1) for (s, t, w) in edges]
        return _longest_path_diverges(edges, self.num_nodes)


def _longest_path_diverges(edges: list[tuple[int, int, int]], n: int) -> bool:
    """Longest-path relaxation from a virtual super-source over all nodes;
    ``True`` iff relaxation still improves after ``n - 1`` passes (a strictly
    positive cycle exists)."""
    dist = [0] * n
    passes = 0
    diverges = False
    for _ in range(n - 1):
        passes += 1
        changed = False
        for s, t, w in edges:
            cand = dist[s] + w
            if cand > dist[t]:
                dist[t] = cand
                changed = True
        if not changed:
            break
    else:
        passes += 1
        for s, t, w in edges:
            if dist[s] + w > dist[t]:
                diverges = True
                break
    count("kernel.relax_edges", passes * len(edges))
    return diverges
