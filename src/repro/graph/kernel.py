"""Flat index-array adjacency kernel shared by the parametric hot paths.

The iteration-bound oracle and the retiming feasibility solvers all run
Bellman–Ford-style relaxations over the same graph many times, varying only
the edge weights between probes.  Touching :class:`~repro.graph.dfg.DFG`
objects inside those inner loops — ``g.node(e.src).time``, attribute
lookups on :class:`~repro.graph.dfg.Edge` — costs far more than the integer
arithmetic itself.  An :class:`EdgeKernel` extracts the graph once into
parallel flat lists indexed by small integers so that a probe is a pure
``zip``-driven integer loop; :meth:`EdgeKernel.np_arrays` exposes the same
layout as numpy arrays for the vectorized relaxation backends.

One kernel per graph is enough for every consumer — the (W, D) builder,
the incremental feasibility solver, the iteration-bound search and the
FEAS oracle all share the snapshot through :func:`shared_kernel` (id-keyed
with a weakref guard, like the dispatch compile cache), so the flat arrays
are extracted exactly once per graph object.

The kernel is a snapshot: it does not track later mutations of the source
graph.  Build it after the graph is final (which is how every algorithm in
this library treats its input).
"""

from __future__ import annotations

import os
import threading
import weakref

from ..observability import count
from .dfg import DFG

__all__ = ["EdgeKernel", "shared_kernel"]


def _kernel_threshold(default: int = 256) -> int:
    """Edge count above which relaxations dispatch to numpy, overridable
    via ``REPRO_KERNEL_NUMPY_THRESHOLD`` (unparsable values fall back)."""
    raw = os.environ.get("REPRO_KERNEL_NUMPY_THRESHOLD")
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


#: Edge count above which :meth:`EdgeKernel.has_positive_cycle` uses the
#: vectorized numpy relaxation.  Kept as a module attribute so tests can
#: monkeypatch it; the environment variable is re-read whenever it changes
#: (see :func:`_current_threshold`).
_NUMPY_THRESHOLD = _kernel_threshold()
_ENV_SNAPSHOT = os.environ.get("REPRO_KERNEL_NUMPY_THRESHOLD")


def _current_threshold() -> int:
    """The live numpy-dispatch threshold.

    Re-reads ``REPRO_KERNEL_NUMPY_THRESHOLD`` whenever the environment
    value changed since the last look (import-time freezing made the
    variable silently dead after import), while still honouring direct
    monkeypatches of :data:`_NUMPY_THRESHOLD` when the environment is
    untouched.
    """
    global _ENV_SNAPSHOT, _NUMPY_THRESHOLD
    raw = os.environ.get("REPRO_KERNEL_NUMPY_THRESHOLD")
    if raw != _ENV_SNAPSHOT:
        _ENV_SNAPSHOT = raw
        _NUMPY_THRESHOLD = _kernel_threshold()
    return _NUMPY_THRESHOLD


class EdgeKernel:
    """Index-array snapshot of a DFG's nodes and edges.

    Attributes
    ----------
    names:
        Node names in insertion order; position is the node's index.
    index:
        ``name -> index`` inverse of :attr:`names`.
    times:
        ``times[i]`` is the computation time of node ``i``.
    src, dst, delay, src_time:
        Parallel per-edge lists: endpoint indices, edge delay, and the
        (precomputed) computation time of the source node.
    """

    __slots__ = (
        "names",
        "index",
        "num_nodes",
        "num_edges",
        "times",
        "src",
        "dst",
        "delay",
        "src_time",
        "total_time",
        "total_delay",
        "_np_arrays",
        "__weakref__",
    )

    def __init__(self, g: DFG) -> None:
        names = g.node_names()
        index = {n: i for i, n in enumerate(names)}
        times = [g.node(n).time for n in names]
        src: list[int] = []
        dst: list[int] = []
        delay: list[int] = []
        src_time: list[int] = []
        for e in g.edges():
            s = index[e.src]
            src.append(s)
            dst.append(index[e.dst])
            delay.append(e.delay)
            src_time.append(times[s])
        self.names = names
        self.index = index
        self.num_nodes = len(names)
        self.num_edges = len(src)
        self.times = times
        self.src = src
        self.dst = dst
        self.delay = delay
        self.src_time = src_time
        self.total_time = sum(times)
        self.total_delay = sum(delay)
        self._np_arrays = None

    def np_arrays(self):
        """The edge layout as numpy int64 arrays, built lazily once.

        Returns ``(src, dst, delay, src_time, times)``.  Empty graphs get
        zero-length arrays (callers guard on :attr:`num_edges`).
        """
        if self._np_arrays is None:
            import numpy as np

            self._np_arrays = (
                np.array(self.src, dtype=np.int64),
                np.array(self.dst, dtype=np.int64),
                np.array(self.delay, dtype=np.int64),
                np.array(self.src_time, dtype=np.int64),
                np.array(self.times, dtype=np.int64),
            )
        return self._np_arrays

    def weighted_edges(self, p: int, q: int) -> list[tuple[int, int, int]]:
        """Per-edge integer weights ``q * t(src) - p * d`` for ``λ = p/q``.

        The weight sum of any cycle is then ``q * T(C) - p * D(C)``, whose
        sign against zero compares ``T(C)/D(C)`` with ``p/q`` exactly — no
        rational arithmetic inside relaxation loops.
        """
        return [
            (s, t, q * st - p * d)
            for s, t, st, d in zip(self.src, self.dst, self.src_time, self.delay)
        ]

    def has_positive_cycle(self, p: int, q: int, strict: bool = True) -> bool:
        """Whether a cycle with ``q*T(C) - p*D(C) > 0`` (``>= 0`` when not
        ``strict``) exists, by exact integer Bellman–Ford.

        The non-strict test scales every weight by ``num_nodes + 1`` and adds
        1 per edge: a simple cycle has at most ``num_nodes`` edges, so a
        cycle of original weight ``>= 0`` becomes strictly positive while a
        cycle of weight ``<= -1`` stays strictly negative — an exact
        encoding, unlike epsilon perturbation over rationals.

        Above :data:`_NUMPY_THRESHOLD` edges the relaxation runs as
        vectorized scatter-max passes over the flat arrays (provided int64
        distances cannot overflow); both backends converge to the same
        longest-path fixpoint and emit the same divergence verdict.
        """
        if self.num_edges > _current_threshold():
            scale = 1 if strict else self.num_nodes + 1
            weights = (
                q * st - p * d
                for st, d in zip(self.src_time, self.delay)
            )
            max_w = max((abs(w) * scale + 1 for w in weights), default=0)
            # Distances are bounded by passes * max|w|; require int64 slack.
            if (self.num_nodes + 2) * max_w < 2**60:
                return self._has_positive_cycle_numpy(p, q, strict)
        edges = self.weighted_edges(p, q)
        if not strict:
            m = self.num_nodes + 1
            edges = [(s, t, w * m + 1) for (s, t, w) in edges]
        return _longest_path_diverges(edges, self.num_nodes)

    def _has_positive_cycle_numpy(self, p: int, q: int, strict: bool) -> bool:
        """Vectorized longest-path divergence over the flat edge arrays."""
        import numpy as np

        src, dst, delay, src_time, _times = self.np_arrays()
        w = q * src_time - p * delay
        if not strict:
            w = w * (self.num_nodes + 1) + 1
        n = self.num_nodes
        dist = np.zeros(n, dtype=np.int64)
        passes = 0
        diverges = False
        for _ in range(max(0, n - 1)):
            passes += 1
            before = dist.copy()
            np.maximum.at(dist, dst, before[src] + w)
            if np.array_equal(dist, before):
                break
        else:
            passes += 1
            if bool(np.any(dist[src] + w > dist[dst])):
                diverges = True
        count("kernel.relax_edges", passes * self.num_edges)
        count("kernel.relax_sweeps", passes)
        return diverges


_SHARED: dict[int, EdgeKernel] = {}
_SHARED_LOCK = threading.Lock()


def shared_kernel(g: DFG) -> EdgeKernel:
    """The process-wide :class:`EdgeKernel` of ``g``, built once per graph.

    Id-keyed with a weakref guard (the pattern of
    :func:`repro.machine.dispatch.compile_program`): a recycled ``id()``
    after garbage collection can never alias a different graph to a stale
    kernel, and entries die with their graph.
    """
    key = id(g)
    kernel = _SHARED.get(key)
    if kernel is not None and _valid(kernel, g):
        return kernel
    with _SHARED_LOCK:
        kernel = _SHARED.get(key)
        if kernel is not None and _valid(kernel, g):
            return kernel
        kernel = EdgeKernel(g)
        _SHARED[key] = kernel
        _guards[key] = weakref.ref(g, lambda _ref, k=key: _drop(k))
    return kernel


_guards: dict[int, weakref.ref] = {}


def _valid(kernel: EdgeKernel, g: DFG) -> bool:
    guard = _guards.get(id(g))
    return guard is not None and guard() is g


def _drop(key: int) -> None:
    _SHARED.pop(key, None)
    _guards.pop(key, None)


def _longest_path_diverges(edges: list[tuple[int, int, int]], n: int) -> bool:
    """Longest-path relaxation from a virtual super-source over all nodes;
    ``True`` iff relaxation still improves after ``n - 1`` passes (a strictly
    positive cycle exists)."""
    dist = [0] * n
    passes = 0
    diverges = False
    for _ in range(n - 1):
        passes += 1
        changed = False
        for s, t, w in edges:
            cand = dist[s] + w
            if cand > dist[t]:
                dist[t] = cand
                changed = True
        if not changed:
            break
    else:
        passes += 1
        for s, t, w in edges:
            if dist[s] + w > dist[t]:
                diverges = True
                break
    count("kernel.relax_edges", passes * len(edges))
    count("kernel.relax_sweeps", passes)
    return diverges
