"""Data-flow-graph substrate: graphs, validation, periods, bounds, W/D.

This package implements everything the paper's Section 2.1 assumes about
data-flow graphs: the graph structure itself (:class:`~repro.graph.DFG`),
legality validation, the cycle period and critical paths, the exact
iteration bound, and the Leiserson–Saxe ``W``/``D`` matrices that drive
optimal retiming.
"""

from .critical_cycle import critical_cycle, cycle_stats
from .dfg import DFG, DFGError, Edge, MODULUS, Node, OpKind, evaluate_op
from .iteration_bound import (
    iteration_bound,
    iteration_bound_exhaustive,
    iteration_bound_fraction,
    minimum_unfolding_for_rate_optimality,
)
from .kernel import EdgeKernel
from .period import alap_times, asap_times, critical_path, cycle_period
from .validate import is_valid, topological_order, validate
from .serialize import GraphFormatError, from_json, load_graph, to_dot, to_json
from .wd import distinct_d_values, wd_matrices

__all__ = [
    "critical_cycle",
    "cycle_stats",
    "DFG",
    "DFGError",
    "Edge",
    "Node",
    "OpKind",
    "evaluate_op",
    "MODULUS",
    "EdgeKernel",
    "iteration_bound",
    "iteration_bound_exhaustive",
    "iteration_bound_fraction",
    "minimum_unfolding_for_rate_optimality",
    "alap_times",
    "asap_times",
    "critical_path",
    "cycle_period",
    "is_valid",
    "topological_order",
    "validate",
    "distinct_d_values",
    "wd_matrices",
    "GraphFormatError",
    "from_json",
    "load_graph",
    "to_dot",
    "to_json",
]
