"""Cyclic data-flow graphs (DFGs) for iterative DSP loop programs.

A data-flow graph ``G = <V, E, d, t>`` is the central object of the whole
library, following Section 2.1 of the paper: ``V`` is a set of computation
nodes, ``E`` a multiset of directed edges, ``d(e) >= 0`` the number of
*delays* (inter-iteration distance) on edge ``e`` and ``t(v) >= 1`` the
computation time of node ``v``.

An edge ``u -> v`` with delay ``d`` means: the instance of ``v`` computed in
iteration ``i`` consumes the value produced by the instance of ``u`` computed
in iteration ``i - d``.  Edges with ``d = 0`` are *intra-iteration*
dependencies; the subgraph they induce must be acyclic for the loop to be
computable.

Nodes additionally carry an executable *operation* (:class:`OpKind` plus an
integer immediate) so that loop programs generated from a DFG can actually be
*run* on the virtual machine in :mod:`repro.machine` — this is how the
library proves that every code-size-reducing transformation preserves
semantics.

Parallel edges with different delays between the same pair of nodes are
allowed (they arise naturally from unfolding), which is why edges carry an
explicit ``key``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterator, Mapping

__all__ = ["OpKind", "Node", "Edge", "DFG", "DFGError"]


class DFGError(ValueError):
    """Raised for structurally invalid data-flow graphs or operations."""


class OpKind(enum.Enum):
    """Executable operation kinds for DFG nodes.

    The arithmetic is deliberately simple — enough to give every benchmark
    loop concrete integer semantics so that transformed programs can be
    checked for value-identical results, which is all the paper's
    correctness theorems require.

    All operations are evaluated in the ring ``Z mod (2**61 - 1)`` (see
    :data:`MODULUS`).  Filters with multiplicative recurrences otherwise
    grow values double-exponentially in the trip count (e.g. ``D = A * C``
    in the paper's Figure-2 loop squares magnitudes every few iterations),
    which would make long executions infeasible.  Reduction is applied
    uniformly, so two programs compute identical ring values iff they
    combine identical operands — a mismatch escaping detection would
    require a difference divisible by the Mersenne prime ``2**61 - 1``.

    Input convention (``values`` is the list of predecessor values in a
    fixed deterministic order, ``imm`` the node's immediate):

    ``ADD``
        ``sum(values) + imm``
    ``SUB``
        ``values[0] - sum(values[1:]) + imm`` (``imm`` when no inputs)
    ``MUL``
        ``product(values) * imm``
    ``MAC``
        ``values[0] * values[1] + sum(values[2:]) + imm`` (multiply
        accumulate; requires at least two inputs)
    ``COPY``
        ``values[0] + imm`` (requires exactly one input)
    ``SOURCE``
        ``imm + 13 * j`` where ``j`` is the iteration instance — models an
        external input stream whose samples differ per iteration.
    """

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAC = "mac"
    COPY = "copy"
    SOURCE = "source"


#: Modulus of the evaluation ring (a Mersenne prime): keeps VM values
#: machine-word-sized for any trip count while preserving the discriminating
#: power of exact integer comparison for all practical purposes.
MODULUS: int = 2**61 - 1


def evaluate_op(op: OpKind, imm: int, values: list[int], instance: int) -> int:
    """Evaluate operation ``op`` with immediate ``imm`` on input ``values``,
    reduced into ``[0, MODULUS)``.

    ``instance`` is the (1-based) iteration instance being computed; it only
    matters for :data:`OpKind.SOURCE` nodes, which model a per-iteration
    input stream.
    """
    if op is OpKind.ADD:
        return (sum(values) + imm) % MODULUS
    if op is OpKind.SUB:
        if not values:
            return imm % MODULUS
        return (values[0] - sum(values[1:]) + imm) % MODULUS
    if op is OpKind.MUL:
        result = imm % MODULUS
        for v in values:
            result = (result * v) % MODULUS
        return result
    if op is OpKind.MAC:
        if len(values) < 2:
            raise DFGError(f"MAC needs at least two inputs, got {len(values)}")
        return (values[0] * values[1] + sum(values[2:]) + imm) % MODULUS
    if op is OpKind.COPY:
        if len(values) != 1:
            raise DFGError(f"COPY needs exactly one input, got {len(values)}")
        return (values[0] + imm) % MODULUS
    if op is OpKind.SOURCE:
        if values:
            raise DFGError("SOURCE nodes take no inputs")
        return (imm + 13 * instance) % MODULUS
    raise DFGError(f"unknown op kind: {op!r}")


@dataclass(frozen=True)
class Node:
    """A computation node of a DFG.

    Attributes
    ----------
    name:
        Unique node identifier within its graph.
    time:
        Computation time ``t(v)`` in time units (positive integer).  The
        paper's experiments assume unit time; the library supports arbitrary
        positive times (needed for the Figure-8 example).
    op:
        Executable operation kind; see :class:`OpKind`.
    imm:
        Integer immediate operand of the operation.
    """

    name: str
    time: int = 1
    op: OpKind = OpKind.ADD
    imm: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.time, int) or self.time < 1:
            raise DFGError(f"node {self.name!r}: time must be a positive int, got {self.time!r}")
        if not isinstance(self.imm, int):
            raise DFGError(f"node {self.name!r}: imm must be an int, got {self.imm!r}")


@dataclass(frozen=True)
class Edge:
    """A directed dependency edge ``src -> dst`` carrying ``delay`` delays.

    ``key`` disambiguates parallel edges between the same node pair; within
    one :class:`DFG` the triple ``(src, dst, key)`` is unique.
    """

    src: str
    dst: str
    delay: int
    key: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.delay, int) or self.delay < 0:
            raise DFGError(
                f"edge {self.src!r}->{self.dst!r}: delay must be a non-negative int, "
                f"got {self.delay!r}"
            )

    @property
    def ident(self) -> tuple[str, str, int]:
        """The unique ``(src, dst, key)`` identity of this edge."""
        return (self.src, self.dst, self.key)


class DFG:
    """A node- and edge-weighted directed multigraph modelling a loop body.

    The graph is mutable while being built (:meth:`add_node`,
    :meth:`add_edge`) and is usually treated as immutable afterwards;
    transformations such as retiming and unfolding return new graphs.

    Examples
    --------
    The two-node example of Figure 1 of the paper::

        >>> g = DFG("fig1")
        >>> _ = g.add_node("A")
        >>> _ = g.add_node("B")
        >>> _ = g.add_edge("A", "B", delay=0)
        >>> _ = g.add_edge("B", "A", delay=2)
        >>> g.num_nodes, g.num_edges, g.total_delay
        (2, 2, 2)
    """

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._edges: dict[tuple[str, str, int], Edge] = {}
        self._out: dict[str, list[Edge]] = {}
        self._in: dict[str, list[Edge]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        time: int = 1,
        op: OpKind = OpKind.ADD,
        imm: int = 0,
    ) -> Node:
        """Add a computation node and return it.

        Raises :class:`DFGError` if a node of that name already exists.
        """
        if name in self._nodes:
            raise DFGError(f"duplicate node {name!r}")
        node = Node(name=name, time=time, op=op, imm=imm)
        self._nodes[name] = node
        self._out[name] = []
        self._in[name] = []
        return node

    def add_edge(self, src: str, dst: str, delay: int, key: int | None = None) -> Edge:
        """Add a dependency edge ``src -> dst`` with ``delay`` delays.

        If ``key`` is omitted the smallest unused key for the ``(src, dst)``
        pair is chosen, so parallel edges can be added without bookkeeping.
        """
        if src not in self._nodes:
            raise DFGError(f"edge references unknown source node {src!r}")
        if dst not in self._nodes:
            raise DFGError(f"edge references unknown destination node {dst!r}")
        if key is None:
            key = 0
            while (src, dst, key) in self._edges:
                key += 1
        elif (src, dst, key) in self._edges:
            raise DFGError(f"duplicate edge ({src!r}, {dst!r}, key={key})")
        edge = Edge(src=src, dst=dst, delay=delay, key=key)
        self._edges[edge.ident] = edge
        self._out[src].append(edge)
        self._in[dst].append(edge)
        return edge

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of computation nodes ``|V|`` (the original code size)."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of dependency edges ``|E|``."""
        return len(self._edges)

    @property
    def total_delay(self) -> int:
        """Sum of all edge delays in the graph."""
        return sum(e.delay for e in self._edges.values())

    @property
    def total_time(self) -> int:
        """Sum of all node computation times."""
        return sum(v.time for v in self._nodes.values())

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._nodes.values())

    def node_names(self) -> list[str]:
        """Node names in insertion order."""
        return list(self._nodes)

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise DFGError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        """Whether a node of that name exists."""
        return name in self._nodes

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in insertion order."""
        return iter(self._edges.values())

    def out_edges(self, name: str) -> list[Edge]:
        """All edges leaving node ``name``."""
        self.node(name)
        return list(self._out[name])

    def in_edges(self, name: str) -> list[Edge]:
        """All edges entering node ``name``, in insertion order.

        The order of this list defines the *operand order* of the node's
        operation, so it is deterministic and preserved by transformations.
        """
        self.node(name)
        return list(self._in[name])

    def predecessors(self, name: str) -> list[str]:
        """Distinct predecessor node names of ``name`` (stable order)."""
        seen: dict[str, None] = {}
        for e in self.in_edges(name):
            seen.setdefault(e.src, None)
        return list(seen)

    def successors(self, name: str) -> list[str]:
        """Distinct successor node names of ``name`` (stable order)."""
        seen: dict[str, None] = {}
        for e in self.out_edges(name):
            seen.setdefault(e.dst, None)
        return list(seen)

    def zero_delay_edges(self) -> list[Edge]:
        """All intra-iteration (zero-delay) dependency edges."""
        return [e for e in self._edges.values() if e.delay == 0]

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "DFG":
        """Deep copy of this graph (nodes and edges are immutable values)."""
        g = DFG(name if name is not None else self.name)
        g._nodes = dict(self._nodes)
        g._edges = dict(self._edges)
        g._out = {k: list(v) for k, v in self._out.items()}
        g._in = {k: list(v) for k, v in self._in.items()}
        return g

    def with_delays(self, delays: Mapping[tuple[str, str, int], int], name: str | None = None) -> "DFG":
        """Return a copy whose edge delays are replaced per ``delays``.

        ``delays`` maps edge identities ``(src, dst, key)`` to new delay
        values; edges not mentioned keep their delay.  This is the primitive
        used by retiming application.
        """
        g = DFG(name if name is not None else self.name)
        for node in self.nodes():
            g._nodes[node.name] = node
            g._out[node.name] = []
            g._in[node.name] = []
        for edge in self.edges():
            new_delay = delays.get(edge.ident, edge.delay)
            new_edge = replace(edge, delay=new_delay)
            g._edges[new_edge.ident] = new_edge
            g._out[new_edge.src].append(new_edge)
            g._in[new_edge.dst].append(new_edge)
        return g

    def to_networkx(self):
        """Export as a :class:`networkx.MultiDiGraph`.

        Node attributes: ``time``, ``op``, ``imm``.  Edge attribute:
        ``delay``.  Useful for visualization and for cross-checking our
        algorithms against networkx ones in the test-suite.
        """
        import networkx as nx

        g = nx.MultiDiGraph(name=self.name)
        for node in self.nodes():
            g.add_node(node.name, time=node.time, op=node.op, imm=node.imm)
        for edge in self.edges():
            g.add_edge(edge.src, edge.dst, key=edge.key, delay=edge.delay)
        return g

    @classmethod
    def from_networkx(cls, g, name: str | None = None) -> "DFG":
        """Build a :class:`DFG` from a networkx (multi)digraph.

        Missing node attributes default to ``time=1, op=ADD, imm=0``;
        missing edge ``delay`` defaults to 0.
        """
        dfg = cls(name if name is not None else (g.name or "dfg"))
        for n, data in g.nodes(data=True):
            dfg.add_node(
                str(n),
                time=int(data.get("time", 1)),
                op=data.get("op", OpKind.ADD),
                imm=int(data.get("imm", 0)),
            )
        if g.is_multigraph():
            for u, v, k, data in g.edges(keys=True, data=True):
                dfg.add_edge(str(u), str(v), delay=int(data.get("delay", 0)))
        else:
            for u, v, data in g.edges(data=True):
                dfg.add_edge(str(u), str(v), delay=int(data.get("delay", 0)))
        return dfg

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DFG):
            return NotImplemented
        return self._nodes == other._nodes and self._edges == other._edges

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DFG({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges}, "
            f"delays={self.total_delay})"
        )
