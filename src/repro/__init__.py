"""repro — optimal code-size reduction for software-pipelined DSP loops.

A complete, executable reproduction of Zhuge, Xiao, Shao, Sha &
Chantrapornchai (2002): retiming-based software pipelining, unfolding, and
the conditional-register framework that removes *all* code-size expansion
(prologue, epilogue, remainder iterations) those transformations introduce.

Quickstart::

    from repro import DFG, OpKind, minimize_cycle_period
    from repro import csr_pipelined_loop, assert_equivalent

    g = DFG("loop")
    g.add_node("A", op=OpKind.MUL, imm=3)
    g.add_node("B", op=OpKind.ADD, imm=7)
    g.add_node("C", op=OpKind.MUL, imm=2)
    g.add_edge("B", "A", 3)
    g.add_edge("A", "B", 0)
    g.add_edge("B", "C", 0)

    period, r = minimize_cycle_period(g)   # software-pipeline the loop
    program = csr_pipelined_loop(g, r)     # optimal-size predicated form
    assert_equivalent(g, program, n=100)   # prove it on the VM

Subpackages
-----------
``repro.graph``      data-flow graphs, cycle period, iteration bound, W/D
``repro.retiming``   retiming functions, optimal retiming (LS), FEAS
``repro.unfolding``  the G -> G_f transformation; both composition orders
``repro.schedule``   list scheduling, rotation scheduling, resources
``repro.codegen``    loop-program IR and plain code generators
``repro.machine``    the predicated virtual DSP machine
``repro.core``       the CSR framework, size models, trade-off explorer
``repro.workloads``  the paper's benchmarks and worked examples
``repro.analysis``   drivers regenerating the paper's tables
``repro.runner``     parallel cached experiment engine + differential sweeps
"""

from .graph import (
    DFG,
    DFGError,
    Edge,
    Node,
    OpKind,
    cycle_period,
    iteration_bound,
    topological_order,
    validate,
)
from .retiming import (
    Retiming,
    RetimingError,
    feas,
    minimize_cycle_period,
    rate_optimal_retiming,
    retime_for_period,
)
from .unfolding import retime_unfold, unfold, unfold_retime
from .schedule import ResourceModel, list_schedule, rotation_schedule
from .codegen import (
    LoopProgram,
    format_program,
    original_loop,
    pipelined_loop,
    retimed_unfolded_loop,
    unfold_retimed_loop,
    unfolded_loop,
)
from .machine import MachineError, run_program
from .core import (
    assert_equivalent,
    best_under_budget,
    csr_pipelined_loop,
    csr_retimed_unfolded_loop,
    csr_unfold_retimed_loop,
    csr_unfolded_loop,
    design_space,
    equivalent,
    limit_registers,
)
from .compiler import CompilationResult, compile_loop
from .frontend import ParseError, parse_loop
from .runner import ExperimentEngine, Job, ResultCache, differential_sweep
from .workloads import benchmark_graphs, get_workload

__version__ = "1.0.0"

__all__ = [
    "DFG",
    "DFGError",
    "Edge",
    "Node",
    "OpKind",
    "cycle_period",
    "iteration_bound",
    "topological_order",
    "validate",
    "Retiming",
    "RetimingError",
    "feas",
    "minimize_cycle_period",
    "rate_optimal_retiming",
    "retime_for_period",
    "retime_unfold",
    "unfold",
    "unfold_retime",
    "ResourceModel",
    "list_schedule",
    "rotation_schedule",
    "LoopProgram",
    "format_program",
    "original_loop",
    "pipelined_loop",
    "retimed_unfolded_loop",
    "unfold_retimed_loop",
    "unfolded_loop",
    "MachineError",
    "run_program",
    "assert_equivalent",
    "best_under_budget",
    "csr_pipelined_loop",
    "csr_retimed_unfolded_loop",
    "csr_unfold_retimed_loop",
    "csr_unfolded_loop",
    "design_space",
    "equivalent",
    "limit_registers",
    "CompilationResult",
    "compile_loop",
    "ParseError",
    "parse_loop",
    "ExperimentEngine",
    "Job",
    "ResultCache",
    "differential_sweep",
    "benchmark_graphs",
    "get_workload",
    "__version__",
]
