"""Exact-optimal retiming: certified minimum cycle period and code size.

This is the ground-truth side of the differential oracle.  Where
:func:`repro.retiming.optimal.minimize_cycle_period` binary-searches the
*distinct values of the D matrix* (correct by Leiserson–Saxe Theorem 8, but
that candidate-set argument is exactly the kind of clever step a bug could
hide in), the oracle here searches the **full integer lattice**

    ``[ L,  Phi(G) ]``   with   ``L = max(max_v t(v), ceil(B(G)))``

anchored at two independently provable facts:

* ``Phi(G)`` — the unretimed cycle period — is always feasible (the zero
  retiming is its witness), so the optimum has a finite upper bound;
* ``L`` is a valid lower bound on *any* retimed period: no period can beat
  the slowest single node, and on any cycle ``C`` the ``D(C)`` retained
  delays cut it into at most ``D(C)`` zero-delay segments whose times sum
  to ``T(C)``, so some segment takes ``>= T(C)/D(C)`` — hence
  ``ceil(B(G))`` (retiming preserves ``T(C)`` and ``D(C)``).

Feasibility at each lattice point is decided by a *fresh* Bellman–Ford
difference-constraint solve over the pure-python ``(W, D)`` matrices, and
every feasible probe's witness is re-applied and re-measured — the oracle
never trusts a reduction it did not just verify.  Feasibility is monotone
in ``c`` (a retiming with period ``<= c`` also has period ``<= c + 1``),
so the integer binary search is exact.

The result is an :class:`OptimalPeriod` *certificate*: the best witnessed
period, a certified lower bound, and a ``proven`` flag.  Under a
``timeout`` the search degrades gracefully — the certificate keeps
whatever bounds were established instead of hanging (``gap`` bounds how
far from optimal the witness can be).

:func:`minimize_max_retiming` extends the oracle to *code size*: among all
retimings achieving period ``c`` it finds one of provably minimal
``M_r = max_v r(v)``, by binary-searching the solution *spread* ``s`` with
all-pairs constraints ``r(u) - r(v) <= s`` added to the period system.
``(M_r^* + 1) * |V|`` is then the true optimal pipelined code size the
Theorem 4.4/4.5 tests pin against.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..graph.dfg import DFG, DFGError
from ..graph.iteration_bound import iteration_bound
from ..graph.period import cycle_period
from ..graph.wd import wd_matrices_python
from ..observability import count, span
from ..retiming.constraints import DifferenceConstraints
from ..retiming.function import Retiming

__all__ = [
    "OptimalPeriod",
    "optimal_cycle_period",
    "period_lower_bound",
    "minimize_max_retiming",
    "minimal_code_size",
]

_WD = tuple[dict[tuple[str, str], int], dict[tuple[str, str], int]]


def period_lower_bound(g: DFG) -> int:
    """``L = max(max_v t(v), ceil(B(G)))`` — a certified lower bound on the
    cycle period of *every* legal retiming of ``g``.

    Validates the graph first: empty graphs and zero-delay cycles raise
    :class:`~repro.graph.dfg.DFGError` with a clear message (via
    :func:`~repro.graph.iteration_bound.iteration_bound`).
    """
    bound = iteration_bound(g)  # validates; 0 for acyclic graphs
    return max(max(v.time for v in g.nodes()), math.ceil(bound))


@dataclass(frozen=True)
class OptimalPeriod:
    """Certificate returned by :func:`optimal_cycle_period`.

    ``period`` is always *witnessed* (``retiming`` achieves it) and
    ``optimum_lower`` is always *certified* (every smaller period was
    either proved infeasible by a negative-cycle certificate or excluded
    by the iteration bound), so the true optimum lies in
    ``[optimum_lower, period]`` unconditionally — ``proven`` just says the
    interval collapsed.
    """

    graph: str
    period: int
    optimum_lower: int
    proven: bool
    retiming: Retiming
    probes: int
    backend: str = "lattice"

    @property
    def gap(self) -> int:
        """Width of the optimality interval (0 iff ``proven``)."""
        return self.period - self.optimum_lower


def _retime_for_period_exact(g: DFG, c: int, wd: _WD) -> Retiming | None:
    """Fresh-solve feasibility probe with a self-verified witness.

    Same Leiserson–Saxe system as the heuristic, but rebuilt from scratch
    per probe and cross-checked: a returned witness has been re-applied
    and re-measured, so a bug in the reduction cannot yield a false
    "feasible".
    """
    W, D = wd
    system = DifferenceConstraints()
    for n in g.node_names():
        system.add_variable(n)
    for e in g.edges():
        system.add(e.dst, e.src, e.delay)
    for (u, v), d_val in D.items():
        if d_val > c:
            system.add(v, u, W[(u, v)] - 1)
    solution = system.solve()
    if solution is None:
        return None
    r = Retiming(g, {n: int(val) for n, val in solution.items()}).normalized()
    achieved = cycle_period(r.apply())
    if achieved > c:
        raise AssertionError(
            f"oracle self-check failed: witness for c={c} achieves {achieved}"
        )
    return r


def optimal_cycle_period(
    g: DFG,
    *,
    timeout: float | None = None,
    backend: str = "lattice",
) -> OptimalPeriod:
    """The certified minimum cycle period achievable by retiming ``g``.

    ``backend="lattice"`` (default) is the self-contained integer binary
    search described in the module docstring; ``backend="ilp"`` delegates
    the per-period feasibility probes to the optional ``pulp`` ILP backend
    (raising :class:`~repro.optimal.ilp.OptimalBackendError` when pulp is
    not installed).

    ``timeout`` (seconds) bounds the search: on expiry the best bounds
    established so far are returned with ``proven=False`` instead of
    hanging — a *bounded-gap certificate*, never a wrong answer.
    """
    if backend == "ilp":
        from .ilp import ilp_cycle_period

        return ilp_cycle_period(g, timeout=timeout)
    if backend != "lattice":
        raise ValueError(f"unknown oracle backend {backend!r}")

    with span("oracle.period", graph=g.name, nodes=g.num_nodes) as sp:
        lower = period_lower_bound(g)
        best_r = Retiming.zero(g).normalized()
        best_c = cycle_period(g)
        probes = 0
        if best_c > lower:
            # Lazy (W, D): the gap == 0 short-circuit above never pays the
            # O(V^3) cost.  Pure-python path on purpose — independent of
            # the numpy dispatch the heuristic may take.
            wd = wd_matrices_python(g)
            deadline = None if timeout is None else time.monotonic() + timeout
            lo, hi = lower, best_c - 1
            while lo <= hi:
                if deadline is not None and time.monotonic() >= deadline:
                    break
                probes += 1
                c = (lo + hi) // 2
                r = _retime_for_period_exact(g, c, wd)
                if r is None:
                    lo = c + 1  # infeasibility is monotone downward
                else:
                    best_c = cycle_period(r.apply())
                    best_r = r
                    hi = best_c - 1
            lower = lo
        sp.set(period=best_c, lower=lower, probes=probes)
    count("oracle.period_probes", probes)
    return OptimalPeriod(
        graph=g.name,
        period=best_c,
        optimum_lower=lower,
        proven=best_c == lower,
        retiming=best_r,
        probes=probes,
    )


def minimize_max_retiming(g: DFG, c: int) -> Retiming | None:
    """A normalized retiming of ``g`` with cycle period ``<= c`` and
    **provably minimal** ``M_r = max_v r(v)``, or ``None`` if period ``c``
    is not achievable at all.

    A normalized retiming's ``M_r`` equals its value *spread*
    ``max r - min r``, so the minimum is found by binary-searching the
    spread ``s``: the period system stays feasible with the all-pairs
    constraints ``r(u) - r(v) <= s`` added iff some period-``c`` retiming
    has spread ``<= s``.  The search space is ``s in [0, |V| - 1]`` —
    every Leiserson–Saxe constraint weight is ``>= -1`` (``W >= 0`` and
    ``d(e) >= 0``), so the Bellman–Ford solution has values in
    ``[-(|V| - 1), 0]`` and spread at most ``|V| - 1``.
    """
    if any(v.time > c for v in g.nodes()):
        return None
    W, D = wd_matrices_python(g)

    def solve_with_spread(s: int | None) -> Retiming | None:
        system = DifferenceConstraints()
        names = g.node_names()
        for n in names:
            system.add_variable(n)
        for e in g.edges():
            system.add(e.dst, e.src, e.delay)
        for (u, v), d_val in D.items():
            if d_val > c:
                system.add(v, u, W[(u, v)] - 1)
        if s is not None:
            for u in names:
                for v in names:
                    if u != v:
                        system.add(u, v, s)
        solution = system.solve()
        if solution is None:
            return None
        r = Retiming(g, {n: int(val) for n, val in solution.items()}).normalized()
        achieved = cycle_period(r.apply())
        if achieved > c:
            raise AssertionError(
                f"oracle self-check failed: spread witness for c={c} "
                f"achieves {achieved}"
            )
        return r

    base = solve_with_spread(None)
    if base is None:
        return None
    best = base
    lo, hi = 0, base.max_value - 1
    while lo <= hi:
        s = (lo + hi) // 2
        r = solve_with_spread(s)
        if r is None:
            lo = s + 1
        else:
            best = r
            hi = r.max_value - 1
    return best


def minimal_code_size(g: DFG, c: int | None = None) -> tuple[int, Retiming]:
    """The provably minimal pipelined code size ``(M_r^* + 1) * |V|`` at
    cycle period ``c`` (default: the proven optimal period), with the
    witnessing retiming.

    Raises :class:`~repro.graph.dfg.DFGError` if period ``c`` is not
    achievable.
    """
    if c is None:
        c = optimal_cycle_period(g).period
    r = minimize_max_retiming(g, c)
    if r is None:
        raise DFGError(f"{g.name}: no retiming achieves cycle period {c}")
    return (r.max_value + 1) * g.num_nodes, r
