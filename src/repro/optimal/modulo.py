"""Exact resource-constrained modulo scheduling (branch-and-bound).

The heuristic in :mod:`repro.schedule.modulo` is classic iterative modulo
scheduling — budgeted eviction, no backtracking, no optimality claim.
This module answers the same question exactly: the smallest initiation
interval ``II`` at which a modulo schedule of ``g`` under a
:class:`~repro.schedule.resources.ResourceModel` exists.

The decision procedure at a fixed ``II`` splits the schedule
``start(v) = II * sigma(v) + slot(v)`` into its two halves:

* **slots** (``start mod II``) are assigned by depth-first search with
  modulo-reservation-table pruning — the same set-per-``(slot, kind)``
  occupancy semantics as the heuristic's MRT, so the two sides are
  comparing the same feasibility notion.  Rotating every start by a
  constant shifts all slots uniformly and preserves both dependences and
  occupancy, so the first node is pinned to slot 0 (symmetry breaking);
* **stages** (``start div II``) are then a difference-constraint system:
  ``sigma(u) - sigma(v) <= d(e) - ceil((slot(u) + t(u) - slot(v)) / II)``
  per edge — solved by the library's Bellman–Ford, with the witness
  schedule reassembled and re-verified against every dependence.

``II`` scans upward from ``MII = max(ResMII, RecMII)``, so the first hit
is provably optimal.  With no resource constraints the search collapses:
``II* = max(1, ceil(B(G)))`` exactly (the stage system alone is feasible
iff ``II >= B(G)``), which the tests use as an independent cross-check.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..graph.dfg import DFG, DFGError
from ..graph.validate import validate
from ..observability import count, span
from ..retiming.constraints import DifferenceConstraints
from ..schedule.modulo import minimum_initiation_interval, modulo_schedule
from ..schedule.resources import ResourceModel

__all__ = ["OptimalII", "optimal_initiation_interval"]


class _SearchBudgetExceeded(Exception):
    """Internal: deadline or node budget hit mid-search."""


@dataclass(frozen=True)
class OptimalII:
    """Certificate for the minimum initiation interval.

    ``ii`` is witnessed by ``start`` (a verified schedule);
    ``optimum_lower`` is certified (``MII`` plus every exhausted smaller
    ``II``), so the true optimum lies in ``[optimum_lower, ii]``.
    """

    graph: str
    ii: int
    optimum_lower: int
    proven: bool
    start: dict[str, int]
    explored: int
    backend: str = "bnb"

    @property
    def gap(self) -> int:
        return self.ii - self.optimum_lower


def _schedule_for_slots(
    g: DFG, ii: int, slots: dict[str, int]
) -> dict[str, int] | None:
    """Extend a full slot assignment to verified start times, or ``None``."""
    system = DifferenceConstraints()
    for n in g.node_names():
        system.add_variable(n)
    for e in g.edges():
        rhs = e.delay - math.ceil(
            (slots[e.src] + g.node(e.src).time - slots[e.dst]) / ii
        )
        if e.src == e.dst:
            if rhs < 0:
                return None
            continue
        system.add(e.src, e.dst, rhs)
    stages = system.solve()
    if stages is None:
        return None
    base = -min(stages.values())
    start = {n: ii * (int(stages[n]) + base) + slots[n] for n in stages}
    for e in g.edges():
        if start[e.dst] < start[e.src] + g.node(e.src).time - ii * e.delay:
            raise AssertionError(
                "oracle self-check failed: stage witness violates a dependence"
            )
    return start


def _unconstrained_schedule(g: DFG, ii: int) -> dict[str, int] | None:
    """Verified start times at ``II = ii`` with no resource constraints.

    Solves ``start(u) - start(v) <= II * d(e) - t(u)`` per edge
    ``u -> v`` directly (no slot/stage split needed when the reservation
    table never binds).
    """
    system = DifferenceConstraints()
    for n in g.node_names():
        system.add_variable(n)
    for e in g.edges():
        rhs = ii * e.delay - g.node(e.src).time
        if e.src == e.dst:
            if rhs < 0:
                return None
            continue
        system.add(e.src, e.dst, rhs)
    solution = system.solve()
    if solution is None:
        return None
    base = -min(solution.values())
    start = {n: int(solution[n]) + base for n in solution}
    for e in g.edges():
        if start[e.dst] < start[e.src] + g.node(e.src).time - ii * e.delay:
            raise AssertionError(
                "oracle self-check failed: unconstrained witness violates "
                "a dependence"
            )
    return start


def _exact_decision(
    g: DFG,
    ii: int,
    resources: ResourceModel,
    deadline: float | None,
    node_budget: int | None,
    explored: list[int],
) -> dict[str, int] | None:
    """Is there a modulo schedule of ``g`` at exactly this ``II``?

    DFS over slot assignments in a most-constrained-first node order,
    pruning on MRT capacity; each resource-feasible leaf is decided by the
    stage difference-constraint system.  Raises
    :class:`_SearchBudgetExceeded` on deadline/budget expiry.
    """
    names = sorted(
        g.node_names(),
        key=lambda n: (
            -(resources.capacity(resources.kind_of(g.node(n))) < 10**9),
            resources.capacity(resources.kind_of(g.node(n))),
            -g.node(n).time,
            n,
        ),
    )
    slots: dict[str, int] = {}
    mrt: dict[tuple[int, str], set[str]] = {}

    def occupied(node: str, s0: int) -> list[tuple[int, str]]:
        kind = resources.kind_of(g.node(node))
        return [((s0 + dt) % ii, kind) for dt in range(g.node(node).time)]

    def fits(node: str, s0: int) -> bool:
        kind = resources.kind_of(g.node(node))
        cap = resources.capacity(kind)
        return all(len(mrt.get(key, ())) < cap for key in occupied(node, s0))

    def dfs(i: int) -> dict[str, int] | None:
        explored[0] += 1
        if node_budget is not None and explored[0] > node_budget:
            raise _SearchBudgetExceeded
        if deadline is not None and explored[0] % 64 == 0:
            if time.monotonic() >= deadline:
                raise _SearchBudgetExceeded
        if i == len(names):
            return _schedule_for_slots(g, ii, slots)
        node = names[i]
        # Symmetry: any schedule rotates so the first-ordered node sits
        # at slot 0, preserving occupancy and dependences alike.
        candidates = range(1) if i == 0 else range(ii)
        for s0 in candidates:
            if not fits(node, s0):
                continue
            slots[node] = s0
            for key in occupied(node, s0):
                mrt.setdefault(key, set()).add(node)
            found = dfs(i + 1)
            for key in occupied(node, s0):
                mrt[key].discard(node)
            del slots[node]
            if found is not None:
                return found
        return None

    return dfs(0)


def optimal_initiation_interval(
    g: DFG,
    resources: ResourceModel | None = None,
    *,
    max_ii: int | None = None,
    timeout: float | None = None,
    node_budget: int | None = None,
) -> OptimalII:
    """The certified minimum initiation interval of ``g`` under
    ``resources`` (default: unconstrained).

    Scans ``II`` upward from ``MII``; the first exactly-decided feasible
    ``II`` is proven optimal.  ``timeout`` / ``node_budget`` bound the
    search: on expiry the result degrades to the heuristic scheduler's
    witness with a certified lower bound (``proven=False`` unless they
    happen to coincide), mirroring the period oracle's bounded-gap
    contract.
    """
    validate(g)
    resources = resources if resources is not None else ResourceModel.unconstrained()
    ceiling = max_ii if max_ii is not None else g.total_time
    mii = minimum_initiation_interval(g, resources)
    deadline = None if timeout is None else time.monotonic() + timeout
    explored = [0]

    with span("oracle.modulo", graph=g.name, nodes=g.num_nodes) as sp:
        if resources.is_unconstrained():
            # No reservation table: start times alone decide feasibility.
            # The start system has a negative cycle iff II < T(C)/D(C) for
            # some cycle C, so II = max(1, ceil(B(G))) = RecMII is exactly
            # optimal and one Bellman-Ford solve produces the witness.
            start = _unconstrained_schedule(g, mii)
            if start is None:  # pragma: no cover - contradicts RecMII
                raise AssertionError(
                    "oracle self-check failed: unconstrained schedule "
                    "infeasible at RecMII"
                )
            sp.set(ii=mii, proven=True)
            count("oracle.modulo_nodes", explored[0])
            return OptimalII(
                graph=g.name,
                ii=mii,
                optimum_lower=mii,
                proven=True,
                start=start,
                explored=explored[0],
            )

        lower = mii
        try:
            for ii in range(mii, ceiling + 1):
                lower = ii
                found = _exact_decision(
                    g, ii, resources, deadline, node_budget, explored
                )
                if found is not None:
                    sp.set(ii=ii, proven=True, explored=explored[0])
                    count("oracle.modulo_nodes", explored[0])
                    return OptimalII(
                        graph=g.name,
                        ii=ii,
                        optimum_lower=ii,
                        proven=True,
                        start=found,
                        explored=explored[0],
                    )
        except _SearchBudgetExceeded:
            pass
        else:
            raise DFGError(
                f"{g.name}: no modulo schedule found up to II={ceiling} "
                f"(MII was {mii}); raise max_ii"
            )
        # Degraded: hand back the heuristic witness with certified bounds.
        heuristic = modulo_schedule(g, resources, max_ii=ceiling)
        sp.set(ii=heuristic.ii, proven=heuristic.ii == lower, explored=explored[0])
        count("oracle.modulo_nodes", explored[0])
        return OptimalII(
            graph=g.name,
            ii=heuristic.ii,
            optimum_lower=lower,
            proven=heuristic.ii == lower,
            start=dict(heuristic.start),
            explored=explored[0],
        )
