"""Exact-optimal oracles for retiming and modulo scheduling.

The ground-truth side of the differential test battery: certified optima
(period, code size, initiation interval) that the heuristic stack —
:func:`repro.retiming.optimal.minimize_cycle_period`, rotation scheduling,
iterative modulo scheduling — is pinned against by ``python -m repro sweep
--oracle`` and the property suite under ``tests/optimal/``.

Three independent decision procedures cross-check each other:

* :mod:`repro.optimal.period` / :mod:`repro.optimal.modulo` — integer
  lattice binary search and branch-and-bound over difference-constraint
  feasibility, with self-verified witnesses and bounded-gap timeout
  degradation (the default, dependency-free backends);
* :mod:`repro.optimal.brute` — budgeted exhaustive enumeration over a
  provably optimum-containing box (solver-verifies-solver);
* :mod:`repro.optimal.ilp` — an optional ``pulp`` ILP backend
  (:data:`~repro.optimal.ilp.HAVE_PULP` gates it; never required).

See ``docs/OPTIMAL.md`` for the formulation and gap semantics.
"""

from .brute import (
    BruteForceBudgetExceeded,
    brute_force_cycle_period,
    brute_force_initiation_interval,
    brute_force_min_max_retiming,
    enumerate_normalized_retimings,
)
from .ilp import HAVE_PULP, OptimalBackendError
from .modulo import OptimalII, optimal_initiation_interval
from .period import (
    OptimalPeriod,
    minimal_code_size,
    minimize_max_retiming,
    optimal_cycle_period,
    period_lower_bound,
)

__all__ = [
    "BruteForceBudgetExceeded",
    "brute_force_cycle_period",
    "brute_force_initiation_interval",
    "brute_force_min_max_retiming",
    "enumerate_normalized_retimings",
    "HAVE_PULP",
    "OptimalBackendError",
    "OptimalII",
    "optimal_initiation_interval",
    "OptimalPeriod",
    "minimal_code_size",
    "minimize_max_retiming",
    "optimal_cycle_period",
    "period_lower_bound",
]
