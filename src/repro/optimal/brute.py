"""Brute-force enumeration oracles — the solver that verifies the solver.

The branch-and-bound / difference-constraint oracles in
:mod:`repro.optimal.period` and :mod:`repro.optimal.modulo` are themselves
nontrivial; the property suite cross-checks them against the dumbest
possible implementations: enumerate *everything* in a finite box that
provably contains an optimum, and take the minimum.

Soundness of the retiming box: every Leiserson–Saxe constraint weight is
``>= -1`` (legality weights are ``d(e) >= 0``; period weights are
``W(u, v) - 1 >= -1`` since ``W >= 0``), so whenever the system is
feasible its Bellman–Ford shortest-path solution has values in
``[-(n - 1), 0]`` — and after normalization (shift so ``min r = 0``) in
``[0, n - 1]``.  Hence enumerating normalized retimings with values in
``{0, ..., n - 1}`` is guaranteed to visit an optimal one, for both the
minimum-period and the minimum-``M_r`` objectives.

Everything here is budgeted: these enumerations are exponential by design
and exist only for graphs small enough that exhaustiveness is cheap
(the property tests cap at ~12 nodes).  Exceeding the budget raises
:class:`BruteForceBudgetExceeded` — callers (hypothesis tests) treat that
as "example rejected", never as a pass.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator

from ..graph.dfg import DFG, DFGError
from ..graph.period import cycle_period
from ..graph.validate import validate
from ..retiming.constraints import DifferenceConstraints
from ..retiming.function import Retiming
from ..schedule.modulo import minimum_initiation_interval
from ..schedule.resources import ResourceModel

__all__ = [
    "BruteForceBudgetExceeded",
    "enumerate_normalized_retimings",
    "brute_force_cycle_period",
    "brute_force_min_max_retiming",
    "brute_force_initiation_interval",
]


class BruteForceBudgetExceeded(RuntimeError):
    """The enumeration box was larger than the caller's state budget."""


def enumerate_normalized_retimings(
    g: DFG,
    max_value: int | None = None,
    budget: int = 250_000,
) -> Iterator[Retiming]:
    """Yield every *legal, normalized* retiming of ``g`` with values in
    ``[0, max_value]`` (default ``|V| - 1`` — the optimum-containing box).

    DFS over nodes in insertion order with edge-legality pruning: a
    partial assignment is abandoned as soon as some fully-assigned edge
    has ``d(e) + r(u) - r(v) < 0``.  ``budget`` bounds the number of
    partial assignments explored.
    """
    validate(g)
    names = g.node_names()
    k = (g.num_nodes - 1) if max_value is None else max_value
    index = {n: i for i, n in enumerate(names)}
    # Edges checkable once node i is assigned (both endpoints <= i).
    checks: list[list[tuple[str, str, int]]] = [[] for _ in names]
    for e in g.edges():
        at = max(index[e.src], index[e.dst])
        checks[at].append((e.src, e.dst, e.delay))

    values: dict[str, int] = {}
    explored = 0

    def dfs(i: int) -> Iterator[Retiming]:
        nonlocal explored
        if i == len(names):
            if min(values.values()) == 0:  # one representative per shift class
                yield Retiming(g, dict(values))
            return
        node = names[i]
        for val in range(k + 1):
            explored += 1
            if explored > budget:
                raise BruteForceBudgetExceeded(
                    f"{g.name}: > {budget} partial assignments "
                    f"(box size {(k + 1) ** len(names)})"
                )
            values[node] = val
            if all(d + values[u] - values[v] >= 0 for u, v, d in checks[i]):
                yield from dfs(i + 1)
        del values[node]

    yield from dfs(0)


def brute_force_cycle_period(
    g: DFG, budget: int = 250_000
) -> tuple[int, Retiming]:
    """The minimum cycle period over *all* enumerated legal retimings,
    with a witness — ground truth for :func:`~repro.optimal.period.
    optimal_cycle_period` on small graphs."""
    best: tuple[int, Retiming] | None = None
    for r in enumerate_normalized_retimings(g, budget=budget):
        period = cycle_period(r.apply())
        if best is None or period < best[0]:
            best = (period, r)
    if best is None:  # pragma: no cover - zero retiming is always yielded
        raise AssertionError("enumeration yielded no legal retiming")
    return best


def brute_force_min_max_retiming(
    g: DFG, c: int, budget: int = 250_000
) -> int | None:
    """The minimum ``M_r`` over all enumerated retimings with period
    ``<= c``, or ``None`` if no enumerated retiming achieves it — ground
    truth for :func:`~repro.optimal.period.minimize_max_retiming`."""
    best: int | None = None
    for r in enumerate_normalized_retimings(g, budget=budget):
        if cycle_period(r.apply()) <= c:
            if best is None or r.max_value < best:
                best = r.max_value
    return best


def _stage_feasible(g: DFG, ii: int, slots: dict[str, int]) -> bool:
    """Whether a full slot assignment extends to a legal modulo schedule.

    With ``start(v) = II * sigma(v) + slot(v)``, the dependence constraint
    ``start(v) >= start(u) + t(u) - II * d(e)`` becomes the difference
    constraint ``sigma(u) - sigma(v) <= d(e) - ceil((slot(u) + t(u) -
    slot(v)) / II)`` — solvable iff some stage assignment exists.
    """
    system = DifferenceConstraints()
    for n in g.node_names():
        system.add_variable(n)
    for e in g.edges():
        rhs = e.delay - math.ceil(
            (slots[e.src] + g.node(e.src).time - slots[e.dst]) / ii
        )
        if e.src == e.dst:
            if rhs < 0:
                return False
            continue
        system.add(e.src, e.dst, rhs)
    return system.solve() is not None


def brute_force_initiation_interval(
    g: DFG,
    resources: ResourceModel | None = None,
    max_ii: int | None = None,
    budget: int = 250_000,
) -> int:
    """The smallest feasible initiation interval, by trying every slot
    assignment at every ``II`` from ``MII`` upward — ground truth for
    :func:`~repro.optimal.modulo.optimal_initiation_interval` on tiny
    graphs.

    Unlike the branch-and-bound it verifies, this enumerates the *full*
    slot product (no symmetry reduction, no resource pruning), so an
    agreement between the two is meaningful.
    """
    validate(g)
    resources = resources if resources is not None else ResourceModel.unconstrained()
    ceiling = max_ii if max_ii is not None else g.total_time
    names = g.node_names()
    examined = 0
    for ii in range(minimum_initiation_interval(g, resources), ceiling + 1):
        for combo in itertools.product(range(ii), repeat=len(names)):
            examined += 1
            if examined > budget:
                raise BruteForceBudgetExceeded(
                    f"{g.name}: > {budget} slot assignments examined"
                )
            slots = dict(zip(names, combo))
            occupancy: dict[tuple[int, str], int] = {}
            ok = True
            for n in names:
                kind = resources.kind_of(g.node(n))
                cap = resources.capacity(kind)
                for dt in range(g.node(n).time):
                    key = ((slots[n] + dt) % ii, kind)
                    occupancy[key] = occupancy.get(key, 0) + 1
                    if occupancy[key] > cap:
                        ok = False
                        break
                if not ok:
                    break
            if ok and _stage_feasible(g, ii, slots):
                return ii
    raise DFGError(
        f"{g.name}: no modulo schedule found up to II={ceiling}"
    )  # pragma: no cover - the sequential II always schedules
