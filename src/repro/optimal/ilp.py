"""Optional ILP backend for the retiming oracle (``pulp``).

The pure-python lattice oracle in :mod:`repro.optimal.period` is the
default and the only backend CI exercises.  This module adds a second,
entirely independent decision procedure behind the optional ``pulp``
dependency (``pip install repro[ilp]``): each feasibility probe
"period ``<= c``?" becomes an integer program over the retiming values

* ``r(v) - r(u) <= d(e)``          for every edge (legality),
* ``r(v) - r(u) <= W(u, v) - 1``   for every pair with ``D(u, v) > c``,

minimizing the spread ``s >= r(u) - r(v)`` so a feasible solve also
yields a code-size-minimal witness.  Minimizing ``c`` directly is *not*
linear — the pair-constraint set depends on ``c`` — so the optimum is
found by the same certified integer binary search as the lattice backend,
with the ILP as the probe.

``pulp`` is imported lazily and its absence is a first-class, clearly
reported state (:data:`HAVE_PULP`, :class:`OptimalBackendError`) — this
repository never requires it to be installed.
"""

from __future__ import annotations

import time

from ..graph.dfg import DFG
from ..graph.period import cycle_period
from ..graph.wd import wd_matrices_python
from ..retiming.function import Retiming

__all__ = ["HAVE_PULP", "OptimalBackendError", "ilp_retime_for_period", "ilp_cycle_period"]

try:  # pragma: no cover - exercised only where pulp is installed
    import pulp

    HAVE_PULP = True
except ModuleNotFoundError:
    pulp = None
    HAVE_PULP = False


class OptimalBackendError(RuntimeError):
    """A requested oracle backend is unavailable in this environment."""


def _require_pulp() -> None:
    if not HAVE_PULP:
        raise OptimalBackendError(
            "the 'ilp' oracle backend requires the optional dependency "
            "'pulp' (pip install pulp); use backend='lattice' instead"
        )


def ilp_retime_for_period(
    g: DFG, c: int, wd=None
):  # pragma: no cover - requires pulp
    """A spread-minimal legal retiming with period ``<= c`` via ILP, or
    ``None`` if the program is infeasible."""
    _require_pulp()
    if any(v.time > c for v in g.nodes()):
        return None
    W, D = wd if wd is not None else wd_matrices_python(g)
    n = g.num_nodes
    prob = pulp.LpProblem(f"retime_{g.name}_c{c}", pulp.LpMinimize)
    r = {
        name: pulp.LpVariable(f"r_{i}", lowBound=-(n - 1), upBound=n - 1, cat="Integer")
        for i, name in enumerate(g.node_names())
    }
    s = pulp.LpVariable("spread", lowBound=0, upBound=n - 1, cat="Integer")
    prob += s
    for e in g.edges():
        prob += r[e.dst] - r[e.src] <= e.delay
    for (u, v), d_val in D.items():
        if d_val > c:
            prob += r[v] - r[u] <= W[(u, v)] - 1
    for u in r:
        for v in r:
            if u != v:
                prob += r[u] - r[v] <= s
    status = prob.solve(pulp.PULP_CBC_CMD(msg=False))
    if pulp.LpStatus[status] != "Optimal":
        return None
    witness = Retiming(
        g, {name: int(round(var.value())) for name, var in r.items()}
    ).normalized()
    achieved = cycle_period(witness.apply())
    if achieved > c:
        raise AssertionError(
            f"oracle self-check failed: ILP witness for c={c} achieves {achieved}"
        )
    return witness


def ilp_cycle_period(
    g: DFG, *, timeout: float | None = None
):  # pragma: no cover - requires pulp
    """Certified minimum cycle period with ILP feasibility probes.

    Same bounds, search and bounded-gap degradation as the lattice
    backend (see :func:`repro.optimal.period.optimal_cycle_period`);
    returns an :class:`~repro.optimal.period.OptimalPeriod` with
    ``backend="ilp"``.
    """
    _require_pulp()
    from .period import OptimalPeriod, period_lower_bound

    lower = period_lower_bound(g)
    best_r = Retiming.zero(g).normalized()
    best_c = cycle_period(g)
    probes = 0
    if best_c > lower:
        wd = wd_matrices_python(g)
        deadline = None if timeout is None else time.monotonic() + timeout
        lo, hi = lower, best_c - 1
        while lo <= hi:
            if deadline is not None and time.monotonic() >= deadline:
                break
            probes += 1
            c = (lo + hi) // 2
            witness = ilp_retime_for_period(g, c, wd=wd)
            if witness is None:
                lo = c + 1
            else:
                best_c = cycle_period(witness.apply())
                best_r = witness
                hi = best_c - 1
        lower = lo
    return OptimalPeriod(
        graph=g.name,
        period=best_c,
        optimum_lower=lower,
        proven=best_c == lower,
        retiming=best_r,
        probes=probes,
        backend="ilp",
    )
