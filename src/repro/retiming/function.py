"""Retiming functions and their application to data-flow graphs.

A retiming is a function ``r : V -> Z``.  This library follows the *paper's*
sign convention (Section 2.2): ``r(u)`` is the number of delays pushed
*through* node ``u`` from its incoming edges to its outgoing edges, so the
retimed delay of an edge ``e(u -> v)`` is::

    d_r(e) = d(e) + r(u) - r(v)

(The original Leiserson–Saxe circuit-retiming papers use the opposite sign;
the two conventions are related by ``r -> -r``.)

Under this convention, software pipelining moves each node ``v`` *up* by
``r(v)`` iterations: in the pipelined loop, iteration ``i`` executes
instance ``i + r(v)`` of node ``v``.  A *normalized* retiming
(``min_v r(v) = 0``) therefore yields

* ``r(v)`` copies of ``v`` in the prologue, and
* ``max_u r(u) - r(v)`` copies of ``v`` in the epilogue,

which is the entire basis of the paper's code-size accounting.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..graph.dfg import DFG, DFGError

__all__ = ["Retiming", "RetimingError"]


class RetimingError(DFGError):
    """Raised for illegal retimings (negative retimed delays)."""


class Retiming:
    """An immutable retiming function bound to a specific graph.

    The function carries a value for *every* node of the graph (defaulting
    to 0 for nodes absent from the initializing mapping), so quantities such
    as the set of distinct retiming values ``N_r`` are well defined.
    """

    def __init__(self, graph: DFG, values: Mapping[str, int] | None = None) -> None:
        values = dict(values or {})
        unknown = set(values) - set(graph.node_names())
        if unknown:
            raise RetimingError(f"retiming mentions unknown nodes {sorted(unknown)}")
        for node, val in values.items():
            if not isinstance(val, int):
                raise RetimingError(f"retiming value of {node!r} must be int, got {val!r}")
        self._graph = graph
        self._values: dict[str, int] = {n: values.get(n, 0) for n in graph.node_names()}

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DFG:
        """The graph this retiming applies to."""
        return self._graph

    def __getitem__(self, node: str) -> int:
        try:
            return self._values[node]
        except KeyError:
            raise RetimingError(f"unknown node {node!r}") from None

    def value(self, node: str) -> int:
        """Retiming value ``r(node)``."""
        return self[node]

    def as_dict(self) -> dict[str, int]:
        """A copy of the full node -> value mapping."""
        return dict(self._values)

    def items(self) -> Iterable[tuple[str, int]]:
        """``(node, value)`` pairs in node insertion order."""
        return self._values.items()

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def max_value(self) -> int:
        """``M_r = max_u r(u)``; 0 for the empty graph's retiming."""
        return max(self._values.values(), default=0)

    @property
    def min_value(self) -> int:
        """``min_u r(u)``; 0 for a normalized (or empty) retiming."""
        return min(self._values.values(), default=0)

    @property
    def is_normalized(self) -> bool:
        """Whether ``min_u r(u) == 0``."""
        return self.min_value == 0

    def distinct_values(self) -> set[int]:
        """The set ``N_r`` of distinct retiming values (Theorem 4.3).

        Its cardinality is the number of conditional registers needed to
        completely remove the prologue and epilogue.
        """
        return set(self._values.values())

    def registers_needed(self) -> int:
        """``|N_r|``: conditional registers for total code-size reduction."""
        return len(self.distinct_values())

    def prologue_copies(self, node: str) -> int:
        """Copies of ``node`` in the prologue (requires normalization)."""
        self._require_normalized("prologue_copies")
        return self[node]

    def epilogue_copies(self, node: str) -> int:
        """Copies of ``node`` in the epilogue (requires normalization)."""
        self._require_normalized("epilogue_copies")
        return self.max_value - self[node]

    def prologue_size(self) -> int:
        """Total instruction count of the prologue, ``sum_v r(v)``."""
        self._require_normalized("prologue_size")
        return sum(self._values.values())

    def epilogue_size(self) -> int:
        """Total instruction count of the epilogue, ``sum_v (M_r - r(v))``."""
        self._require_normalized("epilogue_size")
        m = self.max_value
        return sum(m - v for v in self._values.values())

    def _require_normalized(self, what: str) -> None:
        if not self.is_normalized:
            raise RetimingError(
                f"{what} is only meaningful for a normalized retiming; "
                f"call .normalized() first (min value here is {self.min_value})"
            )

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def normalized(self) -> "Retiming":
        """The equivalent retiming with minimum value 0.

        Subtracting a constant from every node leaves all retimed edge
        delays unchanged, so normalization is always legal.
        """
        m = self.min_value
        if m == 0:
            return self
        return Retiming(self._graph, {n: v - m for n, v in self._values.items()})

    def shifted(self, amount: int) -> "Retiming":
        """Retiming with ``amount`` added to every node (same retimed graph)."""
        return Retiming(self._graph, {n: v + amount for n, v in self._values.items()})

    def compose(self, other: "Retiming") -> "Retiming":
        """Pointwise sum with another retiming of the same graph.

        Applying ``self`` then ``other`` (on the retimed graph, node names
        unchanged) equals applying their composition once.
        """
        if other.graph.node_names() != self._graph.node_names():
            raise RetimingError("cannot compose retimings of different node sets")
        return Retiming(
            self._graph, {n: self._values[n] + other._values[n] for n in self._values}
        )

    def retimed_delay(self, src: str, dst: str, delay: int) -> int:
        """Delay of an edge ``src -> dst`` (original delay ``delay``) after
        applying this retiming: ``d + r(src) - r(dst)``."""
        return delay + self[src] - self[dst]

    def is_legal(self) -> bool:
        """Whether every retimed edge delay is non-negative."""
        return all(
            self.retimed_delay(e.src, e.dst, e.delay) >= 0 for e in self._graph.edges()
        )

    def check_legal(self) -> None:
        """Raise :class:`RetimingError` describing the first illegal edge."""
        for e in self._graph.edges():
            d = self.retimed_delay(e.src, e.dst, e.delay)
            if d < 0:
                raise RetimingError(
                    f"illegal retiming: edge {e.src!r}->{e.dst!r} (d={e.delay}) "
                    f"gets retimed delay {d} < 0 with r({e.src})={self[e.src]}, "
                    f"r({e.dst})={self[e.dst]}"
                )

    def apply(self, name: str | None = None) -> DFG:
        """The retimed graph ``G_r`` (raises if the retiming is illegal)."""
        self.check_legal()
        new_delays = {
            e.ident: self.retimed_delay(e.src, e.dst, e.delay) for e in self._graph.edges()
        }
        return self._graph.with_delays(
            new_delays, name=name if name is not None else f"{self._graph.name}_r"
        )

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Retiming):
            return NotImplemented
        return self._graph is other._graph and self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Retiming({self._values!r})"

    @classmethod
    def zero(cls, graph: DFG) -> "Retiming":
        """The identity retiming (all zeros)."""
        return cls(graph, {})
