"""Incremental retiming operations: delay pushes and warm-started feasibility.

Two kinds of incrementality live here:

* **Node-at-a-time pushes** — rotation scheduling
  (:mod:`repro.schedule.rotation`) and critical-path retiming heuristics do
  not solve a global constraint system; they repeatedly *push* single delays
  through individual nodes.  In the paper's sign convention, pushing one
  delay through node ``v`` (drawing it from every incoming edge, emitting it
  on every outgoing edge) is ``r(v) += 1`` and is legal exactly when every
  incoming edge of the *current* retimed graph carries at least one delay.

* **Warm-started period feasibility** — the binary search of
  :func:`repro.retiming.optimal.minimize_cycle_period` probes a descending
  sequence of candidate periods ``c``, and the Leiserson–Saxe constraint
  systems for those probes are *nested*: a smaller ``c`` keeps every
  constraint of a larger one and adds constraints for the node pairs with
  ``c < D(u, v)``.  :class:`IncrementalFeasibility` exploits that nesting —
  instead of rebuilding and re-solving the system per probe, it keeps the
  shortest-path fixpoint of the last feasible probe and, for the next
  (smaller) ``c``, activates only the newly triggered pair constraints and
  resumes pass-based Bellman–Ford relaxation from that fixpoint.  The
  fixpoint of a difference-constraint system is its unique shortest-path
  solution, so the warm-started answer is *identical* to a fresh
  Bellman–Ford solve — which the property tests pin exactly.

Above :data:`_NUMPY_THRESHOLD` nodes the relaxation runs dense: the active
constraint graph (base legality edges plus the O(V²) triggered pairs) is a
single int64 matrix over the graph's shared
:class:`~repro.graph.kernel.EdgeKernel` node indexing, and one
Bellman–Ford pass is one broadcasted min-plus matrix-vector product.  Each
dense pass computes exactly what the per-edge scatter pass computed from
the same snapshot, so pass counts, feasibility verdicts and fixpoints are
all bit-identical; an infeasible probe can additionally exit early when a
negative cycle is *explicitly verified* on the predecessor graph (the
verdict an exhausted pass budget would have certified anyway).
"""

from __future__ import annotations

import os
from bisect import bisect_left

from ..graph.dfg import DFG
from ..graph.kernel import shared_kernel
from ..graph.wd import WDKernel
from ..native import minplus_pass as native_minplus
from ..observability import count
from .function import Retiming, RetimingError

__all__ = ["IncrementalFeasibility", "can_push", "push_nodes", "pushable_nodes"]


def _inc_threshold(default: int = 64) -> int:
    raw = os.environ.get("REPRO_INC_NUMPY_THRESHOLD")
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


#: Node count above which the vectorized numpy relaxation is used for the
#: warm-started feasibility solver (the pair-constraint set is dense —
#: O(V²) edges — so vectorized passes win early).  Kept as a module
#: attribute so tests can monkeypatch it; ``REPRO_INC_NUMPY_THRESHOLD`` is
#: re-read whenever the environment value changes (it used to be frozen at
#: import time, which made setting it afterwards silently dead).
_NUMPY_THRESHOLD = _inc_threshold()
_ENV_SNAPSHOT = os.environ.get("REPRO_INC_NUMPY_THRESHOLD")


def _current_threshold() -> int:
    """The live numpy-dispatch threshold (see :data:`_NUMPY_THRESHOLD`)."""
    global _ENV_SNAPSHOT, _NUMPY_THRESHOLD
    raw = os.environ.get("REPRO_INC_NUMPY_THRESHOLD")
    if raw != _ENV_SNAPSHOT:
        _ENV_SNAPSHOT = raw
        _NUMPY_THRESHOLD = _inc_threshold()
    return _NUMPY_THRESHOLD


class IncrementalFeasibility:
    """Warm-started feasibility oracle for the period binary search.

    Built once per graph from the shared ``(W, D)`` matrices — either the
    classic pair-keyed dicts (positional ``W``/``D``) or, preferably, a
    :class:`~repro.graph.wd.WDKernel` (keyword ``wd``) whose dense layout
    the vectorized backend consumes directly, skipping dict construction
    entirely.  Each call to :meth:`try_period` answers "is there a legal
    retiming with cycle period ``<= c``?" and, when feasible, returns the
    shortest-path solution of the full constraint system — *identical* to
    :meth:`repro.retiming.constraints.DifferenceConstraints.solve` on the
    same system, because the fixpoint of a difference-constraint relaxation
    is unique.

    The solver is optimized for the descending-``c`` probe pattern of a
    binary search: a probe below the best feasible period so far starts
    relaxation from that probe's committed fixpoint (which already satisfies
    every previously active constraint) so typically only one or two passes
    are needed; probes above the best feasible period are still answered
    correctly via a cold start from the base system.  Relaxation is
    pass-based Bellman–Ford — dense min-plus matrix passes with numpy above
    :data:`_NUMPY_THRESHOLD` nodes — with the classic
    still-improving-after-``|V|-1``-passes negative-cycle certificate.

    Attributes
    ----------
    stats:
        ``{"probes", "relaxations", "constraints_added"}`` — deterministic
        operation counters (also mirrored into observability counters
        ``retiming.incremental.*``) used by the perf-smoke benchmark.
    """

    def __init__(
        self,
        g: DFG,
        W: dict[tuple[str, str], int] | None = None,
        D: dict[tuple[str, str], int] | None = None,
        *,
        wd: WDKernel | None = None,
    ) -> None:
        if wd is None and (W is None or D is None):
            raise ValueError("IncrementalFeasibility needs (W, D) dicts or wd=")
        kernel = wd.kernel if wd is not None else shared_kernel(g)
        self._kernel = kernel
        names = kernel.names
        index = kernel.index
        n = kernel.num_nodes
        self._names = names
        self._n = n
        self._max_time = max(kernel.times, default=0)
        self._wd = wd
        self._W = W
        self._D = D

        # Base legality constraints r(dst) - r(src) <= d(e): relaxation edge
        # src -> dst of weight d.  All weights are >= 0, so the base
        # system's shortest-path fixpoint from the virtual source is the
        # all-zero vector — the base solve is free.
        self._base = list(zip(kernel.src, kernel.dst, kernel.delay))

        self._use_numpy = n > _current_threshold() and self._init_numpy()
        if not self._use_numpy:
            self._init_python()

        # Committed feasible state: the exact fixpoint of the system with
        # the pair constraints of the best feasible period so far active.
        self._best_k = 0
        self._best_dist: list[int] = [0] * n

        self.stats = {"probes": 0, "relaxations": 0, "constraints_added": 0}

    # ------------------------------------------------------------------
    # construction of the two relaxation layouts
    # ------------------------------------------------------------------
    def _pair_dicts(self) -> tuple[dict, dict]:
        if self._W is None:
            self._W, self._D = self._wd.W, self._wd.D
        return self._W, self._D

    def _init_python(self) -> None:
        """Sorted flat pair-constraint list for the per-edge backend.

        Pair constraints ``r(v) - r(u) <= W(u, v) - 1`` activate when the
        probe period drops below ``D(u, v)``; sorting by ``D`` descending
        (ties broken by node index for full determinism) makes the active
        set at period ``c`` a prefix of the list.
        """
        W, D = self._pair_dicts()
        index = self._kernel.index
        pairs = sorted(
            (
                (d_val, index[u], index[v], W[(u, v)] - 1)
                for (u, v), d_val in D.items()
            ),
            key=lambda t: (-t[0], t[1], t[2]),
        )
        self._pair_edges = [(u, v, w) for (_d, u, v, w) in pairs]
        # Ascending keys for bisect: pairs[:k] have D > c where
        # k = bisect_left(neg_d, -c).
        self._neg_d = [-p[0] for p in pairs]

    def _init_numpy(self) -> bool:
        """Dense int64 layout over the shared kernel; ``False`` when int64
        distance arithmetic could overflow (distance magnitudes are bounded
        by ``(|V| + 1) * max|w|``)."""
        import numpy as np

        if self._wd is not None:
            Wm, Dm, reach = self._wd.matrices()
        else:
            Wm = np.zeros((self._n, self._n), dtype=np.int64)
            Dm = np.zeros((self._n, self._n), dtype=np.int64)
            reach = np.zeros((self._n, self._n), dtype=bool)
            index = self._kernel.index
            W, D = self._pair_dicts()
            for (u, v), w in W.items():
                i, j = index[u], index[v]
                Wm[i, j] = w
                Dm[i, j] = D[(u, v)]
                reach[i, j] = True

        max_w = 0
        if reach.any():
            max_w = int(np.abs(Wm[reach] - 1).max())
        if self._base:
            max_w = max(max_w, max(w for (_u, _v, w) in self._base))
        if (self._n + 2) * (max_w + 1) >= 2**60:
            return False

        INF = np.int64(2**61)
        self._np = np
        self._INF = INF
        base = np.full((self._n, self._n), INF, dtype=np.int64)
        if self._base:
            src, dst, delay, _st, _t = self._kernel.np_arrays()
            np.minimum.at(
                base, (src.astype(np.intp), dst.astype(np.intp)), delay
            )
        self._B = base
        self._P = np.where(reach, Wm - 1, INF)
        self._Dm = np.where(reach, Dm, np.int64(-1))  # never triggered
        # Descending-sorted D values of connected pairs: the active count at
        # period c (pairs with D > c) via one searchsorted, mirroring the
        # bisect of the python layout.
        self._sorted_neg_d = np.sort(-Dm[reach])
        return True

    def _active_count(self, c: int) -> int:
        """Number of pair constraints active at period ``c`` (those with
        ``D > c``)."""
        if self._use_numpy:
            return int(self._np.searchsorted(self._sorted_neg_d, -c, side="left"))
        return bisect_left(self._neg_d, -c)

    def try_period(self, c: int) -> dict[str, int] | None:
        """Shortest-path solution of the period-``c`` system, or ``None``.

        Feasible results commit their fixpoint as the warm-start state for
        subsequent (smaller-``c``) probes.
        """
        self.stats["probes"] += 1
        count("retiming.incremental.probes")
        if self._max_time > c:
            return None

        k = self._active_count(c)
        warm = k >= self._best_k
        fresh = k - self._best_k if warm else k
        self.stats["constraints_added"] += fresh
        count("retiming.incremental.constraints_added", fresh)

        if self._use_numpy:
            dist = self._relax_dense(c, k, warm)
        else:
            dist = self._relax_python(k, warm)
        if dist is None:
            return None

        if warm:
            # Commit: the fixpoint of a superset system warm-starts every
            # later, tighter probe.
            self._best_k = k
            self._best_dist = [int(x) for x in dist]
        return {self._names[i]: int(dist[i]) for i in range(self._n)}

    # ------------------------------------------------------------------
    # relaxation backends (identical fixpoints)
    # ------------------------------------------------------------------
    def _relax_python(self, k: int, warm: bool) -> list[int] | None:
        """Pass-based Bellman–Ford over the active edges, warm-started.

        ``dist`` starts at the committed fixpoint (warm) or all zeros
        (cold); either satisfies the base system, so at most ``|V| - 1``
        passes settle every simple-path improvement and a still-improving
        verification pass certifies a negative cycle (infeasible).
        """
        dist = self._best_dist.copy() if warm else [0] * self._n
        base = self._base
        active = self._pair_edges[:k]
        relaxations = 0
        sweeps = 0
        feasible = True
        for _ in range(max(1, self._n - 1)):
            changed = False
            for u, v, w in base:
                cand = dist[u] + w
                if cand < dist[v]:
                    dist[v] = cand
                    changed = True
            for u, v, w in active:
                cand = dist[u] + w
                if cand < dist[v]:
                    dist[v] = cand
                    changed = True
            relaxations += len(base) + len(active)
            sweeps += 1
            if not changed:
                break
        else:
            for u, v, w in base + active:
                if dist[u] + w < dist[v]:
                    feasible = False
                    break
            relaxations += len(base) + len(active)
            sweeps += 1
        self.stats["relaxations"] += relaxations
        count("retiming.incremental.relaxations", relaxations)
        count("kernel.relax_sweeps", sweeps)
        return dist if feasible else None

    def _relax_dense(self, c: int, k: int, warm: bool):
        """Vectorized synchronous Bellman–Ford: min-plus matrix passes.

        One pass reads the ``before`` snapshot and combines base and active
        pair edges in a single broadcasted min — exactly the update the
        per-edge scatter pass computes, so pass counts and fixpoints are
        identical.  A pass that still improves distances after ``|V|``
        full passes certifies a negative cycle; exponentially spaced
        predecessor-graph checks can certify one early (the cycle weight is
        verified in exact integer arithmetic before declaring infeasible).
        """
        np = self._np
        dist = (
            np.array(self._best_dist, dtype=np.int64)
            if warm
            else np.zeros(self._n, dtype=np.int64)
        )
        # Active constraint matrix at period c: pair edges with D > c,
        # tightened against the base legality edges (duplicate (u, v)
        # bounds bind at their minimum, as in DifferenceConstraints.add).
        C = np.minimum(self._B, np.where(self._Dm > c, self._P, self._INF))
        per_pass = len(self._base) + k
        relaxations = 0
        sweeps = 0
        check_at = 32
        feasible = None
        for _ in range(max(1, self._n)):
            before = dist
            # Optional C build of the pass (REPRO_NATIVE_KERNELS=1); the
            # numpy expression below is the pinned reference and both are
            # bit-identical (exact integer min over the same candidates).
            dist = native_minplus(before, C)
            if dist is None:
                dist = np.minimum(before, (before[:, None] + C).min(axis=0))
            relaxations += per_pass
            sweeps += 1
            if np.array_equal(dist, before):
                feasible = True
                break
            if sweeps >= check_at:
                check_at *= 2
                if self._verified_negative_cycle(before, C):
                    feasible = False
                    break
        if feasible is None:
            # Still improving after |V| passes: negative cycle.
            feasible = False
        self.stats["relaxations"] += relaxations
        count("retiming.incremental.relaxations", relaxations)
        count("kernel.relax_sweeps", sweeps)
        return dist if feasible else None

    def _verified_negative_cycle(self, before, C) -> bool:
        """Whether the predecessor graph of the next pass provably contains
        a negative cycle.

        Each still-improving node's argmin predecessor is a real active
        edge; walking predecessor chains either closes a cycle — whose
        weight is re-summed in exact python integers and must be negative
        to certify infeasibility — or dead-ends.  ``False`` is always safe
        (the pass budget remains the backstop certificate).
        """
        np = self._np
        comb = before[:, None] + C
        colmin = comb.min(axis=0)
        pred = comb.argmin(axis=0)
        half = int(self._INF) // 2
        state = [0] * self._n  # 0 unvisited / 1 on current walk / 2 done
        for start in np.nonzero(colmin < before)[0].tolist():
            if state[start]:
                continue
            walk: list[int] = []
            v = start
            while state[v] == 0:
                state[v] = 1
                walk.append(v)
                u = int(pred[v])
                if int(C[u, v]) >= half:
                    break  # no real incoming edge: dead end
                v = u
            else:
                if state[v] == 1:  # closed a cycle within this walk
                    cycle = walk[walk.index(v) :]
                    weight = sum(
                        int(C[cycle[(i + 1) % len(cycle)], cycle[i]])
                        for i in range(len(cycle))
                    )
                    if weight < 0:
                        return True
            for node in walk:
                state[node] = 2
        return False


def can_push(retimed: DFG, nodes: set[str] | frozenset[str]) -> bool:
    """Whether simultaneously pushing one delay through every node of
    ``nodes`` is legal on the (already retimed) graph ``retimed``.

    A delay is drawn from each edge entering the set from outside and
    emitted on each edge leaving it; edges wholly inside the set are
    unaffected.  Legal iff every entering edge carries at least one delay.
    """
    for name in nodes:
        for e in retimed.in_edges(name):
            if e.src not in nodes and e.delay < 1:
                return False
    return True


def pushable_nodes(retimed: DFG) -> list[str]:
    """Nodes through which a single delay can be pushed individually."""
    return [n for n in retimed.node_names() if can_push(retimed, {n})]


def push_nodes(r: Retiming, nodes: set[str] | frozenset[str], amount: int = 1) -> Retiming:
    """Return ``r`` with ``amount`` added to every node in ``nodes``.

    Raises :class:`RetimingError` if the result is illegal.  ``amount`` may
    be negative (pulling delays back), which rotation scheduling uses to
    undo unprofitable rotations.
    """
    values = r.as_dict()
    for n in nodes:
        if n not in values:
            raise RetimingError(f"unknown node {n!r}")
        values[n] += amount
    new_r = Retiming(r.graph, values)
    new_r.check_legal()
    return new_r
