"""Incremental, node-at-a-time retiming operations.

Rotation scheduling (:mod:`repro.schedule.rotation`) and critical-path
retiming heuristics do not solve a global constraint system; they repeatedly
*push* single delays through individual nodes.  In the paper's sign
convention, pushing one delay through node ``v`` (drawing it from every
incoming edge, emitting it on every outgoing edge) is ``r(v) += 1`` and is
legal exactly when every incoming edge of the *current* retimed graph
carries at least one delay.
"""

from __future__ import annotations

from ..graph.dfg import DFG
from .function import Retiming, RetimingError

__all__ = ["can_push", "push_nodes", "pushable_nodes"]


def can_push(retimed: DFG, nodes: set[str] | frozenset[str]) -> bool:
    """Whether simultaneously pushing one delay through every node of
    ``nodes`` is legal on the (already retimed) graph ``retimed``.

    A delay is drawn from each edge entering the set from outside and
    emitted on each edge leaving it; edges wholly inside the set are
    unaffected.  Legal iff every entering edge carries at least one delay.
    """
    for name in nodes:
        for e in retimed.in_edges(name):
            if e.src not in nodes and e.delay < 1:
                return False
    return True


def pushable_nodes(retimed: DFG) -> list[str]:
    """Nodes through which a single delay can be pushed individually."""
    return [n for n in retimed.node_names() if can_push(retimed, {n})]


def push_nodes(r: Retiming, nodes: set[str] | frozenset[str], amount: int = 1) -> Retiming:
    """Return ``r`` with ``amount`` added to every node in ``nodes``.

    Raises :class:`RetimingError` if the result is illegal.  ``amount`` may
    be negative (pulling delays back), which rotation scheduling uses to
    undo unprofitable rotations.
    """
    values = r.as_dict()
    for n in nodes:
        if n not in values:
            raise RetimingError(f"unknown node {n!r}")
        values[n] += amount
    new_r = Retiming(r.graph, values)
    new_r.check_legal()
    return new_r
