"""Incremental retiming operations: delay pushes and warm-started feasibility.

Two kinds of incrementality live here:

* **Node-at-a-time pushes** — rotation scheduling
  (:mod:`repro.schedule.rotation`) and critical-path retiming heuristics do
  not solve a global constraint system; they repeatedly *push* single delays
  through individual nodes.  In the paper's sign convention, pushing one
  delay through node ``v`` (drawing it from every incoming edge, emitting it
  on every outgoing edge) is ``r(v) += 1`` and is legal exactly when every
  incoming edge of the *current* retimed graph carries at least one delay.

* **Warm-started period feasibility** — the binary search of
  :func:`repro.retiming.optimal.minimize_cycle_period` probes a descending
  sequence of candidate periods ``c``, and the Leiserson–Saxe constraint
  systems for those probes are *nested*: a smaller ``c`` keeps every
  constraint of a larger one and adds constraints for the node pairs with
  ``c < D(u, v)``.  :class:`IncrementalFeasibility` exploits that nesting —
  instead of rebuilding and re-solving the system per probe, it keeps the
  shortest-path fixpoint of the last feasible probe and, for the next
  (smaller) ``c``, activates only the newly triggered pair constraints and
  resumes pass-based Bellman–Ford relaxation from that fixpoint.  The
  fixpoint of a difference-constraint system is its unique shortest-path
  solution, so the warm-started answer is *identical* to a fresh
  Bellman–Ford solve — which the property tests pin exactly.
"""

from __future__ import annotations

from bisect import bisect_left

from ..graph.dfg import DFG
from ..observability import count
from .function import Retiming, RetimingError

__all__ = ["IncrementalFeasibility", "can_push", "push_nodes", "pushable_nodes"]


#: Node count above which the vectorized numpy relaxation is used for the
#: warm-started feasibility solver (the pair-constraint set is dense —
#: O(V²) edges — so vectorized passes win early).  Overridable via the
#: ``REPRO_INC_NUMPY_THRESHOLD`` environment variable.
def _inc_threshold(default: int = 64) -> int:
    import os

    raw = os.environ.get("REPRO_INC_NUMPY_THRESHOLD")
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


_NUMPY_THRESHOLD = _inc_threshold()


class IncrementalFeasibility:
    """Warm-started feasibility oracle for the period binary search.

    Built once per graph from the shared ``(W, D)`` matrices.  Each call to
    :meth:`try_period` answers "is there a legal retiming with cycle period
    ``<= c``?" and, when feasible, returns the shortest-path solution of the
    full constraint system — *identical* to
    :meth:`repro.retiming.constraints.DifferenceConstraints.solve` on the
    same system, because the fixpoint of a difference-constraint relaxation
    is unique.

    The solver is optimized for the descending-``c`` probe pattern of a
    binary search: a probe below the best feasible period so far starts
    relaxation from that probe's committed fixpoint (which already satisfies
    every previously active constraint) so typically only one or two passes
    are needed; probes above the best feasible period are still answered
    correctly via a cold start from the base system.  Relaxation is
    pass-based Bellman–Ford over flat active-edge arrays — vectorized with
    numpy above :data:`_NUMPY_THRESHOLD` nodes — with the classic
    still-improving-after-``|V|-1``-passes negative-cycle certificate.

    Attributes
    ----------
    stats:
        ``{"probes", "relaxations", "constraints_added"}`` — deterministic
        operation counters (also mirrored into observability counters
        ``retiming.incremental.*``) used by the perf-smoke benchmark.
    """

    def __init__(
        self,
        g: DFG,
        W: dict[tuple[str, str], int],
        D: dict[tuple[str, str], int],
    ) -> None:
        names = g.node_names()
        index = {n: i for i, n in enumerate(names)}
        n = len(names)
        self._names = names
        self._n = n
        self._max_time = max((v.time for v in g.nodes()), default=0)

        # Base legality constraints r(dst) - r(src) <= d(e): relaxation edge
        # src -> dst of weight d.  All weights are >= 0, so the base
        # system's shortest-path fixpoint from the virtual source is the
        # all-zero vector — the base solve is free.
        self._base = [(index[e.src], index[e.dst], e.delay) for e in g.edges()]

        # Pair constraints r(v) - r(u) <= W(u, v) - 1, activated when the
        # probe period drops below D(u, v).  Sorted by D descending (ties
        # broken by node index for full determinism), so the constraints
        # active at period c are exactly a prefix of this list.
        pairs = sorted(
            (
                (d_val, index[u], index[v], W[(u, v)] - 1)
                for (u, v), d_val in D.items()
            ),
            key=lambda t: (-t[0], t[1], t[2]),
        )
        self._pair_edges = [(u, v, w) for (_d, u, v, w) in pairs]
        # Ascending keys for bisect: pairs[:k] have D > c where
        # k = bisect_left(neg_d, -c).
        self._neg_d = [-p[0] for p in pairs]

        self._use_numpy = n > _NUMPY_THRESHOLD and self._numpy_safe()
        if self._use_numpy:
            import numpy as np

            base = self._base or [(0, 0, 0)]  # keep arrays non-empty
            self._np = np
            self._b_src = np.array([e[0] for e in base], dtype=np.int64)
            self._b_dst = np.array([e[1] for e in base], dtype=np.int64)
            self._b_w = np.array([e[2] for e in base], dtype=np.int64)
            self._p_src = np.array([e[0] for e in self._pair_edges], dtype=np.int64)
            self._p_dst = np.array([e[1] for e in self._pair_edges], dtype=np.int64)
            self._p_w = np.array([e[2] for e in self._pair_edges], dtype=np.int64)

        # Committed feasible state: the exact fixpoint of the system with
        # pair constraints pairs[:best_k] active.
        self._best_k = 0
        self._best_dist: list[int] = [0] * n

        self.stats = {"probes": 0, "relaxations": 0, "constraints_added": 0}

    def _numpy_safe(self) -> bool:
        """Whether int64 arithmetic cannot overflow on this system: distance
        magnitudes are bounded by ``(|V| + 1) * max|w|``."""
        weights = [abs(w) for (_u, _v, w) in self._base + self._pair_edges]
        bound = (self._n + 2) * (max(weights, default=0) + 1)
        return bound < 2**60

    def _active_count(self, c: int) -> int:
        """Number of pair constraints active at period ``c`` (those with
        ``D > c``) — a prefix length of the sorted pair list."""
        return bisect_left(self._neg_d, -c)

    def try_period(self, c: int) -> dict[str, int] | None:
        """Shortest-path solution of the period-``c`` system, or ``None``.

        Feasible results commit their fixpoint as the warm-start state for
        subsequent (smaller-``c``) probes.
        """
        self.stats["probes"] += 1
        count("retiming.incremental.probes")
        if self._max_time > c:
            return None

        k = self._active_count(c)
        warm = k >= self._best_k
        fresh = k - self._best_k if warm else k
        self.stats["constraints_added"] += fresh
        count("retiming.incremental.constraints_added", fresh)

        if self._use_numpy:
            dist = self._relax_numpy(k, warm)
        else:
            dist = self._relax_python(k, warm)
        if dist is None:
            return None

        if warm:
            # Commit: the fixpoint of a superset system warm-starts every
            # later, tighter probe.
            self._best_k = k
            self._best_dist = list(dist)
        return {self._names[i]: int(dist[i]) for i in range(self._n)}

    # ------------------------------------------------------------------
    # relaxation backends (identical fixpoints)
    # ------------------------------------------------------------------
    def _relax_python(self, k: int, warm: bool) -> list[int] | None:
        """Pass-based Bellman–Ford over the active edges, warm-started.

        ``dist`` starts at the committed fixpoint (warm) or all zeros
        (cold); either satisfies the base system, so at most ``|V| - 1``
        passes settle every simple-path improvement and a still-improving
        verification pass certifies a negative cycle (infeasible).
        """
        dist = self._best_dist.copy() if warm else [0] * self._n
        base = self._base
        active = self._pair_edges[:k]
        relaxations = 0
        feasible = True
        for _ in range(max(1, self._n - 1)):
            changed = False
            for u, v, w in base:
                cand = dist[u] + w
                if cand < dist[v]:
                    dist[v] = cand
                    changed = True
            for u, v, w in active:
                cand = dist[u] + w
                if cand < dist[v]:
                    dist[v] = cand
                    changed = True
            relaxations += len(base) + len(active)
            if not changed:
                break
        else:
            for u, v, w in base + active:
                if dist[u] + w < dist[v]:
                    feasible = False
                    break
            relaxations += len(base) + len(active)
        self.stats["relaxations"] += relaxations
        count("retiming.incremental.relaxations", relaxations)
        return dist if feasible else None

    def _relax_numpy(self, k: int, warm: bool):
        """Vectorized synchronous Bellman–Ford (scatter-min per pass).

        Converges to the same unique fixpoint as the sequential pass; a
        pass that still improves distances after ``|V| - 1`` full passes
        certifies a negative cycle.
        """
        np = self._np
        dist = (
            np.array(self._best_dist, dtype=np.int64)
            if warm
            else np.zeros(self._n, dtype=np.int64)
        )
        b_src, b_dst, b_w = self._b_src, self._b_dst, self._b_w
        p_src = self._p_src[:k]
        p_dst = self._p_dst[:k]
        p_w = self._p_w[:k]
        relaxations = 0
        feasible = None
        for _ in range(max(1, self._n)):
            before = dist.copy()
            np.minimum.at(dist, b_dst, before[b_src] + b_w)
            if k:
                np.minimum.at(dist, p_dst, before[p_src] + p_w)
            relaxations += len(b_src) + k
            if np.array_equal(dist, before):
                feasible = True
                break
        if feasible is None:
            # Still improving after |V| passes: negative cycle.
            feasible = False
        self.stats["relaxations"] += relaxations
        count("retiming.incremental.relaxations", relaxations)
        return dist if feasible else None


def can_push(retimed: DFG, nodes: set[str] | frozenset[str]) -> bool:
    """Whether simultaneously pushing one delay through every node of
    ``nodes`` is legal on the (already retimed) graph ``retimed``.

    A delay is drawn from each edge entering the set from outside and
    emitted on each edge leaving it; edges wholly inside the set are
    unaffected.  Legal iff every entering edge carries at least one delay.
    """
    for name in nodes:
        for e in retimed.in_edges(name):
            if e.src not in nodes and e.delay < 1:
                return False
    return True


def pushable_nodes(retimed: DFG) -> list[str]:
    """Nodes through which a single delay can be pushed individually."""
    return [n for n in retimed.node_names() if can_push(retimed, {n})]


def push_nodes(r: Retiming, nodes: set[str] | frozenset[str], amount: int = 1) -> Retiming:
    """Return ``r`` with ``amount`` added to every node in ``nodes``.

    Raises :class:`RetimingError` if the result is illegal.  ``amount`` may
    be negative (pulling delays back), which rotation scheduling uses to
    undo unprofitable rotations.
    """
    values = r.as_dict()
    for n in nodes:
        if n not in values:
            raise RetimingError(f"unknown node {n!r}")
        values[n] += amount
    new_r = Retiming(r.graph, values)
    new_r.check_legal()
    return new_r
