"""The Leiserson–Saxe FEAS algorithm, adapted to the paper's sign convention.

``feas(G, c)`` decides whether cycle period ``c`` is achievable by retiming,
without building the ``W``/``D`` matrices: it iteratively simulates clock
period ``c`` and pulls a delay onto the incoming edges of every node whose
completion time exceeds ``c``.  In this library's sign convention
(``d_r(e(u->v)) = d(e) + r(u) - r(v)``) pulling a delay into node ``v``
means *decrementing* ``r(v)``.

FEAS runs in ``O(|V| |E|)`` per iteration and ``|V| - 1`` iterations, and is
used in the test-suite as an independent oracle against the W/D-based
:func:`repro.retiming.optimal.retime_for_period`.
"""

from __future__ import annotations

from ..graph.dfg import DFG
from ..graph.period import asap_times, cycle_period
from .function import Retiming

__all__ = ["feas"]


def feas(g: DFG, c: int) -> Retiming | None:
    """A normalized retiming achieving cycle period ``<= c``, else ``None``."""
    if any(v.time > c for v in g.nodes()):
        return None

    values: dict[str, int] = {n: 0 for n in g.node_names()}
    for _ in range(max(1, g.num_nodes - 1)):
        r = Retiming(g, values)
        retimed = r.apply()
        start = asap_times(retimed)
        changed = False
        for node in retimed.nodes():
            if start[node.name] + node.time > c:
                values[node.name] -= 1
                changed = True
        if not changed:
            break

    r = Retiming(g, values)
    if not r.is_legal():
        # Cannot happen: decrementing r(v) only adds delays to v's incoming
        # edges and removes them from its outgoing edges that had at least
        # one (their sources were scheduled earlier) — but stay defensive.
        return None
    if cycle_period(r.apply()) <= c:
        return r.normalized()
    return None
