"""The Leiserson–Saxe FEAS algorithm, adapted to the paper's sign convention.

``feas(G, c)`` decides whether cycle period ``c`` is achievable by retiming,
without building the ``W``/``D`` matrices: it iteratively simulates clock
period ``c`` and pulls a delay onto the incoming edges of every node whose
completion time exceeds ``c``.  In this library's sign convention
(``d_r(e(u->v)) = d(e) + r(u) - r(v)``) pulling a delay into node ``v``
means *decrementing* ``r(v)``.

FEAS runs in ``O(|V| |E|)`` per iteration and ``|V| - 1`` iterations, and is
used in the test-suite as an independent oracle against the W/D-based
:func:`repro.retiming.optimal.retime_for_period`.

Above the shared kernel's numpy threshold the per-iteration simulation runs
vectorized over the graph's :class:`~repro.graph.kernel.EdgeKernel`: retimed
delays are one gather expression over the flat edge arrays and the ASAP
schedule is a scatter-max fixpoint over the zero-delay edges — both exact
integer computations, so the sequence of decrement sets (and hence the
result) is bit-identical to the object-walking path.  The final legality and
period checks always run on real :class:`~repro.retiming.function.Retiming`
objects.
"""

from __future__ import annotations

from ..graph.dfg import DFG
from ..graph.kernel import _current_threshold, shared_kernel
from ..graph.period import asap_times, cycle_period
from ..observability import count
from .function import Retiming

__all__ = ["feas"]


def feas(g: DFG, c: int) -> Retiming | None:
    """A normalized retiming achieving cycle period ``<= c``, else ``None``."""
    if any(v.time > c for v in g.nodes()):
        return None

    kernel = shared_kernel(g)
    values: dict[str, int] | None = None
    if kernel.num_edges > _current_threshold():
        values = _simulate_numpy(kernel, c)
    if values is None:
        values = _simulate_python(g, c)

    r = Retiming(g, values)
    if not r.is_legal():
        # Cannot happen: decrementing r(v) only adds delays to v's incoming
        # edges and removes them from its outgoing edges that had at least
        # one (their sources were scheduled earlier) — but stay defensive.
        return None
    if cycle_period(r.apply()) <= c:
        return r.normalized()
    return None


def _simulate_python(g: DFG, c: int) -> dict[str, int]:
    """Reference FEAS simulation: rebuild the retimed graph per iteration."""
    values: dict[str, int] = {n: 0 for n in g.node_names()}
    for _ in range(max(1, g.num_nodes - 1)):
        r = Retiming(g, values)
        retimed = r.apply()
        start = asap_times(retimed)
        changed = False
        for node in retimed.nodes():
            if start[node.name] + node.time > c:
                values[node.name] -= 1
                changed = True
        if not changed:
            break
    return values


def _simulate_numpy(kernel, c: int) -> dict[str, int] | None:
    """Vectorized FEAS simulation over the shared edge kernel.

    Per outer iteration the retimed delays are ``d + r[src] - r[dst]`` and
    the ASAP times are the scatter-max fixpoint of
    ``start[dst] >= start[src] + t(src)`` over the zero-delay edges — the
    same longest-path values :func:`~repro.graph.period.asap_times`
    computes, so the decrement sets match the reference simulation exactly.
    Returns ``None`` (falling back to the object path, which also carries
    the error behavior for pathological inputs) if an intermediate retimed
    graph has a negative delay or a zero-delay cycle — neither occurs for
    legal DFGs, by the invariant noted in :func:`feas`.
    """
    import numpy as np

    src, dst, delay, src_time, times = kernel.np_arrays()
    n = kernel.num_nodes
    r = np.zeros(n, dtype=np.int64)
    sweeps = 0
    for _ in range(max(1, n - 1)):
        d_r = delay + r[src] - r[dst]
        if d_r.size and int(d_r.min()) < 0:
            return None
        zero = np.nonzero(d_r == 0)[0]
        zsrc = src[zero]
        zdst = dst[zero]
        zfin = src_time[zero]  # start[src] + t(src) gathers add this
        start = np.zeros(n, dtype=np.int64)
        converged = False
        for _pass in range(n + 1):
            before = start.copy()
            np.maximum.at(start, zdst, before[zsrc] + zfin)
            sweeps += 1
            if np.array_equal(start, before):
                converged = True
                break
        if not converged:  # zero-delay cycle: let the object path diagnose
            return None
        over = start + times > c
        if not bool(over.any()):
            break
        r[over] -= 1
    count("kernel.relax_sweeps", sweeps)
    return {name: int(r[i]) for i, name in enumerate(kernel.names)}
