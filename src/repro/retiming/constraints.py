"""Systems of difference constraints and their Bellman–Ford solver.

Retiming feasibility questions ("is there a legal retiming?", "is there a
retiming achieving cycle period ``c``?") reduce to systems of *difference
constraints* of the form ``x(a) - x(b) <= c``.  Such a system is satisfiable
iff its *constraint graph* — an edge ``b -> a`` of weight ``c`` per
constraint — has no negative cycle, and single-source shortest-path
distances from a virtual source then provide an integral solution
[Cormen et al., ch. "Difference constraints and shortest paths"].

The solver here is a plain Bellman–Ford with early exit, entirely
self-contained so the retiming engine has no dependency on networkx.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["DifferenceConstraints"]


class DifferenceConstraints:
    """A mutable collection of ``x(a) - x(b) <= c`` constraints.

    Variables are arbitrary hashable objects, created implicitly on first
    mention.  Duplicate ``(a, b)`` pairs are tightened to the minimum bound
    (the binding constraint), keeping the constraint graph small.
    """

    def __init__(self) -> None:
        self._bounds: dict[tuple[Hashable, Hashable], int] = {}
        self._vars: dict[Hashable, None] = {}

    def add(self, a: Hashable, b: Hashable, c: int) -> None:
        """Require ``x(a) - x(b) <= c``."""
        self._vars.setdefault(a, None)
        self._vars.setdefault(b, None)
        key = (a, b)
        if key not in self._bounds or c < self._bounds[key]:
            self._bounds[key] = c

    def add_variable(self, a: Hashable) -> None:
        """Declare a variable without constraining it."""
        self._vars.setdefault(a, None)

    @property
    def num_constraints(self) -> int:
        """Number of (tightened) constraints."""
        return len(self._bounds)

    @property
    def variables(self) -> list[Hashable]:
        """All declared variables, in first-mention order."""
        return list(self._vars)

    def solve(self) -> dict[Hashable, int] | None:
        """An integral solution, or ``None`` if the system is infeasible.

        The returned solution is the shortest-path solution from a virtual
        source (every variable reachable at distance 0), i.e. the pointwise
        *maximum* solution with values ``<= 0``.
        """
        dist: dict[Hashable, int] = {v: 0 for v in self._vars}
        # Constraint x(a) - x(b) <= c is the relaxation edge b -> a, w = c.
        edges = [(b, a, c) for (a, b), c in self._bounds.items()]
        n = len(dist)
        for _ in range(max(0, n - 1)):
            changed = False
            for b, a, c in edges:
                cand = dist[b] + c
                if cand < dist[a]:
                    dist[a] = cand
                    changed = True
            if not changed:
                break
        # Whether relaxation settled early or ran all n-1 passes with
        # changes (the adversarial-edge-order worst case), the check below
        # is what decides feasibility: any still-violated constraint after
        # n-1 full passes certifies a negative cycle.
        for b, a, c in edges:
            if dist[b] + c < dist[a]:
                return None  # negative cycle: infeasible
        return dist

    def is_feasible(self) -> bool:
        """Whether a solution exists."""
        return self.solve() is not None

    def check(self, assignment: dict[Hashable, int]) -> bool:
        """Whether ``assignment`` satisfies every constraint."""
        return all(
            assignment[a] - assignment[b] <= c for (a, b), c in self._bounds.items()
        )

    def constraints(self) -> Iterable[tuple[Hashable, Hashable, int]]:
        """Iterate over ``(a, b, c)`` triples meaning ``x(a) - x(b) <= c``."""
        for (a, b), c in self._bounds.items():
            yield a, b, c
