"""Retiming engine: functions, constraint solving, optimal algorithms.

Implements the paper's Section 2.2 machinery in the paper's own sign
convention (``d_r(e(u->v)) = d(e) + r(u) - r(v)``): retiming functions and
their legality/normalization (:class:`Retiming`), the Bellman–Ford
difference-constraint solver, Leiserson–Saxe optimal retiming (W/D binary
search) and FEAS, incremental delay pushing for rotation scheduling, and
rate-optimality analysis.
"""

from .constraints import DifferenceConstraints
from .feas import feas
from .function import Retiming, RetimingError
from .incremental import can_push, push_nodes, pushable_nodes
from .optimal import minimize_cycle_period, minimum_cycle_period, retime_for_period
from .rate_optimal import RateOptimalResult, rate_optimal_retiming

__all__ = [
    "DifferenceConstraints",
    "feas",
    "Retiming",
    "RetimingError",
    "can_push",
    "push_nodes",
    "pushable_nodes",
    "minimize_cycle_period",
    "minimum_cycle_period",
    "retime_for_period",
    "RateOptimalResult",
    "rate_optimal_retiming",
]
