"""Optimal retiming: minimum cycle period via the Leiserson–Saxe reduction.

``retime_for_period(G, c)`` answers "is there a legal retiming with cycle
period ``<= c``" constructively, by solving the difference-constraint system

* ``r(v) - r(u) <= d(e)``               for every edge ``e(u -> v)``
  (legality: retimed delays stay non-negative — recall this paper's sign
  convention ``d_r(e) = d(e) + r(u) - r(v)``), and
* ``r(v) - r(u) <= W(u, v) - 1``        for every pair with ``D(u, v) > c``
  (every minimum-delay path from ``u`` to ``v`` must retain a delay,
  breaking all zero-delay paths longer than ``c``).

``minimize_cycle_period(G)`` binary-searches the sorted distinct values of
the ``D`` matrix — the optimum is always one of them — and returns the
minimum period together with a witnessing *normalized* retiming.
"""

from __future__ import annotations

from ..graph.dfg import DFG
from ..graph.period import cycle_period
from ..graph.wd import wd_matrices
from ..observability import count, span
from .constraints import DifferenceConstraints
from .function import Retiming

__all__ = ["retime_for_period", "minimize_cycle_period", "minimum_cycle_period"]


def retime_for_period(g: DFG, c: int) -> Retiming | None:
    """A normalized legal retiming of ``g`` with cycle period ``<= c``,
    or ``None`` if none exists.

    Nodes with computation time ``t(v) > c`` make any period ``<= c``
    impossible regardless of retiming; that case returns ``None``
    immediately.
    """
    count("retiming.feasibility_checks")
    if any(v.time > c for v in g.nodes()):
        return None

    W, D = wd_matrices(g)
    system = DifferenceConstraints()
    for n in g.node_names():
        system.add_variable(n)
    for e in g.edges():
        system.add(e.dst, e.src, e.delay)
    for (u, v), d_val in D.items():
        if d_val > c:
            system.add(v, u, W[(u, v)] - 1)

    solution = system.solve()
    if solution is None:
        return None
    r = Retiming(g, {n: int(val) for n, val in solution.items()}).normalized()
    # The reduction is exact, but verify anyway — cheap and makes the
    # function's contract self-checking.
    retimed = r.apply()
    assert cycle_period(retimed) <= c, "internal error: LS reduction violated"
    return r


def minimize_cycle_period(g: DFG) -> tuple[int, Retiming]:
    """The minimum cycle period achievable by retiming, with a witness.

    Binary search over the sorted distinct ``D``-matrix values (the optimum
    is one of them, by Leiserson–Saxe Theorem 8 adapted to this sign
    convention).  The returned retiming is normalized.
    """
    from ..graph.wd import distinct_d_values

    with span("retiming.minimize", graph=g.name, nodes=g.num_nodes) as sp:
        candidates = distinct_d_values(g)
        lo, hi = 0, len(candidates) - 1
        best: tuple[int, Retiming] | None = None
        iterations = 0
        while lo <= hi:
            iterations += 1
            mid = (lo + hi) // 2
            c = candidates[mid]
            r = retime_for_period(g, c)
            if r is not None:
                best = (c, r)
                hi = mid - 1
            else:
                lo = mid + 1
        if best is None:  # pragma: no cover - cannot happen for legal graphs
            raise AssertionError("no feasible cycle period found; graph is illegal")
        # The optimum is the *achieved* period of the witness, which can be
        # strictly below the candidate bound that the search proved feasible.
        c, r = best
        achieved = cycle_period(r.apply())
        sp.set(period=achieved, iterations=iterations)
    count("retiming.iterations", iterations)
    return achieved, r


def minimum_cycle_period(g: DFG) -> int:
    """Just the minimum achievable cycle period (no witness)."""
    return minimize_cycle_period(g)[0]
