"""Optimal retiming: minimum cycle period via the Leiserson–Saxe reduction.

``retime_for_period(G, c)`` answers "is there a legal retiming with cycle
period ``<= c``" constructively, by solving the difference-constraint system

* ``r(v) - r(u) <= d(e)``               for every edge ``e(u -> v)``
  (legality: retimed delays stay non-negative — recall this paper's sign
  convention ``d_r(e) = d(e) + r(u) - r(v)``), and
* ``r(v) - r(u) <= W(u, v) - 1``        for every pair with ``D(u, v) > c``
  (every minimum-delay path from ``u`` to ``v`` must retain a delay,
  breaking all zero-delay paths longer than ``c``).

``minimize_cycle_period(G)`` binary-searches the sorted distinct values of
the ``D`` matrix — the optimum is always one of them — and returns the
minimum period together with a witnessing *normalized* retiming.

Three search strategies are available (all provably return the same period
and the same normalized witness, which the test-suite pins exactly):

``method="incremental"`` (default)
    Compute ``(W, D)`` once, then drive the binary search through the
    warm-started :class:`~repro.retiming.incremental.IncrementalFeasibility`
    solver, which exploits that the per-probe constraint systems are nested
    in ``c``.  The asymptotically and practically fastest path.
``method="shared"``
    Compute ``(W, D)`` once and thread it into a fresh Bellman–Ford
    constraint solve per probe (``retime_for_period(g, c, wd=...)``).
``method="reference"``
    The original behavior: every probe rebuilds ``(W, D)`` from scratch and
    self-verifies its witness.  Kept as the differential-testing reference
    and benchmark baseline.
"""

from __future__ import annotations

from ..graph.dfg import DFG
from ..graph.period import cycle_period
from ..graph.wd import WDKernel, wd_kernel
from ..observability import count, span
from .constraints import DifferenceConstraints
from .function import Retiming
from .incremental import IncrementalFeasibility

__all__ = ["retime_for_period", "minimize_cycle_period", "minimum_cycle_period"]

_WD = (
    tuple[dict[tuple[str, str], int], dict[tuple[str, str], int]] | WDKernel
)


def retime_for_period(
    g: DFG,
    c: int,
    *,
    wd: _WD | None = None,
    verify: bool = True,
) -> Retiming | None:
    """A normalized legal retiming of ``g`` with cycle period ``<= c``,
    or ``None`` if none exists.

    Nodes with computation time ``t(v) > c`` make any period ``<= c``
    impossible regardless of retiming; that case returns ``None``
    immediately.

    ``wd`` supplies precomputed ``(W, D)`` matrices — either the dict pair
    from :func:`repro.graph.wd.wd_matrices` or a
    :class:`~repro.graph.wd.WDKernel` — so that repeated probes on the same
    graph skip the O(V³) recomputation; ``verify=False`` skips the
    self-check that re-applies the witness and recomputes its cycle period
    (the reduction is exact; the check is for the function's self-checking
    contract on one-shot calls, not for tight probe loops).
    """
    count("retiming.feasibility_checks")
    if any(v.time > c for v in g.nodes()):
        return None

    if wd is None:
        wd = wd_kernel(g)
    W, D = (wd.W, wd.D) if isinstance(wd, WDKernel) else wd
    system = DifferenceConstraints()
    for n in g.node_names():
        system.add_variable(n)
    for e in g.edges():
        system.add(e.dst, e.src, e.delay)
    for (u, v), d_val in D.items():
        if d_val > c:
            system.add(v, u, W[(u, v)] - 1)

    solution = system.solve()
    if solution is None:
        return None
    r = Retiming(g, {n: int(val) for n, val in solution.items()}).normalized()
    if verify:
        retimed = r.apply()
        assert cycle_period(retimed) <= c, "internal error: LS reduction violated"
    return r


def minimize_cycle_period(
    g: DFG,
    *,
    method: str = "incremental",
    verify: bool = False,
    wd: _WD | None = None,
) -> tuple[int, Retiming]:
    """The minimum cycle period achievable by retiming, with a witness.

    Binary search over the sorted distinct ``D``-matrix values (the optimum
    is one of them, by Leiserson–Saxe Theorem 8 adapted to this sign
    convention).  The returned retiming is normalized.

    ``method`` selects the probe strategy (see the module docstring); all
    strategies return identical results.  ``verify=True`` additionally
    re-applies every feasible probe's witness and checks its period (always
    on for ``method="reference"``, matching the original behavior).
    ``wd`` supplies precomputed (W, D) data — the :func:`wd_matrices` dict
    pair or a :class:`~repro.graph.wd.WDKernel` (ignored by
    ``method="reference"``) — so long-lived callers such as the request
    server keep the matrices warm across calls.
    """
    if method not in ("incremental", "shared", "reference"):
        raise ValueError(f"unknown minimize_cycle_period method {method!r}")

    with span("retiming.minimize", graph=g.name, nodes=g.num_nodes) as sp:
        if method == "reference":
            from ..graph.wd import distinct_d_values

            candidates = distinct_d_values(g)

            def probe(c: int) -> Retiming | None:
                return retime_for_period(g, c)

        else:
            if wd is None:
                wd = wd_kernel(g)
            if isinstance(wd, WDKernel):
                wdk = wd
                candidates = wdk.d_values()
            else:
                wdk = None
                _W, D = wd
                candidates = sorted(set(D.values()))
            if method == "incremental":
                if wdk is not None:
                    solver = IncrementalFeasibility(g, wd=wdk)
                else:
                    solver = IncrementalFeasibility(g, *wd)

                def probe(c: int) -> Retiming | None:
                    solution = solver.try_period(c)
                    if solution is None:
                        return None
                    r = Retiming(g, solution).normalized()
                    if verify:
                        assert cycle_period(r.apply()) <= c, (
                            "internal error: incremental solver violated "
                            "the LS reduction"
                        )
                    return r

            else:  # "shared"

                def probe(c: int) -> Retiming | None:
                    return retime_for_period(g, c, wd=wd, verify=verify)

        lo, hi = 0, len(candidates) - 1
        best: tuple[int, Retiming] | None = None
        iterations = 0
        while lo <= hi:
            iterations += 1
            mid = (lo + hi) // 2
            c = candidates[mid]
            r = probe(c)
            if r is not None:
                best = (c, r)
                hi = mid - 1
            else:
                lo = mid + 1
        if best is None:  # pragma: no cover - cannot happen for legal graphs
            raise AssertionError("no feasible cycle period found; graph is illegal")
        # The optimum is the *achieved* period of the witness, which can be
        # strictly below the candidate bound that the search proved feasible.
        c, r = best
        achieved = cycle_period(r.apply())
        sp.set(period=achieved, iterations=iterations)
    count("retiming.iterations", iterations)
    return achieved, r


def minimum_cycle_period(g: DFG) -> int:
    """Just the minimum achievable cycle period (no witness)."""
    return minimize_cycle_period(g)[0]
