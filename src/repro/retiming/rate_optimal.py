"""Rate-optimality analysis for retimed loops.

A static schedule is *rate-optimal* when its iteration period equals the
iteration bound ``B(G)`` (Section 2.1).  Retiming alone produces integral
iteration periods (the cycle period of the retimed graph), so:

* if ``B(G)`` is integral, retiming can be rate-optimal — and the
  Leiserson–Saxe optimum from :mod:`repro.retiming.optimal` achieves it for
  unit-time graphs;
* if ``B(G)`` is fractional, rate-optimality additionally requires
  unfolding by (a multiple of) the denominator of ``B(G)``
  (see :func:`repro.graph.minimum_unfolding_for_rate_optimality` and
  :mod:`repro.unfolding.orders`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..graph.dfg import DFG
from ..graph.iteration_bound import iteration_bound
from .function import Retiming
from .optimal import minimize_cycle_period

__all__ = ["RateOptimalResult", "rate_optimal_retiming"]


@dataclass(frozen=True)
class RateOptimalResult:
    """Outcome of retiming ``graph`` for the best achievable rate.

    Attributes
    ----------
    retiming:
        Normalized retiming achieving ``period``.
    period:
        Minimum cycle period achievable by retiming alone.
    bound:
        The iteration bound ``B(G)``.
    is_rate_optimal:
        ``period == bound`` — only possible when the bound is integral.
    required_unfolding:
        Smallest unfolding factor that makes ``f * B(G)`` integral, i.e.
        the factor needed for a rate-optimal unfolded schedule (1 when the
        bound is already integral).
    """

    retiming: Retiming
    period: int
    bound: Fraction
    is_rate_optimal: bool
    required_unfolding: int


def rate_optimal_retiming(g: DFG) -> RateOptimalResult:
    """Retime ``g`` for minimum cycle period and report rate-optimality."""
    period, r = minimize_cycle_period(g)
    bound = iteration_bound(g)
    return RateOptimalResult(
        retiming=r,
        period=period,
        bound=bound,
        is_rate_optimal=(bound == period),
        required_unfolding=1 if bound == 0 else bound.denominator,
    )
