"""Packing loop bodies into VLIW instruction words.

The paper's performance argument for code-size reduction is architectural:
"for VLIW architecture, the inserted [setup/decrement] instructions can be
put into a slot of the long instruction word wherever possible after all
the guarded instructions are issued" — i.e. the register-management
overhead rides in otherwise-empty issue slots, so the initiation interval
(words per iteration) does not grow.  This module makes that argument
measurable: it packs a generated loop body into VLIW words under a
functional-unit model and reports the achieved initiation interval.

Dependencies are recovered from the IR itself: a body compute consuming
``X[i+k]`` depends on the body compute producing ``X[i+k]`` (same-iteration
producer); consumers of earlier-iteration instances have no intra-body
constraint.  A decrement of register ``p`` is ordered after every compute
guarded by ``p`` (the paper's placement rule), and setups live outside the
loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codegen.ir import ComputeInstr, DecInstr, IndexBase, Instr, LoopProgram, SetupInstr
from ..graph.dfg import DFGError
from .resources import ResourceModel

__all__ = ["VliwWord", "VliwSchedule", "pack_body", "pack_straightline", "estimate_cycles"]

#: Unit kind used by register decrement instructions.
CONTROL_KIND = "ctrl"


@dataclass(frozen=True)
class VliwWord:
    """One long instruction word: the instructions issued together."""

    slots: tuple[Instr, ...]

    def __len__(self) -> int:
        return len(self.slots)


@dataclass(frozen=True)
class VliwSchedule:
    """A packed loop body.

    ``initiation_interval`` (number of words) is the steady-state cost of
    one loop iteration on the modelled machine.
    """

    words: tuple[VliwWord, ...]

    @property
    def initiation_interval(self) -> int:
        return len(self.words)

    def utilization(self) -> float:
        """Fraction of issued slots over ``words * max_word_width``."""
        if not self.words:
            return 0.0
        width = max(len(w) for w in self.words)
        if width == 0:
            return 0.0
        return sum(len(w) for w in self.words) / (len(self.words) * width)


def _kind_of(instr: Instr, resources: ResourceModel) -> str:
    if isinstance(instr, ComputeInstr):
        # Classify by operation, mirroring ResourceModel.default_kind.
        class _N:  # minimal Node-like shim for the classifier
            def __init__(self, op):
                self.op = op
                self.time = 1

        return resources.classify(_N(instr.op))  # type: ignore[arg-type]
    return CONTROL_KIND


def _dependencies(body: tuple[Instr, ...], allow_setup: bool) -> dict[int, set[int]]:
    """``index -> set of earlier indices it must follow``."""
    producer_of: dict[tuple[str, IndexBase, int], int] = {}
    for k, instr in enumerate(body):
        if isinstance(instr, ComputeInstr):
            key = (instr.dest.array, instr.dest.index.base, instr.dest.index.offset)
            producer_of[key] = k

    deps: dict[int, set[int]] = {k: set() for k in range(len(body))}
    # Register chains: a guarded compute reads its register, so it must
    # follow the most recent write (setup or decrement) of that register;
    # a decrement must follow every read since the previous write (this is
    # what keeps per-copy CSR bodies — where decrements interleave with
    # slots — correct under parallel issue).
    last_write: dict[str, int] = {}
    reads_since_write: dict[str, list[int]] = {}
    for k, instr in enumerate(body):
        if isinstance(instr, ComputeInstr):
            for src in instr.srcs:
                key = (src.array, src.index.base, src.index.offset)
                p = producer_of.get(key)
                if p is not None and p != k:
                    deps[k].add(p)
            if instr.guard is not None:
                reg = instr.guard.register
                if reg in last_write:
                    deps[k].add(last_write[reg])
                reads_since_write.setdefault(reg, []).append(k)
        elif isinstance(instr, DecInstr):
            reg = instr.register
            deps[k].update(reads_since_write.get(reg, ()))
            if reg in last_write:
                deps[k].add(last_write[reg])
            last_write[reg] = k
            reads_since_write[reg] = []
        elif isinstance(instr, SetupInstr):
            if not allow_setup:
                raise DFGError("setup instructions belong outside the loop body")
            last_write[instr.register] = k
            reads_since_write[instr.register] = []
    return deps


def pack_body(
    program: LoopProgram,
    resources: ResourceModel,
    control_slots: int = 1,
) -> VliwSchedule:
    """Pack ``program``'s loop body into VLIW words.

    ``resources`` bounds compute slots per word by unit kind;
    ``control_slots`` bounds decrements per word.  Greedy earliest-fit in
    body order (dependencies respected), which matches how production VLIW
    packers fill pre-scheduled slots.
    """
    return _pack_sequence(program.loop.body, resources, control_slots, allow_setup=False)


def pack_straightline(
    instrs: tuple[Instr, ...],
    resources: ResourceModel,
    control_slots: int = 1,
) -> VliwSchedule:
    """Pack a straight-line region (prologue/epilogue/setup code)."""
    return _pack_sequence(instrs, resources, control_slots, allow_setup=True)


def estimate_cycles(
    program: LoopProgram,
    resources: ResourceModel,
    n: int,
    control_slots: int = 1,
) -> int:
    """Estimated execution cycles of ``program`` on the modelled VLIW:
    packed pre + trip_count * packed-body II + packed post.

    This is the library's quantitative form of the paper's performance
    claim: compare the estimate for the plain pipelined program against its
    CSR form at equal ``n``.
    """
    pre = pack_straightline(program.pre, resources, control_slots)
    body = pack_body(program, resources, control_slots)
    post = pack_straightline(program.post, resources, control_slots)
    return (
        pre.initiation_interval
        + program.loop.trip_count(n) * body.initiation_interval
        + post.initiation_interval
    )


def _pack_sequence(
    body: tuple[Instr, ...],
    resources: ResourceModel,
    control_slots: int,
    allow_setup: bool,
) -> VliwSchedule:
    deps = _dependencies(body, allow_setup=allow_setup)

    word_of: dict[int, int] = {}
    usage: list[dict[str, int]] = []
    words: list[list[Instr]] = []

    for k, instr in enumerate(body):
        kind = _kind_of(instr, resources)
        cap = control_slots if kind == CONTROL_KIND else resources.capacity(kind)
        earliest = 0
        for d in deps[k]:
            earliest = max(earliest, word_of[d] + 1)
        w = earliest
        while True:
            if w == len(words):
                words.append([])
                usage.append({})
            if usage[w].get(kind, 0) < cap:
                words[w].append(instr)
                usage[w][kind] = usage[w].get(kind, 0) + 1
                word_of[k] = w
                break
            w += 1

    return VliwSchedule(words=tuple(VliwWord(slots=tuple(w)) for w in words))
