"""Static schedules of one loop iteration.

A :class:`StaticSchedule` assigns every node a start control step within one
iteration of the loop body, honouring all zero-delay (intra-iteration)
dependencies.  Its *length* is the completion time of the last node; for an
unconstrained schedule of a legal DFG this equals the cycle period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..graph.dfg import DFG, DFGError
from ..graph.period import asap_times

__all__ = ["StaticSchedule", "asap_schedule"]


@dataclass(frozen=True)
class StaticSchedule:
    """An immutable mapping of nodes to start control steps.

    Attributes
    ----------
    graph:
        The (possibly retimed/unfolded) DFG being scheduled.
    start:
        Node name -> 0-based start step.
    """

    graph: DFG
    start: Mapping[str, int]

    def __post_init__(self) -> None:
        missing = set(self.graph.node_names()) - set(self.start)
        if missing:
            raise DFGError(f"schedule misses nodes {sorted(missing)}")
        for n, s in self.start.items():
            if s < 0:
                raise DFGError(f"node {n!r} scheduled at negative step {s}")

    @property
    def length(self) -> int:
        """Completion step of the latest node (0 for an empty schedule)."""
        return max(
            (self.start[v.name] + v.time for v in self.graph.nodes()), default=0
        )

    def finish(self, node: str) -> int:
        """Completion step of ``node``."""
        return self.start[node] + self.graph.node(node).time

    def control_step(self, step: int) -> list[str]:
        """Nodes *starting* at control step ``step`` (insertion order)."""
        return [n for n in self.graph.node_names() if self.start[n] == step]

    def running_at(self, step: int) -> list[str]:
        """Nodes occupying control step ``step`` (started, not yet finished)."""
        return [
            v.name
            for v in self.graph.nodes()
            if self.start[v.name] <= step < self.start[v.name] + v.time
        ]

    def first_row(self) -> frozenset[str]:
        """Nodes in the first control step — the rotation-scheduling frontier."""
        return frozenset(self.control_step(0))

    def table(self) -> list[list[str]]:
        """Row per control step, listing the nodes starting there."""
        return [self.control_step(s) for s in range(self.length)]


def asap_schedule(g: DFG) -> StaticSchedule:
    """The unconstrained as-soon-as-possible schedule (length = cycle period)."""
    return StaticSchedule(graph=g, start=asap_times(g))
