"""Rotation scheduling (Chao, LaPaugh & Sha).

Rotation scheduling is the loop-pipelining technique the paper's experiments
build on: starting from a resource-constrained list schedule, it repeatedly
*rotates* the nodes in the first control step — retiming them down by one
iteration (``r(v) += 1`` in this library's sign convention, legal when every
incoming edge from outside the rotated set carries a delay) — and
reschedules, keeping the shortest schedule seen.  Each rotation is exactly
one software-pipelining step, so the retiming accumulated by rotation
scheduling is precisely the retiming function whose code-size expansion the
CSR framework of :mod:`repro.core` removes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.dfg import DFG
from ..retiming.function import Retiming
from ..retiming.incremental import can_push, push_nodes
from .resources import ResourceModel
from .static_schedule import StaticSchedule
from .list_scheduling import list_schedule

__all__ = ["RotationResult", "rotation_schedule"]


@dataclass(frozen=True)
class RotationResult:
    """Outcome of rotation scheduling.

    Attributes
    ----------
    retiming:
        Normalized retiming accumulated by the best rotation prefix.
    schedule:
        Best schedule found (of ``retiming.apply()``).
    length:
        Its schedule length (the achieved iteration period).
    rotations:
        Number of rotations that produced the best schedule.
    initial_length:
        Schedule length before any rotation (plain list scheduling).
    """

    retiming: Retiming
    schedule: StaticSchedule
    length: int
    rotations: int
    initial_length: int


def rotation_schedule(
    g: DFG,
    resources: ResourceModel | None = None,
    max_rotations: int | None = None,
) -> RotationResult:
    """Software-pipeline ``g`` under ``resources`` by rotation scheduling.

    ``max_rotations`` defaults to ``2 * |V|`` — enough for the schedule
    space to cycle on every benchmark in this repository.  The search stops
    early when a rotation would be illegal (some first-row node has a
    delay-free external input).
    """
    if max_rotations is None:
        max_rotations = 2 * g.num_nodes

    r = Retiming.zero(g)
    sched = list_schedule(g, resources)
    best = RotationResult(
        retiming=r.normalized(),
        schedule=sched,
        length=sched.length,
        rotations=0,
        initial_length=sched.length,
    )

    for k in range(1, max_rotations + 1):
        # `sched` is always a schedule of the current retimed graph.
        row = sched.first_row()
        if not row or not can_push(sched.graph, row):
            break
        r = push_nodes(r, row)
        sched = list_schedule(r.apply(), resources)
        if sched.length < best.length:
            best = RotationResult(
                retiming=r.normalized(),
                schedule=sched,
                length=sched.length,
                rotations=k,
                initial_length=best.initial_length,
            )
    return best
