"""Functional-unit resource models for resource-constrained scheduling.

The paper targets VLIW DSPs (TMS320C6000-class) with a fixed set of
functional units.  A :class:`ResourceModel` maps each DFG node to a unit
*kind* (by default from its operation: multiplications go to multipliers,
everything else to ALUs) and bounds how many nodes of each kind may occupy
the same control step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..graph.dfg import DFG, DFGError, Node, OpKind

__all__ = ["ResourceModel", "UNLIMITED", "default_kind"]

UNLIMITED: int = 10**9
"""Sentinel unit count meaning "no constraint" for a kind."""


def default_kind(node: Node) -> str:
    """Default node -> unit-kind mapping: multiplier ops vs. ALU ops."""
    return "mul" if node.op in (OpKind.MUL, OpKind.MAC) else "alu"


@dataclass(frozen=True)
class ResourceModel:
    """Available functional units per kind.

    ``units`` maps kind names to counts; kinds absent from the mapping are
    unconstrained.  ``classify`` maps a node to its kind.

    Examples
    --------
    A machine with two ALUs and one multiplier::

        >>> m = ResourceModel(units={"alu": 2, "mul": 1})
        >>> m.capacity("alu"), m.capacity("fpu") == UNLIMITED
        (2, True)
    """

    units: Mapping[str, int] = field(default_factory=dict)
    classify: Callable[[Node], str] = default_kind

    def __post_init__(self) -> None:
        for kind, count in self.units.items():
            if count < 1:
                raise DFGError(f"resource kind {kind!r} must have >= 1 unit, got {count}")

    def capacity(self, kind: str) -> int:
        """Units available for ``kind`` (``UNLIMITED`` when unconstrained)."""
        return self.units.get(kind, UNLIMITED)

    def kind_of(self, node: Node) -> str:
        """The unit kind node ``node`` executes on."""
        return self.classify(node)

    def is_unconstrained(self) -> bool:
        """Whether no kind is bounded."""
        return not self.units

    @classmethod
    def unconstrained(cls) -> "ResourceModel":
        """A model with unlimited units of every kind."""
        return cls(units={})

    def usage(self, g: DFG) -> dict[str, int]:
        """Node count per kind for graph ``g`` (helps pick unit counts)."""
        out: dict[str, int] = {}
        for node in g.nodes():
            k = self.kind_of(node)
            out[k] = out.get(k, 0) + 1
        return out
