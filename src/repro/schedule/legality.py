"""Schedule legality checking.

A static schedule of a DFG is legal when

1. every zero-delay edge ``u -> v`` satisfies
   ``start(v) >= start(u) + t(u)`` (intra-iteration precedence), and
2. at every control step, the number of simultaneously running nodes of
   each unit kind does not exceed the resource model's capacity.

(Inter-iteration edges — those carrying delays — impose no constraint on a
single-iteration schedule; their producers ran in earlier iterations.)
"""

from __future__ import annotations

from ..graph.dfg import DFGError
from .resources import ResourceModel
from .static_schedule import StaticSchedule

__all__ = ["check_schedule", "is_legal_schedule"]


def check_schedule(sched: StaticSchedule, resources: ResourceModel | None = None) -> None:
    """Raise :class:`DFGError` describing the first legality violation."""
    g = sched.graph
    for e in g.edges():
        if e.delay == 0:
            ready = sched.start[e.src] + g.node(e.src).time
            if sched.start[e.dst] < ready:
                raise DFGError(
                    f"precedence violation: {e.dst!r} starts at {sched.start[e.dst]} "
                    f"but zero-delay producer {e.src!r} finishes at {ready}"
                )
    if resources is None or resources.is_unconstrained():
        return
    for step in range(sched.length):
        per_kind: dict[str, int] = {}
        for name in sched.running_at(step):
            k = resources.kind_of(g.node(name))
            per_kind[k] = per_kind.get(k, 0) + 1
        for kind, used in per_kind.items():
            cap = resources.capacity(kind)
            if used > cap:
                raise DFGError(
                    f"resource violation at step {step}: {used} nodes on "
                    f"kind {kind!r} with capacity {cap}"
                )


def is_legal_schedule(sched: StaticSchedule, resources: ResourceModel | None = None) -> bool:
    """Boolean form of :func:`check_schedule`."""
    try:
        check_schedule(sched, resources)
    except DFGError:
        return False
    return True
