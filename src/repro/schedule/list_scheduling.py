"""Resource-constrained list scheduling.

The classic priority-driven scheduler: nodes become *ready* when all their
zero-delay predecessors have finished; at each control step, ready nodes are
issued in priority order while functional units of their kind remain.  The
priority is the longest zero-delay path from the node to any sink
(critical-path priority), which is optimal for unit-time chains and a strong
heuristic in general.

This scheduler provides the initial schedule that rotation scheduling
(:mod:`repro.schedule.rotation`) improves by retiming.
"""

from __future__ import annotations

from ..graph.dfg import DFG
from ..graph.validate import topological_order
from ..observability import OBS
from .legality import check_schedule
from .resources import ResourceModel
from .static_schedule import StaticSchedule

__all__ = ["list_schedule", "critical_path_priorities"]


def critical_path_priorities(g: DFG) -> dict[str, int]:
    """Priority of each node: longest zero-delay path time from the node to
    any sink, *including* the node's own time (higher = more urgent)."""
    prio: dict[str, int] = {}
    for name in reversed(topological_order(g)):
        node = g.node(name)
        best = 0
        for e in g.out_edges(name):
            if e.delay == 0:
                best = max(best, prio[e.dst])
        prio[name] = best + node.time
    return prio


def list_schedule(g: DFG, resources: ResourceModel | None = None) -> StaticSchedule:
    """A legal schedule of ``g`` under ``resources`` (unconstrained default).

    Deterministic: ties in priority break by node insertion order.
    """
    if resources is None:
        resources = ResourceModel.unconstrained()
    prio = critical_path_priorities(g)
    position = {name: i for i, name in enumerate(g.node_names())}

    # Remaining zero-delay predecessor count per node.
    blockers: dict[str, int] = {n: 0 for n in g.node_names()}
    for e in g.zero_delay_edges():
        blockers[e.dst] += 1

    start: dict[str, int] = {}
    finish_events: dict[int, list[str]] = {}  # step -> nodes finishing there
    running: dict[str, int] = {}  # kind -> count currently running
    ready: list[str] = [n for n in g.node_names() if blockers[n] == 0]
    unscheduled = set(g.node_names())
    step = 0
    guard = 0
    max_steps = g.total_time * max(1, g.num_nodes) + 1
    while unscheduled:
        guard += 1
        if guard > max_steps:  # pragma: no cover - defensive
            raise AssertionError("list scheduler failed to converge")
        # Retire nodes finishing at this step; their consumers may be ready.
        for name in finish_events.pop(step, []):
            kind = resources.kind_of(g.node(name))
            running[kind] -= 1
            for e in g.out_edges(name):
                if e.delay == 0:
                    blockers[e.dst] -= 1
                    if blockers[e.dst] == 0:
                        ready.append(e.dst)
        # Issue ready nodes by priority while units remain.
        ready.sort(key=lambda n: (-prio[n], position[n]))
        issued: list[str] = []
        for name in ready:
            kind = resources.kind_of(g.node(name))
            if running.get(kind, 0) < resources.capacity(kind):
                start[name] = step
                running[kind] = running.get(kind, 0) + 1
                t_end = step + g.node(name).time
                finish_events.setdefault(t_end, []).append(name)
                unscheduled.discard(name)
                issued.append(name)
        for name in issued:
            ready.remove(name)
        step += 1

    sched = StaticSchedule(graph=g, start=start)
    check_schedule(sched, resources)
    if OBS.enabled:
        m = OBS.metrics
        m.counter("schedule.slots_filled", "nodes placed by list scheduling").inc(
            len(start)
        )
        m.histogram("schedule.length", "control steps per schedule").observe(
            sched.length
        )
    return sched
