"""Iterative modulo scheduling (Rau), wired into the CSR framework.

The paper positions its technique against the modulo-scheduling code
schema of Rau et al. [8]: a modulo-scheduled loop has a *kernel* of ``II``
control steps plus prologue/epilogue ramp code — exactly the expansion the
conditional-register framework removes.  This module provides the missing
link: a resource-constrained modulo scheduler whose *stage indices are a
retiming*, so its output can be fed directly to
:func:`repro.core.csr_pipelined_loop`.

Algorithm (classic iterative modulo scheduling):

* ``II`` starts at ``max(ResMII, RecMII)`` — the resource bound
  ``max_kind ceil(uses / units)`` and the recurrence bound
  ``ceil(B(G))`` — and increases on failure;
* operations are scheduled in priority order (height in the dependence
  graph) at the earliest start satisfying ``start(v) >= start(u) + t(u) -
  II * d(e)`` for placed predecessors, searching ``II`` consecutive slots
  of the modulo reservation table; a conflicting placement evicts the
  blocking operations (budgeted, restart-free);
* the schedule's *stage* of ``v`` is ``start(v) // II``; the mapping
  ``r(v) = max_stage - stage(v)`` is a **legal retiming** of the DFG
  (proof: the dependence inequality divided by ``II`` is exactly the
  retimed-delay non-negativity condition), so every theorem and code
  generator of this library applies to modulo-scheduled loops unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..graph.dfg import DFG, DFGError
from ..graph.iteration_bound import iteration_bound
from ..retiming.function import Retiming
from .list_scheduling import critical_path_priorities
from .resources import ResourceModel

__all__ = ["ModuloSchedule", "modulo_schedule", "minimum_initiation_interval"]


@dataclass(frozen=True)
class ModuloSchedule:
    """A modulo schedule of one loop iteration.

    Attributes
    ----------
    graph:
        The scheduled DFG.
    ii:
        The initiation interval (kernel length in control steps).
    start:
        Absolute start time of each node (iteration 0's instance).
    retiming:
        ``r(v) = max_stage - stage(v)`` — the legal retiming whose
        software-pipelined loop body *is* this schedule's kernel.
    """

    graph: DFG
    ii: int
    start: dict[str, int]

    @property
    def stages(self) -> dict[str, int]:
        """Pipeline stage of each node (``start // II``)."""
        return {n: s // self.ii for n, s in self.start.items()}

    @property
    def num_stages(self) -> int:
        """Pipeline depth (``max stage + 1``)."""
        return max(self.stages.values()) + 1

    @property
    def slots(self) -> dict[str, int]:
        """Kernel slot of each node (``start mod II``)."""
        return {n: s % self.ii for n, s in self.start.items()}

    @property
    def retiming(self) -> Retiming:
        stages = self.stages
        top = max(stages.values())
        return Retiming(self.graph, {n: top - s for n, s in stages.items()})

    def kernel(self) -> list[list[str]]:
        """Kernel rows: for each of the ``II`` slots, the nodes issued there
        (from all stages), in node insertion order."""
        rows: list[list[str]] = [[] for _ in range(self.ii)]
        for n in self.graph.node_names():
            rows[self.start[n] % self.ii].append(n)
        return rows


def minimum_initiation_interval(g: DFG, resources: ResourceModel) -> int:
    """``MII = max(ResMII, RecMII)`` — the classic lower bound."""
    res_mii = 1
    if not resources.is_unconstrained():
        usage: dict[str, int] = {}
        for v in g.nodes():
            k = resources.kind_of(v)
            usage[k] = usage.get(k, 0) + v.time
        for kind, used in usage.items():
            cap = resources.capacity(kind)
            if cap < 10**9:
                res_mii = max(res_mii, math.ceil(used / cap))
    rec_mii = max(1, math.ceil(iteration_bound(g)))
    return max(res_mii, rec_mii)


def _try_schedule(
    g: DFG, ii: int, resources: ResourceModel, budget: int
) -> dict[str, int] | None:
    """One budgeted iterative-modulo-scheduling attempt at a fixed ``II``."""
    prio = critical_path_priorities(g)
    position = {n: i for i, n in enumerate(g.node_names())}
    order = sorted(g.node_names(), key=lambda n: (-prio[n], position[n]))

    start: dict[str, int] = {}
    never_scheduled: dict[str, int] = {n: 0 for n in g.node_names()}
    # Modulo reservation table: slot -> kind -> set of occupying nodes.
    mrt: list[dict[str, set[str]]] = [dict() for _ in range(ii)]

    def occupy_slots(node: str, t0: int) -> list[int]:
        return [(t0 + dt) % ii for dt in range(g.node(node).time)]

    def place(node: str, t0: int) -> None:
        kind = resources.kind_of(g.node(node))
        for s in occupy_slots(node, t0):
            mrt[s].setdefault(kind, set()).add(node)
        start[node] = t0

    def unplace(node: str) -> None:
        kind = resources.kind_of(g.node(node))
        for s in occupy_slots(node, start[node]):
            mrt[s][kind].discard(node)
        del start[node]

    def conflicts(node: str, t0: int) -> set[str]:
        kind = resources.kind_of(g.node(node))
        cap = resources.capacity(kind)
        out: set[str] = set()
        for s in occupy_slots(node, t0):
            occupants = mrt[s].get(kind, set())
            if len(occupants) >= cap:
                out.update(occupants)
        return out

    worklist = list(order)
    steps = 0
    while worklist:
        steps += 1
        if steps > budget:
            return None
        node = worklist.pop(0)
        # Earliest start from placed predecessors.
        earliest = never_scheduled[node]
        for e in g.in_edges(node):
            if e.src in start and e.src != node:
                earliest = max(earliest, start[e.src] + g.node(e.src).time - ii * e.delay)
        earliest = max(earliest, 0)

        placed = False
        for t0 in range(earliest, earliest + ii):
            if not conflicts(node, t0):
                place(node, t0)
                placed = True
                break
        if not placed:
            # Evict the blockers at the earliest slot and force placement.
            t0 = earliest
            for blocker in conflicts(node, t0):
                unplace(blocker)
                worklist.append(blocker)
            place(node, t0)
        never_scheduled[node] = start[node] + 1

        # Displace successors whose dependence is now violated.
        for e in g.out_edges(node):
            if e.dst in start and e.dst != node:
                if start[e.dst] < start[node] + g.node(node).time - ii * e.delay:
                    unplace(e.dst)
                    worklist.append(e.dst)

    # Normalize to non-negative times and verify all constraints.
    shift = -min(start.values()) if min(start.values()) < 0 else 0
    start = {n: s + shift for n, s in start.items()}
    for e in g.edges():
        if start[e.dst] < start[e.src] + g.node(e.src).time - ii * e.delay:
            return None
    return start


def modulo_schedule(
    g: DFG,
    resources: ResourceModel | None = None,
    max_ii: int | None = None,
    budget_factor: int = 16,
) -> ModuloSchedule:
    """Modulo-schedule ``g`` under ``resources``; raises if no ``II`` up to
    ``max_ii`` (default: the sequential bound ``total_time``) succeeds."""
    if resources is None:
        resources = ResourceModel.unconstrained()
    ceiling = max_ii if max_ii is not None else g.total_time
    mii = minimum_initiation_interval(g, resources)
    for ii in range(mii, ceiling + 1):
        start = _try_schedule(g, ii, resources, budget=budget_factor * g.num_nodes)
        if start is not None:
            return ModuloSchedule(graph=g, ii=ii, start=start)
    raise DFGError(
        f"{g.name}: no modulo schedule found up to II={ceiling} "
        f"(MII was {mii}); raise max_ii or budget_factor"
    )
