"""Schedulers: static schedules, list scheduling, rotation scheduling.

Provides the scheduling substrate the paper's experiments assume: ASAP
static schedules of DFG iterations, resource-constrained list scheduling on
a VLIW-style functional-unit model, legality checking, and rotation
scheduling — the retiming-driven software-pipelining loop whose code-size
expansion the CSR framework removes.
"""

from .legality import check_schedule, is_legal_schedule
from .list_scheduling import critical_path_priorities, list_schedule
from .modulo import ModuloSchedule, minimum_initiation_interval, modulo_schedule
from .resources import UNLIMITED, ResourceModel, default_kind
from .rotation import RotationResult, rotation_schedule
from .static_schedule import StaticSchedule, asap_schedule
from .vliw import VliwSchedule, VliwWord, estimate_cycles, pack_body, pack_straightline

__all__ = [
    "check_schedule",
    "is_legal_schedule",
    "critical_path_priorities",
    "list_schedule",
    "ModuloSchedule",
    "minimum_initiation_interval",
    "modulo_schedule",
    "UNLIMITED",
    "ResourceModel",
    "default_kind",
    "RotationResult",
    "rotation_schedule",
    "StaticSchedule",
    "asap_schedule",
    "VliwSchedule",
    "VliwWord",
    "pack_body",
    "pack_straightline",
    "estimate_cycles",
]
