"""The non-unit-time example of the paper's Figure 8 / Table 3.

The paper's Figure 8 shows a small DFG from Chao & Sha [JVSP 1995] whose
node computation times are not unit — the case where retiming alone cannot
be rate-optimal and the unfolding factor matters.  The figure itself is an
unreadable image in our source, so this is a *substitute* with the same
role (documented in DESIGN.md): five nodes with heterogeneous times, a
global recurrence giving a non-integral iteration bound ``27/4``, and two
distinct retiming values at the optimum (Table 3's CR rows need 2
registers).

Rate-optimality is reachable exactly when ``f * 27/4`` is integral, i.e. at
``f = 4`` — mirroring the paper's Table 3 where the iteration period only
reaches the bound (13.5 there) at the largest unfolding factor.
"""

from __future__ import annotations

from ..graph.dfg import DFG, OpKind

__all__ = ["figure8"]


def figure8() -> DFG:
    """Five non-unit-time nodes, iteration bound 27/4."""
    g = DFG("figure8")
    g.add_node("A", time=2, op=OpKind.ADD, imm=1)
    g.add_node("B", time=10, op=OpKind.MUL, imm=2)
    g.add_node("C", time=3, op=OpKind.ADD)
    g.add_node("D", time=7, op=OpKind.MUL, imm=3)
    g.add_node("E", time=5, op=OpKind.ADD, imm=4)
    g.add_edge("A", "B", 0)
    g.add_edge("B", "C", 0)
    g.add_edge("C", "D", 0)
    g.add_edge("D", "E", 0)
    g.add_edge("E", "A", 4)  # T = 27, D = 4  ->  bound 27/4
    g.add_edge("C", "A", 3)  # secondary recurrence (T = 15, D = 3, ratio 5)
    return g
