"""Additional workloads beyond the paper's benchmark set.

These exercise structural corners the six paper filters do not:

* :func:`fir_filter` — an *acyclic* DFG (no recurrence at all): iteration
  bound 0, arbitrarily deep pipelining, the degenerate case of every
  theorem;
* :func:`biquad_cascade` — a *parameterized* filter (``k`` second-order
  sections in series) for scaling studies: code size, retiming depth and
  register counts as functions of problem size.
"""

from __future__ import annotations

from ..graph.dfg import DFG, DFGError, OpKind

__all__ = ["fir_filter", "biquad_cascade", "lms_filter"]


def fir_filter(taps: int = 5) -> DFG:
    """A direct-form FIR filter: ``y(i) = sum_k c_k * x(i - k)``.

    Acyclic — the graph has delays (the tap line) but no cycles, so the
    iteration bound is 0 and retiming is limited only by legality, not by
    any recurrence.  Node count is ``2 * taps`` (one multiplier and one
    accumulator per tap, the first accumulator being a pass-through).
    """
    if taps < 2:
        raise DFGError("a FIR filter needs at least 2 taps")
    g = DFG(f"fir{taps}")
    g.add_node("X", op=OpKind.SOURCE, imm=5)
    for k in range(taps):
        g.add_node(f"M{k}", op=OpKind.MUL, imm=2 + k)
        g.add_edge("X", f"M{k}", k)  # tap k reads x(i - k)
    g.add_node("S0", op=OpKind.COPY)
    g.add_edge("M0", "S0", 0)
    for k in range(1, taps):
        g.add_node(f"S{k}", op=OpKind.ADD)
        g.add_edge(f"S{k - 1}", f"S{k}", 0)
        g.add_edge(f"M{k}", f"S{k}", 0)
    return g


def biquad_cascade(sections: int = 2) -> DFG:
    """``sections`` second-order IIR sections in series.

    Section ``k`` is the 8-node biquad of :func:`~repro.workloads.iir_filter`
    with its input taken from the previous section's output (through one
    delay, modelling the inter-section pipeline register).  Size is
    ``8 * sections``; the optimal retiming depth grows with the cascade
    length, which makes this the scaling workload for code-size studies.
    """
    if sections < 1:
        raise DFGError("cascade needs at least one section")
    g = DFG(f"biquad{sections}")
    prev_out: str | None = None
    for k in range(sections):
        x = f"X{k}"
        if prev_out is None:
            g.add_node(x, op=OpKind.SOURCE, imm=3)
        else:
            g.add_node(x, op=OpKind.COPY)
            g.add_edge(prev_out, x, 1)  # inter-section register
        g.add_node(f"M1_{k}", op=OpKind.MUL, imm=2)
        g.add_node(f"M2_{k}", op=OpKind.MUL, imm=3)
        g.add_node(f"M3_{k}", op=OpKind.MUL, imm=5)
        g.add_node(f"M4_{k}", op=OpKind.MUL, imm=7)
        g.add_node(f"S1_{k}", op=OpKind.ADD)
        g.add_node(f"S2_{k}", op=OpKind.ADD)
        g.add_node(f"Y{k}", op=OpKind.ADD)
        g.add_edge(x, f"M1_{k}", 0)
        g.add_edge(x, f"M2_{k}", 1)
        g.add_edge(f"Y{k}", f"M3_{k}", 1)
        g.add_edge(f"Y{k}", f"M4_{k}", 2)
        g.add_edge(f"M1_{k}", f"S1_{k}", 0)
        g.add_edge(f"M2_{k}", f"S1_{k}", 0)
        g.add_edge(f"M3_{k}", f"S2_{k}", 0)
        g.add_edge(f"M4_{k}", f"S2_{k}", 0)
        g.add_edge(f"S1_{k}", f"Y{k}", 0)
        g.add_edge(f"S2_{k}", f"Y{k}", 0)
        prev_out = f"Y{k}"
    return g


def lms_filter(taps: int = 4) -> DFG:
    """An LMS adaptive FIR filter: ``y = sum_k w_k x(i-k)``,
    ``e = d - y``, ``w_k' = w_k + mu * e * x(i-k)``.

    Unlike the fixed-coefficient filters, the weight-update recurrences
    couple *every* tap to the error node, giving ``taps`` parallel cycles
    through a single bottleneck — the structure where retiming freedom is
    scarce and the register-constrained exploration is interesting.
    Node count is ``3 * taps + 3``.
    """
    if taps < 1:
        raise DFGError("LMS needs at least one tap")
    g = DFG(f"lms{taps}")
    g.add_node("X", op=OpKind.SOURCE, imm=3)  # input samples
    g.add_node("D", op=OpKind.SOURCE, imm=11)  # desired signal
    for k in range(taps):
        g.add_node(f"P{k}", op=OpKind.MUL)  # w_k * x(i-k)
        g.add_edge("X", f"P{k}", k)
    # Accumulation chain for y.
    g.add_node("Y0", op=OpKind.COPY)
    g.add_edge("P0", "Y0", 0)
    prev = "Y0"
    for k in range(1, taps):
        g.add_node(f"Y{k}", op=OpKind.ADD)
        g.add_edge(prev, f"Y{k}", 0)
        g.add_edge(f"P{k}", f"Y{k}", 0)
        prev = f"Y{k}"
    g.add_node("E", op=OpKind.SUB)  # e = d - y
    g.add_edge("D", "E", 0)
    g.add_edge(prev, "E", 0)
    # Weight updates close a cycle per tap: w_k(i) = w_k(i-1) + mu e x.
    for k in range(taps):
        g.add_node(f"W{k}", op=OpKind.MAC, imm=1)  # e * x + w_old
        g.add_edge("E", f"W{k}", 1)
        g.add_edge("X", f"W{k}", k + 1)
        g.add_edge(f"W{k}", f"W{k}", 1)
        g.add_edge(f"W{k}", f"P{k}", 1)  # products use last iteration's w
    return g
