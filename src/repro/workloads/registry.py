"""Name-indexed registry of all workload graphs.

One stop for benchmarks, examples, and tools: ``get_workload("iir")``
returns a fresh graph; :data:`BENCHMARKS` lists the six Table-1/2 filters
in the paper's row order.
"""

from __future__ import annotations

from typing import Callable

from ..graph.dfg import DFG
from .extra import biquad_cascade, fir_filter, lms_filter
from .figure8 import figure8
from .filters import (
    all_pole_filter,
    differential_equation,
    elliptic_filter,
    iir_filter,
    lattice_filter,
    volterra_filter,
)
from .paper_examples import figure1, figure2_example, figure4_loop

__all__ = ["BENCHMARKS", "WORKLOADS", "get_workload", "benchmark_graphs", "PAPER_LABELS"]

#: The paper's Table 1/2 rows, in order.
BENCHMARKS: tuple[str, ...] = (
    "iir",
    "diffeq",
    "allpole",
    "elliptic",
    "lattice",
    "volterra",
)

#: Human-readable benchmark names as printed in the paper.
PAPER_LABELS: dict[str, str] = {
    "iir": "IIR Filter",
    "diffeq": "Differential Equation",
    "allpole": "All-pole Filter",
    "elliptic": "Elliptical Filter",
    "lattice": "4-stage Lattice Filter",
    "volterra": "Volter Filter",
}

WORKLOADS: dict[str, Callable[[], DFG]] = {
    "iir": iir_filter,
    "diffeq": differential_equation,
    "allpole": all_pole_filter,
    "elliptic": elliptic_filter,
    "lattice": lattice_filter,
    "volterra": volterra_filter,
    "fir": fir_filter,
    "lms": lms_filter,
    "biquad2": lambda: biquad_cascade(2),
    "biquad4": lambda: biquad_cascade(4),
    "figure1": figure1,
    "figure2": figure2_example,
    "figure4": figure4_loop,
    "figure8": figure8,
}


def get_workload(name: str) -> DFG:
    """A fresh instance of the named workload graph."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return builder()


def benchmark_graphs() -> list[DFG]:
    """Fresh instances of the six paper benchmarks, in table order."""
    return [get_workload(name) for name in BENCHMARKS]
