"""Workload graphs: the paper's DSP benchmarks and worked examples."""

from .extra import biquad_cascade, fir_filter, lms_filter
from .figure8 import figure8
from .filters import (
    all_pole_filter,
    differential_equation,
    elliptic_filter,
    iir_filter,
    lattice_filter,
    volterra_filter,
)
from .paper_examples import figure1, figure2_example, figure4_loop
from .registry import BENCHMARKS, PAPER_LABELS, WORKLOADS, benchmark_graphs, get_workload

__all__ = [
    "biquad_cascade",
    "fir_filter",
    "lms_filter",
    "figure8",
    "all_pole_filter",
    "differential_equation",
    "elliptic_filter",
    "iir_filter",
    "lattice_filter",
    "volterra_filter",
    "figure1",
    "figure2_example",
    "figure4_loop",
    "BENCHMARKS",
    "PAPER_LABELS",
    "WORKLOADS",
    "benchmark_graphs",
    "get_workload",
]
