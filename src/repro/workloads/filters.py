"""The six DSP filter benchmarks of the paper's Tables 1 and 2.

The paper names the benchmarks and reports their sizes and retiming
statistics but not their edge lists, so these are *reconstructions*
(documented in DESIGN.md): each graph has the published node count, a
filter-plausible topology (multiplier taps feeding adder chains, state
feedback through delay elements), and — decisive for reproducing the tables
— the published pipeline depth ``M_r`` and conditional-register count
``|N_r|`` under this library's optimal retiming.

All nodes are unit-time (the experimental setting of Section 5).
"""

from __future__ import annotations

from ..graph.dfg import DFG, OpKind

__all__ = [
    "iir_filter",
    "differential_equation",
    "all_pole_filter",
    "elliptic_filter",
    "lattice_filter",
    "volterra_filter",
]


def iir_filter() -> DFG:
    """Second-order IIR biquad (direct form I), 8 nodes.

    ``y(i) = b0 x(i) + b1 x(i-1) + a1 y(i-1) + a2 y(i-2)`` — one input
    stream, four multiplier taps, an adder tree, and two feedback delays.
    Paper statistics: ``M_r = 1``, 2 conditional registers.
    """
    g = DFG("iir")
    g.add_node("X", op=OpKind.SOURCE, imm=3)  # input sample stream
    g.add_node("M1", op=OpKind.MUL, imm=2)  # b0 * x(i)
    g.add_node("M2", op=OpKind.MUL, imm=3)  # b1 * x(i-1)
    g.add_node("M3", op=OpKind.MUL, imm=5)  # a1 * y(i-1)
    g.add_node("M4", op=OpKind.MUL, imm=7)  # a2 * y(i-2)
    g.add_node("S1", op=OpKind.ADD)  # feed-forward sum
    g.add_node("S2", op=OpKind.ADD)  # feedback sum
    g.add_node("Y", op=OpKind.ADD)  # output accumulate
    g.add_edge("X", "M1", 0)
    g.add_edge("X", "M2", 1)
    g.add_edge("Y", "M3", 1)
    g.add_edge("Y", "M4", 2)
    g.add_edge("M1", "S1", 0)
    g.add_edge("M2", "S1", 0)
    g.add_edge("M3", "S2", 0)
    g.add_edge("M4", "S2", 0)
    g.add_edge("S1", "Y", 0)
    g.add_edge("S2", "Y", 0)
    return g


def differential_equation() -> DFG:
    """The HAL differential-equation solver, 11 nodes.

    One Euler step of ``u' = -3xu - 3y,  y' = u`` with three-deep state
    history on the ``u``/``y`` recurrences (multi-step integration), which
    is what makes depth-2 software pipelining profitable.
    Paper statistics: ``M_r = 2``, 3 conditional registers.
    """
    g = DFG("diffeq")
    g.add_node("M1", op=OpKind.MUL, imm=1)  # x * u
    g.add_node("M2", op=OpKind.MUL, imm=3)  # 3 * (x u)
    g.add_node("M3", op=OpKind.MUL, imm=2)  # * dx
    g.add_node("S1", op=OpKind.SUB)  # u - 3 x u dx
    g.add_node("M4", op=OpKind.MUL, imm=3)  # 3 * y
    g.add_node("M5", op=OpKind.MUL, imm=2)  # * dx
    g.add_node("U", op=OpKind.SUB)  # u'
    g.add_node("M6", op=OpKind.MUL, imm=2)  # u * dx
    g.add_node("Y", op=OpKind.ADD)  # y'
    g.add_node("X", op=OpKind.ADD, imm=1)  # x + dx
    g.add_node("CP", op=OpKind.COPY)  # loop-bound compare
    g.add_edge("X", "M1", 1)
    g.add_edge("U", "M1", 3)
    g.add_edge("M1", "M2", 0)
    g.add_edge("M2", "M3", 0)
    g.add_edge("M3", "S1", 0)
    g.add_edge("U", "S1", 3)
    g.add_edge("Y", "M4", 3)
    g.add_edge("M4", "M5", 0)
    g.add_edge("M5", "U", 0)
    g.add_edge("S1", "U", 0)
    g.add_edge("U", "M6", 3)
    g.add_edge("M6", "Y", 0)
    g.add_edge("Y", "Y", 1)
    g.add_edge("X", "X", 1)
    g.add_edge("X", "CP", 0)
    return g


def all_pole_filter() -> DFG:
    """All-pole lattice filter, 15 nodes: four reflection stages (multiply
    + two accumulates each) plus three output taps.
    Paper statistics: ``M_r = 3``, 4 conditional registers.
    """
    g = DFG("allpole")
    # Four stages of (reflection multiply, accumulate, update).
    for k in range(4):
        g.add_node(f"K{k}", op=OpKind.MUL, imm=2 + k)  # reflection coeff
        g.add_node(f"A{k}", op=OpKind.ADD)  # forward accumulate
        g.add_node(f"B{k}", op=OpKind.ADD, imm=1)  # state update
    # Output taps off the middle stages.
    for k in range(3):
        g.add_node(f"T{k}", op=OpKind.MUL, imm=3)
    chain = [name for k in range(4) for name in (f"K{k}", f"A{k}", f"B{k}")]
    for a, b in zip(chain, chain[1:]):
        g.add_edge(a, b, 0)
    g.add_edge("B3", "K0", 4)  # lattice state recurrence
    g.add_edge("B0", "T0", 0)
    g.add_edge("B1", "T1", 0)
    g.add_edge("B2", "T2", 0)
    return g


def elliptic_filter() -> DFG:
    """Fifth-order elliptic wave filter, 34 nodes (26 adders, 8
    multipliers) — a long adder spine with multiplier taps and a two-delay
    state recurrence.
    Paper statistics: ``M_r = 1`` (the paper's Table 1 lists 3 registers,
    which is inconsistent with its own ``M_r = 1`` code size; our optimal
    retiming uses the 2 that ``M_r = 1`` admits — see EXPERIMENTS.md).
    """
    g = DFG("elliptic")
    spine = []
    for k in range(26):
        g.add_node(f"A{k}", op=OpKind.ADD, imm=(k % 3))
        spine.append(f"A{k}")
    for a, b in zip(spine, spine[1:]):
        g.add_edge(a, b, 0)
    # Eight multiplier taps: inject into the spine at regular intervals.
    for k in range(8):
        g.add_node(f"M{k}", op=OpKind.MUL, imm=2 + (k % 4))
        anchor = 3 * k
        g.add_edge(f"A{anchor}", f"M{k}", 0)
        g.add_edge(f"M{k}", f"A{anchor + 2}", 0)
    g.add_edge("A25", "A0", 2)  # wave-filter state recurrence
    return g


def lattice_filter() -> DFG:
    """Four-stage normalized lattice filter, 26 nodes: four stages of
    (two reflection multiplies, two adds, state update) plus forward taps
    and the output accumulator.
    Paper statistics: ``M_r = 2``, 3 conditional registers.
    """
    g = DFG("lattice")
    chain: list[str] = []
    for k in range(4):
        g.add_node(f"P{k}", op=OpKind.MUL, imm=2)  # +k reflection
        g.add_node(f"Q{k}", op=OpKind.MUL, imm=3)  # -k reflection
        g.add_node(f"F{k}", op=OpKind.ADD)  # forward path
        g.add_node(f"G{k}", op=OpKind.ADD, imm=1)  # backward path
        g.add_node(f"R{k}", op=OpKind.ADD)  # state update
        chain.extend([f"P{k}", f"Q{k}", f"F{k}", f"G{k}", f"R{k}"])
    for a, b in zip(chain, chain[1:]):
        g.add_edge(a, b, 0)
    # Stage cross-couplings through one-delay state elements.
    for k in range(3):
        g.add_edge(f"R{k}", f"P{k + 1}", 1)
    g.add_edge("R3", "P0", 4)  # global recurrence
    g.add_edge("G3", "F2", 1)  # last-stage local recurrence (T=7, D=1)
    # Output accumulator tree: 6 nodes summing the per-stage taps.
    for k in range(4):
        g.add_node(f"O{k}", op=OpKind.ADD)
        g.add_edge(f"F{k}", f"O{k}", 0)
    g.add_node("O4", op=OpKind.ADD)
    g.add_node("O5", op=OpKind.ADD)
    g.add_edge("O0", "O4", 0)
    g.add_edge("O1", "O4", 0)
    g.add_edge("O2", "O5", 0)
    g.add_edge("O3", "O5", 0)
    return g


def volterra_filter() -> DFG:
    """Second-order Volterra (polynomial) filter, 27 nodes: a linear tap
    row, a quadratic kernel row of products, and an accumulation chain with
    a two-delay output recurrence.
    Paper statistics: ``M_r = 1``, 2 conditional registers.
    """
    g = DFG("volterra")
    chain: list[str] = []
    # Quadratic kernel products feeding an accumulate chain (2 x 13 + 1).
    for k in range(13):
        g.add_node(f"H{k}", op=OpKind.MUL, imm=1 + (k % 5))
        g.add_node(f"S{k}", op=OpKind.ADD)
        chain.extend([f"H{k}", f"S{k}"])
    g.add_node("Y", op=OpKind.ADD)  # output
    chain.append("Y")
    for a, b in zip(chain, chain[1:]):
        g.add_edge(a, b, 0)
    g.add_edge("Y", "H0", 2)  # adaptive-coefficient recurrence
    # Extra data reuse: every fourth product also reads the delayed output.
    for k in range(4, 13, 4):
        g.add_edge("Y", f"H{k}", 3)
    return g
