"""The worked examples from the paper's running text.

These small graphs anchor the test-suite to the paper: every number the
paper states about them (retiming values, code sizes, register counts,
loop bounds) is asserted in ``tests/``.
"""

from __future__ import annotations

from ..graph.dfg import DFG, OpKind

__all__ = ["figure1", "figure2_example", "figure4_loop"]


def figure1() -> DFG:
    """Figure 1(a): two nodes, ``A -> B`` with no delay, ``B -> A`` with two.

    Retiming ``r(A) = 1, r(B) = 0`` yields Figure 1(b) and halves the cycle
    period from 2 to 1.
    """
    g = DFG("figure1")
    g.add_node("A", op=OpKind.ADD, imm=1)
    g.add_node("B", op=OpKind.MUL, imm=2)
    g.add_edge("A", "B", 0)
    g.add_edge("B", "A", 2)
    return g


def figure2_example() -> DFG:
    """The five-node loop of Figures 2 and 3.

    From the pipelined code of Figure 3(a)::

        A[i] = E[i-4] + 9
        B[i] = A[i] * 5
        C[i] = A[i] + B[i-2]
        D[i] = A[i] * C[i]
        E[i] = D[i] + 30

    The paper's retiming is ``r = {A:3, B:2, C:2, D:1, E:0}`` (``M_r = 3``,
    four distinct values -> four conditional registers, Figure 3(b)).
    """
    g = DFG("figure2")
    g.add_node("A", op=OpKind.ADD, imm=9)
    g.add_node("B", op=OpKind.MUL, imm=5)
    g.add_node("C", op=OpKind.ADD)
    g.add_node("D", op=OpKind.MUL, imm=1)
    g.add_node("E", op=OpKind.ADD, imm=30)
    g.add_edge("E", "A", 4)
    g.add_edge("A", "B", 0)
    g.add_edge("A", "C", 0)
    g.add_edge("B", "C", 2)
    g.add_edge("A", "D", 0)
    g.add_edge("C", "D", 0)
    g.add_edge("D", "E", 0)
    return g


def figure4_loop() -> DFG:
    """Figure 4's simple loop::

        A[i] = B[i-3] * 3
        B[i] = A[i] + 7
        C[i] = B[i] * 2

    Used for the unfolding examples of Figures 5–7.
    """
    g = DFG("figure4")
    g.add_node("A", op=OpKind.MUL, imm=3)
    g.add_node("B", op=OpKind.ADD, imm=7)
    g.add_node("C", op=OpKind.MUL, imm=2)
    g.add_edge("B", "A", 3)
    g.add_edge("A", "B", 0)
    g.add_edge("B", "C", 0)
    return g
