"""One-call compilation driver: loop in, optimal-size pipelined loop out.

Ties the whole library together the way a downstream user wants it::

    from repro import compile_loop
    result = compile_loop(g, resources=ResourceModel(units={"alu": 2, "mul": 1}))
    print(format_program(result.program))

The driver explores unfolding factors, software-pipelines each candidate —
exact retiming when resources are unconstrained, iterative modulo
scheduling otherwise — applies the conditional-register transformation,
enforces optional code-size and register-count budgets, **verifies the
winner on the VM**, and returns the program with its statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .codegen.ir import LoopProgram
from .core.combined_csr import csr_retimed_unfolded_loop, csr_unfold_retimed_loop
from .core.csr import csr_pipelined_loop
from .core.verify import assert_equivalent
from .graph.dfg import DFG, DFGError
from .retiming.function import Retiming
from .schedule.modulo import modulo_schedule
from .schedule.resources import ResourceModel
from .unfolding.orders import retime_unfold
from .unfolding.unfold import unfold

__all__ = ["CompilationResult", "compile_loop"]


@dataclass(frozen=True)
class CompilationResult:
    """Outcome of :func:`compile_loop`.

    Attributes
    ----------
    program:
        The verified conditional-register loop program.
    graph:
        The input graph.
    retiming:
        The retiming used (over original nodes, or over unfolded copies
        when resource-constrained and ``factor > 1``).
    factor:
        Chosen unfolding factor.
    period:
        Schedule length of one (unfolded) loop body in time units.
    iteration_period:
        ``period / factor`` — average time per original iteration.
    code_size / registers:
        Static size and conditional-register count of ``program``.
    verified_n:
        The trip count the program was verified at before being returned.
    """

    program: LoopProgram
    graph: DFG
    retiming: Retiming
    factor: int
    period: int
    iteration_period: Fraction
    code_size: int
    registers: int
    verified_n: int


def _candidate(g: DFG, f: int, resources: ResourceModel) -> tuple[LoopProgram, Retiming, int]:
    """Build the CSR program for factor ``f``; returns (program, retiming,
    body period)."""
    if resources.is_unconstrained():
        res = retime_unfold(g, f)
        r = res.retiming
        if f == 1:
            return csr_pipelined_loop(g, r), r, res.period
        return csr_retimed_unfolded_loop(g, r, f), r, res.period
    if f == 1:
        ms = modulo_schedule(g, resources)
        return csr_pipelined_loop(g, ms.retiming), ms.retiming, ms.ii
    ms = modulo_schedule(unfold(g, f), resources)
    return csr_unfold_retimed_loop(g, ms.retiming, f), ms.retiming, ms.ii


def compile_loop(
    g: DFG,
    resources: ResourceModel | None = None,
    max_unfold: int = 4,
    code_budget: int | None = None,
    max_registers: int | None = None,
    verify_n: int = 7,
) -> CompilationResult:
    """Compile ``g`` to its fastest conditional-register loop within budget.

    Candidates are unfolding factors ``1 .. max_unfold``; the winner is the
    feasible candidate with the smallest iteration period, ties broken by
    smaller code size then smaller factor.  Raises :class:`DFGError` when
    no candidate fits the budgets (the identity program always exists, so
    this only happens when budgets are genuinely too tight).
    """
    if resources is None:
        resources = ResourceModel.unconstrained()
    if max_unfold < 1:
        raise DFGError("max_unfold must be >= 1")

    best: CompilationResult | None = None
    for f in range(1, max_unfold + 1):
        program, r, period = _candidate(g, f, resources)
        size = program.code_size
        regs = len(program.registers())
        if code_budget is not None and size > code_budget:
            continue
        if max_registers is not None and regs > max_registers:
            continue
        ip = Fraction(period, f)
        cand = CompilationResult(
            program=program,
            graph=g,
            retiming=r,
            factor=f,
            period=period,
            iteration_period=ip,
            code_size=size,
            registers=regs,
            verified_n=verify_n,
        )
        if (
            best is None
            or (cand.iteration_period, cand.code_size, cand.factor)
            < (best.iteration_period, best.code_size, best.factor)
        ):
            best = cand

    if best is None:
        raise DFGError(
            f"{g.name}: no configuration fits code_budget={code_budget}, "
            f"max_registers={max_registers} within max_unfold={max_unfold}"
        )
    assert_equivalent(g, best.program, verify_n)
    return best
