"""Command-line interface.

Examples::

    python -m repro list                         # available workloads
    python -m repro info iir                     # graph + retiming stats
    python -m repro csr figure2                  # paper-style CSR listing
    python -m repro csr figure2 --unfold 3       # retimed-unfolded CSR
    python -m repro run figure4 -n 12            # execute + verify on the VM
    python -m repro parse my_loop.txt --csr      # front-end to CSR listing
    python -m repro dot elliptic > elliptic.dot  # Graphviz export
    python -m repro tables 1 2                   # regenerate paper tables
    python -m repro tables --jobs 4 --stats      # parallel cached tables
    python -m repro sweep --graphs 200 --jobs 0  # differential test sweep
    python -m repro sweep --oracle --graphs 15   # + exact-optimality oracle
    python -m repro profile --workload figure8 --trace out.json
                                                 # per-stage breakdown + trace
"""

from __future__ import annotations

import argparse
import sys

from . import observability
from .analysis.__main__ import (
    add_engine_arguments,
    checkpoint_from_args,
    engine_from_args,
    export_observability,
    report_resilience,
    tables_main,
)
from .ioutil import atomic_write_text
from .runner.journal import JournalError
from .server.worker import add_worker_arguments
from .codegen import emit_c, format_program, original_loop
from .core import (
    assert_equivalent,
    csr_pipelined_loop,
    csr_retimed_unfolded_loop,
    size_csr_pipelined,
    size_pipelined,
)
from .compiler import compile_loop
from .frontend import parse_loop
from .graph import critical_cycle, cycle_period, cycle_stats, iteration_bound
from .graph.serialize import to_dot, to_json
from .retiming import minimize_cycle_period
from .workloads import WORKLOADS, get_workload


def _cmd_list(_args) -> int:
    for name in sorted(WORKLOADS):
        g = get_workload(name)
        print(f"{name:10s} {g.num_nodes:3d} nodes, {g.num_edges:3d} edges")
    return 0


def _cmd_info(args) -> int:
    g = get_workload(args.workload)
    period, r = minimize_cycle_period(g)
    print(f"workload      : {g.name}")
    print(f"nodes / edges : {g.num_nodes} / {g.num_edges}")
    print(f"cycle period  : {cycle_period(g)} -> {period} (retimed)")
    print(f"iteration bnd : {iteration_bound(g)}")
    witness = critical_cycle(g)
    if witness:
        t, d = cycle_stats(g, witness)
        print(f"critical cycle: {' -> '.join(witness)} (T={t}, D={d})")
    print(f"retiming      : {r.as_dict()}")
    print(f"M_r / |N_r|   : {r.max_value} / {r.registers_needed()}")
    print(f"code size     : {g.num_nodes} -> {size_pipelined(g, r)} (pipelined) "
          f"-> {size_csr_pipelined(g, r)} (CSR)")
    return 0


def _cmd_csr(args) -> int:
    g = get_workload(args.workload)
    _, r = minimize_cycle_period(g)
    if args.unfold > 1:
        program = csr_retimed_unfolded_loop(g, r, args.unfold)
    else:
        program = csr_pipelined_loop(g, r)
    print(format_program(program))
    return 0


def _cmd_run(args) -> int:
    g = get_workload(args.workload)
    _, r = minimize_cycle_period(g)
    program = csr_pipelined_loop(g, r)
    result = assert_equivalent(g, program, args.n)
    print(f"{program.name}: n={args.n}, {result.executed} computes executed, "
          f"{result.disabled} disabled — equivalent to the original loop")
    return 0


def _cmd_compile(args) -> int:
    from .schedule import ResourceModel

    g = get_workload(args.workload)
    resources = None
    if args.alu or args.mul:
        units = {}
        if args.alu:
            units["alu"] = args.alu
        if args.mul:
            units["mul"] = args.mul
        resources = ResourceModel(units=units)
    result = compile_loop(
        g,
        resources=resources,
        max_unfold=args.max_unfold,
        code_budget=args.budget,
        max_registers=args.registers,
    )
    print(f"factor            : {result.factor}")
    print(f"iteration period  : {result.iteration_period}")
    print(f"code size         : {result.code_size}")
    print(f"registers         : {result.registers}")
    print(f"verified at n     : {result.verified_n}")
    print()
    print(format_program(result.program))
    return 0


def _cmd_parse(args) -> int:
    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    g = parse_loop(source, name=args.name)
    if args.csr:
        _, r = minimize_cycle_period(g)
        print(format_program(csr_pipelined_loop(g, r)))
    elif args.json:
        print(to_json(g))
    else:
        print(format_program(original_loop(g)))
    return 0


def _cmd_cgen(args) -> int:
    g = get_workload(args.workload)
    if args.csr:
        _, r = minimize_cycle_period(g)
        program = csr_pipelined_loop(g, r)
    else:
        program = original_loop(g)
    print(emit_c(program, g))
    return 0


def _cmd_dot(args) -> int:
    print(to_dot(get_workload(args.workload)))
    return 0


def _cmd_json(args) -> int:
    print(to_json(get_workload(args.workload)))
    return 0


def _cmd_tables(args) -> int:
    return tables_main(args)


def _cmd_report(args) -> int:
    from .analysis.report import report_main

    return report_main(args)


def _cmd_sweep(args) -> int:
    """Randomized differential sweep through the experiment engine.

    Checkpoint-aware: ``--journal DIR`` makes every job's completion a
    durable write-ahead record; ``--resume DIR`` restores the recorded
    sweep parameters, rehydrates completed jobs from the journal, and
    re-executes only the pending ones — producing output bit-identical
    to an uninterrupted run.
    """
    from .runner.difftest import differential_sweep

    from .analysis.__main__ import check_topology, topology_from_args

    engine = engine_from_args(args)
    try:
        checkpoint = checkpoint_from_args(args)
        config = {
            "graphs": args.graphs,
            "seed": args.seed,
            "factors": list(args.factors),
            "max_nodes": args.max_nodes,
            "oracle": args.oracle,
            "oracle_timeout": args.oracle_timeout,
            "topology": topology_from_args(args),
        }
        if checkpoint is not None:
            if checkpoint.resume:
                # `.get()` defaults keep journals from pre-oracle runs
                # resumable.
                config = checkpoint.restore_config("sweep")
                check_topology(config, args)
            checkpoint.attach(engine, "sweep", config)
        report = differential_sweep(
            num_graphs=config["graphs"],
            seed=config["seed"],
            factors=tuple(config["factors"]),
            max_nodes=config["max_nodes"],
            engine=engine,
            oracle=config.get("oracle", False),
            oracle_timeout=config.get("oracle_timeout"),
        )
        print(report.summary())
        if report.oracle_records:
            print()
            print("=== Oracle optimality gaps ===")
            print(report.gap_table())
        if args.gap_table_out:
            atomic_write_text(args.gap_table_out, report.gap_table() + "\n")
            print(f"wrote gap table: {args.gap_table_out}", file=sys.stderr)
        if args.stats:
            print("=== Engine stats ===")
            print(engine.stats_summary())
        export_observability(args, engine)
        degraded = report_resilience(args, engine)
        ok = report.ok and not degraded
        if checkpoint is not None:
            checkpoint.finish(engine, "ok" if ok else "degraded")
        return 0 if ok else 1
    finally:
        engine.close()


def _cmd_serve(args) -> int:
    """Run the retiming request server until SIGTERM/SIGINT, then drain."""
    from .server import ServerConfig, serve_main

    return serve_main(
        ServerConfig(
            host=args.host,
            port=args.port,
            socket=args.socket,
            workers=args.workers,
            max_inflight=args.max_inflight,
            batch_max=args.batch_max,
            shards=args.shards,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            fault_plan=args.fault_plan,
            distributed=args.distributed,
            remote_workers=args.remote_workers,
            lease_timeout=args.lease_timeout,
        )
    )


def _cmd_worker(args) -> int:
    """Join a coordinator's work plane as a remote worker."""
    from .server.worker import worker_main

    return worker_main(args)


def _cmd_profile(args) -> int:
    """Per-stage time breakdown of the pipeline on one workload."""
    from .machine.vm import run_program

    observability.enable()
    g = get_workload(args.workload)
    with observability.span(
        "profile", workload=args.workload, n=args.n, unfold=args.unfold
    ):
        with observability.span("stage.retiming"):
            period, r = minimize_cycle_period(g)
        with observability.span("stage.csr_rewrite"):
            if args.unfold > 1:
                program = csr_retimed_unfolded_loop(g, r, args.unfold)
            else:
                program = csr_pipelined_loop(g, r)
        with observability.span("stage.vm_execute"):
            if args.no_verify:
                result = run_program(program, args.n)
            else:
                result = assert_equivalent(g, program, args.n)

    roots = observability.OBS.tracer.roots
    print(
        f"profile: {g.name} — period {period}, code size {program.code_size}, "
        f"n={args.n}, {result.executed} executed / {result.disabled} disabled"
    )
    print()
    print(observability.format_breakdown(roots))
    counters = observability.OBS.metrics.as_dict()["counters"]
    if counters:
        print()
        print("counters:")
        for name, value in counters.items():
            print(f"  {name} = {value}")
    if args.trace:
        observability.write_chrome_trace(args.trace, roots)
        print()
        print(
            f"wrote Chrome trace: {args.trace} "
            "(open in chrome://tracing or ui.perfetto.dev)"
        )
    if args.metrics_out:
        atomic_write_text(args.metrics_out, observability.OBS.metrics.to_json())
        print(f"wrote metrics JSON: {args.metrics_out}")
    if args.prometheus_out:
        atomic_write_text(
            args.prometheus_out, observability.OBS.metrics.to_prometheus()
        )
        print(f"wrote Prometheus metrics: {args.prometheus_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Code-size reduction for software-pipelined DSP loops "
        "(Zhuge et al., 2002 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads").set_defaults(fn=_cmd_list)

    p = sub.add_parser("info", help="graph and retiming statistics")
    p.add_argument("workload")
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("csr", help="print the conditional-register program")
    p.add_argument("workload")
    p.add_argument("--unfold", type=int, default=1, metavar="F")
    p.set_defaults(fn=_cmd_csr)

    p = sub.add_parser("run", help="execute the CSR program and verify it")
    p.add_argument("workload")
    p.add_argument("-n", type=int, default=20, help="trip count (default 20)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("compile", help="auto-compile: factors, budgets, verify")
    p.add_argument("workload")
    p.add_argument("--max-unfold", type=int, default=4)
    p.add_argument("--budget", type=int, default=None, help="code-size budget")
    p.add_argument("--registers", type=int, default=None, help="register budget")
    p.add_argument("--alu", type=int, default=0, help="ALU count (0 = unlimited)")
    p.add_argument("--mul", type=int, default=0, help="multiplier count")
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("parse", help="parse loop source (file or '-')")
    p.add_argument("file")
    p.add_argument("--name", default="loop")
    p.add_argument("--csr", action="store_true", help="retime + CSR the result")
    p.add_argument("--json", action="store_true", help="emit DFG JSON")
    p.set_defaults(fn=_cmd_parse)

    p = sub.add_parser("cgen", help="emit standalone C for a workload's loop")
    p.add_argument("workload")
    p.add_argument("--csr", action="store_true", help="emit the CSR program")
    p.set_defaults(fn=_cmd_cgen)

    p = sub.add_parser("dot", help="Graphviz export of a workload")
    p.add_argument("workload")
    p.set_defaults(fn=_cmd_dot)

    p = sub.add_parser("json", help="JSON export of a workload")
    p.add_argument("workload")
    p.set_defaults(fn=_cmd_json)

    p = sub.add_parser("tables", help="regenerate the paper's tables")
    p.add_argument("tables", nargs="*", choices=["1", "2", "3", "4"], metavar="N")
    add_engine_arguments(p)
    p.set_defaults(fn=_cmd_tables)

    p = sub.add_parser(
        "report",
        help="aggregate journaled runs into publication tables (markdown "
        "+ LaTeX + report.json; --diff gates regressions; see "
        "docs/REPORT.md)",
    )
    from .analysis.report import DEFAULT_COUNTER_RATIO

    p.add_argument("runs", nargs="*", metavar="RUNS-DIR")
    p.add_argument("-o", "--out", default=None, metavar="DIR")
    p.add_argument("--paper-tables", action="store_true")
    p.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None)
    p.add_argument(
        "--counter-ratio", type=float, default=DEFAULT_COUNTER_RATIO, metavar="X"
    )
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "profile",
        help="per-stage time breakdown (retiming, CSR rewrite, VM execution)",
    )
    p.add_argument("--workload", required=True, help="workload to profile")
    p.add_argument("-n", type=int, default=50, help="trip count (default 50)")
    p.add_argument("--unfold", type=int, default=1, metavar="F")
    p.add_argument(
        "--trace", metavar="FILE", help="write a Chrome trace-event JSON"
    )
    p.add_argument(
        "--metrics-out", metavar="FILE", help="write the JSON metrics export"
    )
    p.add_argument(
        "--prometheus-out",
        metavar="FILE",
        help="write the Prometheus text-format metrics export",
    )
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="run the VM without checking against the original loop",
    )
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "serve",
        help="run the retiming request server (analyze/transform/oracle/"
        "sweep over HTTP; see docs/SERVER.md)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8750, help="TCP port (0 = any)")
    p.add_argument(
        "--socket", default=None, metavar="PATH",
        help="serve on a unix domain socket instead of TCP",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="engine worker processes (1 = inline, 0 = one per CPU)",
    )
    p.add_argument(
        "--max-inflight", type=int, default=128,
        help="bounded request queue; beyond it requests shed with 503",
    )
    p.add_argument(
        "--batch-max", type=int, default=16,
        help="max queued requests coalesced into one engine dispatch",
    )
    p.add_argument(
        "--shards", type=int, default=0,
        help="result-cache shard directories (0 = unsharded layout)",
    )
    p.add_argument("--cache-dir", default=None, help="result cache location")
    p.add_argument("--no-cache", action="store_true", help="disable the cache")
    p.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        help="activate a JSON fault-injection plan (testing)",
    )
    p.add_argument(
        "--distributed", action="store_true",
        help="run engine units through a leased work plane instead of a "
        "local pool (see docs/SERVER.md)",
    )
    p.add_argument(
        "--remote-workers", type=int, default=0, metavar="N",
        help="spawn N worker processes on the work plane "
        "(0 = external `repro worker` processes only)",
    )
    p.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="SEC",
        help="work-plane lease expiry; a silent worker's unit requeues "
        "after this long",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "worker",
        help="remote worker: lease, execute and complete work units from "
        "a coordinator's work plane (see docs/SERVER.md)",
    )
    add_worker_arguments(p)
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser(
        "sweep", help="randomized differential-testing sweep (all orders)"
    )
    p.add_argument("--graphs", type=int, default=200, help="random DFG count")
    p.add_argument("--seed", type=int, default=0, help="first graph seed")
    p.add_argument(
        "--factors", type=int, nargs="+", default=[2, 3], metavar="F",
        help="unfolding factors to sweep",
    )
    p.add_argument("--max-nodes", type=int, default=6, help="max nodes per graph")
    p.add_argument(
        "--oracle",
        action="store_true",
        help="pin the heuristic stack against the exact repro.optimal "
        "solvers (one oracle job per graph, gap table in the report)",
    )
    p.add_argument(
        "--oracle-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="per-graph oracle search deadline; on expiry the oracle "
        "degrades to a bounded-gap certificate instead of hanging",
    )
    p.add_argument(
        "--gap-table-out",
        default=None,
        metavar="FILE",
        help="write the oracle gap table to FILE (CI artifact)",
    )
    add_engine_arguments(p)
    p.set_defaults(fn=_cmd_sweep)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except JournalError as exc:
        # A bad --resume target (missing, corrupt, or wrong-command
        # journal) is an operator error: one clear line, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); exit quietly like a
        # well-behaved unix tool.
        import os

        try:
            sys.stdout.close()
        except OSError:
            pass
        os._exit(0)


if __name__ == "__main__":
    raise SystemExit(main())
