"""Semantic verification of transformed loop programs.

The decisive correctness check of this library: run a transformed program
and the original loop on the virtual machine with the same trip count and
live-in state, and require the *complete* written array state to be
identical.  Combined with the VM's single-assignment and write-range
invariants, passing this check means the transformation executed every
instance ``v[1..n]`` exactly once with exactly the original operands — the
executable content of Theorems 4.1/4.2/4.6/4.7.
"""

from __future__ import annotations

from typing import Callable

from ..graph.dfg import DFG, DFGError
from ..codegen.ir import LoopProgram
from ..codegen.original import original_loop
from ..machine.registers import MachineError
from ..machine.vm import VMResult, default_initial, run_program

__all__ = ["EquivalenceError", "assert_equivalent", "equivalent", "reference_result"]


class EquivalenceError(DFGError):
    """Raised when a transformed program diverges from the original loop."""


def reference_result(
    g: DFG, n: int, initial: Callable[[str, int], int] = default_initial
) -> VMResult:
    """Array state of the *original* loop of ``g`` for trip count ``n``."""
    return run_program(original_loop(g), n, initial=initial)


def assert_equivalent(
    g: DFG,
    program: LoopProgram,
    n: int,
    initial: Callable[[str, int], int] = default_initial,
) -> VMResult:
    """Run ``program`` and compare against the original loop of ``g``.

    Returns the transformed program's :class:`VMResult` on success; raises
    :class:`EquivalenceError` naming the first differing array instance
    otherwise.
    """
    want = reference_result(g, n, initial=initial)
    got = run_program(program, n, initial=initial)
    if got.arrays == want.arrays:
        return got

    # Build a precise diagnosis.
    for array in sorted(set(want.arrays) | set(got.arrays)):
        w = want.arrays.get(array, {})
        h = got.arrays.get(array, {})
        missing = sorted(set(w) - set(h))
        extra = sorted(set(h) - set(w))
        if missing:
            raise EquivalenceError(
                f"{program.name} (n={n}): {array}[{missing[0]}] never computed"
            )
        if extra:
            raise EquivalenceError(
                f"{program.name} (n={n}): spurious write {array}[{extra[0]}]"
            )
        for idx in sorted(w):
            if w[idx] != h[idx]:
                raise EquivalenceError(
                    f"{program.name} (n={n}): {array}[{idx}] = {h[idx]}, "
                    f"expected {w[idx]}"
                )
    raise EquivalenceError(f"{program.name} (n={n}): array states differ")  # pragma: no cover


def equivalent(
    g: DFG,
    program: LoopProgram,
    n: int,
    initial: Callable[[str, int], int] = default_initial,
) -> bool:
    """Boolean form of :func:`assert_equivalent`.

    Only *semantic* divergence counts as "not equivalent": a differing
    array state (:class:`EquivalenceError`) or a VM-enforced invariant
    violation / trip-count precondition (:class:`MachineError`).  Any
    other :class:`DFGError` — a malformed graph, an illegal retiming, a
    codegen failure — propagates, so structural bugs are never silently
    reported as mere non-equivalence.
    """
    try:
        assert_equivalent(g, program, n, initial=initial)
    except (EquivalenceError, MachineError):
        return False
    return True
