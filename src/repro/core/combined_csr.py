"""Code-size reduction for retimed-and-unfolded loops (Theorems 4.6/4.7).

**retime-unfold** (:func:`csr_retimed_unfolded_loop`): the copy of node
``v`` in slot ``j`` carries shift ``j + r(v)``, so all ``f`` copies of a
node share the register of class ``r(v)`` — the register count stays
``|N_r|``, exactly Theorem 4.7's ``P_{r,f} = P_r``.  The default
``per-copy`` decrement convention reproduces the paper's Figure 7(a) and the
``f * |V| + |N_r| * (f + 1)`` sizes of Tables 2 and 4; ``per-iteration``
gives the leaner ``f * |V| + 2 * |N_r|`` accounting of Table 3.

**unfold-retime** (:func:`csr_unfold_retimed_loop`): each *copy* ``v#j`` has
its own retiming value ``r'(v#j)``, shift ``j + f * r'(v#j)``, and register
class ``f * r'(v#j)`` — so the register count is the number of distinct
``r'`` values over all copies, which can exceed ``|N_r|``.  This is the
paper's argument (end of Section 3.4) for retiming before unfolding.
Because zero-delay dependencies of the retimed unfolded graph may cross
slots in either direction, this form always uses the order-insensitive
``per-iteration`` convention with a topological body order.
"""

from __future__ import annotations

from ..graph.dfg import DFG, DFGError
from ..graph.validate import topological_order
from ..codegen.ir import LoopProgram
from ..retiming.function import Retiming
from ..unfolding.unfold import copy_name, parse_copy_name, unfold
from .predicated import PER_COPY, PER_ITERATION, predicated_program

__all__ = ["csr_retimed_unfolded_loop", "csr_unfold_retimed_loop"]


def csr_retimed_unfolded_loop(
    g: DFG, r: Retiming, f: int, mode: str = PER_COPY
) -> LoopProgram:
    """Conditional form of the retime-then-unfold loop.

    ``r`` is a retiming of ``g``; ``f`` the unfolding factor.  Register
    count is ``|N_r|`` regardless of ``f``.
    """
    if f < 1:
        raise DFGError(f"unfolding factor must be >= 1, got {f}")
    r = r.normalized()
    r.check_legal()
    order_nodes = topological_order(r.apply())
    order = [(v, j) for j in range(f) for v in order_nodes]
    shifts = {(v, j): j + r[v] for v in g.node_names() for j in range(f)}
    return predicated_program(
        g,
        f=f,
        shifts=shifts,
        body_order=order,
        mode=mode,
        name=f"{g.name}.csr_retimed_unfolded_x{f}",
        meta={
            "kind": "csr-retimed-unfolded",
            "retiming": r.as_dict(),
            "max_retiming": r.max_value,
        },
    )


def csr_unfold_retimed_loop(g: DFG, r_gf: Retiming, f: int) -> LoopProgram:
    """Conditional form of the unfold-then-retime loop.

    ``r_gf`` retimes the copies of ``unfold(g, f)``.  Register count is the
    number of distinct copy retiming values.
    """
    if f < 1:
        raise DFGError(f"unfolding factor must be >= 1, got {f}")
    gf = unfold(g, f)
    if set(r_gf.graph.node_names()) != set(gf.node_names()):
        raise DFGError("retiming is not over the unfolded copies of g")
    r_gf = r_gf.normalized()
    r_gf.check_legal()
    order = [parse_copy_name(c) for c in topological_order(r_gf.apply())]
    shifts = {
        (v, j): j + f * r_gf[copy_name(v, j)]
        for v in g.node_names()
        for j in range(f)
    }
    return predicated_program(
        g,
        f=f,
        shifts=shifts,
        body_order=order,
        mode=PER_ITERATION,
        name=f"{g.name}.csr_unfold_retimed_x{f}",
        meta={
            "kind": "csr-unfold-retimed",
            "retiming": r_gf.as_dict(),
            "max_retiming": r_gf.max_value,
        },
    )
