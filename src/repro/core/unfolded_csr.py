"""Code-size reduction for unfolded loops (Section 3.3).

One conditional register suffices to remove the ``(n mod f) * |V|``
remainder instructions of an unfolded loop: the register is initialized to
0 and decremented by ``f`` every iteration, and the copy in slot ``j``
checks it at offset ``-j``, so in the final (partial) iteration exactly the
in-range copies execute.  The loop simply runs ``ceil(n / f)`` iterations
(``for i = 1 to n by f``) for any trip count — no residue specialization.

The paper's "we can totally reduce ``(n mod f) * L_orig - 2`` instructions"
corresponds to the overhead of exactly 2 instructions here: one ``setup``
and one decrement.
"""

from __future__ import annotations

from ..graph.dfg import DFG, DFGError
from ..graph.validate import topological_order
from ..codegen.ir import LoopProgram
from .predicated import PER_ITERATION, predicated_program

__all__ = ["csr_unfolded_loop"]


def csr_unfolded_loop(g: DFG, f: int) -> LoopProgram:
    """The single-register conditional form of the unfolded loop."""
    if f < 1:
        raise DFGError(f"unfolding factor must be >= 1, got {f}")
    order_nodes = topological_order(g)
    order = [(v, j) for j in range(f) for v in order_nodes]
    shifts = {(v, j): j for v in g.node_names() for j in range(f)}
    return predicated_program(
        g,
        f=f,
        shifts=shifts,
        body_order=order,
        mode=PER_ITERATION,
        name=f"{g.name}.csr_unfolded_x{f}",
        meta={"kind": "csr-unfolded"},
    )
