"""Closed-form code-size models (Section 4 of the paper).

All sizes count static instructions, the paper's metric ("the number of
nodes in a schedule including prologue and epilogue", plus setup/decrement
overhead for conditional code).  Every model here is validated in the
test-suite against instruction counts of actually generated programs.

Notation: ``L = |V|`` (original loop body size), ``M_r = max_v r(v)`` for a
normalized retiming, ``N_r`` the set of distinct retiming values, ``f`` the
unfolding factor, ``Q`` a remainder-iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.dfg import DFG
from ..retiming.function import Retiming
from .predicated import PER_COPY, PER_ITERATION

__all__ = [
    "size_original",
    "size_pipelined",
    "size_unfolded",
    "size_retime_unfold",
    "size_unfold_retime",
    "size_csr_pipelined",
    "size_csr_unfolded",
    "size_csr_retime_unfold",
    "size_csr_unfold_retime",
    "remainder_iterations",
    "CodeSizeReport",
    "report_retimed",
    "report_retimed_unfolded",
]


def size_original(g: DFG) -> int:
    """``L = |V|``."""
    return g.num_nodes


def size_pipelined(g: DFG, r: Retiming) -> int:
    """``(M_r + 1) * L`` — prologue + body + epilogue (Table 1, "Ret.")."""
    r = r.normalized()
    return (r.max_value + 1) * g.num_nodes


def remainder_iterations(n: int, f: int, shift: int = 0) -> int:
    """Remainder iterations peeled by unfolding: ``(n - shift) mod f``.

    ``shift = 0`` is the paper's ``n mod f``; retime-then-unfold programs
    peel relative to the pipelined trip count (``shift = M_r``).
    """
    return (n - shift) % f


def size_unfolded(g: DFG, f: int, remainder: int = 0) -> int:
    """``f * L + Q * L`` with ``Q`` remainder iterations."""
    return (f + remainder) * g.num_nodes


def size_retime_unfold(g: DFG, r: Retiming, f: int, remainder: int = 0) -> int:
    """Theorem 4.5: ``S_{r,f} = (M_r + f) * L + Q_f`` with
    ``Q_f = remainder * L``."""
    r = r.normalized()
    return (r.max_value + f + remainder) * g.num_nodes


def size_unfold_retime(g: DFG, r_gf: Retiming, f: int, remainder: int = 0) -> int:
    """Theorem 4.4: ``S_{f,r} = (M_{r'} + 1) * L * f + Q_f``."""
    r_gf = r_gf.normalized()
    return (r_gf.max_value + 1) * g.num_nodes * f + remainder * g.num_nodes


def size_csr_pipelined(g: DFG, r: Retiming) -> int:
    """``L + 2 * |N_r|`` — Table 1, "CR"."""
    return g.num_nodes + 2 * r.normalized().registers_needed()


def size_csr_unfolded(g: DFG, f: int) -> int:
    """``f * L + 2`` — Section 3.3's single-register scheme."""
    return f * g.num_nodes + 2


def size_csr_retime_unfold(g: DFG, r: Retiming, f: int, mode: str = PER_COPY) -> int:
    """CSR size of the retime-unfold loop.

    ``per-copy`` (Figure 7(a), Tables 2/4): ``f * L + |N_r| * (f + 1)``;
    ``per-iteration`` (Table 3): ``f * L + 2 * |N_r|``.
    """
    regs = r.normalized().registers_needed()
    if mode == PER_COPY:
        return f * g.num_nodes + regs * (f + 1)
    if mode == PER_ITERATION:
        return f * g.num_nodes + 2 * regs
    raise ValueError(f"unknown decrement mode {mode!r}")


def size_csr_unfold_retime(g: DFG, r_gf: Retiming, f: int) -> int:
    """CSR size of the unfold-retime loop (per-iteration convention):
    ``f * L + 2 * |N_{r'}|`` with ``N_{r'}`` the distinct *copy* values."""
    regs = r_gf.normalized().registers_needed()
    return f * g.num_nodes + 2 * regs


@dataclass(frozen=True)
class CodeSizeReport:
    """One benchmark row of the paper's tables.

    ``reduction_pct`` is ``100 * (expanded - csr) / expanded`` — the
    paper's "% Red." column.
    """

    name: str
    original: int
    expanded: int
    csr: int
    registers: int

    @property
    def reduction_pct(self) -> float:
        if self.expanded == 0:
            return 0.0
        return 100.0 * (self.expanded - self.csr) / self.expanded


def report_retimed(g: DFG, r: Retiming) -> CodeSizeReport:
    """Table-1-style row for a retimed loop."""
    r = r.normalized()
    return CodeSizeReport(
        name=g.name,
        original=size_original(g),
        expanded=size_pipelined(g, r),
        csr=size_csr_pipelined(g, r),
        registers=r.registers_needed(),
    )


def report_retimed_unfolded(
    g: DFG, r: Retiming, f: int, remainder: int = 0, mode: str = PER_COPY
) -> CodeSizeReport:
    """Table-2-style row for a retimed-then-unfolded loop."""
    r = r.normalized()
    return CodeSizeReport(
        name=g.name,
        original=size_original(g),
        expanded=size_retime_unfold(g, r, f, remainder),
        csr=size_csr_retime_unfold(g, r, f, mode),
        registers=r.registers_needed(),
    )
