"""Generic conditional-register code generator.

Every CSR (code-size-reduction) form in the paper is an instance of one
scheme, implemented here once.  The transformed loop body contains ``f``
*slots* (``f = 1`` for plain retiming); the copy of node ``v`` in slot ``j``
carries an *instance shift* ``sigma(v, j)``: at loop index ``i`` (stepping
by ``f`` from ``base``), it computes instance ``i + sigma(v, j)`` of ``v``,
guarded so that only instances ``1 .. n`` execute.

Let ``c(v, j) = sigma(v, j) - j`` be the copy's *register class* and
``C = max c``.  With ``base = 1 - C`` and one conditional register per
distinct class, initialized by ``setup p_c = C - c : -LC``, the guard window
``-LC < p <= 0`` enables exactly the in-range instances:

* slot ``j`` of loop iteration ``k`` sees ``p_c = 1 - (base + k f + j + c)``
  — which is ``<= 0`` iff the instance is ``>= 1`` and ``> -LC`` iff the
  instance is ``<= n``.

The loop ``for i = base to n by f`` runs ``ceil((n + C)/f)`` iterations for
*every* trip count — no prologue, no epilogue, no remainder, no
residue-specialization — which is precisely the paper's "optimal code size"
claim (Theorems 4.3 and 4.7).

Two decrement conventions are supported, matching the two accountings the
paper's tables use:

``per-copy`` (Figure 7(a); Tables 2 and 4)
    every register is decremented by 1 after each slot; overhead
    ``|classes| * (f + 1)``; requires the body to be emitted slot-major.
``per-iteration`` (Figure 5(b); Tables 1 and 3)
    every register is decremented by ``f`` once per iteration, and each
    instruction's guard carries offset ``-j`` instead; overhead
    ``2 * |classes|``; any dependency-respecting body order is legal.

Instantiations (``sigma`` choices):

=====================  =============================  =================
form                   ``sigma(v, j)``                classes
=====================  =============================  =================
retimed (Thm 4.3)      ``r(v)`` (``f = 1``)           ``N_r``
unfolded (Sec 3.3)     ``j``                          ``{0}`` (1 reg)
retime-unfold (4.7)    ``j + r(v)``                   ``N_r``
unfold-retime          ``j + f * r'(v#j)``            ``f * N_{r'}``
=====================  =============================  =================
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..graph.dfg import DFG, DFGError
from ..codegen.ir import DecInstr, Guard, IndexExpr, Instr, Loop, LoopProgram, SetupInstr
from ..codegen.original import compute_for_node

__all__ = ["predicated_program", "PER_COPY", "PER_ITERATION"]

PER_COPY = "per-copy"
PER_ITERATION = "per-iteration"


def predicated_program(
    g: DFG,
    f: int,
    shifts: Mapping[tuple[str, int], int],
    body_order: Sequence[tuple[str, int]],
    mode: str = PER_COPY,
    name: str | None = None,
    meta: dict | None = None,
) -> LoopProgram:
    """Build the predicated (CSR) program.

    Parameters
    ----------
    g:
        The original graph — instance-level dependencies (``u[m - d]``) and
        node operations come from here.
    f:
        Number of slots in the body (the unfolding factor; 1 for plain
        retiming).
    shifts:
        ``(node, slot) -> sigma``; must cover every node for every slot
        ``0 .. f-1``.
    body_order:
        Emission order of the ``(node, slot)`` copies; must be a
        permutation of ``shifts``' keys and respect all intra-iteration
        dependencies of the transformed loop (the public wrappers in
        :mod:`repro.core` construct provably safe orders).
    mode:
        :data:`PER_COPY` or :data:`PER_ITERATION` (see module docstring).
    """
    if f < 1:
        raise DFGError(f"slot count must be >= 1, got {f}")
    expected = {(v, j) for v in g.node_names() for j in range(f)}
    if set(shifts) != expected:
        raise DFGError("shifts must cover every (node, slot) pair exactly")
    if sorted(body_order) != sorted(expected):
        raise DFGError("body_order must be a permutation of the (node, slot) pairs")
    if mode not in (PER_COPY, PER_ITERATION):
        raise DFGError(f"unknown decrement mode {mode!r}")
    if mode == PER_COPY:
        slots = [j for (_, j) in body_order]
        if slots != sorted(slots):
            raise DFGError("per-copy mode requires a slot-major body order")

    classes = sorted({shifts[(v, j)] - j for (v, j) in expected}, reverse=True)
    c_max = classes[0]
    base = 1 - c_max
    register_of = {c: f"p{k + 1}" for k, c in enumerate(classes)}

    pre: tuple[Instr, ...] = tuple(
        SetupInstr(register=register_of[c], init=c_max - c) for c in classes
    )

    body: list[Instr] = []
    if mode == PER_COPY:
        for j in range(f):
            for v, jj in body_order:
                if jj != j:
                    continue
                c = shifts[(v, j)] - j
                body.append(
                    compute_for_node(
                        g, v, IndexExpr.loop(shifts[(v, j)]), guard=Guard(register_of[c])
                    )
                )
            for c in classes:
                body.append(DecInstr(register=register_of[c], amount=1))
    else:
        for v, j in body_order:
            c = shifts[(v, j)] - j
            body.append(
                compute_for_node(
                    g,
                    v,
                    IndexExpr.loop(shifts[(v, j)]),
                    guard=Guard(register_of[c], offset=-j),
                )
            )
        for c in classes:
            body.append(DecInstr(register=register_of[c], amount=f))

    full_meta = {
        "kind": "predicated",
        "graph": g.name,
        "factor": f,
        "mode": mode,
        "classes": classes,
        "registers": len(classes),
        "min_n": 0,
        **(meta or {}),
    }
    return LoopProgram(
        name=name if name is not None else f"{g.name}.csr",
        pre=pre,
        loop=Loop(
            start=IndexExpr.const(base),
            end=IndexExpr.trip(0),
            step=f,
            body=tuple(body),
        ),
        post=(),
        meta=full_meta,
    )
