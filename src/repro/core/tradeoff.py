"""Code-size / performance trade-off exploration (end of Section 4).

The paper closes with two inverse formulas — given a code-size budget
``L_req``, the maximum unfolding factor for a retimed loop is
``M_f = floor(L_req / L_orig) - M_r``, and given a factor the maximum
pipeline depth is ``M_r = floor(L_req / L_orig) - f`` — and suggests using
them to explore the design space.  This module implements the formulas and
a concrete explorer that sweeps unfolding factors, computes the exact best
iteration period per factor (via :func:`repro.unfolding.retime_unfold`) and
reports plain and CSR code sizes, so a designer can pick the fastest
configuration that fits memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..graph.dfg import DFG, DFGError
from ..retiming.function import Retiming
from ..unfolding.orders import retime_unfold
from .codesize import (
    size_csr_retime_unfold,
    size_retime_unfold,
)
from .predicated import PER_COPY

__all__ = [
    "max_unfolding_factor",
    "max_retiming_depth",
    "TradeoffPoint",
    "design_space",
    "best_under_budget",
]


def max_unfolding_factor(l_req: int, l_orig: int, m_r: int) -> int:
    """``M_f = floor(L_req / L_orig) - M_r`` (may be <= 0: budget too small)."""
    if l_orig < 1:
        raise DFGError("original code size must be >= 1")
    return l_req // l_orig - m_r


def max_retiming_depth(l_req: int, l_orig: int, f: int) -> int:
    """``M_r = floor(L_req / L_orig) - f`` (may be < 0: budget too small)."""
    if l_orig < 1:
        raise DFGError("original code size must be >= 1")
    return l_req // l_orig - f


@dataclass(frozen=True)
class TradeoffPoint:
    """One design point of the code-size/performance space.

    ``size_plain`` is Theorem 4.5's retime-unfold size (without remainder);
    ``size_csr`` the conditional-register size (per-copy convention).
    """

    factor: int
    retiming: Retiming
    period: int
    iteration_period: Fraction
    registers: int
    size_plain: int
    size_csr: int


def design_space(g: DFG, max_factor: int = 4) -> list[TradeoffPoint]:
    """Sweep unfolding factors ``1 .. max_factor`` with exact best retiming.

    Each point's iteration period is the true optimum for that factor
    (retime-then-unfold, which matches unfold-then-retime by Chao–Sha).
    """
    points: list[TradeoffPoint] = []
    for f in range(1, max_factor + 1):
        result = retime_unfold(g, f)
        r = result.retiming
        points.append(
            TradeoffPoint(
                factor=f,
                retiming=r,
                period=result.period,
                iteration_period=result.iteration_period,
                registers=r.registers_needed(),
                size_plain=size_retime_unfold(g, r, f),
                size_csr=size_csr_retime_unfold(g, r, f, mode=PER_COPY),
            )
        )
    return points


def best_under_budget(
    points: list[TradeoffPoint],
    l_req: int,
    use_csr: bool = True,
    max_registers: int | None = None,
) -> TradeoffPoint | None:
    """The fastest point whose code size (CSR or plain) fits ``l_req``.

    Ties in iteration period break toward smaller code; ``max_registers``
    additionally filters points needing more conditional registers than the
    target machine has.  Returns ``None`` when nothing fits.
    """
    feasible = [
        p
        for p in points
        if (p.size_csr if use_csr else p.size_plain) <= l_req
        and (max_registers is None or p.registers <= max_registers)
    ]
    if not feasible:
        return None
    return min(
        feasible,
        key=lambda p: (p.iteration_period, p.size_csr if use_csr else p.size_plain),
    )
